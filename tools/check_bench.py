#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json capture against the committed one.

Usage: check_bench.py COMMITTED.json FRESH.json [--tolerance 0.20]

Accepts the "scale" (bench_scale) and "tune" (bench_tune) captures; both
files must carry the same bench tag. For every workload row present in
BOTH files (matched on name + ranks), fails (exit 1) when the fresh
envelopes_per_sec is more than `tolerance` below the committed value.
Faster is never a failure; rows only one side has (e.g. the committed
full 1k/4k/10k sweep vs a --quick CI run) are skipped. Wall-clock benches
are noisy, so the default tolerance is a generous 20% — the gate exists
to catch "the scheduler fell off a cliff", not single-digit jitter.
(BENCH_tune.json rates are derived from deterministic virtual makespans,
so those rows reproduce exactly; the tolerance only matters for scale.)
"""

import argparse
import json
import sys


KNOWN_BENCHES = ("scale", "tune", "coll")


def rows(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("bench") not in KNOWN_BENCHES:
        sys.exit(f"{path}: not a recognised bench capture "
                 f"(bench={data.get('bench')!r}, expected one of "
                 f"{KNOWN_BENCHES})")
    return data["bench"], {(w["name"], w["ranks"]): w
                           for w in data["workloads"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()

    committed_bench, committed = rows(args.committed)
    fresh_bench, fresh = rows(args.fresh)
    if committed_bench != fresh_bench:
        sys.exit(f"bench tag mismatch: {args.committed} is "
                 f"{committed_bench!r}, {args.fresh} is {fresh_bench!r}")
    shared = sorted(set(committed) & set(fresh))
    if not shared:
        sys.exit("no (workload, ranks) rows in common; nothing to gate")

    failures = []
    for key in shared:
        base = committed[key]["envelopes_per_sec"]
        now = fresh[key]["envelopes_per_sec"]
        ratio = now / base if base > 0 else float("inf")
        marker = "FAIL" if ratio < 1.0 - args.tolerance else "ok"
        print(f"{key[0]:>10} @ {key[1]:>6} ranks: "
              f"{base:>12.0f} -> {now:>12.0f} env/sec ({ratio:5.2f}x) {marker}")
        if marker == "FAIL":
            failures.append(key)

    if failures:
        names = ", ".join(f"{n}@{r}" for n, r in failures)
        sys.exit(f"envelopes/sec regressed more than "
                 f"{args.tolerance:.0%} vs {args.committed}: {names}")
    print(f"{len(shared)} row(s) within {args.tolerance:.0%} of committed")


if __name__ == "__main__":
    main()
