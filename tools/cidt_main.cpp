// cidt — the communication-intent directive translator CLI.
//
// Usage:
//   cidt [options] input.cpp
//     -o <file>          write output here (default: stdout)
//     --target <name>    default target for directives without a target
//                        clause: mpi2side (default) | mpi1side | shmem
//     --comm <expr>      communicator expression for generated MPI calls
//     --no-annotate      suppress explanatory comments
//     --summary          print a translation summary to stderr
//     --check            validate the directives only (no output); exit 0
//                        when every directive is well-formed
//
//   cidt trace summarize <trace.json>       per-phase / per-site report
//   cidt trace diff <a.json> <b.json>       compare two traces; exit 1 when
//                                           they differ
//   cidt trace export <trace.json> [-o f]   spans as CSV
//
// Trace files are the Chrome trace-event JSON written by CID_TRACE_OUT=...
// or core::TraceCollector::write_chrome_json.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/trace_read.hpp"
#include "obs/trace_tool.hpp"
#include "translate/translator.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-o out.cpp] [--check] [--target mpi2side|mpi1side|shmem] "
               "[--comm <expr>] [--no-annotate] [--summary] input.cpp\n"
               "       %s trace summarize <trace.json>\n"
               "       %s trace diff <a.json> <b.json>\n"
               "       %s trace export <trace.json> [-o out.csv]\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

int trace_main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string verb = argv[2];

  auto load = [&](const char* path) {
    auto result = cid::obs::read_trace_file(path);
    if (!result.is_ok()) {
      std::fprintf(stderr, "cidt: %s: %s\n", path,
                   result.status().to_string().c_str());
    }
    return result;
  };

  if (verb == "summarize") {
    if (argc != 4) return usage(argv[0]);
    auto trace = load(argv[3]);
    if (!trace.is_ok()) return 1;
    cid::obs::summarize_trace(trace.value(), std::cout);
    return 0;
  }
  if (verb == "diff") {
    if (argc != 5) return usage(argv[0]);
    auto lhs = load(argv[3]);
    auto rhs = load(argv[4]);
    if (!lhs.is_ok() || !rhs.is_ok()) return 2;
    const bool identical =
        cid::obs::diff_traces(lhs.value(), rhs.value(), std::cout);
    return identical ? 0 : 1;
  }
  if (verb == "export") {
    if (argc != 4 && !(argc == 6 && std::string(argv[4]) == "-o")) {
      return usage(argv[0]);
    }
    auto trace = load(argv[3]);
    if (!trace.is_ok()) return 1;
    if (argc == 6) {
      std::ofstream out(argv[5]);
      if (!out) {
        std::fprintf(stderr, "cidt: cannot write '%s'\n", argv[5]);
        return 1;
      }
      cid::obs::export_csv(trace.value(), out);
    } else {
      cid::obs::export_csv(trace.value(), std::cout);
    }
    return 0;
  }
  std::fprintf(stderr, "cidt: unknown trace verb '%s'\n", verb.c_str());
  return usage(argv[0]);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "trace") {
    return trace_main(argc, argv);
  }
  std::string input_path;
  std::string output_path;
  bool print_summary = false;
  bool check_only = false;
  cid::translate::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "--target" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "mpi2side") {
        options.default_target = cid::core::Target::Mpi2Side;
      } else if (name == "mpi1side") {
        options.default_target = cid::core::Target::Mpi1Side;
      } else if (name == "shmem") {
        options.default_target = cid::core::Target::Shmem;
      } else {
        std::fprintf(stderr, "cidt: unknown target '%s'\n", name.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--comm" && i + 1 < argc) {
      options.comm_expr = argv[++i];
    } else if (arg == "--no-annotate") {
      options.annotate = false;
    } else if (arg == "--summary") {
      print_summary = true;
    } else if (arg == "--check") {
      check_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cidt: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input_path.empty()) return usage(argv[0]);

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "cidt: cannot read '%s'\n", input_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto result = cid::translate::translate_source(buffer.str(), options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "cidt: %s\n", result.status().to_string().c_str());
    return 1;
  }

  if (check_only) {
    const auto& summary = result.value().summary;
    std::fprintf(stderr,
                 "cidt: OK — %d comm_p2p directive(s), %d comm_parameters "
                 "region(s), %d reliable\n",
                 summary.p2p_directives, summary.parameter_regions,
                 summary.reliable_regions);
    return 0;
  }

  if (output_path.empty()) {
    std::fputs(result.value().source.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "cidt: cannot write '%s'\n", output_path.c_str());
      return 1;
    }
    out << result.value().source;
  }

  if (print_summary) {
    const auto& summary = result.value().summary;
    std::fprintf(stderr,
                 "cidt: %d comm_p2p directive(s), %d comm_parameters "
                 "region(s) (%d reliable), %d consolidated "
                 "synchronization(s)\n",
                 summary.p2p_directives, summary.parameter_regions,
                 summary.reliable_regions, summary.consolidated_syncs);
  }
  return 0;
}
