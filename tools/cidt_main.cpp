// cidt — the communication-intent directive tool.
//
// Subcommands:
//   cidt [options] input.cpp      source-to-source translation (the default)
//   cidt check [options] files…   static directive verification (cidlint)
//   cidt trace <verb> …           trace-file reports
//
// Exit codes, shared by every subcommand:
//   0  success / no findings
//   1  findings: diagnostics reported, translation rejected, traces differ
//   2  usage error (unknown option, missing operand)
//   3  I/O error (unreadable input, unwritable output)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "obs/trace_read.hpp"
#include "obs/trace_tool.hpp"
#include "translate/translator.hpp"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [-o out.cpp] [--check] [--target mpi2side|mpi1side|shmem]\n"
      "            [--comm <expr>] [--no-annotate] [--summary] input.cpp\n"
      "       %s check [--json] [--sweep MIN..MAX] file.cpp...\n"
      "       %s trace summarize <trace.json>\n"
      "       %s trace diff <a.json> <b.json>\n"
      "       %s trace export <trace.json> [-o out.csv]\n"
      "\n"
      "subcommands:\n"
      "  (default)  translate directive pragmas to message passing code;\n"
      "             --check validates the directives without writing output\n"
      "  check      static analysis: match/race/sync/type diagnostics\n"
      "             (documented in docs/ANALYSIS.md); exits 1 when any\n"
      "             diagnostic is reported\n"
      "  trace      summarize, diff or export Chrome trace-event files\n"
      "             written via CID_TRACE_OUT\n",
      argv0, argv0, argv0, argv0, argv0);
  return kExitUsage;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// `cidt check`: run the analyzer over each file, render human or JSON
/// output, exit nonzero when anything was found.
int check_main(int argc, char** argv) {
  bool json = false;
  cid::analyze::Options options;
  std::vector<std::string> paths;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sweep" && i + 1 < argc) {
      const std::string range = argv[++i];
      const std::size_t dots = range.find("..");
      int low = 0;
      int high = 0;
      if (dots == std::string::npos ||
          std::sscanf(range.c_str(), "%d..%d", &low, &high) != 2 ||
          low < 1 || high < low) {
        std::fprintf(stderr, "cidt: bad --sweep range '%s' (want MIN..MAX)\n",
                     range.c_str());
        return usage(argv[0]);
      }
      options.nprocs_min = low;
      options.nprocs_max = high;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cidt: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "cidt: check needs at least one input file\n");
    return usage(argv[0]);
  }

  std::vector<cid::analyze::FileReport> files;
  for (const std::string& path : paths) {
    std::string source;
    if (!read_file(path, source)) {
      std::fprintf(stderr, "cidt: cannot read '%s'\n", path.c_str());
      return kExitIo;
    }
    files.push_back({path, cid::analyze::analyze_source(source, options)});
  }

  int errors = 0;
  int warnings = 0;
  int directives = 0;
  for (const auto& file : files) {
    errors += file.report.errors();
    warnings += file.report.warnings();
    directives += file.report.directives_checked;
  }

  if (json) {
    std::fputs(cid::analyze::to_json(files).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    for (const auto& file : files) cid::analyze::print_human(file, std::cout);
    std::fprintf(stderr,
                 "cidt check: %zu file(s), %d directive(s), %d error(s), "
                 "%d warning(s)\n",
                 files.size(), directives, errors, warnings);
  }
  return (errors + warnings) == 0 ? kExitClean : kExitFindings;
}

int trace_main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string verb = argv[2];

  auto load = [&](const char* path) {
    auto result = cid::obs::read_trace_file(path);
    if (!result.is_ok()) {
      std::fprintf(stderr, "cidt: %s: %s\n", path,
                   result.status().to_string().c_str());
    }
    return result;
  };

  if (verb == "summarize") {
    if (argc != 4) return usage(argv[0]);
    auto trace = load(argv[3]);
    if (!trace.is_ok()) return kExitIo;
    cid::obs::summarize_trace(trace.value(), std::cout);
    return kExitClean;
  }
  if (verb == "diff") {
    if (argc != 5) return usage(argv[0]);
    auto lhs = load(argv[3]);
    auto rhs = load(argv[4]);
    if (!lhs.is_ok() || !rhs.is_ok()) return kExitIo;
    const bool identical =
        cid::obs::diff_traces(lhs.value(), rhs.value(), std::cout);
    return identical ? kExitClean : kExitFindings;
  }
  if (verb == "export") {
    if (argc != 4 && !(argc == 6 && std::string(argv[4]) == "-o")) {
      return usage(argv[0]);
    }
    auto trace = load(argv[3]);
    if (!trace.is_ok()) return kExitIo;
    if (argc == 6) {
      std::ofstream out(argv[5]);
      if (!out) {
        std::fprintf(stderr, "cidt: cannot write '%s'\n", argv[5]);
        return kExitIo;
      }
      cid::obs::export_csv(trace.value(), out);
    } else {
      cid::obs::export_csv(trace.value(), std::cout);
    }
    return kExitClean;
  }
  std::fprintf(stderr, "cidt: unknown trace verb '%s'\n", verb.c_str());
  return usage(argv[0]);
}

int translate_main(int argc, char** argv) {
  std::string input_path;
  std::string output_path;
  bool print_summary = false;
  bool check_only = false;
  cid::translate::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "--target" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "mpi2side") {
        options.default_target = cid::core::Target::Mpi2Side;
      } else if (name == "mpi1side") {
        options.default_target = cid::core::Target::Mpi1Side;
      } else if (name == "shmem") {
        options.default_target = cid::core::Target::Shmem;
      } else {
        std::fprintf(stderr, "cidt: unknown target '%s'\n", name.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--comm" && i + 1 < argc) {
      options.comm_expr = argv[++i];
    } else if (arg == "--no-annotate") {
      options.annotate = false;
    } else if (arg == "--summary") {
      print_summary = true;
    } else if (arg == "--check") {
      check_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cidt: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input_path.empty()) return usage(argv[0]);

  std::string source;
  if (!read_file(input_path, source)) {
    std::fprintf(stderr, "cidt: cannot read '%s'\n", input_path.c_str());
    return kExitIo;
  }

  auto result = cid::translate::translate_source(source, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "cidt: %s\n", result.status().to_string().c_str());
    return kExitFindings;
  }

  if (check_only) {
    const auto& summary = result.value().summary;
    std::fprintf(stderr,
                 "cidt: OK — %d comm_p2p directive(s), %d comm_parameters "
                 "region(s), %d reliable\n",
                 summary.p2p_directives, summary.parameter_regions,
                 summary.reliable_regions);
    return kExitClean;
  }

  if (output_path.empty()) {
    std::fputs(result.value().source.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "cidt: cannot write '%s'\n", output_path.c_str());
      return kExitIo;
    }
    out << result.value().source;
  }

  if (print_summary) {
    const auto& summary = result.value().summary;
    std::fprintf(stderr,
                 "cidt: %d comm_p2p directive(s), %d comm_parameters "
                 "region(s) (%d reliable), %d consolidated "
                 "synchronization(s)\n",
                 summary.p2p_directives, summary.parameter_regions,
                 summary.reliable_regions, summary.consolidated_syncs);
  }
  return kExitClean;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "trace") {
    return trace_main(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "check") {
    return check_main(argc, argv);
  }
  return translate_main(argc, argv);
}
