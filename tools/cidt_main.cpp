// cidt — the communication-intent directive tool.
//
// One binary, one subcommand per intent layer; run `cidt` with no
// arguments for the generated table. Exit codes, shared by every
// subcommand:
//   0  success / no findings
//   1  findings: diagnostics reported, translation rejected, traces
//      differ, layers diverge
//   2  usage error (unknown option, missing operand)
//   3  I/O error (unreadable input, unwritable output)
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "explore/explore.hpp"
#include "explore/fuzz.hpp"
#include "net/backend.hpp"
#include "net/doctor.hpp"
#include "obs/trace_read.hpp"
#include "obs/trace_tool.hpp"
#include "simnet/machine_model.hpp"
#include "translate/translator.hpp"
#include "tune/profile.hpp"
#include "tune/tune.hpp"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

/// One row of the generated usage table. Keeping the catalog as data (and
/// rendering it in a loop) means a new subcommand is exactly one entry here
/// plus its dispatch line in main() — the table cannot drift from itself.
struct SubcommandHelp {
  const char* name;      ///< subcommand word; "" for the bare default
  const char* synopsis;  ///< operands and options, one line
  const char* summary;   ///< what it does, where it is documented
};

constexpr SubcommandHelp kSubcommands[] = {
    {"",
     "[-o out.cpp] [--check] [--target mpi2side|mpi1side|shmem]\n"
     "  [--comm <expr>] [--no-annotate] [--summary] input.cpp",
     "translate directive pragmas to message passing code;\n"
     "--check validates the directives without writing output"},
    {"check", "[--json] [--sweep MIN..MAX] file.cpp...",
     "static analysis: match/race/sync/type diagnostics\n"
     "(docs/ANALYSIS.md); exits 1 when anything is reported"},
    {"run",
     "[--backend sim|thread|tcp] [--procs N] [--port-base P]\n"
     "  <program> [args...]",
     "exec <program> with CID_BACKEND set; --backend tcp forks\n"
     "--procs processes on loopback ports and wires the peer table"},
    {"trace", "summarize|diff [--semantic]|export <trace.json>...",
     "summarize, diff or export Chrome trace-event files written\n"
     "via CID_TRACE_OUT; diff --semantic ignores virtual time"},
    {"tune", "show|explain <profile.json> [site]",
     "inspect CID_TUNE_PROFILE files (docs/TUNING.md); explain\n"
     "replays every tuning decision with its reason"},
    {"net", "doctor",
     "transport preflight (docs/TRANSPORTS.md): CID_BACKEND, the\n"
     "frame codec and the tcp peer table; exits 1 on findings"},
    {"explore",
     "[--nprocs N] [--naive] [--max-executions N]\n"
     "  [--max-decisions N] [--schedule 1,0,...] [--json] file.cpp",
     "schedule-space model checking (docs/EXPLORE.md): enumerate\n"
     "message orderings, report deadlocks and wildcard races"},
    {"fuzz",
     "[--seeds N] [--seed-base S] [--nprocs N]\n"
     "  [--budget-seconds B] [--dump-dir DIR]",
     "cross-layer directive fuzzer (docs/EXPLORE.md): seeded\n"
     "programs through translate/analyze/explore, exits 1 on\n"
     "divergence"},
};

/// Render one two-column cell pair where either side may span multiple
/// lines; continuation lines indent into their own column.
void print_usage_row(const std::string& left, const char* right) {
  constexpr int kLeftWidth = 26;
  std::istringstream lhs(left);
  std::istringstream rhs(right);
  std::string l;
  std::string r;
  bool more_l = static_cast<bool>(std::getline(lhs, l));
  bool more_r = static_cast<bool>(std::getline(rhs, r));
  while (more_l || more_r) {
    std::fprintf(stderr, "  %-*s %s\n", kLeftWidth, more_l ? l.c_str() : "",
                 more_r ? r.c_str() : "");
    more_l = more_l && static_cast<bool>(std::getline(lhs, l));
    more_r = more_r && static_cast<bool>(std::getline(rhs, r));
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [<subcommand>] [options] ...\n\n", argv0);
  for (const SubcommandHelp& row : kSubcommands) {
    const std::string name = row.name[0] == '\0' ? "(default)" : row.name;
    print_usage_row(name, row.summary);
  }
  std::fprintf(stderr, "\nsynopses:\n");
  for (const SubcommandHelp& row : kSubcommands) {
    std::string head = std::string(argv0);
    if (row.name[0] != '\0') head += std::string(" ") + row.name;
    std::istringstream lines(row.synopsis);
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
      if (first) {
        std::fprintf(stderr, "  %s %s\n", head.c_str(), line.c_str());
      } else {
        std::fprintf(stderr, "  %*s %s\n",
                     static_cast<int>(head.size()), "", line.c_str());
      }
      first = false;
    }
  }
  return kExitUsage;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// `cidt check`: run the analyzer over each file, render human or JSON
/// output, exit nonzero when anything was found.
int check_main(int argc, char** argv) {
  bool json = false;
  cid::analyze::Options options;
  std::vector<std::string> paths;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sweep" && i + 1 < argc) {
      const std::string range = argv[++i];
      const std::size_t dots = range.find("..");
      int low = 0;
      int high = 0;
      if (dots == std::string::npos ||
          std::sscanf(range.c_str(), "%d..%d", &low, &high) != 2 ||
          low < 1 || high < low) {
        std::fprintf(stderr, "cidt: bad --sweep range '%s' (want MIN..MAX)\n",
                     range.c_str());
        return usage(argv[0]);
      }
      options.nprocs_min = low;
      options.nprocs_max = high;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cidt: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "cidt: check needs at least one input file\n");
    return usage(argv[0]);
  }

  std::vector<cid::analyze::FileReport> files;
  for (const std::string& path : paths) {
    std::string source;
    if (!read_file(path, source)) {
      std::fprintf(stderr, "cidt: cannot read '%s'\n", path.c_str());
      return kExitIo;
    }
    files.push_back({path, cid::analyze::analyze_source(source, options)});
  }

  int errors = 0;
  int warnings = 0;
  int directives = 0;
  for (const auto& file : files) {
    errors += file.report.errors();
    warnings += file.report.warnings();
    directives += file.report.directives_checked;
  }

  if (json) {
    std::fputs(cid::analyze::to_json(files).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    for (const auto& file : files) cid::analyze::print_human(file, std::cout);
    std::fprintf(stderr,
                 "cidt check: %zu file(s), %d directive(s), %d error(s), "
                 "%d warning(s)\n",
                 files.size(), directives, errors, warnings);
  }
  return (errors + warnings) == 0 ? kExitClean : kExitFindings;
}

int trace_main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string verb = argv[2];

  auto load = [&](const char* path) {
    auto result = cid::obs::read_trace_file(path);
    if (!result.is_ok()) {
      std::fprintf(stderr, "cidt: %s: %s\n", path,
                   result.status().to_string().c_str());
    }
    return result;
  };

  if (verb == "summarize") {
    if (argc != 4) return usage(argv[0]);
    auto trace = load(argv[3]);
    if (!trace.is_ok()) return kExitIo;
    cid::obs::summarize_trace(trace.value(), std::cout);
    return kExitClean;
  }
  if (verb == "diff") {
    bool semantic = false;
    int first = 3;
    if (argc > 3 && std::string(argv[3]) == "--semantic") {
      semantic = true;
      first = 4;
    }
    if (argc != first + 2) return usage(argv[0]);
    auto lhs = load(argv[first]);
    auto rhs = load(argv[first + 1]);
    if (!lhs.is_ok() || !rhs.is_ok()) return kExitIo;
    const bool identical =
        cid::obs::diff_traces(lhs.value(), rhs.value(), std::cout, semantic);
    return identical ? kExitClean : kExitFindings;
  }
  if (verb == "export") {
    if (argc != 4 && !(argc == 6 && std::string(argv[4]) == "-o")) {
      return usage(argv[0]);
    }
    auto trace = load(argv[3]);
    if (!trace.is_ok()) return kExitIo;
    if (argc == 6) {
      std::ofstream out(argv[5]);
      if (!out) {
        std::fprintf(stderr, "cidt: cannot write '%s'\n", argv[5]);
        return kExitIo;
      }
      cid::obs::export_csv(trace.value(), out);
    } else {
      cid::obs::export_csv(trace.value(), std::cout);
    }
    return kExitClean;
  }
  std::fprintf(stderr, "cidt: unknown trace verb '%s'\n", verb.c_str());
  return usage(argv[0]);
}

/// Load and parse a CID_TUNE profile file; on failure prints a diagnostic
/// and returns an error result.
cid::Result<cid::tune::Profile> load_profile(const char* path) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "cidt: cannot read '%s'\n", path);
    return cid::Status(cid::ErrorCode::IoError, "unreadable profile");
  }
  auto profile = cid::tune::Profile::parse(text);
  if (!profile.is_ok()) {
    std::fprintf(stderr, "cidt: %s: %s\n", path,
                 profile.status().to_string().c_str());
  }
  return profile;
}

/// `cidt tune`: inspect profiles written by CID_TUNE=record runs.
///   show     the raw per-site observations, one block per site
///   explain  replay every decision the tuner would make from this profile
///            against the reference machine model, with reasons
int tune_main(int argc, char** argv) {
  if (argc < 4) return usage(argv[0]);
  const std::string verb = argv[2];

  if (verb == "show") {
    if (argc != 4) return usage(argv[0]);
    auto profile = load_profile(argv[3]);
    if (!profile.is_ok()) return kExitIo;
    std::printf("profile: %zu site(s)\n", profile.value().sites.size());
    for (const auto& [site, p] : profile.value().sites) {
      std::printf("\n%s\n", site.c_str());
      std::printf("  messages      %llu (%llu bytes; min %.0f mean %.1f "
                  "max %.0f)\n",
                  static_cast<unsigned long long>(p.messages),
                  static_cast<unsigned long long>(p.bytes), p.min_bytes,
                  p.mean_bytes, p.max_bytes);
      std::printf("  symmetric_ok  %s\n", p.symmetric_ok ? "yes" : "no");
      if (p.plan_ns_per_byte > 0.0 || p.flat_ns_per_byte > 0.0) {
        std::printf("  copy rates    plan %.3f ns/B, flat %.3f ns/B\n",
                    p.plan_ns_per_byte, p.flat_ns_per_byte);
      }
      if (p.rtt_p99 > 0.0) {
        std::printf("  ack rtt       p50 %.3g s, p99 %.3g s\n", p.rtt_p50,
                    p.rtt_p99);
      }
      if (p.wall_rtt_p99 > 0.0) {
        std::printf("  wall rtt p99  %.3g s\n", p.wall_rtt_p99);
      }
      if (p.min_timeout > 0.0) {
        std::printf("  min timeout   %.3g s\n", p.min_timeout);
      }
      if (p.coll_calls > 0) {
        std::printf("  collectives   %llu call(s); block mean %.1f B max "
                    "%.0f B; group mean %.1f\n",
                    static_cast<unsigned long long>(p.coll_calls),
                    p.coll_mean_bytes, p.coll_max_bytes, p.coll_group);
        std::printf("  patterns      o2m %llu, m2o %llu, a2a %llu\n",
                    static_cast<unsigned long long>(p.coll_o2m),
                    static_cast<unsigned long long>(p.coll_m2o),
                    static_cast<unsigned long long>(p.coll_a2a));
      }
    }
    return kExitClean;
  }

  if (verb == "explain") {
    if (argc != 4 && argc != 5) return usage(argv[0]);
    auto profile = load_profile(argv[3]);
    if (!profile.is_ok()) return kExitIo;
    const auto model = cid::simnet::MachineModel::cray_xk7_gemini();
    const std::size_t agg_threshold = cid::tune::aggregation_threshold(model);
    const std::string only = argc == 5 ? cid::tune::normalize_site(argv[4])
                                       : std::string();

    std::size_t shown = 0;
    for (const auto& [site, p] : profile.value().sites) {
      if (!only.empty() && site != only) continue;
      ++shown;
      std::printf("%s\n", site.c_str());

      // target(auto): the site had a reliability clause iff it recorded a
      // timeout. Explain assumes a single-process run (the in-process sim
      // reference); profiles cannot record the transport, and symmetric_ok
      // already gates the shmem pick on its own.
      cid::tune::SiteFacts facts;
      facts.reliability = p.min_timeout > 0.0;
      facts.single_process = true;
      const auto choice = cid::tune::auto_target(&p, model, facts);
      std::printf("  target(auto)  -> %s\n                   %s\n",
                  std::string(cid::tune::lowering_name(choice.lowering))
                      .c_str(),
                  choice.reason.c_str());

      const bool agg = cid::tune::should_aggregate(
          &p, static_cast<std::size_t>(p.mean_bytes), model);
      std::printf("  aggregation   -> %s (mean %.1f B vs threshold %zu B)\n",
                  agg ? "batch per destination" : "send individually",
                  p.mean_bytes, agg_threshold);

      if (p.plan_ns_per_byte > 0.0 && p.flat_ns_per_byte > 0.0) {
        // use_flat_copy() depends on the layout's payload/extent ratio;
        // report the measured crossover density instead of one verdict.
        std::printf("  pack copy     -> flat wins below density %.2fx "
                    "(plan %.3f / flat %.3f ns/B), capped at 2x\n",
                    p.plan_ns_per_byte / p.flat_ns_per_byte,
                    p.plan_ns_per_byte, p.flat_ns_per_byte);
      } else {
        std::printf("  pack copy     -> compiled pack plan (no calibration "
                    "recorded)\n");
      }

      if (p.min_timeout > 0.0) {
        const double tuned =
            cid::tune::tuned_timeout(&p, p.min_timeout);
        std::printf("  reliability   -> timeout %.3g s (clause %.3g s, "
                    "4 x rtt p99 = %.3g s)\n",
                    tuned, p.min_timeout, 4.0 * p.rtt_p99);
      }

      if (p.coll_calls > 0) {
        // Replay the collective algorithm chooser per recorded pattern,
        // exactly as the CID_TUNE=on steering hint would compute it.
        const int group = std::max(
            1, static_cast<int>(p.coll_group + 0.5));
        const auto block = static_cast<std::size_t>(p.coll_mean_bytes + 0.5);
        const struct {
          const char* label;
          std::uint64_t calls;
          cid::tune::CollOp op;
        } rows[] = {
            {"ONE_TO_MANY", p.coll_o2m, cid::tune::CollOp::Bcast},
            {"MANY_TO_ONE", p.coll_m2o, cid::tune::CollOp::Gather},
            {"ALL_TO_ALL", p.coll_a2a, cid::tune::CollOp::Alltoall},
        };
        for (const auto& row : rows) {
          if (row.calls == 0) continue;
          const cid::tune::CollShape shape{
              block,
              row.op == cid::tune::CollOp::Bcast
                  ? block
                  : block * static_cast<std::size_t>(group),
              group};
          const auto cc =
              cid::tune::choose_collective(row.op, shape, model, &p);
          std::printf("  %-14s-> %s[%s] (mean block %.1f B, group %d)\n"
                      "                   %s\n",
                      row.label,
                      std::string(cid::tune::coll_op_name(row.op)).c_str(),
                      std::string(cid::tune::coll_algo_name(cc.algo)).c_str(),
                      p.coll_mean_bytes, group, cc.reason);
        }
      }
    }
    if (!only.empty() && shown == 0) {
      std::fprintf(stderr, "cidt: site '%s' not in profile\n", argv[4]);
      return kExitFindings;
    }
    return kExitClean;
  }

  std::fprintf(stderr, "cidt: unknown tune verb '%s'\n", verb.c_str());
  return usage(argv[0]);
}

/// `cidt net doctor`: transport configuration preflight.
int net_main(int argc, char** argv) {
  if (argc < 3 || std::string(argv[2]) != "doctor") {
    if (argc >= 3) {
      std::fprintf(stderr, "cidt: unknown net verb '%s'\n", argv[2]);
    }
    return usage(argv[0]);
  }
  const int findings = cid::net::run_net_doctor(std::cout);
  if (findings > 0) {
    std::fprintf(stderr, "cidt net doctor: %d finding(s)\n", findings);
    return kExitFindings;
  }
  return kExitClean;
}

/// `cidt run`: launch a program under a chosen transport backend. sim and
/// thread exec in place; tcp forks one process per peer on loopback ports
/// and propagates the first nonzero child exit status.
int run_main(int argc, char** argv) {
  std::string backend_name = "sim";
  int procs = 2;
  bool procs_given = false;
  int port_base = 0;
  int program_index = -1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      backend_name = argv[++i];
    } else if (arg.rfind("--backend=", 0) == 0) {
      backend_name = arg.substr(10);
    } else if (arg == "--procs" && i + 1 < argc) {
      procs = std::atoi(argv[++i]);
      procs_given = true;
    } else if (arg.rfind("--procs=", 0) == 0) {
      procs = std::atoi(arg.c_str() + 8);
      procs_given = true;
    } else if (arg == "--port-base" && i + 1 < argc) {
      port_base = std::atoi(argv[++i]);
    } else if (arg.rfind("--port-base=", 0) == 0) {
      port_base = std::atoi(arg.c_str() + 12);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cidt: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      program_index = i;
      break;
    }
  }
  if (program_index < 0) {
    std::fprintf(stderr, "cidt: run needs a program to launch\n");
    return usage(argv[0]);
  }
  const auto backend = cid::net::parse_backend(backend_name);
  if (!backend.has_value()) {
    std::fprintf(stderr, "cidt: unknown backend '%s'\n",
                 backend_name.c_str());
    return usage(argv[0]);
  }
  std::vector<char*> child_argv(argv + program_index, argv + argc);
  child_argv.push_back(nullptr);

  if (*backend != cid::net::Backend::Tcp) {
    if (procs_given) {
      std::fprintf(stderr,
                   "cidt: --procs only applies to --backend tcp (%s runs "
                   "every rank in one process)\n",
                   backend_name.c_str());
      return usage(argv[0]);
    }
    ::setenv("CID_BACKEND", backend_name.c_str(), 1);
    ::execvp(child_argv[0], child_argv.data());
    std::fprintf(stderr, "cidt: cannot exec '%s'\n", child_argv[0]);
    return kExitIo;
  }

  if (procs < 1 || procs > 64) {
    std::fprintf(stderr, "cidt: --procs must be in [1, 64]\n");
    return usage(argv[0]);
  }
  if (port_base == 0) {
    // Spread concurrent launches (e.g. parallel CI shards) over the
    // ephemeral range so two runs rarely contend for the same ports.
    port_base = 20000 + static_cast<int>(::getpid() % 20000);
  }
  if (port_base < 1024 || port_base + procs > 65536) {
    std::fprintf(stderr, "cidt: --port-base out of range\n");
    return usage(argv[0]);
  }
  std::string peers;
  for (int p = 0; p < procs; ++p) {
    if (p > 0) peers += ',';
    peers += "127.0.0.1:" + std::to_string(port_base + p);
  }

  std::vector<pid_t> children;
  for (int p = 0; p < procs; ++p) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "cidt: fork failed\n");
      for (pid_t child : children) ::kill(child, SIGTERM);
      return kExitIo;
    }
    if (pid == 0) {
      ::setenv("CID_BACKEND", "tcp", 1);
      ::setenv("CID_NET_PEERS", peers.c_str(), 1);
      ::setenv("CID_NET_PROC", std::to_string(p).c_str(), 1);
      ::execvp(child_argv[0], child_argv.data());
      std::fprintf(stderr, "cidt: cannot exec '%s'\n", child_argv[0]);
      std::_Exit(kExitIo);
    }
    children.push_back(pid);
  }
  int worst = kExitClean;
  for (pid_t child : children) {
    int status = 0;
    ::waitpid(child, &status, 0);
    const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                                       : 128 + WTERMSIG(status);
    if (worst == kExitClean && code != 0) worst = code;
  }
  return worst;
}

/// `cidt explore`: enumerate the schedule space of one directive program
/// and render the findings in the analyzer's diagnostic format.
int explore_main(int argc, char** argv) {
  bool json = false;
  cid::explore::Options options;
  std::string path;

  auto int_arg = [&](int& i, int& slot) {
    slot = std::atoi(argv[++i]);
    return slot >= 1;
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--naive") {
      options.dpor = false;
    } else if (arg == "--nprocs" && i + 1 < argc) {
      if (!int_arg(i, options.nprocs)) {
        std::fprintf(stderr, "cidt: --nprocs must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--max-executions" && i + 1 < argc) {
      if (!int_arg(i, options.max_executions)) {
        std::fprintf(stderr, "cidt: --max-executions must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--max-decisions" && i + 1 < argc) {
      if (!int_arg(i, options.max_decisions)) {
        std::fprintf(stderr, "cidt: --max-decisions must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--schedule" && i + 1 < argc) {
      auto schedule = cid::explore::parse_schedule(argv[++i]);
      if (!schedule.is_ok()) {
        std::fprintf(stderr, "cidt: %s\n",
                     schedule.status().to_string().c_str());
        return usage(argv[0]);
      }
      options.schedule = schedule.value();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cidt: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "cidt: explore takes exactly one input file\n");
      return usage(argv[0]);
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "cidt: explore needs an input file\n");
    return usage(argv[0]);
  }

  std::string source;
  if (!read_file(path, source)) {
    std::fprintf(stderr, "cidt: cannot read '%s'\n", path.c_str());
    return kExitIo;
  }
  auto explored = cid::explore::explore_source(source, options);
  if (!explored.is_ok()) {
    std::fprintf(stderr, "cidt: %s\n",
                 explored.status().to_string().c_str());
    return kExitFindings;
  }
  const cid::explore::ExploreResult& result = explored.value();

  if (json) {
    std::fputs(cid::explore::to_json(path, result).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    for (const auto& d : result.report.diagnostics) {
      std::printf("%s:%d:%d: %s: [%s] %s\n", path.c_str(), d.line, d.column,
                  std::string(cid::analyze::severity_name(d.severity)).c_str(),
                  d.id.c_str(), d.message.c_str());
      if (!d.hint.empty()) std::printf("  hint: %s\n", d.hint.c_str());
    }
    for (const std::string& note : result.notes) {
      std::printf("%s: note: %s\n", path.c_str(), note.c_str());
    }
    std::fprintf(stderr,
                 "cidt explore: nprocs %d, %d execution(s) (%s), %lld "
                 "decision(s), depth %d, %d error(s), %d warning(s)%s\n",
                 result.nprocs, result.executions,
                 result.dpor ? "dpor" : "naive", result.decisions,
                 result.max_depth, result.report.errors(),
                 result.report.warnings(),
                 result.truncated ? "; TRUNCATED (raise --max-executions)"
                                  : "");
  }
  const int findings = result.report.errors() + result.report.warnings();
  return findings == 0 ? kExitClean : kExitFindings;
}

/// `cidt fuzz`: seeded cross-layer differential fuzzing. Exits 1 when any
/// seed diverges; divergent programs are printed (and optionally dumped to
/// --dump-dir as seed-<n>.cpp) so the failure is reproducible offline.
int fuzz_main(int argc, char** argv) {
  int seeds = 100;
  std::uint64_t seed_base = 1;
  double budget_seconds = 0.0;  // 0 = no wall-clock budget
  std::string dump_dir;
  cid::explore::FuzzOptions options;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
      if (seeds < 1) {
        std::fprintf(stderr, "cidt: --seeds must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--seed-base" && i + 1 < argc) {
      seed_base = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--nprocs" && i + 1 < argc) {
      options.nprocs = std::atoi(argv[++i]);
      if (options.nprocs < 1) {
        std::fprintf(stderr, "cidt: --nprocs must be >= 1\n");
        return usage(argv[0]);
      }
    } else if (arg == "--budget-seconds" && i + 1 < argc) {
      budget_seconds = std::atof(argv[++i]);
      if (budget_seconds <= 0.0) {
        std::fprintf(stderr, "cidt: --budget-seconds must be > 0\n");
        return usage(argv[0]);
      }
    } else if (arg == "--dump-dir" && i + 1 < argc) {
      dump_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cidt: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "cidt: fuzz takes no operands\n");
      return usage(argv[0]);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  int ran = 0;
  int divergences = 0;
  int deadlocks = 0;
  int truncated = 0;
  for (int i = 0; i < seeds; ++i) {
    if (budget_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() > budget_seconds) {
        std::fprintf(stderr,
                     "cidt fuzz: wall-clock budget (%.0fs) reached after "
                     "%d seed(s)\n",
                     budget_seconds, ran);
        break;
      }
    }
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    const cid::explore::FuzzOutcome outcome =
        cid::explore::fuzz_one(seed, options);
    ++ran;
    if (outcome.explore_deadlock) ++deadlocks;
    if (outcome.explore_truncated) ++truncated;
    if (!outcome.divergence) continue;
    ++divergences;
    std::fprintf(stderr, "cidt fuzz: seed %llu DIVERGED: %s\n",
                 static_cast<unsigned long long>(seed),
                 outcome.detail.c_str());
    std::fprintf(stderr, "---- program (seed %llu) ----\n%s----\n",
                 static_cast<unsigned long long>(seed),
                 outcome.program.c_str());
    if (!dump_dir.empty()) {
      const std::string out_path =
          dump_dir + "/seed-" + std::to_string(seed) + ".cpp";
      std::ofstream out(out_path);
      if (out) {
        out << outcome.program;
        std::fprintf(stderr, "cidt fuzz: program written to %s\n",
                     out_path.c_str());
      } else {
        std::fprintf(stderr, "cidt fuzz: cannot write %s\n",
                     out_path.c_str());
      }
    }
  }
  std::fprintf(stderr,
               "cidt fuzz: %d seed(s) run, %d divergence(s); %d with "
               "explored deadlocks, %d truncated\n",
               ran, divergences, deadlocks, truncated);
  return divergences == 0 ? kExitClean : kExitFindings;
}

int translate_main(int argc, char** argv) {
  std::string input_path;
  std::string output_path;
  bool print_summary = false;
  bool check_only = false;
  cid::translate::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "--target" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "mpi2side") {
        options.default_target = cid::core::Target::Mpi2Side;
      } else if (name == "mpi1side") {
        options.default_target = cid::core::Target::Mpi1Side;
      } else if (name == "shmem") {
        options.default_target = cid::core::Target::Shmem;
      } else {
        std::fprintf(stderr, "cidt: unknown target '%s'\n", name.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--comm" && i + 1 < argc) {
      options.comm_expr = argv[++i];
    } else if (arg == "--no-annotate") {
      options.annotate = false;
    } else if (arg == "--summary") {
      print_summary = true;
    } else if (arg == "--check") {
      check_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cidt: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input_path.empty()) return usage(argv[0]);

  std::string source;
  if (!read_file(input_path, source)) {
    std::fprintf(stderr, "cidt: cannot read '%s'\n", input_path.c_str());
    return kExitIo;
  }

  auto result = cid::translate::translate_source(source, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "cidt: %s\n", result.status().to_string().c_str());
    return kExitFindings;
  }

  if (check_only) {
    const auto& summary = result.value().summary;
    std::fprintf(stderr,
                 "cidt: OK — %d comm_p2p directive(s), %d comm_parameters "
                 "region(s), %d reliable\n",
                 summary.p2p_directives, summary.parameter_regions,
                 summary.reliable_regions);
    return kExitClean;
  }

  if (output_path.empty()) {
    std::fputs(result.value().source.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "cidt: cannot write '%s'\n", output_path.c_str());
      return kExitIo;
    }
    out << result.value().source;
  }

  if (print_summary) {
    const auto& summary = result.value().summary;
    std::fprintf(stderr,
                 "cidt: %d comm_p2p directive(s), %d comm_parameters "
                 "region(s) (%d reliable), %d consolidated "
                 "synchronization(s)\n",
                 summary.p2p_directives, summary.parameter_regions,
                 summary.reliable_regions, summary.consolidated_syncs);
  }
  return kExitClean;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "trace") {
    return trace_main(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "check") {
    return check_main(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "tune") {
    return tune_main(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "net") {
    return net_main(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "run") {
    return run_main(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "explore") {
    return explore_main(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "fuzz") {
    return fuzz_main(argc, argv);
  }
  return translate_main(argc, argv);
}
