#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Checks every inline link ``[text](target)`` in the given markdown files:

- intra-repo file links must resolve on disk (relative to the linking file);
- fragment links (``file.md#anchor`` or ``#anchor``) must name a heading that
  exists in the target file, using GitHub's anchor slugification;
- external links (http/https/mailto) are recognized but NOT fetched — CI must
  not depend on network reachability.

Exit status 0 when every link resolves, 1 otherwise (one line per dead link).

Usage:
    python3 tools/check_links.py README.md DESIGN.md EXPERIMENTS.md docs/*.md

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links: [text](target). Skips images via the (?<!!) lookbehind and
# tolerates one level of nested brackets in the text (e.g. [[name]](x)).
LINK_RE = re.compile(r"(?<!!)\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slugification.

    Lowercase, strip everything but word characters/spaces/hyphens, then
    replace spaces with hyphens. Markdown formatting inside the heading is
    removed first (inline code, emphasis, links keep their text).
    """
    text = heading.strip()
    # [text](target) -> text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    # Inline code / emphasis markers drop out entirely.
    text = text.replace("`", "").replace("*", "").replace("_", "")
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    """All heading anchors of a markdown file, with GitHub's -1/-2 dedup."""
    if path in cache:
        return cache[path]
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = anchors
    return anchors


def iter_links(path: Path):
    """Yield (line_number, target) for every inline link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8", errors="replace").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path, repo_root: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors: list[str] = []
    for lineno, target in iter_links(path):
        where = f"{path.relative_to(repo_root)}:{lineno}"
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.\-]*:", target):
            continue  # external scheme (https:, mailto:, ...) — not fetched
        target, _, fragment = target.partition("#")
        if target:
            dest = (path.parent / target).resolve()
        else:
            dest = path.resolve()  # pure '#anchor' link into the same file
        try:
            dest.relative_to(repo_root)
        except ValueError:
            errors.append(f"{where}: link escapes the repository: {target}")
            continue
        if not dest.exists():
            errors.append(f"{where}: dead link: {target}")
            continue
        if fragment:
            if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                errors.append(f"{where}: anchor on non-markdown target: {target}#{fragment}")
                continue
            if fragment.lower() not in anchors_of(dest, anchor_cache):
                errors.append(f"{where}: dead anchor: {target or path.name}#{fragment}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    repo_root = Path(__file__).resolve().parent.parent
    anchor_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    checked = 0
    for arg in argv[1:]:
        path = Path(arg).resolve()
        if not path.exists():
            errors.append(f"{arg}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path, repo_root, anchor_cache))
    for error in errors:
        print(error)
    print(f"check_links: {checked} file(s), {len(errors)} problem(s)", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
