#include "rt/arena.hpp"

#include <bit>
#include <utility>

namespace cid::rt {

PayloadArena& PayloadArena::global() {
  static PayloadArena* arena = new PayloadArena();  // leaked by design
  return *arena;
}

int PayloadArena::bin_index(std::size_t bytes) noexcept {
  if (bytes > kMaxBinnedBytes) return -1;
  const std::size_t clamped = bytes < kMinBinBytes ? kMinBinBytes : bytes;
  // Index of the smallest power-of-two class holding `clamped` bytes.
  const int log2 = std::bit_width(clamped - 1);
  return log2 - 6;  // class 2^6 -> bin 0
}

ByteBuffer PayloadArena::acquire(std::size_t size) {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  const int bin_idx = bin_index(size);
  if (bin_idx >= 0) {
    Bin& bin = bins_[bin_idx];
    std::lock_guard<std::mutex> lock(bin.mutex);
    if (!bin.free.empty()) {
      ByteBuffer buffer = std::move(bin.free.back());
      bin.free.pop_back();
      bin.free_bytes -= buffer.capacity();
      reuses_.fetch_add(1, std::memory_order_relaxed);
      buffer.clear();
      buffer.resize(size);  // value-initialized, same as a fresh buffer
      return buffer;
    }
  }
  return ByteBuffer(size);
}

void PayloadArena::release(ByteBuffer&& buffer) {
  releases_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t capacity = buffer.capacity();
  if (capacity == 0) return;
  const int bin_idx = bin_index(capacity);
  if (bin_idx < 0) return;  // oversized: let the allocator have it back
  Bin& bin = bins_[bin_idx];
  std::lock_guard<std::mutex> lock(bin.mutex);
  if (bin.free_bytes + capacity > kMaxRetainedPerBin) return;
  bin.free_bytes += capacity;
  bin.free.push_back(std::move(buffer));
  retained_.fetch_add(1, std::memory_order_relaxed);
}

PayloadNode* PayloadArena::acquire_node() {
  node_acquires_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    if (!free_nodes_.empty()) {
      PayloadNode* node = free_nodes_.back();
      free_nodes_.pop_back();
      node_reuses_.fetch_add(1, std::memory_order_relaxed);
      node->refs.store(1, std::memory_order_relaxed);
      return node;
    }
  }
  return new PayloadNode();
}

void PayloadArena::release_node(PayloadNode* node) {
  release(std::move(node->bytes));
  node->bytes = ByteBuffer();
  {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    if (free_nodes_.size() < kMaxFreeNodes) {
      free_nodes_.push_back(node);
      return;
    }
  }
  delete node;
}

ArenaStats PayloadArena::stats() const {
  ArenaStats s;
  s.acquires = acquires_.load(std::memory_order_relaxed);
  s.reuses = reuses_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  s.retained = retained_.load(std::memory_order_relaxed);
  s.node_acquires = node_acquires_.load(std::memory_order_relaxed);
  s.node_reuses = node_reuses_.load(std::memory_order_relaxed);
  std::uint64_t parked = 0;
  for (const Bin& bin : bins_) {
    std::lock_guard<std::mutex> lock(const_cast<Bin&>(bin).mutex);
    parked += bin.free_bytes;
  }
  s.retained_bytes = parked;
  return s;
}

}  // namespace cid::rt
