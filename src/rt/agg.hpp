// Small-message aggregation wire format (cid::tune).
//
// The tuned dispatch path batches sub-threshold point-to-point sends bound
// for the same destination into ONE envelope per flush epoch, carried on
// Channel::Internal with the reserved kContext id. Mailbox::push recognizes
// the marker and splits the batch back into ordinary MpiPointToPoint
// sub-envelopes under a single lock acquisition, so receivers match exactly
// what the unaggregated path would have delivered — same src, tag, context
// and payload bytes, in the same per-source order (seqs are assigned in
// append order).
//
// Wire layout (host byte order; an aggregate is decoded by the destination
// mailbox of the same binary):
//
//   [u32 n] then n of: [i32 tag][i32 context][u32 bytes][bytes payload]
//
// Fault tombstones: when the fault layer drops an aggregate in transit,
// World::deliver strips the payload bytes but KEEPS the per-sub headers
// (tombstone()), so the split still fans out one faulted, payload-less
// tombstone per logical message — byte-for-byte the matching metadata a
// per-message drop would have produced.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace cid::rt::agg {

/// Context id marking an Internal-channel envelope as an aggregate. Distinct
/// from the reliability contexts (core/reliability.hpp: 0x7D01..0x7D03).
inline constexpr int kContext = 0x41'47'47;  // "AGG"

/// Sub-message count of a wire buffer (0 for empty/malformed).
std::uint32_t count(ByteSpan wire) noexcept;

/// Append one sub-message (writes the count header on first use).
void append(std::vector<std::byte>& wire, int tag, int context,
            ByteSpan payload);

/// Append every sub-message of `src` to `dst` (carryover merges).
void merge(std::vector<std::byte>& dst, ByteSpan src);

struct Sub {
  int tag = 0;
  int context = 0;
  std::uint32_t bytes = 0;    ///< logical payload size (kept in tombstones)
  std::size_t offset = 0;     ///< payload start within the wire (full form)
};

/// Decode a wire buffer. `headers_only` reads the tombstone form (no
/// payload bytes follow the headers). Returns false on malformed input.
bool decode(ByteSpan wire, bool headers_only, std::vector<Sub>& out);

/// Headers-only copy of a full wire buffer: what a dropped aggregate's
/// tombstone carries in place of its payload.
std::vector<std::byte> tombstone(ByteSpan wire);

}  // namespace cid::rt::agg
