// Per-rank mailbox: a mutex+condvar guarded arrival store with structured,
// indexed matching.
//
// Envelopes live in per-(channel, context) buckets, ordered by a global
// arrival sequence number (`seq`), with a per-(src, tag) FIFO sub-index
// inside each bucket. Matching is expressed as a MatchKey — exact values or
// wildcards for src/tag plus a fault-tombstone filter — so:
//
//  - the common exact-match extract is a hash lookup + front-of-queue pop
//    instead of a linear std::function scan of the whole queue;
//  - wildcard matches scan one bucket in arrival order, never unrelated
//    channels/contexts;
//  - MPI's non-overtaking guarantee holds by construction: within a bucket
//    both the arrival list and every (src, tag) sub-queue are seq-ordered,
//    and multi-key searches always return the lowest-seq match across keys;
//  - blocking waits resume from a seq watermark after each wakeup (only
//    newly arrived envelopes are examined — a rejected envelope is never
//    rescanned within one wait, since keys are fixed for the call);
//  - push() wakes a waiter only when the new envelope can match one of its
//    registered keys; a push nobody could want costs no syscall.
//
// A generic predicate API remains for tests and exotic protocols; it scans
// all buckets in global arrival order and wakes on every push.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory_resource>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "rt/envelope.hpp"
#include "rt/sched.hpp"

namespace cid::rt {

/// Wildcard value for MatchKey::src / MatchKey::tag. Distinct from -1, which
/// is a legal envelope src/tag value.
inline constexpr int kMatchAny = std::numeric_limits<int>::min();

/// What a key does with fault-layer tombstones (Envelope::faulted).
enum class FaultFilter : std::uint8_t {
  Clean,    ///< match only intact envelopes (plain MPI matching)
  Faulted,  ///< match only tombstones (timeout detection)
  Any,      ///< match both (reliability protocol traffic)
};

/// One structured matching pattern. channel/context are always exact (they
/// select the bucket); src/tag may be kMatchAny.
struct MatchKey {
  Channel channel = Channel::MpiPointToPoint;
  int context = 0;
  int src = kMatchAny;
  int tag = kMatchAny;
  FaultFilter faults = FaultFilter::Clean;

  bool admits(const Envelope& e) const noexcept {
    if (e.channel != channel || e.context != context) return false;
    if (src != kMatchAny && e.src != src) return false;
    if (tag != kMatchAny && e.tag != tag) return false;
    switch (faults) {
      case FaultFilter::Clean:
        return !e.faulted;
      case FaultFilter::Faulted:
        return e.faulted;
      case FaultFilter::Any:
        return true;
    }
    return false;
  }

  bool exact() const noexcept { return src != kMatchAny && tag != kMatchAny; }
};

class Mailbox {
 public:
  using Predicate = std::function<bool(const Envelope&)>;
  /// Optional refinement evaluated on key-admitted candidates only (e.g.
  /// communicator-membership checks). Must be deterministic for the duration
  /// of one call: a candidate it rejects is not re-examined within that call.
  using Residual = std::function<bool(const Envelope&)>;

  /// Deliver an envelope (called from the sending rank's thread). An
  /// aggregate (Channel::Internal, agg::kContext — see rt/agg.hpp) is split
  /// here into its per-message sub-envelopes under one lock acquisition, in
  /// append order, so seq-based non-overtaking matches the unbatched path.
  void push(Envelope envelope);

  // ---- Structured (indexed) matching: the hot paths ----------------------

  /// Remove and return the lowest-seq envelope admitted by any key (and the
  /// residual, when given); blocks until one arrives. Throws
  /// CidError(RuntimeFault) if the world gets poisoned while waiting.
  Envelope wait_extract(std::span<const MatchKey> keys,
                        const Residual* residual = nullptr);
  Envelope wait_extract(const MatchKey& key,
                        const Residual* residual = nullptr) {
    return wait_extract(std::span<const MatchKey>(&key, 1), residual);
  }

  /// Timed variant for wall-clock transports: block at most `seconds` of
  /// real time; nullopt on timeout. Real-loss transports (tcp) deliver
  /// nothing at all for a lost message, so reliability protocols cannot
  /// wait on a tombstone — they wait on the clock instead.
  std::optional<Envelope> wait_extract_for(std::span<const MatchKey> keys,
                                           double seconds,
                                           const Residual* residual = nullptr);

  /// Non-blocking variant.
  std::optional<Envelope> try_extract(std::span<const MatchKey> keys,
                                      const Residual* residual = nullptr);
  std::optional<Envelope> try_extract(const MatchKey& key,
                                      const Residual* residual = nullptr) {
    return try_extract(std::span<const MatchKey>(&key, 1), residual);
  }

  /// Block until an admitted envelope is present, without removing it.
  void wait_present(std::span<const MatchKey> keys,
                    const Residual* residual = nullptr);

  /// True if an admitted envelope is queued (does not remove it).
  bool probe(const MatchKey& key, const Residual* residual = nullptr);

  /// Header of the first admitted queued envelope (no payload copy, no
  /// removal): {src, tag, payload bytes, available_at}.
  struct Header {
    int src = -1;
    int tag = 0;
    std::size_t payload_bytes = 0;
    simnet::SimTime available_at = 0.0;
  };
  std::optional<Header> peek(const MatchKey& key,
                             const Residual* residual = nullptr);

  // ---- Generic predicate matching: tests / exotic protocols --------------

  Envelope wait_extract(const Predicate& predicate);
  std::optional<Envelope> try_extract(const Predicate& predicate);
  void wait_present(const Predicate& predicate);
  bool probe(const Predicate& predicate);
  std::optional<Header> peek(const Predicate& predicate);

  /// Number of queued envelopes (diagnostics).
  std::size_t size() const;

  // ---- Schedule-exploration hooks (cid::explore) -------------------------
  //
  // A model-checking session makes the one visible source of nondeterminism
  // — which envelope a wildcard (non-exact) key matches — a controlled
  // decision: envelopes stay invisible to non-exact keys until the session's
  // gate admits them, and every successful extraction is reported through a
  // tap so the session can maintain its happens-before trace. Exact keys are
  // never gated (their match is already deterministic by non-overtaking and
  // post order). Both hooks are strictly inert when unset: the matching
  // logic, wakeups and floor watermark behave byte-identically to the
  // ungated mailbox, which is what keeps the golden fingerprints valid.

  /// True when the gated envelope may be matched by a non-exact key.
  using WildcardGate = std::function<bool(const Envelope&)>;
  /// Observes every extracted envelope, called under the mailbox lock; must
  /// not call back into this mailbox.
  using ExtractTap = std::function<void(const Envelope&)>;

  /// Install (or clear, with nullptrs) the exploration hooks. Install
  /// before ranks start; not thread-safe against concurrent operations.
  void set_explore_hooks(WildcardGate gate, ExtractTap tap);

  /// A queued envelope admitted by some blocked waiter's non-exact key but
  /// currently held back by the wildcard gate: the candidate set of one
  /// schedule decision.
  struct HeldCandidate {
    std::uint64_t uid = 0;  ///< Envelope::explore_uid
    int src = -1;
    int tag = 0;
    int context = 0;
  };
  /// Gate-held candidates visible to currently registered blocked waiters,
  /// deduplicated, in uid order. Empty when no session is installed.
  std::vector<HeldCandidate> held_candidates() const;

  /// Wake all waiters so they can observe the poisoned world and unwind.
  void interrupt_all();

  void set_poison_check(std::function<bool()> check) {
    poisoned_ = std::move(check);
  }

 private:
  /// Envelope nodes in arrival order (seq is globally monotonic). pmr: map
  /// nodes are the per-message allocation hot spot at scale, so they come
  /// from the mailbox's pool resource and recycle within it.
  using SeqMap = std::pmr::map<std::uint64_t, Envelope>;

  /// Arrival store of one (channel, context).
  struct Bucket {
    explicit Bucket(std::pmr::memory_resource* memory)
        : by_seq(memory), exact(memory) {}
    /// Envelopes in arrival order.
    SeqMap by_seq;
    /// (src, tag) -> seqs in arrival order. Entries whose envelope was
    /// extracted through another key are stale and skipped lazily.
    std::pmr::unordered_map<std::uint64_t, std::pmr::deque<std::uint64_t>>
        exact;
  };

  /// A registered blocking waiter, used by push() for targeted wakeups. An
  /// empty key span means "wake on any arrival" (predicate waiters).
  struct Waiter {
    std::span<const MatchKey> keys;
  };

  static std::uint64_t bucket_id(Channel channel, int context) noexcept {
    return (static_cast<std::uint64_t>(channel) << 32) |
           static_cast<std::uint32_t>(context);
  }
  static std::uint64_t exact_id(int src, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  /// First (lowest-seq) admitted envelope with seq >= floor, or nullopt.
  struct Found {
    Bucket* bucket = nullptr;
    SeqMap::iterator it;
  };
  std::optional<Found> find_in_bucket(Bucket& bucket, const MatchKey& key,
                                      const Residual* residual,
                                      std::uint64_t floor);
  std::optional<Found> find_any(std::span<const MatchKey> keys,
                                const Residual* residual,
                                std::uint64_t floor);
  std::optional<Found> find_predicate(const Predicate& predicate,
                                      std::uint64_t floor);

  /// Remove the found envelope from its bucket (and sub-index front) and
  /// return it.
  Envelope extract(Found found);

  /// Split an aggregate envelope into per-message sub-envelopes (one lock
  /// acquisition, one wakeup). Faulted aggregates fan out into faulted,
  /// payload-less tombstones — one per logical message.
  void push_aggregate(Envelope envelope);

  void throw_if_poisoned() const;

  /// Generic blocking loop shared by every wait_* entry point: repeatedly
  /// run `search(floor)`, advancing the floor watermark past everything
  /// already examined, and sleep between attempts. Returns the match.
  template <typename Search>
  Found wait_match(std::unique_lock<std::mutex>& lock,
                   std::span<const MatchKey> waiter_keys,
                   const Search& search);

  mutable std::mutex mutex_;
  /// Scheduler-aware: a fiber waiting here parks instead of blocking its
  /// worker thread (see rt/sched.hpp).
  sched::WaitCv arrived_;
  /// Backing pool for bucket node storage. Unsynchronized is safe: every
  /// container mutation happens under mutex_. Declared before buckets_ so
  /// the containers are destroyed while the pool is still alive.
  std::pmr::unsynchronized_pool_resource pool_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::vector<const Waiter*> waiters_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::function<bool()> poisoned_;
  WildcardGate wildcard_gate_;
  ExtractTap extract_tap_;
};

}  // namespace cid::rt
