// Per-rank mailbox: a mutex+condvar guarded arrival queue with predicate
// matching. Matching scans in arrival order, which gives MPI's non-overtaking
// guarantee for messages from the same source on the same channel/context/tag.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "rt/envelope.hpp"

namespace cid::rt {

class Mailbox {
 public:
  using Predicate = std::function<bool(const Envelope&)>;

  /// Deliver an envelope (called from the sending rank's thread).
  void push(Envelope envelope);

  /// Remove and return the first envelope (in arrival order) satisfying the
  /// predicate; blocks until one arrives. Throws CidError(RuntimeFault) if the
  /// world gets poisoned while waiting (see World::poison()).
  Envelope wait_extract(const Predicate& predicate);

  /// Non-blocking variant.
  std::optional<Envelope> try_extract(const Predicate& predicate);

  /// Block until an envelope satisfying the predicate is present, without
  /// removing it. Used by engines that must extract in posted order after
  /// learning that progress is possible.
  void wait_present(const Predicate& predicate);

  /// True if a matching envelope is queued (does not remove it).
  bool probe(const Predicate& predicate);

  /// Header of the first matching queued envelope (no payload copy, no
  /// removal): {src, tag, payload bytes, available_at}.
  struct Header {
    int src = -1;
    int tag = 0;
    std::size_t payload_bytes = 0;
    simnet::SimTime available_at = 0.0;
  };
  std::optional<Header> peek(const Predicate& predicate);

  /// Number of queued envelopes (diagnostics).
  std::size_t size() const;

  /// Wake all waiters so they can observe the poisoned world and unwind.
  void interrupt_all();

  void set_poison_check(std::function<bool()> check) {
    poisoned_ = std::move(check);
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Envelope> queue_;
  std::uint64_t next_seq_ = 0;
  std::function<bool()> poisoned_;
};

}  // namespace cid::rt
