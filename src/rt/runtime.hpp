// SPMD launcher. On the virtual-time (sim) backend ranks run as fibers
// multiplexed over a bounded worker pool (rt/sched.hpp), so O(10k)-rank
// simulations cost CID_SIM_WORKERS OS threads; wall-clock and cross-process
// transports keep one OS thread per rank. Ranks wait via scheduler-aware
// condition variables, never spin, so heavily oversubscribed runs are fine
// in either mode.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "rt/sched.hpp"
#include "rt/world.hpp"
#include "simnet/machine_model.hpp"
#include "simnet/virtual_clock.hpp"

namespace cid::rt {

/// Per-rank view of the execution; passed to the SPMD function and reachable
/// from anywhere on the rank thread via current_ctx().
class RankCtx {
 public:
  RankCtx(int rank, World& world) : rank_(rank), world_(&world) {}

  int rank() const noexcept { return rank_; }
  int nranks() const noexcept { return world_->nranks(); }
  World& world() noexcept { return *world_; }
  const simnet::MachineModel& model() const noexcept {
    return world_->model();
  }

  simnet::VirtualClock& clock() noexcept { return world_->clock(rank_); }
  Mailbox& mailbox() noexcept { return world_->mailbox(rank_); }

  /// Charge local computation time to this rank's virtual clock.
  void charge_compute(simnet::SimTime seconds) { clock().advance(seconds); }

  /// Runtime-level barrier (max-reduces virtual clocks).
  void barrier() { world_->barrier(rank_); }

  /// Rank-local storage: one slot per unique key address, created empty on
  /// first use. This is where facilities keep per-rank state that used to
  /// live in a thread_local (executor state, trace sinks) — a thread_local
  /// is wrong under the pooled scheduler, where many ranks share one worker
  /// thread. Only the owning rank touches its slots, so no locking.
  std::shared_ptr<void>& local_slot(const void* key) { return locals_[key]; }

 private:
  int rank_;
  World* world_;
  std::map<const void*, std::shared_ptr<void>> locals_;
};

/// The rank function: the body of the SPMD program.
using RankFn = std::function<void(RankCtx&)>;

struct RunResult {
  /// Final virtual clock of each rank when its function returned.
  std::vector<simnet::SimTime> final_clocks;

  /// True when the pooled fiber scheduler ran the ranks (sim backend).
  bool pooled = false;

  /// Scheduler counters for the run (all zero when pooled is false). The
  /// park/switch counts depend on wall-clock interleaving — informational,
  /// never part of deterministic output.
  sched::SchedStats sched_stats;

  /// Latest final clock: the virtual makespan of the run.
  simnet::SimTime makespan() const noexcept;
};

/// Knobs for run() beyond the machine model. The World is constructed inside
/// run(), so anything that must be installed on it before ranks start (the
/// fault layer's delivery interceptor, notably) is passed here.
struct RunOptions {
  std::shared_ptr<DeliveryInterceptor> interceptor;
  /// Transport backend carrying envelopes between ranks. Null resolves
  /// CID_BACKEND (sim when unset) via net::make_transport_from_env(); see
  /// docs/TRANSPORTS.md. On cross-process transports run() spawns only the
  /// ranks this process hosts.
  std::shared_ptr<net::Transport> transport;
  /// Rank scheduling on the virtual-time backend: kAuto resolves
  /// CID_SIM_SCHED ("pool" | "threads"), defaulting to the pooled fiber
  /// scheduler. Wall-clock / cross-process transports always run
  /// thread-per-rank regardless of this setting.
  sched::Mode scheduler = sched::Mode::kAuto;
  /// Worker threads for the pooled scheduler; 0 resolves CID_SIM_WORKERS,
  /// then hardware concurrency.
  int sim_workers = 0;
  /// Per-fiber stack bytes; 0 resolves CID_SIM_STACK_KB, then 1 MiB. The
  /// pages map lazily, so the cost of a large default is virtual.
  std::size_t sim_stack_bytes = 0;
  /// Called with the freshly constructed World after the transport and
  /// interceptor are installed and before any rank starts. cid::explore
  /// installs its mailbox gates and delivery tap here; anything that must
  /// see the World before the SPMD program does can use it.
  std::function<void(World&)> world_setup;
  /// Pooled-scheduler quiescence hook (see sched::Scheduler::set_idle_hook).
  /// Requires the pooled scheduler; ignored under thread-per-rank.
  std::function<bool()> idle_hook;
};

/// Execute `fn` on `nranks` ranks over a fresh World. Rethrows the first
/// rank failure (after poisoning the world so the other ranks unwind).
RunResult run(int nranks, const simnet::MachineModel& model,
              const RankFn& fn);

/// As above, with extra options (delivery interceptor, ...).
RunResult run(int nranks, const simnet::MachineModel& model, const RankFn& fn,
              const RunOptions& options);

/// Convenience overload using the calibrated Cray XK7 model.
RunResult run(int nranks, const RankFn& fn);

/// The RankCtx of the calling thread. Throws CidError(RuntimeFault) when
/// called from outside an SPMD region.
RankCtx& current_ctx();

/// True when the calling thread is inside an SPMD region.
bool in_spmd_region() noexcept;

}  // namespace cid::rt
