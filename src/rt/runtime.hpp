// SPMD launcher: runs one function on `nranks` rank-threads over a shared
// World. Ranks wait via condition variables, never spin, so heavily
// oversubscribed runs (hundreds of ranks on a few cores) are fine.
#pragma once

#include <functional>
#include <vector>

#include "rt/world.hpp"
#include "simnet/machine_model.hpp"
#include "simnet/virtual_clock.hpp"

namespace cid::rt {

/// Per-rank view of the execution; passed to the SPMD function and reachable
/// from anywhere on the rank thread via current_ctx().
class RankCtx {
 public:
  RankCtx(int rank, World& world) : rank_(rank), world_(&world) {}

  int rank() const noexcept { return rank_; }
  int nranks() const noexcept { return world_->nranks(); }
  World& world() noexcept { return *world_; }
  const simnet::MachineModel& model() const noexcept {
    return world_->model();
  }

  simnet::VirtualClock& clock() noexcept { return world_->clock(rank_); }
  Mailbox& mailbox() noexcept { return world_->mailbox(rank_); }

  /// Charge local computation time to this rank's virtual clock.
  void charge_compute(simnet::SimTime seconds) { clock().advance(seconds); }

  /// Runtime-level barrier (max-reduces virtual clocks).
  void barrier() { world_->barrier(rank_); }

 private:
  int rank_;
  World* world_;
};

/// The rank function: the body of the SPMD program.
using RankFn = std::function<void(RankCtx&)>;

struct RunResult {
  /// Final virtual clock of each rank when its function returned.
  std::vector<simnet::SimTime> final_clocks;

  /// Latest final clock: the virtual makespan of the run.
  simnet::SimTime makespan() const noexcept;
};

/// Knobs for run() beyond the machine model. The World is constructed inside
/// run(), so anything that must be installed on it before ranks start (the
/// fault layer's delivery interceptor, notably) is passed here.
struct RunOptions {
  std::shared_ptr<DeliveryInterceptor> interceptor;
  /// Transport backend carrying envelopes between ranks. Null resolves
  /// CID_BACKEND (sim when unset) via net::make_transport_from_env(); see
  /// docs/TRANSPORTS.md. On cross-process transports run() spawns only the
  /// ranks this process hosts.
  std::shared_ptr<net::Transport> transport;
};

/// Execute `fn` on `nranks` ranks over a fresh World. Rethrows the first
/// rank failure (after poisoning the world so the other ranks unwind).
RunResult run(int nranks, const simnet::MachineModel& model,
              const RankFn& fn);

/// As above, with extra options (delivery interceptor, ...).
RunResult run(int nranks, const simnet::MachineModel& model, const RankFn& fn,
              const RunOptions& options);

/// Convenience overload using the calibrated Cray XK7 model.
RunResult run(int nranks, const RankFn& fn);

/// The RankCtx of the calling thread. Throws CidError(RuntimeFault) when
/// called from outside an SPMD region.
RankCtx& current_ctx();

/// True when the calling thread is inside an SPMD region.
bool in_spmd_region() noexcept;

}  // namespace cid::rt
