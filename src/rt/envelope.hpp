// The unit of data exchanged between ranks through mailboxes.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "rt/payload.hpp"
#include "simnet/machine_model.hpp"

namespace cid::rt {

/// Logical channel an envelope travels on. Keeps library-internal traffic
/// (e.g. rendezvous handshakes or flag updates) from matching user receives.
enum class Channel : std::uint8_t {
  MpiPointToPoint = 0,
  MpiOneSided,
  ShmemSignal,
  Internal,
};

struct Envelope {
  int src = -1;
  int tag = 0;
  Channel channel = Channel::MpiPointToPoint;
  /// Communicator / window / context id within the channel.
  int context = 0;
  Payload payload;
  /// Virtual time at which the payload is fully present at the destination.
  simnet::SimTime available_at = 0.0;
  /// Per-destination arrival sequence number (set by the mailbox).
  std::uint64_t seq = 0;
  /// Stable per-run message identity assigned at the World::deliver seam
  /// when a schedule-exploration session is installed (cid::explore); 0
  /// otherwise. Unlike seq it is assigned before transport routing, so an
  /// exploration schedule can name a message independently of arrival
  /// order.
  std::uint64_t explore_uid = 0;
  /// Set by the fault layer when the payload was lost in transit. A faulted
  /// envelope is a tombstone: it keeps the matching fields (src/tag/channel/
  /// context) and the virtual time at which the loss becomes observable, but
  /// carries no payload. Plain engines never match tombstones; reliability
  /// protocols use them to detect timeouts deterministically.
  bool faulted = false;
};

}  // namespace cid::rt
