#include "rt/sched.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include <sys/mman.h>
#include <unistd.h>

// Sanitizer fiber annotations. ASan needs to be told about every stack
// switch so its fake-stack machinery follows the fiber; TSan models each
// fiber as its own logical thread so lock/happens-before state stays
// attached to the rank, not the worker that happens to host it.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CID_SCHED_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define CID_SCHED_TSAN 1
#endif
#endif
#if !defined(CID_SCHED_ASAN) && defined(__SANITIZE_ADDRESS__)
#define CID_SCHED_ASAN 1
#endif
#if !defined(CID_SCHED_TSAN) && defined(__SANITIZE_THREAD__)
#define CID_SCHED_TSAN 1
#endif

#if defined(CID_SCHED_ASAN)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(CID_SCHED_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace cid::rt::sched {

namespace {

thread_local Fiber* t_current_fiber = nullptr;
#if defined(CID_SCHED_TSAN)
thread_local void* t_worker_tsan_fiber = nullptr;
#endif

std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

}  // namespace

Fiber* Fiber::current() noexcept { return t_current_fiber; }

Fiber::Fiber(Scheduler& scheduler, std::function<void()> entry,
             std::size_t stack_bytes)
    : scheduler_(scheduler), entry_(std::move(entry)) {
  const std::size_t page = page_size();
  stack_bytes_ = round_up_pages(stack_bytes);
  map_bytes_ = stack_bytes_ + page;  // one guard page below the stack
  void* base = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    throw std::runtime_error("cid::rt::sched: fiber stack mmap failed");
  }
  map_base_ = static_cast<std::byte*>(base);
  if (::mprotect(map_base_, page, PROT_NONE) != 0) {
    ::munmap(map_base_, map_bytes_);
    throw std::runtime_error("cid::rt::sched: fiber guard mprotect failed");
  }
  stack_lo_ = map_base_ + page;

  if (::getcontext(&context_) != 0) {
    ::munmap(map_base_, map_bytes_);
    throw std::runtime_error("cid::rt::sched: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_lo_;
  context_.uc_stack.ss_size = stack_bytes_;
  context_.uc_link = nullptr;  // final return goes through suspend()

  // makecontext only passes ints; smuggle `this` through two halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));

#if defined(CID_SCHED_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#if defined(CID_SCHED_TSAN)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  self->entry_point();
}

void Fiber::entry_point() {
#if defined(CID_SCHED_ASAN)
  // Complete the switch the dispatching worker started, remembering the
  // worker stack we must return to.
  __sanitizer_finish_switch_fiber(nullptr, &caller_stack_bottom_,
                                  &caller_stack_size_);
#endif
  entry_();
  state_.store(kDone, std::memory_order_release);
  // Final switch back to the hosting worker. ASan gets a null fake-stack
  // slot: this fiber's stack is dead and must not be revived.
#if defined(CID_SCHED_ASAN)
  __sanitizer_start_switch_fiber(nullptr, caller_stack_bottom_,
                                 caller_stack_size_);
#endif
#if defined(CID_SCHED_TSAN)
  __tsan_switch_to_fiber(tsan_return_, 0);
#endif
  ::swapcontext(&context_, return_link_);
  // Unreachable: a kDone fiber is never resumed.
  std::abort();
}

void Fiber::suspend() {
#if defined(CID_SCHED_ASAN)
  __sanitizer_start_switch_fiber(&asan_fake_stack_, caller_stack_bottom_,
                                 caller_stack_size_);
#endif
#if defined(CID_SCHED_TSAN)
  __tsan_switch_to_fiber(tsan_return_, 0);
#endif
  ::swapcontext(&context_, return_link_);
  // Resumed, possibly on a different worker thread; dispatch() has already
  // refreshed return_link_/tsan_return_ for the new host.
#if defined(CID_SCHED_ASAN)
  __sanitizer_finish_switch_fiber(asan_fake_stack_, &caller_stack_bottom_,
                                  &caller_stack_size_);
#endif
}

Scheduler::Scheduler(int workers, std::size_t stack_bytes)
    : stack_bytes_(stack_bytes), worker_count_(workers < 1 ? 1 : workers) {}

Scheduler::~Scheduler() = default;

Fiber& Scheduler::add(std::function<void()> entry) {
  fibers_.push_back(std::unique_ptr<Fiber>(
      new Fiber(*this, std::move(entry), stack_bytes_)));
  return *fibers_.back();
}

void Scheduler::enqueue(Fiber* fiber) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    run_queue_.push_back(fiber);
  }
  queue_cv_.notify_one();
}

void Scheduler::unpark(Fiber* fiber) {
  for (;;) {
    int state = fiber->state_.load(std::memory_order_acquire);
    switch (state) {
      case Fiber::kParked:
        if (fiber->state_.compare_exchange_weak(state, Fiber::kRunnable,
                                                std::memory_order_acq_rel)) {
          enqueue(fiber);
          return;
        }
        break;  // lost a race; re-read
      case Fiber::kParking:
        // The fiber is still switching out; mark it so the hosting worker
        // re-enqueues it instead of leaving it parked.
        if (fiber->state_.compare_exchange_weak(state, Fiber::kNotified,
                                                std::memory_order_acq_rel)) {
          return;
        }
        break;
      default:
        // Runnable / Running / Notified / Done: a wakeup is already
        // pending or meaningless.
        return;
    }
  }
}

void Scheduler::dispatch(Fiber* fiber, ucontext_t* worker_context) {
  fiber->return_link_ = worker_context;
#if defined(CID_SCHED_TSAN)
  fiber->tsan_return_ = t_worker_tsan_fiber;
#endif
  fiber->state_.store(Fiber::kRunning, std::memory_order_release);
  t_current_fiber = fiber;
  if (fiber->on_switch_in_) fiber->on_switch_in_();
  switches_.fetch_add(1, std::memory_order_relaxed);

#if defined(CID_SCHED_ASAN)
  void* worker_fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&worker_fake_stack, fiber->stack_lo_,
                                 fiber->stack_bytes_);
#endif
#if defined(CID_SCHED_TSAN)
  __tsan_switch_to_fiber(fiber->tsan_fiber_, 0);
#endif
  ::swapcontext(worker_context, &fiber->context_);
#if defined(CID_SCHED_ASAN)
  __sanitizer_finish_switch_fiber(worker_fake_stack, nullptr, nullptr);
#endif

  if (fiber->on_switch_out_) fiber->on_switch_out_();
  t_current_fiber = nullptr;

  int state = fiber->state_.load(std::memory_order_acquire);
  if (state == Fiber::kDone) {
    bool all_done = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      ++finished_;
      all_done = finished_ == fibers_.size();
    }
    if (all_done) queue_cv_.notify_all();
    return;
  }

  // The fiber parked. Complete Parking -> Parked; if an unpark already
  // intervened (Notified) the wakeup is ours to deliver.
  parks_.fetch_add(1, std::memory_order_relaxed);
  int expected = Fiber::kParking;
  if (!fiber->state_.compare_exchange_strong(expected, Fiber::kParked,
                                             std::memory_order_acq_rel)) {
    assert(expected == Fiber::kNotified);
    fiber->state_.store(Fiber::kRunnable, std::memory_order_release);
    enqueue(fiber);
  }
}

void Scheduler::worker_loop() {
#if defined(CID_SCHED_TSAN)
  t_worker_tsan_fiber = __tsan_get_current_fiber();
#endif
  ucontext_t worker_context;
  for (;;) {
    Fiber* fiber = nullptr;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      for (;;) {
        if (!run_queue_.empty() || stopping_ ||
            finished_ == fibers_.size()) {
          break;
        }
        if (idle_hook_ && dispatching_ == 0) {
          // Quiescence: every unfinished fiber is parked. Let the schedule
          // oracle resolve a held decision (which re-enqueues a fiber) or
          // declare a deadlock (which poisons the world and wakes everyone
          // to unwind). Either way something lands in the run queue, so
          // loop rather than sleep.
          lock.unlock();
          idle_hook_();
          lock.lock();
          continue;
        }
        queue_cv_.wait(lock);
      }
      if (run_queue_.empty()) {
        if (stopping_ || finished_ == fibers_.size()) return;
        continue;
      }
      fiber = run_queue_.front();
      run_queue_.pop_front();
      ++dispatching_;
    }
    dispatch(fiber, &worker_context);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --dispatching_;
    }
    // Only exploration sessions need the extra wakeup: a sleeping worker
    // must re-check for quiescence when the last dispatch drains. Without a
    // hook the sleep conditions are unchanged, so stay silent (and free).
    if (idle_hook_) queue_cv_.notify_all();
  }
}

void Scheduler::run() {
  if (fibers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (auto& fiber : fibers_) run_queue_.push_back(fiber.get());
  }
  const int workers =
      worker_count_ < static_cast<int>(fibers_.size())
          ? worker_count_
          : static_cast<int>(fibers_.size());
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back([this] { worker_loop(); });
  }
  for (auto& thread : pool) thread.join();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
}

SchedStats Scheduler::stats() const noexcept {
  SchedStats s;
  s.switches = switches_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.workers = static_cast<std::uint64_t>(worker_count_);
  s.fibers = static_cast<std::uint64_t>(fibers_.size());
  return s;
}

void yield() {
  Fiber* fiber = Fiber::current();
  if (fiber == nullptr) {
    std::this_thread::yield();
    return;
  }
  // kNotified makes the hosting worker re-enqueue us immediately after the
  // switch-out, exactly like a park that was unparked mid-flight. Nobody
  // else can touch the state: we are not on any waitlist.
  fiber->state_.store(Fiber::kNotified, std::memory_order_release);
  fiber->suspend();
}

void WaitCv::wait(std::unique_lock<std::mutex>& lock) {
  Fiber* fiber = Fiber::current();
  if (fiber == nullptr) {
    cv_.wait(lock);
    return;
  }
  // Publish intent and register while still holding the caller's mutex:
  // any notifier ordered after our predicate check must acquire either
  // that mutex or waiters_mutex_, and will therefore see us.
  fiber->state_.store(Fiber::kParking, std::memory_order_release);
  {
    std::lock_guard<std::mutex> waiters_lock(waiters_mutex_);
    fiber_waiters_.push_back(fiber);
  }
  lock.unlock();
  fiber->suspend();
  lock.lock();
}

bool WaitCv::wait_until(std::unique_lock<std::mutex>& lock,
                        std::chrono::steady_clock::time_point deadline) {
  // Timed waits block the calling thread even on a fiber; see header.
  return cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
}

void WaitCv::notify_all() {
  std::vector<Fiber*> woken;
  {
    std::lock_guard<std::mutex> waiters_lock(waiters_mutex_);
    woken.swap(fiber_waiters_);
  }
  for (Fiber* fiber : woken) fiber->scheduler_.unpark(fiber);
  cv_.notify_all();
}

Mode resolve_mode(Mode requested) {
  if (requested != Mode::kAuto) return requested;
  if (const char* env = std::getenv("CID_SIM_SCHED")) {
    if (std::strcmp(env, "threads") == 0) return Mode::kThreads;
    if (std::strcmp(env, "pool") == 0) return Mode::kPool;
  }
  return Mode::kPool;
}

int resolve_workers(int requested, int nranks) {
  int workers = requested;
  if (workers <= 0) {
    if (const char* env = std::getenv("CID_SIM_WORKERS")) {
      workers = std::atoi(env);
    }
  }
  if (workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (nranks > 0 && workers > nranks) workers = nranks;
  return workers < 1 ? 1 : workers;
}

std::size_t resolve_stack_bytes(std::size_t requested) {
  std::size_t bytes = requested;
  if (bytes == 0) {
    if (const char* env = std::getenv("CID_SIM_STACK_KB")) {
      const long kb = std::atol(env);
      if (kb > 0) bytes = static_cast<std::size_t>(kb) * 1024;
    }
  }
  if (bytes == 0) bytes = 1024 * 1024;  // 1 MiB virtual; pages map lazily
  if (bytes < 64 * 1024) bytes = 64 * 1024;
  return bytes;
}

}  // namespace cid::rt::sched
