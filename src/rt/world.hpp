// The shared state of one SPMD execution: mailboxes, clocks, the machine
// model, a max-reducing barrier, and a registry where higher layers (miniMPI
// windows, miniSHMEM symmetric heap) stash their collective state.
#pragma once

#include <any>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "rt/mailbox.hpp"
#include "rt/sched.hpp"
#include "simnet/machine_model.hpp"
#include "simnet/virtual_clock.hpp"

namespace cid::net {
class Transport;
}  // namespace cid::net

namespace cid::rt {

/// What the delivery interceptor decided about one envelope. At most one of
/// drop/duplicate should be set; delay and sender_stall compose with either.
struct DeliveryVerdict {
  bool drop = false;            ///< deliver a payload-less tombstone instead
  bool duplicate = false;       ///< push a second, clean copy
  simnet::SimTime delay = 0.0;  ///< extra transit latency for this envelope
  simnet::SimTime duplicate_delay = 0.0;  ///< extra latency for the copy
  simnet::SimTime sender_stall = 0.0;     ///< freeze charged to the sender
};

/// Observes every mailbox delivery in the world. Called on the *sending*
/// rank's thread, before the envelope is queued, so implementations may keep
/// per-source state without locking (one writer per source rank) and may
/// charge the sender's virtual clock. Install via RunOptions / World.
class DeliveryInterceptor {
 public:
  virtual ~DeliveryInterceptor() = default;
  virtual DeliveryVerdict on_deliver(const Envelope& envelope,
                                     int dest_rank) = 0;
};

class World {
 public:
  World(int nranks, simnet::MachineModel model);

  int nranks() const noexcept { return nranks_; }
  const simnet::MachineModel& model() const noexcept { return model_; }

  Mailbox& mailbox(int rank) {
    CID_REQUIRE(rank >= 0 && rank < nranks_, ErrorCode::InvalidArgument,
                "mailbox rank out of range");
    return *mailboxes_[rank];
  }

  simnet::VirtualClock& clock(int rank) {
    CID_REQUIRE(rank >= 0 && rank < nranks_, ErrorCode::InvalidArgument,
                "clock rank out of range");
    return clocks_[rank];
  }

  /// The single delivery seam: every envelope headed for a mailbox goes
  /// through here so an installed interceptor can drop (tombstone), delay,
  /// duplicate, or stall it. Call from the sending rank's thread.
  void deliver(int dest, Envelope envelope);

  /// Install (or clear, with nullptr) the delivery interceptor. Not
  /// thread-safe against concurrent deliveries; install before ranks start.
  void set_interceptor(std::shared_ptr<DeliveryInterceptor> interceptor) {
    interceptor_ = std::move(interceptor);
  }
  DeliveryInterceptor* interceptor() const noexcept {
    return interceptor_.get();
  }

  /// Lightweight mutating tap on the delivery seam, run before the fault
  /// interceptor and before transport routing. cid::explore uses it to
  /// stamp Envelope::explore_uid and record the send in its happens-before
  /// trace. Inert (and free) when unset; install before ranks start.
  void set_delivery_tap(std::function<void(Envelope&, int)> tap) {
    delivery_tap_ = std::move(tap);
  }

  /// Install the transport that carries envelopes and synchronizes the
  /// world barrier (see net/transport.hpp). Null (the default) short-
  /// circuits to the simulator path: synchronous mailbox push, local-only
  /// barrier — byte-identical to the pre-seam runtime, which is what keeps
  /// direct World construction in tests on the golden fingerprints.
  /// Install before ranks start; rt::run does this.
  void set_transport(std::shared_ptr<net::Transport> transport);
  net::Transport* transport() const noexcept { return transport_.get(); }

  /// Gate for facilities built on in-process shared state (the shmem
  /// symmetric heap, MPI windows, communicator split): throws
  /// CidError(UnsupportedTarget) on a cross-process transport, whose remote
  /// ranks cannot reach this process's memory or condition variables.
  void require_single_process(const std::string& what) const;

  /// Non-throwing form of the gate above: true when every rank runs in this
  /// OS process (cid::tune only auto-picks shmem / one-sided when so).
  bool single_process() const noexcept;

  /// True when `rank` runs in this OS process (always true without a
  /// cross-process transport).
  bool rank_is_local(int rank) const noexcept;

  /// Max-reducing barrier: all ranks block until everyone arrives, then every
  /// clock is set to max(arrival clocks) + cost. `cost` defaults to the
  /// machine model's barrier cost; pass 0 for a pure synchronization point
  /// (used by test harnesses).
  ///
  /// Internally sharded for O(10k) ranks: ranks combine into per-shard
  /// {mutex, cv, max} groups of kBarrierShardSize, the last rank of each
  /// shard propagates to a small root, and release walks the shards with
  /// targeted per-shard wakeups instead of one notify_all storm over a
  /// single contended mutex. The released clock value is computed exactly
  /// as before (global max + cost, every clock reset), so results stay
  /// byte-identical.
  void barrier(int rank, simnet::SimTime cost);
  void barrier(int rank) { barrier(rank, model_.barrier_cost(nranks_)); }

  /// Mark the world failed (a rank threw). All blocking operations wake up
  /// and throw so every thread unwinds instead of deadlocking.
  void poison() noexcept;
  bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }
  void check_poisoned() const {
    if (poisoned()) {
      throw CidError(ErrorCode::RuntimeFault,
                     "SPMD world poisoned by a failure on another rank");
    }
  }

  /// Collective-state registry. The first caller constructs the object; all
  /// callers get the same instance. `key` must be unique per object (e.g.
  /// "shmem.heap", "mpi.win.3"). Thread-safe.
  template <typename T, typename... Args>
  std::shared_ptr<T> shared_object(const std::string& key, Args&&... args) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = registry_.find(key);
    if (it == registry_.end()) {
      auto object = std::make_shared<T>(std::forward<Args>(args)...);
      registry_.emplace(key, object);
      return object;
    }
    auto object = std::any_cast<std::shared_ptr<T>>(&it->second);
    CID_REQUIRE(object != nullptr, ErrorCode::RuntimeFault,
                "shared_object type mismatch for key '" + key + "'");
    return *object;
  }

  /// Shared low-frequency condition variable for collective protocols built
  /// by higher layers (communicator split, window creation, sub-group
  /// barriers). poison() notifies it, so waiters must use wait_global() which
  /// checks the poison flag.
  std::mutex& global_mutex() noexcept { return global_mutex_; }
  /// Wait on the global CV until `condition()` (evaluated under the lock held
  /// by `lock`) is true; throws if the world is poisoned.
  void wait_global(std::unique_lock<std::mutex>& lock,
                   const std::function<bool()>& condition);
  void notify_global() { global_cv_.notify_all(); }

  /// Per-rank signal used by one-sided layers: notify after writing remote
  /// memory so a rank blocked in wait_until() re-checks its condition.
  void notify_rank(int rank);
  /// Block until `condition()` is true, waking on notify_rank(my_rank).
  /// The condition is evaluated under the signal lock.
  void wait_on_signal(int rank, const std::function<bool()>& condition);

 private:
  /// Barrier combining-tree fan-in: ranks [s*64, s*64+64) share shard s.
  /// 64 keeps shard state on a handful of cache lines while bounding the
  /// root's fan-in at nranks/64 (157 shards for 10k ranks).
  static constexpr int kBarrierShardSize = 64;

  /// One leaf of the combining tree: the only mutex/cv most ranks touch.
  struct BarrierShard {
    std::mutex mutex;
    sched::WaitCv released;
    int arrived = 0;
    int expected = 0;  ///< local participants with rank in this shard
    std::uint64_t generation = 0;
    simnet::SimTime max_clock = 0.0;
  };

  /// The tree root: touched once per shard per barrier, not once per rank.
  struct BarrierRoot {
    std::mutex mutex;
    int shards_arrived = 0;
    int active_shards = 0;  ///< shards with expected > 0
    simnet::SimTime max_clock = 0.0;
  };

  struct RankSignal {
    std::mutex mutex;
    sched::WaitCv changed;
  };

  /// Hand one envelope to the transport (or push directly when none).
  void route(int dest, Envelope envelope);

  /// (Re)compute per-shard participant counts; called on construction and
  /// whenever the transport (and thus the local rank slice) changes.
  void rebuild_barrier_shards();

  BarrierShard& shard_of(int rank) {
    return *barrier_shards_[static_cast<std::size_t>(rank) /
                            kBarrierShardSize];
  }

  int nranks_;
  simnet::MachineModel model_;
  std::shared_ptr<DeliveryInterceptor> interceptor_;
  std::function<void(Envelope&, int)> delivery_tap_;
  std::shared_ptr<net::Transport> transport_;
  /// Ranks that arrive at the world barrier in this process (== nranks_
  /// unless a cross-process transport hosts only a slice of the world).
  int barrier_participants_;
  /// Cached Transport::real_loss(): fault-layer drops are discarded
  /// outright instead of delivered as tombstones.
  bool transport_real_loss_ = false;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<simnet::VirtualClock> clocks_;
  std::vector<std::unique_ptr<BarrierShard>> barrier_shards_;
  BarrierRoot barrier_root_;
  std::vector<std::unique_ptr<RankSignal>> signals_;
  std::atomic<bool> poisoned_{false};
  std::mutex global_mutex_;
  sched::WaitCv global_cv_;
  std::mutex registry_mutex_;
  std::map<std::string, std::any> registry_;
};

}  // namespace cid::rt
