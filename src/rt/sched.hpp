// Pooled rank scheduling: stackful fibers multiplexed over a bounded worker
// pool, so a 10,000-rank simulation costs CID_SIM_WORKERS OS threads instead
// of 10,000.
//
// The simulator's ranks spend most of their life blocked — in a mailbox
// match wait, a barrier, or a collective protocol. With one OS thread per
// rank every block/wake is a kernel round trip and every rank costs a full
// pthread stack; at O(10k) ranks thread creation alone dominates the run.
// Here each rank runs on a Fiber (a ucontext with its own lazily-mapped
// stack) and a blocked rank *parks*: it hands its worker thread back to the
// scheduler with a user-space context switch, and a later notify re-enqueues
// it. Workers only touch the kernel when the run queue is empty.
//
// The scheduler is intent-blind and deterministic-neutral: virtual time is
// advanced by rank code exactly as under thread-per-rank, so traces, stats
// and clocks are byte-identical (pinned by the golden fingerprints in
// tests/property_test.cpp).
//
// Blocking integration: rt code never waits on a raw condition_variable.
// It waits on a WaitCv, which parks the calling fiber when there is one and
// falls back to a real condition_variable_any for plain threads (the
// thread/tcp transports, and CID_SIM_SCHED=threads). The park/notify
// handshake follows the classic protocol: the waiter publishes
// state=Parking and registers itself *before* releasing the caller's mutex,
// so a notify can never slip between the predicate check and the park.
//
// Sanitizers: fiber switches are annotated for ASan (fake-stack handoff)
// and TSan (__tsan fiber API), so the existing ASan/UBSan and TSan CI jobs
// run pooled programs unmodified.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <ucontext.h>
#include <vector>

namespace cid::rt::sched {

/// Aggregate counters of one scheduler run (exposed through
/// Scheduler::stats() and, via rt::run, the rt.sched.* obs counters).
struct SchedStats {
  std::uint64_t switches = 0;  ///< fiber resumes (incl. first entry)
  std::uint64_t parks = 0;     ///< times a fiber gave its worker back
  std::uint64_t workers = 0;   ///< pool size actually used
  std::uint64_t fibers = 0;    ///< ranks multiplexed
};

class Scheduler;

/// One rank's execution context: a ucontext with a guard-paged, lazily
/// mapped stack. Created and owned by the Scheduler; user code only ever
/// sees it through Fiber::current() and WaitCv.
class Fiber {
 public:
  /// The fiber running on the calling thread, or nullptr when the caller is
  /// a plain OS thread (thread-per-rank mode, transport threads, tests).
  static Fiber* current() noexcept;

  /// Install the hooks the scheduler runs around every switch on the worker
  /// thread that hosts this fiber: `in` right before the fiber gains the
  /// worker (installs the rank's thread-locals on that worker), `out` right
  /// after it yields it (clears them). rt::run's rank wrapper sets these.
  void set_switch_hooks(std::function<void()> in, std::function<void()> out) {
    on_switch_in_ = std::move(in);
    on_switch_out_ = std::move(out);
  }

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();  // public for std::unique_ptr; only the Scheduler owns Fibers

 private:
  friend class Scheduler;
  friend class WaitCv;
  friend void yield();

  enum State : int {
    kRunnable,  ///< in the run queue
    kRunning,   ///< owns a worker thread
    kParking,   ///< announced intent to park; not yet switched out
    kParked,    ///< switched out, waiting for an unpark
    kNotified,  ///< unparked while still Parking; requeue on switch-out
    kDone,      ///< entry function returned
  };

  Fiber(Scheduler& scheduler, std::function<void()> entry,
        std::size_t stack_bytes);

  static void trampoline(unsigned hi, unsigned lo);
  void entry_point();

  /// Yield the worker back to the scheduler. Called with state already
  /// kParking (or kDone) and no rt mutexes held.
  void suspend();

  Scheduler& scheduler_;
  std::function<void()> entry_;
  std::function<void()> on_switch_in_;
  std::function<void()> on_switch_out_;

  std::byte* map_base_ = nullptr;  ///< mmap base (guard page + stack)
  std::size_t map_bytes_ = 0;
  std::byte* stack_lo_ = nullptr;  ///< usable stack bottom (above the guard)
  std::size_t stack_bytes_ = 0;

  ucontext_t context_{};
  ucontext_t* return_link_ = nullptr;  ///< hosting worker's context

  std::atomic<int> state_{kRunnable};

  // Sanitizer bookkeeping (unused members cost nothing when disabled).
  void* tsan_fiber_ = nullptr;       ///< __tsan_create_fiber handle
  void* tsan_return_ = nullptr;      ///< hosting worker's tsan context
  void* asan_fake_stack_ = nullptr;  ///< this fiber's saved fake stack
  const void* caller_stack_bottom_ = nullptr;
  std::size_t caller_stack_size_ = 0;
};

/// Bounded worker pool driving a fixed set of fibers to completion.
class Scheduler {
 public:
  /// `workers` threads multiplex the fibers; `stack_bytes` per fiber stack
  /// (rounded up to whole pages, one extra guard page below).
  Scheduler(int workers, std::size_t stack_bytes);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register one fiber. Call for every rank before run(). The returned
  /// reference stays valid for the scheduler's lifetime (for hook setup).
  Fiber& add(std::function<void()> entry);

  /// Start the workers, drive every fiber to completion, join the workers.
  /// Exceptions must not escape fiber entries (rt::run's rank wrapper
  /// catches and poisons, exactly as in thread-per-rank mode).
  void run();

  /// Make `fiber` runnable again after a park. Safe from any thread,
  /// including non-worker threads (e.g. poison from a dying rank).
  void unpark(Fiber* fiber);

  /// Install a quiescence hook (cid::explore's schedule oracle). When every
  /// unfinished fiber is parked — the run queue is empty and no worker is
  /// dispatching — a worker calls the hook with no scheduler locks held.
  /// Return true after making at least one fiber runnable (e.g. by
  /// releasing a gated message and waking its waiter); return false when no
  /// progress is possible, after arranging the unwind (poisoning the world
  /// wakes every parked fiber). With several workers the hook may be called
  /// concurrently from more than one idle worker; the pooled exploration
  /// sessions run one worker, where calls are strictly serialized. Inert
  /// when unset: idle workers simply sleep, exactly as before.
  void set_idle_hook(std::function<bool()> hook) {
    idle_hook_ = std::move(hook);
  }

  SchedStats stats() const noexcept;

 private:
  friend class Fiber;

  void worker_loop();
  void enqueue(Fiber* fiber);
  /// Run `fiber` on the calling worker until it parks or finishes.
  void dispatch(Fiber* fiber, ucontext_t* worker_context);

  std::size_t stack_bytes_;
  int worker_count_;
  std::vector<std::unique_ptr<Fiber>> fibers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Fiber*> run_queue_;
  std::size_t finished_ = 0;
  bool stopping_ = false;
  int dispatching_ = 0;  ///< workers currently hosting a fiber
  std::function<bool()> idle_hook_;

  std::atomic<std::uint64_t> switches_{0};
  std::atomic<std::uint64_t> parks_{0};
};

/// Scheduler-aware condition variable for use under an external std::mutex.
/// Fiber callers park (the worker thread stays useful); plain-thread callers
/// block in a real condition_variable_any. Only notify_all is provided —
/// every rt wait re-checks its predicate, so precision beyond "wake the
/// waiters of this cv" is the caller's job (and the reason World shards its
/// barrier: one WaitCv per shard makes notify_all a targeted wakeup).
class WaitCv {
 public:
  /// Wait for one notify_all. Spurious wakeups possible; callers loop on a
  /// predicate. `lock` is released while waiting and re-acquired before
  /// returning.
  void wait(std::unique_lock<std::mutex>& lock);

  /// Predicate loop over wait(), mirroring std::condition_variable.
  template <typename Predicate>
  void wait(std::unique_lock<std::mutex>& lock, Predicate predicate) {
    while (!predicate()) wait(lock);
  }

  /// Timed wait (wall clock). On a fiber this intentionally blocks the
  /// hosting worker thread: timed waits exist for the wall-clock transports
  /// (reliability deadlines on real loss), which run thread-per-rank; the
  /// virtual-time pool never issues them on a hot path.
  /// Returns false on timeout.
  bool wait_until(std::unique_lock<std::mutex>& lock,
                  std::chrono::steady_clock::time_point deadline);

  /// Wake every current waiter (fibers are re-enqueued, threads notified).
  void notify_all();

 private:
  std::mutex waiters_mutex_;
  std::vector<Fiber*> fiber_waiters_;
  std::condition_variable_any cv_;
};

/// Cooperative yield. On a fiber: requeue at the back of the run queue and
/// hand the worker to another rank — REQUIRED in busy-poll loops (mpi::test,
/// iprobe retries), which would otherwise starve the bounded pool of the
/// very peers they are polling for. On a plain thread: this_thread::yield().
void yield();

/// Scheduling choice for the virtual-time (sim) backend.
enum class Mode {
  kAuto,     ///< CID_SIM_SCHED env: pool unless "threads"
  kPool,     ///< fibers over the bounded worker pool
  kThreads,  ///< legacy one OS thread per rank
};

/// Resolve the effective mode: `requested` unless kAuto, then CID_SIM_SCHED
/// ("pool" | "threads"), defaulting to the pool.
Mode resolve_mode(Mode requested);

/// Worker count: `requested` when > 0, else CID_SIM_WORKERS, else
/// min(hardware_concurrency, nranks), at least 1.
int resolve_workers(int requested, int nranks);

/// Fiber stack size: `requested` when > 0, else CID_SIM_STACK_KB * 1024,
/// else 1 MiB. Clamped to at least 64 KiB.
std::size_t resolve_stack_bytes(std::size_t requested);

}  // namespace cid::rt::sched
