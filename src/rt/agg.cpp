#include "rt/agg.hpp"

#include <cstring>

namespace cid::rt::agg {

namespace {

constexpr std::size_t kHeaderBytes =
    sizeof(std::int32_t) * 2 + sizeof(std::uint32_t);

void write_u32(std::vector<std::byte>& wire, std::size_t at,
               std::uint32_t value) {
  std::memcpy(wire.data() + at, &value, sizeof(value));
}

}  // namespace

std::uint32_t count(ByteSpan wire) noexcept {
  if (wire.size() < sizeof(std::uint32_t)) return 0;
  std::uint32_t n = 0;
  std::memcpy(&n, wire.data(), sizeof(n));
  return n;
}

void append(std::vector<std::byte>& wire, int tag, int context,
            ByteSpan payload) {
  if (wire.empty()) {
    wire.resize(sizeof(std::uint32_t));
    write_u32(wire, 0, 0);
  }
  const std::size_t at = wire.size();
  wire.resize(at + kHeaderBytes + payload.size());
  const auto tag32 = static_cast<std::int32_t>(tag);
  const auto ctx32 = static_cast<std::int32_t>(context);
  const auto bytes32 = static_cast<std::uint32_t>(payload.size());
  std::memcpy(wire.data() + at, &tag32, sizeof(tag32));
  std::memcpy(wire.data() + at + sizeof(tag32), &ctx32, sizeof(ctx32));
  std::memcpy(wire.data() + at + sizeof(tag32) + sizeof(ctx32), &bytes32,
              sizeof(bytes32));
  if (!payload.empty()) {
    std::memcpy(wire.data() + at + kHeaderBytes, payload.data(),
                payload.size());
  }
  write_u32(wire, 0, count(wire) + 1);
}

void merge(std::vector<std::byte>& dst, ByteSpan src) {
  const std::uint32_t extra = count(src);
  if (extra == 0) return;
  if (dst.empty()) {
    dst.assign(src.begin(), src.end());
    return;
  }
  dst.insert(dst.end(), src.begin() + sizeof(std::uint32_t), src.end());
  write_u32(dst, 0, count(dst) + extra);
}

bool decode(ByteSpan wire, bool headers_only, std::vector<Sub>& out) {
  out.clear();
  const std::uint32_t n = count(wire);
  std::size_t at = sizeof(std::uint32_t);
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (wire.size() < at + kHeaderBytes) return false;
    Sub sub;
    std::int32_t tag32 = 0;
    std::int32_t ctx32 = 0;
    std::uint32_t bytes32 = 0;
    std::memcpy(&tag32, wire.data() + at, sizeof(tag32));
    std::memcpy(&ctx32, wire.data() + at + sizeof(tag32), sizeof(ctx32));
    std::memcpy(&bytes32, wire.data() + at + sizeof(tag32) + sizeof(ctx32),
                sizeof(bytes32));
    at += kHeaderBytes;
    sub.tag = tag32;
    sub.context = ctx32;
    sub.bytes = bytes32;
    if (!headers_only) {
      if (wire.size() < at + bytes32) return false;
      sub.offset = at;
      at += bytes32;
    }
    out.push_back(sub);
  }
  return at == wire.size();
}

std::vector<std::byte> tombstone(ByteSpan wire) {
  std::vector<Sub> subs;
  std::vector<std::byte> out;
  if (!decode(wire, /*headers_only=*/false, subs)) return out;
  out.resize(sizeof(std::uint32_t));
  write_u32(out, 0, 0);
  for (const Sub& sub : subs) {
    // Re-append with the logical byte count but no payload bytes: the
    // header records what was lost, the body carries nothing.
    const std::size_t at = out.size();
    out.resize(at + kHeaderBytes);
    const auto tag32 = static_cast<std::int32_t>(sub.tag);
    const auto ctx32 = static_cast<std::int32_t>(sub.context);
    std::memcpy(out.data() + at, &tag32, sizeof(tag32));
    std::memcpy(out.data() + at + sizeof(tag32), &ctx32, sizeof(ctx32));
    std::memcpy(out.data() + at + sizeof(tag32) + sizeof(ctx32), &sub.bytes,
                sizeof(sub.bytes));
    write_u32(out, 0, count(out) + 1);
  }
  return out;
}

}  // namespace cid::rt::agg
