// Recycling allocator for message payload buffers and their refcount nodes.
//
// Every send gathers wire bytes into a ByteBuffer and wraps it in a
// rt::Payload; at O(10k) ranks that is millions of malloc/free round trips
// per simulated step, all of roughly the same few sizes. The arena keeps
// released buffers in power-of-two size-class bins and hands their capacity
// back to the next acquire, so steady-state traffic — including
// fault-layer duplicates and reliability retransmits, which alias and then
// release the same buffers — runs without touching the system allocator.
// Payload's intrusive refcount nodes recycle through a companion freelist.
//
// Recycling only reuses memory, never values: an acquired buffer is resized
// (and value-initialized) to the requested length exactly like a fresh
// ByteBuffer, so virtual-time results are unaffected.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"

namespace cid::rt {

/// Counters for one arena. Reuse/miss ratios depend on wall-clock
/// interleaving — informational, never part of deterministic output.
struct ArenaStats {
  std::uint64_t acquires = 0;        ///< buffers handed out
  std::uint64_t reuses = 0;          ///< ... served from a bin
  std::uint64_t releases = 0;        ///< buffers returned
  std::uint64_t retained = 0;        ///< ... kept for reuse
  std::uint64_t node_acquires = 0;   ///< refcount nodes handed out
  std::uint64_t node_reuses = 0;     ///< ... served from the freelist
  std::uint64_t retained_bytes = 0;  ///< capacity currently parked in bins
};

/// Payload's intrusive control block: refcount + the owned bytes. Lives on
/// the arena's node freelist between uses.
struct PayloadNode {
  std::atomic<long> refs{1};
  ByteBuffer bytes;
};

class PayloadArena {
 public:
  /// The process-wide arena. Leaked on purpose (like the obs singletons) so
  /// payloads released during static teardown stay safe.
  static PayloadArena& global();

  /// A buffer of exactly `size` bytes, value-initialized, with capacity
  /// recycled from the matching bin when available.
  ByteBuffer acquire(std::size_t size);

  /// Return a buffer's capacity to its bin (dropped when the bin is at its
  /// retention cap or the buffer is oversized).
  void release(ByteBuffer&& buffer);

  /// A refcount node with refs == 1 and empty bytes.
  PayloadNode* acquire_node();

  /// Recycle a node whose refcount hit zero; its bytes go through
  /// release().
  void release_node(PayloadNode* node);

  ArenaStats stats() const;

 private:
  PayloadArena() = default;

  // Bins cover 64 B .. 1 MiB in power-of-two classes; anything larger is
  // not worth parking (kMaxBinnedBytes) and falls through to the system
  // allocator.
  static constexpr std::size_t kMinBinBytes = 64;
  static constexpr std::size_t kMaxBinnedBytes = std::size_t{1} << 20;
  static constexpr int kBinCount = 15;  // 2^6 .. 2^20
  /// Per-bin retention cap: bounds idle memory at kBinCount * 16 MiB.
  static constexpr std::size_t kMaxRetainedPerBin = std::size_t{16} << 20;
  static constexpr std::size_t kMaxFreeNodes = 1 << 16;

  static int bin_index(std::size_t bytes) noexcept;

  struct Bin {
    std::mutex mutex;
    std::vector<ByteBuffer> free;
    std::size_t free_bytes = 0;
  };

  Bin bins_[kBinCount];
  std::mutex nodes_mutex_;
  std::vector<PayloadNode*> free_nodes_;

  mutable std::atomic<std::uint64_t> acquires_{0};
  mutable std::atomic<std::uint64_t> reuses_{0};
  mutable std::atomic<std::uint64_t> releases_{0};
  mutable std::atomic<std::uint64_t> retained_{0};
  mutable std::atomic<std::uint64_t> node_acquires_{0};
  mutable std::atomic<std::uint64_t> node_reuses_{0};
};

}  // namespace cid::rt
