#include "rt/mailbox.hpp"

#include "common/error.hpp"

namespace cid::rt {

void Mailbox::push(Envelope envelope) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    envelope.seq = next_seq_++;
    queue_.push_back(std::move(envelope));
  }
  arrived_.notify_all();
}

Envelope Mailbox::wait_extract(const Predicate& predicate) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (predicate(*it)) {
        Envelope out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    if (poisoned_ && poisoned_()) {
      throw CidError(ErrorCode::RuntimeFault,
                     "SPMD world poisoned while waiting for a message");
    }
    arrived_.wait(lock);
  }
}

void Mailbox::wait_present(const Predicate& predicate) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (const auto& envelope : queue_) {
      if (predicate(envelope)) return;
    }
    if (poisoned_ && poisoned_()) {
      throw CidError(ErrorCode::RuntimeFault,
                     "SPMD world poisoned while waiting for a message");
    }
    arrived_.wait(lock);
  }
}

std::optional<Envelope> Mailbox::try_extract(const Predicate& predicate) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (predicate(*it)) {
      Envelope out = std::move(*it);
      queue_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

std::optional<Mailbox::Header> Mailbox::peek(const Predicate& predicate) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& envelope : queue_) {
    if (predicate(envelope)) {
      return Header{envelope.src, envelope.tag, envelope.payload.size(),
                    envelope.available_at};
    }
  }
  return std::nullopt;
}

bool Mailbox::probe(const Predicate& predicate) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& envelope : queue_) {
    if (predicate(envelope)) return true;
  }
  return false;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::interrupt_all() { arrived_.notify_all(); }

}  // namespace cid::rt
