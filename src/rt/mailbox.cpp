#include "rt/mailbox.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "rt/agg.hpp"

namespace cid::rt {

void Mailbox::push(Envelope envelope) {
  if (envelope.channel == Channel::Internal &&
      envelope.context == agg::kContext) {
    push_aggregate(std::move(envelope));
    return;
  }
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    envelope.seq = next_seq_++;
    for (const Waiter* waiter : waiters_) {
      if (waiter->keys.empty()) {
        wake = true;  // predicate waiter: must see every arrival
        break;
      }
      for (const MatchKey& key : waiter->keys) {
        if (key.admits(envelope)) {
          wake = true;
          break;
        }
      }
      if (wake) break;
    }
    Bucket& bucket =
        buckets_
            .try_emplace(bucket_id(envelope.channel, envelope.context), &pool_)
            .first->second;
    bucket.exact[exact_id(envelope.src, envelope.tag)].push_back(envelope.seq);
    bucket.by_seq.emplace(envelope.seq, std::move(envelope));
    ++size_;
  }
  if (wake) arrived_.notify_all();
}

void Mailbox::push_aggregate(Envelope envelope) {
  // Decode outside the lock: only the count/header words are read here, the
  // payload bytes are copied per-sub under the lock below.
  std::vector<agg::Sub> subs;
  const ByteSpan wire = envelope.payload.span();
  CID_REQUIRE(agg::decode(wire, /*headers_only=*/envelope.faulted, subs),
              ErrorCode::RuntimeFault, "malformed aggregate envelope");
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const agg::Sub& sub : subs) {
      Envelope e;
      e.src = envelope.src;
      e.tag = sub.tag;
      e.channel = Channel::MpiPointToPoint;
      e.context = sub.context;
      e.available_at = envelope.available_at;
      e.faulted = envelope.faulted;
      if (!envelope.faulted) {
        e.payload = Payload::copy_of(wire.subspan(sub.offset, sub.bytes));
      }
      e.seq = next_seq_++;
      if (!wake) {
        for (const Waiter* waiter : waiters_) {
          if (waiter->keys.empty()) {
            wake = true;
            break;
          }
          for (const MatchKey& key : waiter->keys) {
            if (key.admits(e)) {
              wake = true;
              break;
            }
          }
          if (wake) break;
        }
      }
      Bucket& bucket =
          buckets_.try_emplace(bucket_id(e.channel, e.context), &pool_)
              .first->second;
      bucket.exact[exact_id(e.src, e.tag)].push_back(e.seq);
      bucket.by_seq.emplace(e.seq, std::move(e));
      ++size_;
    }
  }
  if (wake) arrived_.notify_all();
}

std::optional<Mailbox::Found> Mailbox::find_in_bucket(Bucket& bucket,
                                                      const MatchKey& key,
                                                      const Residual* residual,
                                                      std::uint64_t floor) {
  if (key.exact()) {
    auto sub = bucket.exact.find(exact_id(key.src, key.tag));
    if (sub == bucket.exact.end()) return std::nullopt;
    auto& seqs = sub->second;
    for (auto it = seqs.begin(); it != seqs.end();) {
      auto env_it = bucket.by_seq.find(*it);
      if (env_it == bucket.by_seq.end()) {
        it = seqs.erase(it);  // extracted through another key: stale
        continue;
      }
      if (*it >= floor && key.admits(env_it->second) &&
          (residual == nullptr || (*residual)(env_it->second))) {
        return Found{&bucket, env_it};
      }
      ++it;
    }
    if (seqs.empty()) bucket.exact.erase(sub);
    return std::nullopt;
  }
  for (auto it = bucket.by_seq.lower_bound(floor); it != bucket.by_seq.end();
       ++it) {
    if (wildcard_gate_ && !wildcard_gate_(it->second)) continue;
    if (key.admits(it->second) &&
        (residual == nullptr || (*residual)(it->second))) {
      return Found{&bucket, it};
    }
  }
  return std::nullopt;
}

std::optional<Mailbox::Found> Mailbox::find_any(std::span<const MatchKey> keys,
                                                const Residual* residual,
                                                std::uint64_t floor) {
  // Lowest seq across all keys, so multi-key extraction reproduces the
  // arrival-order semantics of a single scan over the whole queue.
  std::optional<Found> best;
  for (const MatchKey& key : keys) {
    auto bucket = buckets_.find(bucket_id(key.channel, key.context));
    if (bucket == buckets_.end()) continue;
    auto found = find_in_bucket(bucket->second, key, residual, floor);
    if (found && (!best || found->it->first < best->it->first)) best = found;
  }
  return best;
}

std::optional<Mailbox::Found> Mailbox::find_predicate(
    const Predicate& predicate, std::uint64_t floor) {
  // Merge-scan every bucket in ascending global seq order.
  struct Cursor {
    Bucket* bucket;
    SeqMap::iterator it;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(buckets_.size());
  for (auto& [id, bucket] : buckets_) {
    (void)id;
    auto it = bucket.by_seq.lower_bound(floor);
    if (it != bucket.by_seq.end()) cursors.push_back({&bucket, it});
  }
  for (;;) {
    Cursor* min = nullptr;
    for (Cursor& cursor : cursors) {
      if (cursor.it == cursor.bucket->by_seq.end()) continue;
      if (min == nullptr || cursor.it->first < min->it->first) min = &cursor;
    }
    if (min == nullptr) return std::nullopt;
    if (predicate(min->it->second)) return Found{min->bucket, min->it};
    ++min->it;
  }
}

Envelope Mailbox::extract(Found found) {
  Envelope out = std::move(found.it->second);
  Bucket& bucket = *found.bucket;
  auto sub = bucket.exact.find(exact_id(out.src, out.tag));
  if (sub != bucket.exact.end()) {
    auto& seqs = sub->second;
    if (!seqs.empty() && seqs.front() == out.seq) {
      seqs.pop_front();
    } else {
      auto pos = std::lower_bound(seqs.begin(), seqs.end(), out.seq);
      if (pos != seqs.end() && *pos == out.seq) seqs.erase(pos);
    }
    if (seqs.empty()) bucket.exact.erase(sub);
  }
  bucket.by_seq.erase(found.it);
  --size_;
  if (bucket.by_seq.empty()) {
    buckets_.erase(bucket_id(out.channel, out.context));
  }
  if (extract_tap_) extract_tap_(out);
  return out;
}

void Mailbox::throw_if_poisoned() const {
  if (poisoned_ && poisoned_()) {
    throw CidError(ErrorCode::RuntimeFault,
                   "SPMD world poisoned while waiting for a message");
  }
}

template <typename Search>
Mailbox::Found Mailbox::wait_match(std::unique_lock<std::mutex>& lock,
                                   std::span<const MatchKey> waiter_keys,
                                   const Search& search) {
  std::uint64_t floor = 0;
  for (;;) {
    if (auto found = search(floor)) return *found;
    // Everything below next_seq_ was examined with these keys and can be
    // skipped on the next pass — unless a wildcard gate is installed, in
    // which case a rejected envelope may be *released* later and must be
    // rescanned (exploration mailboxes are tiny, so the lost watermark is
    // cheap).
    if (!wildcard_gate_) floor = next_seq_;
    throw_if_poisoned();
    Waiter waiter{waiter_keys};
    waiters_.push_back(&waiter);
    arrived_.wait(lock);
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), &waiter));
  }
}

Envelope Mailbox::wait_extract(std::span<const MatchKey> keys,
                               const Residual* residual) {
  std::unique_lock<std::mutex> lock(mutex_);
  Found found = wait_match(lock, keys, [&](std::uint64_t floor) {
    return find_any(keys, residual, floor);
  });
  return extract(found);
}

std::optional<Envelope> Mailbox::wait_extract_for(
    std::span<const MatchKey> keys, double seconds,
    const Residual* residual) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(seconds, 0.0)));
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t floor = 0;
  for (;;) {
    if (auto found = find_any(keys, residual, floor)) {
      return extract(*found);
    }
    if (!wildcard_gate_) floor = next_seq_;  // see wait_match
    throw_if_poisoned();
    Waiter waiter{keys};
    waiters_.push_back(&waiter);
    const bool notified = arrived_.wait_until(lock, deadline);
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), &waiter));
    if (!notified) {
      throw_if_poisoned();
      // An arrival can race the timeout: scan once more before giving up.
      if (auto found = find_any(keys, residual, floor)) {
        return extract(*found);
      }
      return std::nullopt;
    }
  }
}

std::optional<Envelope> Mailbox::try_extract(std::span<const MatchKey> keys,
                                             const Residual* residual) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = find_any(keys, residual, /*floor=*/0);
  if (!found) return std::nullopt;
  return extract(*found);
}

void Mailbox::wait_present(std::span<const MatchKey> keys,
                           const Residual* residual) {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_match(lock, keys, [&](std::uint64_t floor) {
    return find_any(keys, residual, floor);
  });
}

bool Mailbox::probe(const MatchKey& key, const Residual* residual) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_any(std::span<const MatchKey>(&key, 1), residual, /*floor=*/0)
      .has_value();
}

std::optional<Mailbox::Header> Mailbox::peek(const MatchKey& key,
                                             const Residual* residual) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found =
      find_any(std::span<const MatchKey>(&key, 1), residual, /*floor=*/0);
  if (!found) return std::nullopt;
  const Envelope& e = found->it->second;
  return Header{e.src, e.tag, e.payload.size(), e.available_at};
}

Envelope Mailbox::wait_extract(const Predicate& predicate) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Predicates may consult state outside the envelope, so every wakeup
  // rescans from the start (no floor) and every push wakes us.
  Found found = wait_match(lock, {}, [&](std::uint64_t) {
    return find_predicate(predicate, /*floor=*/0);
  });
  return extract(found);
}

std::optional<Envelope> Mailbox::try_extract(const Predicate& predicate) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = find_predicate(predicate, /*floor=*/0);
  if (!found) return std::nullopt;
  return extract(*found);
}

void Mailbox::wait_present(const Predicate& predicate) {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_match(lock, {}, [&](std::uint64_t) {
    return find_predicate(predicate, /*floor=*/0);
  });
}

bool Mailbox::probe(const Predicate& predicate) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_predicate(predicate, /*floor=*/0).has_value();
}

std::optional<Mailbox::Header> Mailbox::peek(const Predicate& predicate) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = find_predicate(predicate, /*floor=*/0);
  if (!found) return std::nullopt;
  const Envelope& e = found->it->second;
  return Header{e.src, e.tag, e.payload.size(), e.available_at};
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

void Mailbox::set_explore_hooks(WildcardGate gate, ExtractTap tap) {
  std::lock_guard<std::mutex> lock(mutex_);
  wildcard_gate_ = std::move(gate);
  extract_tap_ = std::move(tap);
}

std::vector<Mailbox::HeldCandidate> Mailbox::held_candidates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HeldCandidate> held;
  if (!wildcard_gate_) return held;
  for (const Waiter* waiter : waiters_) {
    for (const MatchKey& key : waiter->keys) {
      if (key.exact()) continue;
      const auto bucket = buckets_.find(bucket_id(key.channel, key.context));
      if (bucket == buckets_.end()) continue;
      for (const auto& [seq, envelope] : bucket->second.by_seq) {
        (void)seq;
        if (!key.admits(envelope) || wildcard_gate_(envelope)) continue;
        held.push_back({envelope.explore_uid, envelope.src, envelope.tag,
                        envelope.context});
      }
    }
  }
  std::sort(held.begin(), held.end(),
            [](const HeldCandidate& a, const HeldCandidate& b) {
              return a.uid < b.uid;
            });
  held.erase(std::unique(held.begin(), held.end(),
                         [](const HeldCandidate& a, const HeldCandidate& b) {
                           return a.uid == b.uid;
                         }),
             held.end());
  return held;
}

void Mailbox::interrupt_all() {
  // Pair with waiters, which hold mutex_ from their poison check until they
  // are registered on the cv: the bracket keeps the poison store from
  // landing between the two, which would make this notify a no-op.
  { std::lock_guard<std::mutex> lock(mutex_); }
  arrived_.notify_all();
}

}  // namespace cid::rt
