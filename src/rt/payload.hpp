// Shared, immutable message payload. Sends wrap the gathered wire bytes
// exactly once; every later hand-off — fault-layer duplicates, retransmission
// sources, envelope copies — bumps a refcount instead of deep-copying the
// bytes. Immutability is what makes the sharing safe: once wrapped, the bytes
// are never written again, so any number of envelopes may alias them.
//
// Ownership is an intrusive refcount node recycled through PayloadArena:
// when the last reference drops, both the node and the buffer's capacity go
// back to the arena instead of the system allocator, so steady-state send
// traffic allocates nothing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/bytes.hpp"
#include "rt/arena.hpp"

namespace cid::rt {

class Payload {
 public:
  Payload() = default;

  /// Take ownership of `bytes` (no copy, empty buffers stay unallocated).
  explicit Payload(ByteBuffer bytes) {
    if (!bytes.empty()) {
      node_ = PayloadArena::global().acquire_node();
      node_->bytes = std::move(bytes);
    }
  }

  /// Copy `bytes` into a fresh shared buffer (for callers that only hold a
  /// view). Prefer the moving constructor on hot paths.
  static Payload copy_of(ByteSpan bytes) {
    ByteBuffer buffer = PayloadArena::global().acquire(bytes.size());
    std::copy(bytes.begin(), bytes.end(), buffer.begin());
    return Payload(std::move(buffer));
  }

  Payload(const Payload& other) noexcept : node_(other.node_) { retain(); }
  Payload(Payload&& other) noexcept
      : node_(std::exchange(other.node_, nullptr)) {}
  Payload& operator=(const Payload& other) noexcept {
    if (node_ != other.node_) {
      release();
      node_ = other.node_;
      retain();
    }
    return *this;
  }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      node_ = std::exchange(other.node_, nullptr);
    }
    return *this;
  }
  ~Payload() { release(); }

  std::size_t size() const noexcept { return node_ ? node_->bytes.size() : 0; }
  const std::byte* data() const noexcept {
    return node_ ? node_->bytes.data() : nullptr;
  }
  ByteSpan span() const noexcept { return ByteSpan(data(), size()); }
  std::byte operator[](std::size_t index) const { return node_->bytes[index]; }
  bool empty() const noexcept { return size() == 0; }

  /// Drop this reference (tombstones carry no payload).
  void clear() noexcept {
    release();
    node_ = nullptr;
  }

  /// Number of envelopes currently aliasing these bytes (diagnostics/tests).
  long use_count() const noexcept {
    return node_ ? node_->refs.load(std::memory_order_acquire) : 0;
  }

 private:
  void retain() noexcept {
    if (node_ != nullptr) {
      node_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void release() noexcept {
    if (node_ != nullptr &&
        node_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      PayloadArena::global().release_node(node_);
    }
  }

  PayloadNode* node_ = nullptr;
};

}  // namespace cid::rt
