// Shared, immutable message payload. Sends wrap the gathered wire bytes
// exactly once; every later hand-off — fault-layer duplicates, retransmission
// sources, envelope copies — bumps a refcount instead of deep-copying the
// bytes. Immutability is what makes the sharing safe: once wrapped, the bytes
// are never written again, so any number of envelopes may alias them.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "common/bytes.hpp"

namespace cid::rt {

class Payload {
 public:
  Payload() = default;

  /// Take ownership of `bytes` (no copy, empty buffers stay unallocated).
  explicit Payload(ByteBuffer bytes)
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<const ByteBuffer>(std::move(bytes))) {}

  /// Copy `bytes` into a fresh shared buffer (for callers that only hold a
  /// view). Prefer the moving constructor on hot paths.
  static Payload copy_of(ByteSpan bytes) {
    return Payload(ByteBuffer(bytes.begin(), bytes.end()));
  }

  std::size_t size() const noexcept { return data_ ? data_->size() : 0; }
  const std::byte* data() const noexcept {
    return data_ ? data_->data() : nullptr;
  }
  ByteSpan span() const noexcept { return ByteSpan(data(), size()); }
  std::byte operator[](std::size_t index) const { return (*data_)[index]; }
  bool empty() const noexcept { return size() == 0; }

  /// Drop this reference (tombstones carry no payload).
  void clear() noexcept { data_.reset(); }

  /// Number of envelopes currently aliasing these bytes (diagnostics/tests).
  long use_count() const noexcept { return data_.use_count(); }

 private:
  std::shared_ptr<const ByteBuffer> data_;
};

}  // namespace cid::rt
