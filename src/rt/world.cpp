#include "rt/world.hpp"

#include <algorithm>

#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "rt/agg.hpp"

namespace cid::rt {

World::World(int nranks, simnet::MachineModel model)
    : nranks_(nranks),
      model_(model),
      barrier_participants_(nranks),
      clocks_(nranks) {
  CID_REQUIRE(nranks > 0, ErrorCode::InvalidArgument,
              "World requires at least one rank");
  mailboxes_.reserve(nranks);
  signals_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    mailboxes_.back()->set_poison_check([this] { return poisoned(); });
    signals_.push_back(std::make_unique<RankSignal>());
  }
  const int shard_count = (nranks + kBarrierShardSize - 1) / kBarrierShardSize;
  barrier_shards_.reserve(shard_count);
  for (int s = 0; s < shard_count; ++s) {
    barrier_shards_.push_back(std::make_unique<BarrierShard>());
  }
  rebuild_barrier_shards();
}

void World::rebuild_barrier_shards() {
  for (auto& shard : barrier_shards_) shard->expected = 0;
  barrier_root_.active_shards = 0;
  for (int r = 0; r < nranks_; ++r) {
    if (rank_is_local(r)) ++shard_of(r).expected;
  }
  for (auto& shard : barrier_shards_) {
    if (shard->expected > 0) ++barrier_root_.active_shards;
  }
}

void World::set_transport(std::shared_ptr<net::Transport> transport) {
  transport_ = std::move(transport);
  if (transport_ != nullptr) {
    barrier_participants_ = transport_->local_rank_count(nranks_);
    transport_real_loss_ = transport_->real_loss();
  } else {
    barrier_participants_ = nranks_;
    transport_real_loss_ = false;
  }
  CID_REQUIRE(barrier_participants_ > 0, ErrorCode::InvalidArgument,
              "transport hosts no ranks in this process");
  rebuild_barrier_shards();
}

void World::require_single_process(const std::string& what) const {
  if (transport_ != nullptr && transport_->cross_process()) {
    throw CidError(ErrorCode::UnsupportedTarget,
                   what + " requires all ranks in one process; the " +
                       std::string(net::backend_name(transport_->kind())) +
                       " transport shards them across processes");
  }
}

bool World::single_process() const noexcept {
  return transport_ == nullptr || !transport_->cross_process();
}

bool World::rank_is_local(int rank) const noexcept {
  if (transport_ == nullptr || !transport_->cross_process()) return true;
  const int begin = transport_->local_rank_begin(nranks_);
  return rank >= begin && rank < begin + transport_->local_rank_count(nranks_);
}

void World::route(int dest, Envelope envelope) {
  if (transport_ != nullptr) {
    transport_->deliver(dest, std::move(envelope));
  } else {
    mailboxes_[dest]->push(std::move(envelope));
  }
}

void World::deliver(int dest, Envelope envelope) {
  CID_REQUIRE(dest >= 0 && dest < nranks_, ErrorCode::InvalidArgument,
              "deliver destination rank out of range");
  if (obs::enabled()) {
    // Every envelope (including fault-layer duplicates pushed below) funnels
    // through here, so this counter pair is the ground truth for wire load
    // per destination rank.
    obs::count("rt.deliver.messages", "world", dest);
    obs::count("rt.deliver.bytes", "world", dest, envelope.payload.size());
  }
  if (delivery_tap_) delivery_tap_(envelope, dest);
  if (interceptor_ != nullptr) {
    const DeliveryVerdict verdict = interceptor_->on_deliver(envelope, dest);
    if (verdict.sender_stall > 0.0 && envelope.src >= 0 &&
        envelope.src < nranks_) {
      // The sending rank freezes: its clock advances and the envelope (still
      // in its NIC) is pushed out correspondingly later.
      clocks_[envelope.src].advance(verdict.sender_stall);
      envelope.available_at += verdict.sender_stall;
    }
    envelope.available_at += verdict.delay;
    if (verdict.duplicate) {
      Envelope copy = envelope;
      copy.available_at += verdict.duplicate_delay;
      route(dest, std::move(copy));
    }
    if (verdict.drop) {
      if (transport_real_loss_) {
        // Real loss (tcp): the envelope never made it onto the wire.
        // Nothing arrives at the destination; reliability protocols must
        // detect the gap with wall-clock deadlines.
        if (obs::enabled()) {
          obs::count("rt.deliver.lost", "world", dest);
        }
        return;
      }
      if (envelope.channel == Channel::Internal &&
          envelope.context == agg::kContext) {
        // A lost aggregate keeps its per-sub headers so the mailbox split
        // still fans out one tombstone per logical message (rt/agg.hpp).
        envelope.payload = Payload(agg::tombstone(envelope.payload.span()));
      } else {
        envelope.payload.clear();
      }
      envelope.faulted = true;
    }
  }
  route(dest, std::move(envelope));
}

void World::barrier(int rank, simnet::SimTime cost) {
  check_poisoned();
  BarrierShard& shard = shard_of(rank);
  std::unique_lock<std::mutex> lock(shard.mutex);
  shard.max_clock = std::max(shard.max_clock, clocks_[rank].now());
  const std::uint64_t my_generation = shard.generation;
  if (++shard.arrived < shard.expected) {
    shard.released.wait(lock, [&] {
      return shard.generation != my_generation || poisoned();
    });
    check_poisoned();
    return;
  }

  // Shard closer: fold this shard's max into the root. The shard lock can
  // drop first — every other rank of this shard is parked until the next
  // generation is published, so nobody mutates the shard behind our back.
  const simnet::SimTime shard_max = shard.max_clock;
  lock.unlock();
  bool global_last = false;
  simnet::SimTime global_max = 0.0;
  {
    std::lock_guard<std::mutex> root_lock(barrier_root_.mutex);
    barrier_root_.max_clock = std::max(barrier_root_.max_clock, shard_max);
    if (++barrier_root_.shards_arrived == barrier_root_.active_shards) {
      global_last = true;
      global_max = barrier_root_.max_clock;
      // Reset the root before any shard is released: a woken rank may
      // re-enter the next barrier and close its shard again immediately.
      barrier_root_.shards_arrived = 0;
      barrier_root_.max_clock = 0.0;
    }
  }
  if (!global_last) {
    lock.lock();
    shard.released.wait(lock, [&] {
      return shard.generation != my_generation || poisoned();
    });
    check_poisoned();
    return;
  }

  // Global releaser: exactly the pre-sharding arithmetic. The last
  // locally-arriving rank folds the other processes' maxima in through the
  // transport (identity for in-process transports, so the simulator's
  // barrier arithmetic is untouched), then resets every clock to the common
  // release time.
  if (transport_ != nullptr) {
    global_max = transport_->barrier_sync(global_max);
  }
  const simnet::SimTime release_time = global_max + cost;
  for (auto& clock : clocks_) clock.reset(release_time);
  // Publish generation G+1 shard by shard. A rank woken from an early shard
  // can race ahead into the next barrier, but it cannot finish that barrier
  // before we release the last shard here, because that shard's ranks are
  // still parked on generation G.
  for (auto& shard_ptr : barrier_shards_) {
    BarrierShard& s = *shard_ptr;
    if (s.expected == 0) continue;
    {
      std::lock_guard<std::mutex> shard_lock(s.mutex);
      s.arrived = 0;
      s.max_clock = 0.0;
      ++s.generation;
    }
    s.released.notify_all();
  }
}

void World::poison() noexcept {
  poisoned_.store(true, std::memory_order_release);
  if (transport_ != nullptr) {
    transport_->interrupt();  // wake ranks blocked inside barrier_sync
  }
  for (auto& mailbox : mailboxes_) mailbox->interrupt_all();
  // The empty lock/unlock brackets pair with each waiter, which holds the
  // corresponding mutex from its predicate check until it is registered on
  // the cv: without them the store above could land between a check and the
  // park and the notify would find no one.
  for (auto& shard : barrier_shards_) {
    { std::lock_guard<std::mutex> lock(shard->mutex); }
    shard->released.notify_all();
  }
  for (auto& signal : signals_) {
    { std::lock_guard<std::mutex> lock(signal->mutex); }
    signal->changed.notify_all();
  }
  { std::lock_guard<std::mutex> lock(global_mutex_); }
  global_cv_.notify_all();
}

void World::wait_global(std::unique_lock<std::mutex>& lock,
                        const std::function<bool()>& condition) {
  CID_ASSERT(lock.mutex() == &global_mutex_ && lock.owns_lock(),
             "wait_global requires the locked global mutex");
  global_cv_.wait(lock, [&] { return condition() || poisoned(); });
  check_poisoned();
}

void World::notify_rank(int rank) {
  CID_REQUIRE(rank >= 0 && rank < nranks_, ErrorCode::InvalidArgument,
              "notify_rank out of range");
  // Lock/unlock pairs with the wait in wait_on_signal so a notification
  // cannot slip between the condition check and the wait.
  { std::lock_guard<std::mutex> lock(signals_[rank]->mutex); }
  signals_[rank]->changed.notify_all();
}

void World::wait_on_signal(int rank, const std::function<bool()>& condition) {
  CID_REQUIRE(rank >= 0 && rank < nranks_, ErrorCode::InvalidArgument,
              "wait_on_signal out of range");
  std::unique_lock<std::mutex> lock(signals_[rank]->mutex);
  signals_[rank]->changed.wait(
      lock, [&] { return condition() || poisoned(); });
  check_poisoned();
}

}  // namespace cid::rt
