#include "rt/runtime.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "net/backend.hpp"
#include "net/transport.hpp"
#include "obs/autotrace.hpp"
#include "obs/obs.hpp"
#include "tune/tune.hpp"

namespace cid::rt {

namespace {
thread_local RankCtx* t_ctx = nullptr;

/// RAII installation of the thread-local context.
class CtxScope {
 public:
  explicit CtxScope(RankCtx& ctx) {
    t_ctx = &ctx;
    log::set_thread_rank(ctx.rank());
  }
  ~CtxScope() {
    t_ctx = nullptr;
    log::set_thread_rank(-1);
  }
  CtxScope(const CtxScope&) = delete;
  CtxScope& operator=(const CtxScope&) = delete;
};
}  // namespace

simnet::SimTime RunResult::makespan() const noexcept {
  simnet::SimTime latest = 0.0;
  for (simnet::SimTime t : final_clocks) latest = std::max(latest, t);
  return latest;
}

RunResult run(int nranks, const simnet::MachineModel& model,
              const RankFn& fn) {
  return run(nranks, model, fn, RunOptions{});
}

RunResult run(int nranks, const simnet::MachineModel& model, const RankFn& fn,
              const RunOptions& options) {
  CID_REQUIRE(nranks > 0, ErrorCode::InvalidArgument,
              "run() requires nranks >= 1");
  CID_REQUIRE(!in_spmd_region(), ErrorCode::RuntimeFault,
              "nested SPMD regions are not supported");
  // CID_TRACE_OUT: enable process-wide observability recording with zero
  // code changes in the SPMD program.
  obs::autotrace_poll();
  // CID_TUNE: re-read the tuning mode and (re)load the site profile each
  // run; record mode turns metrics collection on for the run's duration.
  tune::Tuner::global().prepare();

  // Resolve the transport backend: explicit option first, CID_BACKEND
  // otherwise (sim when unset — the deterministic virtual-time default).
  std::shared_ptr<net::Transport> transport =
      options.transport != nullptr ? options.transport
                                   : net::make_transport_from_env();

  World world(nranks, model);
  world.set_transport(transport);
  if (options.interceptor != nullptr) {
    world.set_interceptor(options.interceptor);
  }
  if (options.world_setup) options.world_setup(world);
  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  const bool wall_time = transport->wall_time();
  auto rank_body = [&](RankCtx& ctx) {
    const double wall_begin = net::wall_seconds();
    try {
      fn(ctx);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (!first_failure) first_failure = std::current_exception();
      }
      world.poison();
    }
    if (wall_time && obs::enabled()) {
      // On wall-clock backends the number that matters is how long the
      // rank really ran, not its (bookkeeping) virtual clock.
      obs::span({ctx.rank(), "wall", "rank_main", wall_begin,
                 net::wall_seconds(), 0, 0});
      obs::observe("net.rank_wall_seconds", "rt", ctx.rank(),
                   net::wall_seconds() - wall_begin);
    }
  };

  // attach() before any rank starts; on cross-process transports only the
  // locally-hosted slice of ranks runs in this process.
  transport->attach(world);
  const int local_begin = transport->local_rank_begin(nranks);
  const int local_count = transport->local_rank_count(nranks);

  RunResult result;
  // The pooled fiber scheduler only applies to the in-process virtual-time
  // backend. Wall-clock transports (thread, tcp) measure real elapsed time
  // per rank, so a rank must own its OS thread for the duration.
  const bool pooled = !wall_time && !transport->cross_process() &&
                      sched::resolve_mode(options.scheduler) ==
                          sched::Mode::kPool;
  if (pooled) {
    sched::Scheduler scheduler(
        sched::resolve_workers(options.sim_workers, local_count),
        sched::resolve_stack_bytes(options.sim_stack_bytes));
    if (options.idle_hook) scheduler.set_idle_hook(options.idle_hook);
    // RankCtx objects live out here (not on fiber stacks): the switch hooks
    // reference them from worker threads between switches.
    std::vector<std::unique_ptr<RankCtx>> ctxs;
    ctxs.reserve(local_count);
    for (int r = local_begin; r < local_begin + local_count; ++r) {
      ctxs.push_back(std::make_unique<RankCtx>(r, world));
    }
    for (auto& ctx_ptr : ctxs) {
      RankCtx* ctx = ctx_ptr.get();
      sched::Fiber& fiber =
          scheduler.add([&rank_body, ctx] { rank_body(*ctx); });
      // The rank's ambient identity (current_ctx, log rank) must follow the
      // fiber across worker threads; the scheduler installs it on whichever
      // worker hosts the fiber next.
      fiber.set_switch_hooks(
          [ctx] {
            t_ctx = ctx;
            log::set_thread_rank(ctx->rank());
          },
          [] {
            t_ctx = nullptr;
            log::set_thread_rank(-1);
          });
    }
    scheduler.run();
    result.pooled = true;
    result.sched_stats = scheduler.stats();
  } else {
    auto rank_main = [&](int rank) {
      RankCtx ctx(rank, world);
      CtxScope scope(ctx);
      rank_body(ctx);
    };
    std::vector<std::thread> threads;
    threads.reserve(local_count);
    for (int r = local_begin; r < local_begin + local_count; ++r) {
      threads.emplace_back(rank_main, r);
    }
    for (auto& thread : threads) thread.join();
  }
  // Deterministic shutdown: after every local rank finished, drain the
  // transport (and, cross-process, synchronize the teardown).
  transport->detach();

  if (first_failure) std::rethrow_exception(first_failure);

  if (result.pooled && obs::enabled()) {
    // Only the deterministic facts go to obs (exports must stay
    // byte-reproducible); the schedule-dependent park/switch counts are
    // returned in RunResult instead.
    obs::count("rt.sched.workers", "sched", 0, result.sched_stats.workers);
    obs::count("rt.sched.fibers", "sched", 0, result.sched_stats.fibers);
  }
  result.final_clocks.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    result.final_clocks.push_back(world.clock(r).now());
  }
  // Flush the trace file at the end of every run, not only at process exit,
  // so a crash in a later run still leaves the completed runs on disk.
  if (obs::autotrace_active()) obs::autotrace_write();
  // Record mode: harvest this run's metrics into the in-memory profile and
  // persist it to CID_TUNE_PROFILE (if set).
  tune::Tuner::global().finish();
  return result;
}

RunResult run(int nranks, const RankFn& fn) {
  return run(nranks, simnet::MachineModel::cray_xk7_gemini(), fn);
}

RankCtx& current_ctx() {
  CID_REQUIRE(t_ctx != nullptr, ErrorCode::RuntimeFault,
              "current_ctx() called outside an SPMD region");
  return *t_ctx;
}

bool in_spmd_region() noexcept { return t_ctx != nullptr; }

}  // namespace cid::rt
