#include "rt/runtime.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "obs/autotrace.hpp"

namespace cid::rt {

namespace {
thread_local RankCtx* t_ctx = nullptr;

/// RAII installation of the thread-local context.
class CtxScope {
 public:
  explicit CtxScope(RankCtx& ctx) {
    t_ctx = &ctx;
    log::set_thread_rank(ctx.rank());
  }
  ~CtxScope() {
    t_ctx = nullptr;
    log::set_thread_rank(-1);
  }
  CtxScope(const CtxScope&) = delete;
  CtxScope& operator=(const CtxScope&) = delete;
};
}  // namespace

simnet::SimTime RunResult::makespan() const noexcept {
  simnet::SimTime latest = 0.0;
  for (simnet::SimTime t : final_clocks) latest = std::max(latest, t);
  return latest;
}

RunResult run(int nranks, const simnet::MachineModel& model,
              const RankFn& fn) {
  return run(nranks, model, fn, RunOptions{});
}

RunResult run(int nranks, const simnet::MachineModel& model, const RankFn& fn,
              const RunOptions& options) {
  CID_REQUIRE(nranks > 0, ErrorCode::InvalidArgument,
              "run() requires nranks >= 1");
  CID_REQUIRE(!in_spmd_region(), ErrorCode::RuntimeFault,
              "nested SPMD regions are not supported");
  // CID_TRACE_OUT: enable process-wide observability recording with zero
  // code changes in the SPMD program.
  obs::autotrace_poll();

  World world(nranks, model);
  if (options.interceptor != nullptr) {
    world.set_interceptor(options.interceptor);
  }
  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  auto rank_main = [&](int rank) {
    RankCtx ctx(rank, world);
    CtxScope scope(ctx);
    try {
      fn(ctx);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (!first_failure) first_failure = std::current_exception();
      }
      world.poison();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back(rank_main, r);
  }
  for (auto& thread : threads) thread.join();

  if (first_failure) std::rethrow_exception(first_failure);

  RunResult result;
  result.final_clocks.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    result.final_clocks.push_back(world.clock(r).now());
  }
  // Flush the trace file at the end of every run, not only at process exit,
  // so a crash in a later run still leaves the completed runs on disk.
  if (obs::autotrace_active()) obs::autotrace_write();
  return result;
}

RunResult run(int nranks, const RankFn& fn) {
  return run(nranks, simnet::MachineModel::cray_xk7_gemini(), fn);
}

RankCtx& current_ctx() {
  CID_REQUIRE(t_ctx != nullptr, ErrorCode::RuntimeFault,
              "current_ctx() called outside an SPMD region");
  return *t_ctx;
}

bool in_spmd_region() noexcept { return t_ctx != nullptr; }

}  // namespace cid::rt
