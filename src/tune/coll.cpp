#include "tune/coll.hpp"

#include <bit>
#include <string>

namespace cid::tune {

namespace {

/// ceil(log2(nprocs)): tree depth / number of doubling steps.
int log2_ceil(int nprocs) noexcept {
  if (nprocs <= 1) return 0;
  return std::bit_width(static_cast<unsigned>(nprocs - 1));
}

bool is_pow2(int nprocs) noexcept {
  return nprocs > 0 && (nprocs & (nprocs - 1)) == 0;
}

/// Per-message fixed cost on the two-sided path: both overheads, the
/// injection gap and the wire latency.
double fixed_cost(const simnet::PathCosts& p) noexcept {
  return p.send_overhead + p.recv_overhead + p.per_message_gap + p.latency;
}

/// End-to-end cost of one `bytes`-sized message.
double msg_cost(const simnet::PathCosts& p, double bytes) noexcept {
  double cost = fixed_cost(p) + bytes / p.bytes_per_second;
  if (bytes > static_cast<double>(p.eager_threshold_bytes)) {
    cost += p.rendezvous_extra_latency;
  }
  return cost;
}

/// Groups this small keep the flat reference paths: tree/ring setup cannot
/// amortize over two or three peers.
constexpr int kTinyGroup = 4;

struct Candidate {
  CollAlgo algo;
  double cost;
  const char* reason;
};

/// Pick the cheapest of `candidates` (already filtered for applicability).
CollChoice cheapest(const Candidate* candidates, int n) noexcept {
  int best = 0;
  for (int i = 1; i < n; ++i) {
    if (candidates[i].cost < candidates[best].cost) best = i;
  }
  return {candidates[best].algo, candidates[best].reason};
}

}  // namespace

std::string_view coll_op_name(CollOp op) noexcept {
  switch (op) {
    case CollOp::Bcast: return "bcast";
    case CollOp::Gather: return "gather";
    case CollOp::Scatter: return "scatter";
    case CollOp::Allgather: return "allgather";
    case CollOp::Alltoall: return "alltoall";
    case CollOp::Reduce: return "reduce";
    case CollOp::Allreduce: return "allreduce";
  }
  return "unknown";
}

std::string_view coll_algo_name(CollAlgo algo) noexcept {
  switch (algo) {
    case CollAlgo::Binomial: return "binomial";
    case CollAlgo::VanDeGeijn: return "vandegeijn";
    case CollAlgo::Flat: return "flat";
    case CollAlgo::Ring: return "ring";
    case CollAlgo::RecursiveDoubling: return "rd";
    case CollAlgo::Rabenseifner: return "rabenseifner";
    case CollAlgo::ReduceBcast: return "reduce_bcast";
    case CollAlgo::Bruck: return "bruck";
    case CollAlgo::PairwiseWindow: return "pairwise";
  }
  return "unknown";
}

std::optional<CollOp> parse_coll_op(std::string_view name) noexcept {
  for (int i = 0; i < kCollOpCount; ++i) {
    const auto op = static_cast<CollOp>(i);
    if (name == coll_op_name(op)) return op;
  }
  return std::nullopt;
}

std::optional<CollAlgo> parse_coll_algo(std::string_view name) noexcept {
  static constexpr CollAlgo kAll[] = {
      CollAlgo::Binomial,     CollAlgo::VanDeGeijn,
      CollAlgo::Flat,         CollAlgo::Ring,
      CollAlgo::RecursiveDoubling, CollAlgo::Rabenseifner,
      CollAlgo::ReduceBcast,  CollAlgo::Bruck,
      CollAlgo::PairwiseWindow,
  };
  for (CollAlgo algo : kAll) {
    if (name == coll_algo_name(algo)) return algo;
  }
  // Long-form alias kept for discoverability in docs and error messages.
  if (name == "recursive_doubling") return CollAlgo::RecursiveDoubling;
  return std::nullopt;
}

bool coll_algo_valid(CollOp op, CollAlgo algo, int nprocs) noexcept {
  switch (op) {
    case CollOp::Bcast:
      return algo == CollAlgo::Binomial || algo == CollAlgo::VanDeGeijn;
    case CollOp::Gather:
    case CollOp::Scatter:
      return algo == CollAlgo::Flat || algo == CollAlgo::Binomial;
    case CollOp::Allgather:
      return algo == CollAlgo::Ring ||
             (algo == CollAlgo::RecursiveDoubling && is_pow2(nprocs));
    case CollOp::Alltoall:
      return algo == CollAlgo::Flat || algo == CollAlgo::Bruck ||
             algo == CollAlgo::PairwiseWindow;
    case CollOp::Reduce:
      return algo == CollAlgo::Binomial || algo == CollAlgo::Rabenseifner;
    case CollOp::Allreduce:
      return algo == CollAlgo::ReduceBcast ||
             algo == CollAlgo::RecursiveDoubling || algo == CollAlgo::Ring;
  }
  return false;
}

CollChoice choose_collective(CollOp op, const CollShape& shape,
                             const simnet::MachineModel& model,
                             const SiteProfile* profile) {
  const simnet::PathCosts& p = model.mpi_two_sided;
  const int P = shape.nprocs;
  const int L = log2_ceil(P);
  const double f = fixed_cost(p);
  const double B = p.bytes_per_second;

  // Profile steering: a recorded site decides by its observed mean block so
  // one call site keeps one algorithm across a varied size distribution.
  double b = static_cast<double>(shape.block_bytes);
  if (profile != nullptr && profile->coll_calls > 0 &&
      profile->coll_mean_bytes > 0.0) {
    b = profile->coll_mean_bytes;
  }
  const bool vector_op = op == CollOp::Bcast || op == CollOp::Reduce ||
                         op == CollOp::Allreduce;
  // For the vector ops the "block" is the whole vector; for the blocky ops
  // the total payload is one block per member.
  const double n = vector_op ? b : b * P;

  if (P <= 1) return {CollAlgo::Flat, "single-member group: local copy"};

  switch (op) {
    case CollOp::Bcast: {
      if (P <= kTinyGroup) {
        return {CollAlgo::Binomial, "tiny group: tree == flat"};
      }
      const Candidate candidates[] = {
          {CollAlgo::Binomial, L * msg_cost(p, n),
           "latency-bound: log2(P) tree hops beat the scatter+ring "
           "pipeline"},
          {CollAlgo::VanDeGeijn, L * f + n / B + (P - 1) * msg_cost(p, n / P),
           "bandwidth-bound: binomial scatter + ring allgather ships the "
           "vector once instead of log2(P) times"},
      };
      return cheapest(candidates, 2);
    }
    case CollOp::Gather:
    case CollOp::Scatter: {
      if (P <= kTinyGroup) {
        return {CollAlgo::Flat, "tiny group: flat fan avoids relay copies"};
      }
      const char* tree_reason =
          op == CollOp::Gather
              ? "log2(P) messages at the root beat the flat O(P) fan-in"
              : "log2(P) messages at the root beat the flat O(P) fan-out";
      const Candidate candidates[] = {
          {CollAlgo::Flat,
           p.latency + (P - 1) * (p.recv_overhead + p.send_overhead +
                                  p.per_message_gap + b / B) +
               p.waitall_base + (P - 1) * p.waitall_per_request,
           "flat fan keeps every block on a single hop"},
          {CollAlgo::Binomial, L * f + (P - 1) * b / B, tree_reason},
      };
      return cheapest(candidates, 2);
    }
    case CollOp::Allgather: {
      // The simnet model carries no congestion term, so recursive doubling
      // (non-neighbour partners) is reserved for latency-bound sizes where
      // its log2(P) steps are the whole story; bandwidth-bound allgathers
      // stay on the nearest-neighbour ring.
      if (is_pow2(P) && P > kTinyGroup &&
          n <= static_cast<double>(p.eager_threshold_bytes)) {
        const double ring = (P - 1) * msg_cost(p, b);
        const double rd = L * f + (P - 1) * b / B;
        if (rd < ring) {
          return {CollAlgo::RecursiveDoubling,
                  "small vector on a power-of-two group: log2(P) doubling "
                  "steps beat P-1 ring steps"};
        }
      }
      return {CollAlgo::Ring,
              "ring: P-1 nearest-neighbour steps, bandwidth-optimal"};
    }
    case CollOp::Alltoall: {
      if (P <= kTinyGroup) {
        return {CollAlgo::Flat, "tiny group: flat pairwise exchange"};
      }
      const Candidate candidates[] = {
          {CollAlgo::Bruck,
           L * (f + (P / 2.0) * b / B),
           "small blocks: ceil(log2(P)) combined messages beat the O(P) "
           "per-peer request storm"},
          {CollAlgo::PairwiseWindow,
           p.latency + (P - 1) * (f + b / B) +
               2 * (P - 1) * p.waitall_per_request,
           "large blocks: pairwise exchange under a bounded request window "
           "moves each block once"},
      };
      return cheapest(candidates, 2);
    }
    case CollOp::Reduce: {
      if (P <= kTinyGroup) {
        return {CollAlgo::Binomial, "tiny group: tree == flat"};
      }
      const Candidate candidates[] = {
          {CollAlgo::Binomial, L * msg_cost(p, n),
           "latency-bound: log2(P) tree hops, each carrying the full "
           "vector"},
          {CollAlgo::Rabenseifner,
           (P - 1) * msg_cost(p, n / P) + L * f + n / B,
           "bandwidth-bound: ring reduce-scatter + binomial gather ships "
           "2x the vector instead of log2(P)x"},
      };
      return cheapest(candidates, 2);
    }
    case CollOp::Allreduce: {
      const double rd_extra = is_pow2(P) ? 0.0 : 2.0 * msg_cost(p, n);
      const Candidate candidates[] = {
          {CollAlgo::RecursiveDoubling, L * msg_cost(p, n) + rd_extra,
           "latency-bound: log2(P) exchange steps halve the reduce+bcast "
           "tree count"},
          {CollAlgo::Ring, 2.0 * (P - 1) * msg_cost(p, n / P),
           "bandwidth-bound: ring reduce-scatter + allgather moves 2x the "
           "vector total"},
      };
      return cheapest(candidates, 2);
    }
  }
  return {CollAlgo::Flat, "unknown collective"};
}

Result<CollOverrides> parse_coll_overrides(std::string_view text) {
  CollOverrides overrides;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view entry =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    pos = comma == std::string_view::npos ? text.size() + 1 : comma + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      return Status(ErrorCode::InvalidArgument,
                    "CID_COLL entry '" + std::string(entry) +
                        "' is not <collective>:<algo>");
    }
    const auto op = parse_coll_op(entry.substr(0, colon));
    if (!op.has_value()) {
      return Status(ErrorCode::InvalidArgument,
                    "CID_COLL names unknown collective '" +
                        std::string(entry.substr(0, colon)) + "'");
    }
    const auto algo = parse_coll_algo(entry.substr(colon + 1));
    if (!algo.has_value()) {
      return Status(ErrorCode::InvalidArgument,
                    "CID_COLL names unknown algorithm '" +
                        std::string(entry.substr(colon + 1)) + "'");
    }
    // Reject algorithms that never implement the collective; the
    // shape-dependent cases (rd allgather on non-power-of-two groups) are
    // checked per call and fall back to the cost model.
    if (!coll_algo_valid(*op, *algo, /*nprocs=*/2) &&
        !coll_algo_valid(*op, *algo, /*nprocs=*/4)) {
      return Status(ErrorCode::InvalidArgument,
                    "CID_COLL: algorithm '" +
                        std::string(coll_algo_name(*algo)) +
                        "' does not implement collective '" +
                        std::string(coll_op_name(*op)) + "'");
    }
    overrides[static_cast<std::size_t>(*op)] = *algo;
  }
  return overrides;
}

}  // namespace cid::tune
