#include "tune/profile.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "obs/trace_read.hpp"

namespace cid::tune {

namespace {

/// Metric names the harvester consumes. The cid.p2p.* pair comes from the
/// core trace forwarder; the cid.tune.* and reliability RTT series are the
/// record-mode probes in core/region.cpp and core/reliability.cpp.
constexpr std::string_view kBytesSent = "cid.p2p.bytes_sent";
constexpr std::string_view kMessages = "cid.p2p.messages";
constexpr std::string_view kMsgBytes = "cid.tune.msg_bytes";
constexpr std::string_view kSymOk = "cid.tune.sym_ok";
constexpr std::string_view kSymFail = "cid.tune.sym_fail";
constexpr std::string_view kPlanRate = "cid.tune.plan_ns_per_byte";
constexpr std::string_view kFlatRate = "cid.tune.flat_ns_per_byte";
constexpr std::string_view kCollBlock = "cid.tune.coll_block_bytes";
constexpr std::string_view kCollGroup = "cid.tune.coll_group";
constexpr std::string_view kCollO2M = "cid.tune.coll_o2m";
constexpr std::string_view kCollM2O = "cid.tune.coll_m2o";
constexpr std::string_view kCollA2A = "cid.tune.coll_a2a";
constexpr std::string_view kRtt = "cid.reliability.rtt_seconds";
constexpr std::string_view kWallRtt = "cid.reliability.wall_rtt_seconds";
constexpr std::string_view kTimeout = "cid.reliability.timeout_seconds";

/// Cross-rank accumulation of one histogram series.
struct HistAccum {
  std::array<std::uint64_t, obs::Histogram::kBucketCount> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void merge(const obs::Histogram& h) {
    if (h.count() == 0) return;
    for (int i = 0; i < obs::Histogram::kBucketCount; ++i) {
      buckets[static_cast<std::size_t>(i)] +=
          h.buckets()[static_cast<std::size_t>(i)];
    }
    min = count == 0 ? h.min() : std::min(min, h.min());
    max = count == 0 ? h.max() : std::max(max, h.max());
    count += h.count();
    sum += h.sum();
  }

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  double quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    const double want = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (int i = 0; i < obs::Histogram::kBucketCount; ++i) {
      cumulative += buckets[static_cast<std::size_t>(i)];
      if (static_cast<double>(cumulative) >= want) {
        return obs::Histogram::bucket_upper_bound(i);
      }
    }
    return obs::Histogram::bucket_upper_bound(obs::Histogram::kBucketCount -
                                              1);
  }
};

void write_number(std::string& out, double value) {
  char buffer[64];
  // %.17g round-trips doubles exactly; trim to the shortest representation
  // the parser reproduces so files stay human-readable.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

double number_or(const obs::Json& site, std::string_view key,
                 double fallback) {
  const obs::Json* value = site.find(key);
  return value != nullptr && value->kind == obs::Json::Kind::Number
             ? value->number
             : fallback;
}

}  // namespace

std::string normalize_site(std::string_view site) {
  const std::size_t colon = site.rfind(':');
  const std::string_view path =
      colon == std::string_view::npos ? site : site.substr(0, colon);
  const std::size_t slash = path.find_last_of("/\\");
  if (slash == std::string_view::npos) return std::string(site);
  return std::string(site.substr(slash + 1));
}

double histogram_quantile(const obs::Histogram& histogram, double q) {
  HistAccum accum;
  accum.merge(histogram);
  return accum.quantile(q);
}

const SiteProfile* Profile::find(std::string_view site) const {
  auto it = sites.find(normalize_site(site));
  return it == sites.end() ? nullptr : &it->second;
}

std::string Profile::to_json() const {
  std::string out = "{\n  \"tune_profile\": 1,\n  \"sites\": {";
  bool first = true;
  for (const auto& [site, p] : sites) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + site + "\": {";
    out += "\"messages\": " + std::to_string(p.messages);
    out += ", \"bytes\": " + std::to_string(p.bytes);
    out += ", \"min_bytes\": ";
    write_number(out, p.min_bytes);
    out += ", \"mean_bytes\": ";
    write_number(out, p.mean_bytes);
    out += ", \"max_bytes\": ";
    write_number(out, p.max_bytes);
    out += std::string(", \"symmetric_ok\": ") +
           (p.symmetric_ok ? "true" : "false");
    out += ", \"plan_ns_per_byte\": ";
    write_number(out, p.plan_ns_per_byte);
    out += ", \"flat_ns_per_byte\": ";
    write_number(out, p.flat_ns_per_byte);
    out += ", \"rtt_p50\": ";
    write_number(out, p.rtt_p50);
    out += ", \"rtt_p99\": ";
    write_number(out, p.rtt_p99);
    out += ", \"wall_rtt_p99\": ";
    write_number(out, p.wall_rtt_p99);
    out += ", \"min_timeout\": ";
    write_number(out, p.min_timeout);
    out += ", \"coll_calls\": " + std::to_string(p.coll_calls);
    out += ", \"coll_mean_bytes\": ";
    write_number(out, p.coll_mean_bytes);
    out += ", \"coll_max_bytes\": ";
    write_number(out, p.coll_max_bytes);
    out += ", \"coll_group\": ";
    write_number(out, p.coll_group);
    out += ", \"coll_o2m\": " + std::to_string(p.coll_o2m);
    out += ", \"coll_m2o\": " + std::to_string(p.coll_m2o);
    out += ", \"coll_a2a\": " + std::to_string(p.coll_a2a);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

Result<Profile> Profile::parse(std::string_view json_text) {
  auto parsed = obs::parse_json(json_text);
  if (!parsed.is_ok()) return parsed.status();
  const obs::Json& root = parsed.value();
  if (root.kind != obs::Json::Kind::Object ||
      root.find("tune_profile") == nullptr) {
    return Status(ErrorCode::InvalidArgument,
                  "not a tune profile (missing \"tune_profile\" marker)");
  }
  Profile profile;
  const obs::Json* sites = root.find("sites");
  if (sites == nullptr) return profile;
  if (sites->kind != obs::Json::Kind::Object) {
    return Status(ErrorCode::InvalidArgument,
                  "tune profile \"sites\" must be an object");
  }
  for (const auto& [site, value] : sites->object) {
    if (value.kind != obs::Json::Kind::Object) {
      return Status(ErrorCode::InvalidArgument,
                    "tune profile site '" + site + "' must be an object");
    }
    SiteProfile p;
    p.messages = static_cast<std::uint64_t>(number_or(value, "messages", 0));
    p.bytes = static_cast<std::uint64_t>(number_or(value, "bytes", 0));
    p.min_bytes = number_or(value, "min_bytes", 0);
    p.mean_bytes = number_or(value, "mean_bytes", 0);
    p.max_bytes = number_or(value, "max_bytes", 0);
    const obs::Json* sym = value.find("symmetric_ok");
    p.symmetric_ok = sym != nullptr && sym->kind == obs::Json::Kind::Bool &&
                     sym->boolean;
    p.plan_ns_per_byte = number_or(value, "plan_ns_per_byte", 0);
    p.flat_ns_per_byte = number_or(value, "flat_ns_per_byte", 0);
    p.rtt_p50 = number_or(value, "rtt_p50", 0);
    p.rtt_p99 = number_or(value, "rtt_p99", 0);
    p.wall_rtt_p99 = number_or(value, "wall_rtt_p99", 0);
    p.min_timeout = number_or(value, "min_timeout", 0);
    p.coll_calls =
        static_cast<std::uint64_t>(number_or(value, "coll_calls", 0));
    p.coll_mean_bytes = number_or(value, "coll_mean_bytes", 0);
    p.coll_max_bytes = number_or(value, "coll_max_bytes", 0);
    p.coll_group = number_or(value, "coll_group", 0);
    p.coll_o2m = static_cast<std::uint64_t>(number_or(value, "coll_o2m", 0));
    p.coll_m2o = static_cast<std::uint64_t>(number_or(value, "coll_m2o", 0));
    p.coll_a2a = static_cast<std::uint64_t>(number_or(value, "coll_a2a", 0));
    profile.sites[normalize_site(site)] = p;
  }
  return profile;
}

void Profile::harvest(const obs::MetricsRegistry& registry) {
  struct SiteAccum {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t sym_ok = 0;
    std::uint64_t sym_fail = 0;
    std::uint64_t coll_o2m = 0;
    std::uint64_t coll_m2o = 0;
    std::uint64_t coll_a2a = 0;
    HistAccum coll_block;
    HistAccum coll_group;
    HistAccum msg_bytes;
    HistAccum plan_rate;
    HistAccum flat_rate;
    HistAccum rtt;
    HistAccum wall_rtt;
    HistAccum timeout;
  };
  std::map<std::string, SiteAccum> accums;

  for (const auto& row : registry.counters()) {
    const std::string site = normalize_site(row.key.site);
    if (row.key.metric == kMessages) {
      accums[site].messages += row.value;
    } else if (row.key.metric == kBytesSent) {
      accums[site].bytes += row.value;
    } else if (row.key.metric == kSymOk) {
      accums[site].sym_ok += row.value;
    } else if (row.key.metric == kSymFail) {
      accums[site].sym_fail += row.value;
    } else if (row.key.metric == kCollO2M) {
      accums[site].coll_o2m += row.value;
    } else if (row.key.metric == kCollM2O) {
      accums[site].coll_m2o += row.value;
    } else if (row.key.metric == kCollA2A) {
      accums[site].coll_a2a += row.value;
    }
  }
  for (const auto& row : registry.histograms()) {
    const std::string site = normalize_site(row.key.site);
    if (row.key.metric == kMsgBytes) {
      accums[site].msg_bytes.merge(row.histogram);
    } else if (row.key.metric == kCollBlock) {
      accums[site].coll_block.merge(row.histogram);
    } else if (row.key.metric == kCollGroup) {
      accums[site].coll_group.merge(row.histogram);
    } else if (row.key.metric == kPlanRate) {
      accums[site].plan_rate.merge(row.histogram);
    } else if (row.key.metric == kFlatRate) {
      accums[site].flat_rate.merge(row.histogram);
    } else if (row.key.metric == kRtt) {
      accums[site].rtt.merge(row.histogram);
    } else if (row.key.metric == kWallRtt) {
      accums[site].wall_rtt.merge(row.histogram);
    } else if (row.key.metric == kTimeout) {
      accums[site].timeout.merge(row.histogram);
    }
  }

  for (const auto& [site, a] : accums) {
    // Only directive sites with observed traffic get profile rows; registry
    // rows from subsystem labels ("world", "rt") carry no site to tune.
    if (a.messages == 0 && a.msg_bytes.count == 0 && a.rtt.count == 0 &&
        a.coll_block.count == 0) {
      continue;
    }
    SiteProfile p;
    p.messages = a.messages;
    p.bytes = a.bytes;
    p.min_bytes = a.msg_bytes.min;
    p.mean_bytes = a.msg_bytes.mean();
    p.max_bytes = a.msg_bytes.max;
    if (p.mean_bytes == 0.0 && a.messages > 0) {
      p.mean_bytes =
          static_cast<double>(a.bytes) / static_cast<double>(a.messages);
    }
    p.symmetric_ok = a.sym_ok > 0 && a.sym_fail == 0;
    p.plan_ns_per_byte = a.plan_rate.mean();
    p.flat_ns_per_byte = a.flat_rate.mean();
    p.rtt_p50 = a.rtt.quantile(0.50);
    p.rtt_p99 = a.rtt.quantile(0.99);
    p.wall_rtt_p99 = a.wall_rtt.quantile(0.99);
    p.min_timeout = a.timeout.count == 0 ? 0.0 : a.timeout.min;
    p.coll_calls = a.coll_block.count;
    p.coll_mean_bytes = a.coll_block.mean();
    p.coll_max_bytes = a.coll_block.max;
    p.coll_group = a.coll_group.mean();
    p.coll_o2m = a.coll_o2m;
    p.coll_m2o = a.coll_m2o;
    p.coll_a2a = a.coll_a2a;
    sites[site] = p;
  }
}

}  // namespace cid::tune
