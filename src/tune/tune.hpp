// cid::tune — the adaptive layer that closes the loop from measurements
// back into lowering decisions (ROADMAP "Adaptive runtime").
//
//   translate -> analyze -> run -> observe -> TUNE -> (feeds the next run)
//
// Modes, selected by the CID_TUNE environment variable at every rt::run:
//
//   off     (default, or unset) — zero behavior change. No probe fires, no
//           decision is consulted; the dispatch paths are byte-identical to
//           the untuned runtime (pinned by golden fingerprints).
//   record  — enables cid::obs recording for the run, arms the extra tune
//           probes (message sizes, symmetry checks, pack-rate calibration,
//           reliability RTTs), and at the end of the run harvests the
//           metrics registry into the in-memory profile; if CID_TUNE_PROFILE
//           names a file the profile is (re)written there.
//   on      — loads CID_TUNE_PROFILE (if set; otherwise keeps the profile a
//           same-process record run left in memory) and lets the decision
//           functions below steer dispatch: target(auto) resolution,
//           small-message aggregation, pack-plan vs flat-copy, reliability
//           timeout derivation. Every decision is a pure function of
//           (profile, machine model, static facts), so tuned runs stay
//           deterministic and SPMD-consistent across ranks.
//
// Layering: tune sits directly above obs (cid_common + cid_simnet +
// cid_obs); cid_rt, cid_net and cid_core link it. See docs/TUNING.md for
// the decision tables and docs/ARCHITECTURE.md for the layer DAG.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "simnet/machine_model.hpp"
#include "tune/coll.hpp"
#include "tune/profile.hpp"

namespace cid::tune {

enum class Mode { Off, Record, On };

/// The lowering the target(auto) policy can pick. Mirrors core::Target but
/// lives here so tune stays below core in the layer DAG; core maps it back.
enum class Lowering { Mpi2Side, Mpi1Side, Shmem };

std::string_view lowering_name(Lowering lowering) noexcept;

/// Static facts about a directive site that the profile cannot know — they
/// come from the current run, but are identical on every rank.
struct SiteFacts {
  bool reliability = false;    ///< reliability clause present
  bool single_process = false; ///< all ranks share this OS process
};

/// One explained decision (what `cidt tune explain` prints).
struct Choice {
  Lowering lowering = Lowering::Mpi2Side;
  std::string reason;
};

// ---------------------------------------------------------------------------
// Decision functions: pure, deterministic, SPMD-consistent.
// ---------------------------------------------------------------------------

/// Resolve target(auto) for a site from its observed size profile and the
/// machine model's per-message cost tables. `profile` may be null (site
/// never recorded): falls back to MPI two-sided, the static default.
Choice auto_target(const SiteProfile* profile,
                   const simnet::MachineModel& model, const SiteFacts& facts);

/// Sub-threshold sends within a region are batched into one wire envelope
/// per destination. The threshold tracks the eager threshold: messages at
/// or below a quarter of it are dominated by per-envelope overheads.
std::size_t aggregation_threshold(const simnet::MachineModel& model) noexcept;

/// True when a message of `payload_bytes` from a site with this profile
/// should join the per-destination aggregation buffer.
bool should_aggregate(const SiteProfile* profile, std::size_t payload_bytes,
                      const simnet::MachineModel& model) noexcept;

/// Pack-plan vs flat-copy for a non-contiguous layout: send the whole
/// extent as flat bytes when the measured copy-rate crossover says the
/// single memcpy beats the per-run gather and the layout is dense enough
/// that the extra wire bytes stay bounded (extent <= 2x payload).
bool use_flat_copy(const SiteProfile* profile, std::size_t payload_per_elem,
                   std::size_t extent_per_elem) noexcept;

/// Derived reliability timeout: never longer than the clause value, pulled
/// down to 4x the observed ack RTT p99 when the profile has data. Identical
/// on sender and receiver (both evaluate the same profile + clause).
double tuned_timeout(const SiteProfile* profile,
                     double clause_timeout) noexcept;

// ---------------------------------------------------------------------------
// The process-global tuner.
// ---------------------------------------------------------------------------

class Tuner {
 public:
  static Tuner& global();

  /// Called at the start of every rt::run: re-reads CID_TUNE /
  /// CID_TUNE_PROFILE, loads the profile file in `on` mode, and in `record`
  /// mode clears the metrics registry and enables obs recording.
  void prepare();

  /// Called at the end of every rt::run: in `record` mode harvests the
  /// registry into the profile and persists it to CID_TUNE_PROFILE.
  void finish();

  Mode mode() const noexcept { return mode_; }
  bool recording() const noexcept { return mode_ == Mode::Record; }
  bool active() const noexcept { return mode_ == Mode::On; }

  const Profile& profile() const noexcept { return profile_; }
  void set_profile(Profile profile) { profile_ = std::move(profile); }

  /// Profile row for a (raw, unnormalized) site key; null when unknown.
  const SiteProfile* site(std::string_view site_key) const {
    return profile_.find(site_key);
  }

  /// max over sites of 4 * wall_rtt_p99 / min_timeout — the wall-clock
  /// multiplier that makes every site's real-loss deadline cover its
  /// observed wall RTT. Empty when no site recorded wall RTTs.
  std::optional<double> derived_timeout_scale() const;

  /// CID_COLL operator override for one collective, parsed once per rt::run
  /// by prepare() (the engine hot path reads this without env access or
  /// locking). Empty when the collective has no override. Works in every
  /// CID_TUNE mode — it is an operator knob, not a profile decision.
  std::optional<CollAlgo> coll_override(CollOp op) const noexcept {
    return coll_overrides_[static_cast<std::size_t>(op)];
  }

 private:
  Mode mode_ = Mode::Off;
  Profile profile_;
  CollOverrides coll_overrides_{};
  bool obs_was_enabled_ = false;  ///< restore after a record run
};

/// Cheap global gates for probe sites (one indirection, no env access).
inline bool recording() noexcept { return Tuner::global().recording(); }
inline bool active() noexcept { return Tuner::global().active(); }

}  // namespace cid::tune
