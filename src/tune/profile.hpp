// cid::tune profiles — the persistent record of what cid::obs measured at
// each directive site, and the sole input to every tuning decision.
//
// A profile is a map from a *normalized* site key ("file.cpp:42", directory
// stripped so profiles survive checkout moves) to one SiteProfile of
// aggregated observations: message-size statistics, whether every rank's
// buffers sat in the symmetric heap, measured pack-copy rates, and observed
// reliability round-trip quantiles. Profiles are harvested from the
// cid::obs::MetricsRegistry at the end of a CID_TUNE=record run and
// persisted as JSON via CID_TUNE_PROFILE, so later runs warm-start
// (see docs/TUNING.md for the schema and the decision tables).
//
// Determinism: harvesting reads the registry's key-ordered snapshots and
// serialization walks a std::map, so the same run produces byte-identical
// profile files; decisions are pure functions of (profile, machine model).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace cid::tune {

/// Aggregated observations for one directive site, across all ranks of the
/// recorded run(s).
struct SiteProfile {
  std::uint64_t messages = 0;  ///< logical messages sent from this site
  std::uint64_t bytes = 0;     ///< logical payload bytes sent
  double min_bytes = 0.0;      ///< smallest observed message payload
  double mean_bytes = 0.0;
  double max_bytes = 0.0;
  /// True when every executing rank found every listed rbuf in the
  /// symmetric heap (a requirement for the SHMEM lowering) and the run kept
  /// all ranks in one process.
  bool symmetric_ok = false;
  /// Measured host copy rates for non-contiguous layouts (wall nanoseconds
  /// per byte; 0 = never calibrated). `plan` drives the compiled pack-plan
  /// gather, `flat` a single whole-extent memcpy.
  double plan_ns_per_byte = 0.0;
  double flat_ns_per_byte = 0.0;
  /// Observed reliability ack round-trips (virtual seconds; 0 = no data).
  double rtt_p50 = 0.0;
  double rtt_p99 = 0.0;
  /// Observed wall-clock round-trip p99 (seconds; real-loss transports).
  double wall_rtt_p99 = 0.0;
  /// Smallest configured reliability timeout seen at this site (virtual
  /// seconds), the denominator for the derived CID_NET_TIMEOUT_SCALE.
  double min_timeout = 0.0;
  /// Collective directive observations (CID_TUNE=record probes in
  /// core/collective.cpp). `coll_*_bytes` are PER-BLOCK payload bytes — the
  /// unit the algorithm selector (tune/coll.hpp) decides on. Pattern counts
  /// record how often each directive pattern executed at this site.
  std::uint64_t coll_calls = 0;    ///< collective invocations observed
  double coll_mean_bytes = 0.0;    ///< mean per-block payload bytes
  double coll_max_bytes = 0.0;     ///< largest per-block payload bytes
  double coll_group = 0.0;         ///< mean executing-group size (ranks)
  std::uint64_t coll_o2m = 0;      ///< OneToMany (bcast-shaped) calls
  std::uint64_t coll_m2o = 0;      ///< ManyToOne (gather-shaped) calls
  std::uint64_t coll_a2a = 0;      ///< AllToAll calls

  bool operator==(const SiteProfile&) const = default;
};

struct Profile {
  std::map<std::string, SiteProfile> sites;  ///< normalized site -> profile

  bool empty() const noexcept { return sites.empty(); }

  /// Lookup by any site spelling; the key is normalized first.
  const SiteProfile* find(std::string_view site) const;

  /// Deterministic JSON serialization (schema in docs/TUNING.md).
  std::string to_json() const;

  /// Parse a profile document previously produced by to_json().
  static Result<Profile> parse(std::string_view json_text);

  /// Merge the metric rows of a finished record run into this profile
  /// (replacing any previous data for sites the run touched).
  void harvest(const obs::MetricsRegistry& registry);
};

/// "dir/sub/file.cpp:42" -> "file.cpp:42". Site keys embed
/// std::source_location file names, which are machine-specific absolute
/// paths; profiles key on the basename so they travel between checkouts.
std::string normalize_site(std::string_view site);

/// Quantile estimate from a log2-bucketed histogram: the upper bound of the
/// first bucket whose cumulative count reaches q * total. Coarse (a factor
/// of 2) but deterministic across hosts, which the decision layer needs.
double histogram_quantile(const obs::Histogram& histogram, double q);

}  // namespace cid::tune
