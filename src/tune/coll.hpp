// Collective algorithm selection — the decision half of the cid::mpi::coll
// engine (the algorithms themselves live in src/mpi/coll.*; tune stays below
// mpi in the layer DAG, so mpi links this, never the reverse).
//
// Every collective entry point asks choose_collective() which algorithm to
// run. The choice is a PURE function of
//
//   (per-block payload bytes, total payload bytes, nprocs, machine model,
//    optional recorded site profile)
//
// so it is deterministic and SPMD-consistent: every rank of a group computes
// the same inputs, hence the same algorithm. Three layers of precedence,
// resolved by the engine (mpi/coll.cpp):
//
//   1. CID_COLL=<collective>:<algo>[,...] env overrides, parsed once per
//      rt::run by Tuner::prepare() (tune.hpp) — the operator's big hammer;
//   2. a tune hint: under CID_TUNE=on the directive lowering
//      (core/collective.cpp) re-evaluates choose_collective() with the
//      site's recorded profile, steering borderline sites by their observed
//      size distribution instead of the instantaneous call;
//   3. the static cost model below, fed by the current call's exact shape.
//
// An override or hint that is inapplicable (e.g. recursive-doubling
// allgather on a non-power-of-two group) falls back to the cost model
// rather than erroring, so CID_COLL=allgather:rd is safe to export
// globally. docs/PERF.md tabulates the algorithms and the thresholds this
// cost model produces on the reference machine.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

#include "common/error.hpp"
#include "simnet/machine_model.hpp"
#include "tune/profile.hpp"

namespace cid::tune {

/// The seven collective operations the engine dispatches.
enum class CollOp {
  Bcast,
  Gather,
  Scatter,
  Allgather,
  Alltoall,
  Reduce,
  Allreduce,
};
inline constexpr int kCollOpCount = 7;

/// Algorithm identifiers. Each CollOp accepts a subset (coll_algo_valid):
///   bcast      binomial | vandegeijn
///   gather     flat | binomial
///   scatter    flat | binomial
///   allgather  ring | rd               (rd: power-of-two groups only)
///   alltoall   flat | bruck | pairwise
///   reduce     binomial | rabenseifner
///   allreduce  reduce_bcast | rd | ring
enum class CollAlgo {
  Binomial,           ///< classic binomial tree (bcast/gather/scatter/reduce)
  VanDeGeijn,         ///< bcast: binomial scatter + ring allgather
  Flat,               ///< the pre-engine fan-in/out (reference path)
  Ring,               ///< allgather ring; allreduce ring RS+AG
  RecursiveDoubling,  ///< "rd": log2 P full-exchange steps
  Rabenseifner,       ///< reduce: ring reduce-scatter + binomial gather
  ReduceBcast,        ///< allreduce reference: reduce then bcast
  Bruck,              ///< alltoall in ceil(log2 P) steps
  PairwiseWindow,     ///< alltoall pairwise with a bounded request window
};

std::string_view coll_op_name(CollOp op) noexcept;
std::string_view coll_algo_name(CollAlgo algo) noexcept;
std::optional<CollOp> parse_coll_op(std::string_view name) noexcept;
std::optional<CollAlgo> parse_coll_algo(std::string_view name) noexcept;

/// True when `algo` implements `op` and applies to a group of `nprocs`
/// ranks. (`rd` allgather needs a power of two; everything else is shape-
/// independent — non-power-of-two reduce/allreduce fold internally.)
bool coll_algo_valid(CollOp op, CollAlgo algo, int nprocs) noexcept;

/// The shape of one collective invocation, as the cost model sees it.
struct CollShape {
  std::size_t block_bytes = 0;  ///< payload bytes of one per-rank block
  std::size_t total_bytes = 0;  ///< payload bytes of the whole vector
  int nprocs = 1;               ///< group size
};

/// One selection with its explanation (a static string: the chooser runs on
/// every collective call of every rank, so it must not allocate).
struct CollChoice {
  CollAlgo algo = CollAlgo::Binomial;
  const char* reason = "";
};

/// Pick the cheapest applicable algorithm for `op` under the machine model.
/// With a profile (CID_TUNE=on steering), the observed mean block size
/// replaces the instantaneous one so a site with varied sizes keeps one
/// stable algorithm; without, the call's exact shape decides.
CollChoice choose_collective(CollOp op, const CollShape& shape,
                             const simnet::MachineModel& model,
                             const SiteProfile* profile = nullptr);

/// Per-op algorithm overrides, indexed by static_cast<int>(CollOp).
using CollOverrides = std::array<std::optional<CollAlgo>, kCollOpCount>;

/// Parse a CID_COLL value: comma-separated `<collective>:<algo>` pairs,
/// e.g. "allreduce:ring,alltoall:bruck". Unknown collectives or algorithms
/// (or an algorithm that never implements that collective) are errors;
/// shape-dependent applicability is checked per call instead.
Result<CollOverrides> parse_coll_overrides(std::string_view text);

}  // namespace cid::tune
