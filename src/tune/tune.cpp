#include "tune/tune.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/autotrace.hpp"
#include "obs/obs.hpp"

namespace cid::tune {

namespace {

/// Estimated virtual cost of moving one `bytes`-sized message end to end on
/// each lowering, including the completion work its sync point pays per
/// message. The sync-side terms are deliberately conservative (the
/// consolidated fence / quiet is charged in full per message), so a
/// lowering only wins when it wins even for a one-message epoch.
double mpi2_cost(const simnet::PathCosts& p, double bytes) noexcept {
  double cost = p.send_overhead + p.recv_overhead + p.per_message_gap +
                bytes / p.injection_bytes_per_second + p.latency +
                p.waitall_per_request;
  if (bytes > static_cast<double>(p.eager_threshold_bytes)) {
    cost += p.rendezvous_extra_latency;
  }
  return cost;
}

double mpi1_cost(const simnet::PathCosts& p, double bytes) noexcept {
  return p.send_overhead + p.per_message_gap +
         bytes / p.injection_bytes_per_second + p.latency +
         p.waitall_per_request + p.waitall_base;
}

double shmem_cost(const simnet::PathCosts& p, double bytes) noexcept {
  return p.send_overhead + p.per_message_gap +
         bytes / p.injection_bytes_per_second + p.latency + p.wait_single +
         p.waitall_base;
}

std::string us(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f us", seconds * 1e6);
  return buffer;
}

}  // namespace

std::string_view lowering_name(Lowering lowering) noexcept {
  switch (lowering) {
    case Lowering::Mpi2Side: return "TARGET_COMM_MPI_2SIDE";
    case Lowering::Mpi1Side: return "TARGET_COMM_MPI_1SIDE";
    case Lowering::Shmem: return "TARGET_COMM_SHMEM";
  }
  return "TARGET_COMM_UNKNOWN";
}

Choice auto_target(const SiteProfile* profile,
                   const simnet::MachineModel& model,
                   const SiteFacts& facts) {
  if (facts.reliability) {
    return {Lowering::Mpi2Side,
            "reliability clause requires the MPI two-sided protocol"};
  }
  if (!facts.single_process) {
    return {Lowering::Mpi2Side,
            "ranks span processes: windows and the symmetric heap are "
            "in-process facilities"};
  }
  if (profile == nullptr || profile->messages == 0) {
    return {Lowering::Mpi2Side,
            "no recorded size profile for this site; static default"};
  }
  const double bytes = profile->mean_bytes;
  const double two_sided = mpi2_cost(model.mpi_two_sided, bytes);
  const double one_sided = mpi1_cost(model.mpi_one_sided, bytes);
  const double shm = shmem_cost(model.shmem, bytes);

  if (profile->symmetric_ok && shm <= two_sided && shm <= one_sided) {
    return {Lowering::Shmem,
            "buffers are symmetric and a " +
                std::to_string(static_cast<std::uint64_t>(bytes)) +
                " B put costs " + us(shm) + " vs " + us(two_sided) +
                " two-sided"};
  }
  if (one_sided < two_sided) {
    return {Lowering::Mpi1Side,
            "mean " + std::to_string(static_cast<std::uint64_t>(bytes)) +
                " B beats the eager threshold: a one-sided put (" +
                us(one_sided) + ") avoids the rendezvous round-trip (" +
                us(two_sided) + ")"};
  }
  return {Lowering::Mpi2Side,
          "two-sided eager is cheapest at mean " +
              std::to_string(static_cast<std::uint64_t>(bytes)) + " B (" +
              us(two_sided) + " vs " + us(one_sided) + " one-sided)"};
}

std::size_t aggregation_threshold(const simnet::MachineModel& model) noexcept {
  const std::size_t eager = model.mpi_two_sided.eager_threshold_bytes;
  return std::clamp<std::size_t>(eager / 4, 64, 4096);
}

bool should_aggregate(const SiteProfile* profile, std::size_t payload_bytes,
                      const simnet::MachineModel& model) noexcept {
  if (profile == nullptr || profile->messages == 0) return false;
  const auto threshold = static_cast<double>(aggregation_threshold(model));
  return profile->max_bytes <= threshold &&
         static_cast<double>(payload_bytes) <= threshold;
}

bool use_flat_copy(const SiteProfile* profile, std::size_t payload_per_elem,
                   std::size_t extent_per_elem) noexcept {
  if (profile == nullptr || profile->plan_ns_per_byte <= 0.0 ||
      profile->flat_ns_per_byte <= 0.0) {
    return false;
  }
  if (payload_per_elem == 0 || extent_per_elem > 2 * payload_per_elem) {
    return false;  // too sparse: the wire-byte inflation outweighs the copy
  }
  return profile->flat_ns_per_byte * static_cast<double>(extent_per_elem) <
         profile->plan_ns_per_byte * static_cast<double>(payload_per_elem);
}

double tuned_timeout(const SiteProfile* profile,
                     double clause_timeout) noexcept {
  if (profile == nullptr || profile->rtt_p99 <= 0.0) return clause_timeout;
  const double derived = 4.0 * profile->rtt_p99;
  return derived < clause_timeout ? derived : clause_timeout;
}

Tuner& Tuner::global() {
  // Leaked singleton, like the obs registries: probe sites may fire during
  // static teardown of user code.
  static Tuner* instance = new Tuner();
  return *instance;
}

void Tuner::prepare() {
  const char* env = std::getenv("CID_TUNE");
  Mode mode = Mode::Off;
  if (env != nullptr) {
    const std::string_view value(env);
    if (value == "record") mode = Mode::Record;
    if (value == "on") mode = Mode::On;
  }
  mode_ = mode;

  coll_overrides_ = CollOverrides{};
  if (const char* coll = std::getenv("CID_COLL");
      coll != nullptr && *coll != '\0') {
    auto parsed = parse_coll_overrides(coll);
    if (!parsed.is_ok()) {
      throw CidError(ErrorCode::InvalidArgument, parsed.status().message());
    }
    coll_overrides_ = parsed.value();
  }

  if (mode_ == Mode::On) {
    const char* path = std::getenv("CID_TUNE_PROFILE");
    if (path != nullptr && *path != '\0') {
      std::ifstream in(path);
      if (in) {
        std::ostringstream text;
        text << in.rdbuf();
        auto parsed = Profile::parse(text.str());
        // A malformed or missing file keeps whatever profile is already in
        // memory (e.g. from a same-process record run).
        if (parsed.is_ok()) profile_ = std::move(parsed).take();
      }
    }
  }

  if (mode_ == Mode::Record) {
    // Record exactly this run: the harvest must not see metric rows from
    // earlier runs in the process.
    obs_was_enabled_ = obs::enabled();
    obs::clear();
    obs::set_enabled(true);
  }
}

void Tuner::finish() {
  if (mode_ != Mode::Record) return;
  profile_.harvest(obs::MetricsRegistry::global());
  const char* path = std::getenv("CID_TUNE_PROFILE");
  if (path != nullptr && *path != '\0') {
    std::ofstream out(path);
    out << profile_.to_json();
  }
  if (!obs_was_enabled_ && !obs::autotrace_active()) {
    obs::set_enabled(false);
  }
}

std::optional<double> Tuner::derived_timeout_scale() const {
  std::optional<double> scale;
  for (const auto& [site, p] : profile_.sites) {
    if (p.wall_rtt_p99 <= 0.0 || p.min_timeout <= 0.0) continue;
    const double s = 4.0 * p.wall_rtt_p99 / p.min_timeout;
    if (!scale.has_value() || s > *scale) scale = s;
  }
  return scale;
}

}  // namespace cid::tune
