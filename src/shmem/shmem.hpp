// miniSHMEM: the OpenSHMEM-style one-sided API the directive's
// TARGET_COMM_SHMEM lowering generates. PEs are the ranks of the surrounding
// SPMD region; buffers handed to put/get must live in the symmetric heap
// (shmem::malloc_sym), matching the allocation requirement the paper states
// for SHMEM-targeted sbuf/rbuf clauses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "shmem/heap.hpp"

namespace cid::shmem {

int my_pe();
int n_pes();

/// Collective symmetric allocation (every PE, same sizes, same order).
void* malloc_sym(std::size_t bytes);

/// Typed symmetric allocation of `count` elements of T.
template <typename T>
T* malloc_of(std::size_t count) {
  return static_cast<T*>(malloc_sym(count * sizeof(T)));
}

/// True when `ptr` is a symmetric-heap address on the calling PE (what the
/// directive layer uses to validate SHMEM-targeted buffers).
bool is_symmetric(const void* ptr);

/// Runtime-internal: key-coordinated symmetric allocation of `count` 64-bit
/// flag words. Every PE asking for the same key gets the same heap offset,
/// independent of call order, and PEs that never ask need not participate —
/// unlike malloc_sym's collective ordering discipline. Zero-initialized.
std::uint64_t* shared_flags(const std::string& key, std::size_t count);

/// shmem_putmem: copy `bytes` from local `source` into `dest` (a symmetric
/// address) on PE `pe`. Returns after local injection; remote completion is
/// observed via quiet()/barrier_all()/wait_until().
void putmem(void* dest, const void* source, std::size_t bytes, int pe);

/// Size-named puts, mirroring SHMEM's type-size call selection (the compiler
/// picks the one matching the buffer's element size — paper Section III-A).
void put8(void* dest, const void* source, std::size_t count, int pe);
void put16(void* dest, const void* source, std::size_t count, int pe);
void put32(void* dest, const void* source, std::size_t count, int pe);
void put64(void* dest, const void* source, std::size_t count, int pe);

/// Typed put of `count` elements.
template <typename T>
void put(T* dest, const T* source, std::size_t count, int pe) {
  putmem(dest, source, count * sizeof(T), pe);
}

/// 8-byte single-value put with release semantics — safe to use as a
/// completion flag observed by wait_until() on the target PE.
void put_value64(std::uint64_t* dest, std::uint64_t value, int pe);

/// shmem_getmem: blocking copy of `bytes` from `source` on PE `pe` into the
/// local `dest` (round-trip latency charged).
void getmem(void* dest, const void* source, std::size_t bytes, int pe);

/// shmem_fence: order my puts per destination (cheap; our transport already
/// delivers in order, the call charges the API cost).
void fence();

/// shmem_quiet: block until all my outgoing puts are complete on their
/// targets.
void quiet();

/// shmem_barrier_all: quiet + world barrier + incoming completion.
void barrier_all();

/// shmem_broadcast64-style broadcast: `root` PE's `source` (count 64-bit
/// words) lands in every PE's `dest` (symmetric). Collective over all PEs;
/// includes completion (every PE returns with the data in place).
void broadcast64(void* dest, const void* source, std::size_t count,
                 int root);

/// shmem_collect64-style gather-to-all: each PE contributes `count` 64-bit
/// words; `dest` (symmetric, n_pes*count words) receives every PE's block in
/// PE order on every PE.
void fcollect64(void* dest, const void* source, std::size_t count);

/// Comparison operator for wait_until.
enum class Cmp { Eq, Ne, Gt, Ge, Lt, Le };

/// shmem_wait_until on a 64-bit symmetric flag word written remotely with
/// put_value64. Blocks, then advances this PE's clock past the delivery time
/// of the satisfying put.
void wait_until(const std::uint64_t* ivar, Cmp cmp, std::uint64_t value);

/// wait_until with a virtual-time deadline of now + `timeout`. Returns true
/// when the condition held (clock advanced past the satisfying put, like
/// wait_until). Returns false — clock advanced to the deadline — when an
/// incoming put lands with a delivery time past the deadline while the
/// condition is still false. Deadlines are event-driven: only incoming
/// traffic can carry virtual time past the deadline, so with no incoming
/// puts at all this blocks like wait_until (absence of an event is
/// unobservable in virtual time).
bool wait_until_for(const std::uint64_t* ivar, Cmp cmp, std::uint64_t value,
                    simnet::SimTime timeout);

}  // namespace cid::shmem
