#include "shmem/heap.hpp"
#include <atomic>

#include <algorithm>

#include "common/error.hpp"

namespace cid::shmem {

namespace {
constexpr std::size_t kAlignment = 16;

std::size_t align_up(std::size_t value) {
  return (value + kAlignment - 1) & ~(kAlignment - 1);
}
}  // namespace

SymmetricHeap::SymmetricHeap(int npes, std::size_t capacity)
    : capacity_(capacity), pes_(npes), calls_per_pe_(npes, 0) {
  for (auto& pe : pes_) {
    // Zero-initialized: synchronization flags handed out by the directive
    // layer must read 0 before the first remote put, without requiring any
    // racy local initialization after allocation.
    pe.storage = std::make_unique<std::byte[]>(capacity);
  }
}

void* SymmetricHeap::allocate(int pe, std::size_t bytes) {
  CID_REQUIRE(bytes > 0, ErrorCode::InvalidArgument,
              "shmem allocation of zero bytes");
  std::lock_guard<std::mutex> lock(mutex_);
  auto& state = pes_.at(pe);
  const std::size_t call_index = calls_per_pe_.at(pe)++;
  if (call_index < allocation_log_.size()) {
    CID_REQUIRE(allocation_log_[call_index] == bytes, ErrorCode::RuntimeFault,
                "asymmetric shmem allocation: PE " + std::to_string(pe) +
                    " requested " + std::to_string(bytes) + " bytes, another "
                    "PE requested " +
                    std::to_string(allocation_log_[call_index]) +
                    " at the same allocation index");
  } else {
    CID_REQUIRE(call_index == allocation_log_.size(), ErrorCode::RuntimeFault,
                "shmem allocation sequence out of order");
    allocation_log_.push_back(bytes);
  }
  const std::size_t offset = state.allocated;
  const std::size_t padded = align_up(bytes);
  CID_REQUIRE(offset + padded <= capacity_ - shared_used_,
              ErrorCode::RuntimeFault,
              "symmetric heap exhausted (capacity " +
                  std::to_string(capacity_) + " bytes)");
  state.allocated = offset + padded;
  return state.storage.get() + offset;
}

void* SymmetricHeap::shared_allocate(int pe, const std::string& key,
                                     std::size_t bytes) {
  CID_REQUIRE(bytes > 0, ErrorCode::InvalidArgument,
              "shmem shared allocation of zero bytes");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = shared_offsets_.find(key);
  if (it == shared_offsets_.end()) {
    const std::size_t padded = align_up(bytes);
    shared_used_ += padded;
    CID_REQUIRE(shared_used_ <= capacity_, ErrorCode::RuntimeFault,
                "symmetric heap shared arena exhausted");
    const std::size_t offset = capacity_ - shared_used_;
    // The down-growing internal arena must not collide with user blocks.
    for (const auto& state : pes_) {
      CID_REQUIRE(state.allocated <= offset, ErrorCode::RuntimeFault,
                  "symmetric heap exhausted (user + internal allocations "
                  "collide)");
    }
    it = shared_offsets_.emplace(key, offset).first;
  }
  return pes_.at(pe).storage.get() + it->second;
}

bool SymmetricHeap::contains(int pe, const void* ptr) const noexcept {
  const auto* p = static_cast<const std::byte*>(ptr);
  const auto& state = pes_[pe];
  return p >= state.storage.get() && p < state.storage.get() + capacity_;
}

std::byte* SymmetricHeap::translate(int pe, const void* local, int target_pe,
                                    std::size_t bytes) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& mine = pes_.at(pe);
  const auto* p = static_cast<const std::byte*>(local);
  CID_REQUIRE(p >= mine.storage.get() &&
                  p + bytes <= mine.storage.get() + capacity_,
              ErrorCode::InvalidArgument,
              "address is not a symmetric heap object of this PE");
  const std::size_t offset = static_cast<std::size_t>(p - mine.storage.get());
  return pes_.at(target_pe).storage.get() + offset;
}

std::size_t SymmetricHeap::allocated(int pe) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pes_.at(pe).allocated;
}

void SymmetricHeap::record_put(int pe, int target_pe,
                               simnet::SimTime delivery) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& target = pes_.at(target_pe);
  target.incoming_max = std::max(target.incoming_max, delivery);
  auto& source = pes_.at(pe);
  source.outgoing_max = std::max(source.outgoing_max, delivery);
}

simnet::SimTime SymmetricHeap::incoming_max(int pe) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pes_.at(pe).incoming_max;
}

void SymmetricHeap::reset_incoming(int pe) {
  std::lock_guard<std::mutex> lock(mutex_);
  pes_.at(pe).incoming_max = 0.0;
}

void SymmetricHeap::raise_fence_floor(int pe) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& state = pes_.at(pe);
  state.fence_floor = std::max(state.fence_floor, state.outgoing_max);
}

simnet::SimTime SymmetricHeap::fence_floor(int pe) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pes_.at(pe).fence_floor;
}

void SymmetricHeap::record_word_write(int target_pe, const void* word,
                                      std::uint64_t value,
                                      simnet::SimTime delivery) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& target = pes_.at(target_pe);
  const auto* p = static_cast<const std::byte*>(word);
  const auto offset = static_cast<std::size_t>(p - target.storage.get());
  target.word_writes[offset].push_back({value, delivery});
}

std::optional<simnet::SimTime> SymmetricHeap::consume_word_write(
    int pe, const void* word,
    const std::function<bool(std::uint64_t)>& satisfied) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& state = pes_.at(pe);
  const auto* p = static_cast<const std::byte*>(word);
  const auto offset = static_cast<std::size_t>(p - state.storage.get());
  auto it = state.word_writes.find(offset);
  if (it == state.word_writes.end()) return std::nullopt;
  auto& history = it->second;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (satisfied(history[i].value)) {
      const simnet::SimTime delivery = history[i].delivery;
      history.erase(history.begin(),
                    history.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      if (history.empty()) state.word_writes.erase(it);
      return delivery;
    }
  }
  return std::nullopt;
}

simnet::SimTime SymmetricHeap::outgoing_max(int pe) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pes_.at(pe).outgoing_max;
}

namespace {
std::atomic<std::size_t> g_default_capacity{SymmetricHeap::kDefaultCapacity};
}  // namespace

void SymmetricHeap::set_default_capacity(std::size_t bytes) noexcept {
  g_default_capacity.store(bytes);
}

std::size_t SymmetricHeap::default_capacity() noexcept {
  return g_default_capacity.load();
}

SymmetricHeap& SymmetricHeap::of_world(rt::RankCtx& ctx) {
  // The symmetric heap is one in-process allocation every rank addresses
  // directly; ranks in other OS processes cannot map it.
  ctx.world().require_single_process("the shmem symmetric heap");
  auto heap = ctx.world().shared_object<SymmetricHeap>(
      "shmem.heap", ctx.nranks(), default_capacity());
  return *heap;
}

}  // namespace cid::shmem
