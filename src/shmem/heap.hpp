// The SHMEM symmetric heap: every PE allocates the same sequence of blocks at
// identical offsets, so a local pointer identifies the corresponding remote
// object on any PE (the property the paper's sbuf/rbuf clauses rely on when
// the directive targets SHMEM).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "rt/runtime.hpp"
#include "simnet/machine_model.hpp"

namespace cid::shmem {

/// Per-World heap state; all PEs share one instance via the World registry.
class SymmetricHeap {
 public:
  SymmetricHeap(int npes, std::size_t capacity);

  /// Collective bump allocation: every PE must call with the same size in the
  /// same order. Returns the calling PE's local block.
  void* allocate(int pe, std::size_t bytes);

  /// Key-coordinated allocation for runtime-internal symmetric objects
  /// (directive completion flags): the first caller of a key fixes its
  /// offset in a World-shared table, so every PE gets the same offset
  /// REGARDLESS of call order — and PEs that never touch the key need not
  /// call at all. Carved from the top of the heap, growing down.
  void* shared_allocate(int pe, const std::string& key, std::size_t bytes);

  /// Translate a local symmetric address to the same offset on `target_pe`.
  /// Throws when `local` is not inside the calling PE's heap.
  std::byte* translate(int pe, const void* local, int target_pe,
                       std::size_t bytes) const;

  bool contains(int pe, const void* ptr) const noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t allocated(int pe) const;

  // --- virtual-time bookkeeping for puts --------------------------------
  /// Record a put delivered to `target_pe` at `delivery` injected by `pe`
  /// whose wire completes at `delivery`.
  void record_put(int pe, int target_pe, simnet::SimTime delivery);
  /// Latest delivery time of any put targeting `pe` (epoch so far).
  simnet::SimTime incoming_max(int pe) const;
  /// Reset the incoming mark of `pe` (consumed at a barrier).
  void reset_incoming(int pe);
  /// Latest wire-completion time of puts injected by `pe` (for quiet()).
  simnet::SimTime outgoing_max(int pe) const;

  /// Ordering floor for `pe`'s subsequent puts: fence() raises it to the
  /// PE's outgoing max so a post-fence flag put is never delivered (in
  /// virtual time) before the data puts it publishes.
  void raise_fence_floor(int pe);
  simnet::SimTime fence_floor(int pe) const;

  // --- flag-word write history ------------------------------------------
  // Every put_value64 appends (value, delivery) to the target word's
  // history, in the writer's program order. wait_until() consumes the first
  // entry that satisfies its comparison and advances the waiter's clock to
  // THAT write's delivery time — not to a racy "latest delivery so far"
  // mark, which would make virtual time depend on how far ahead the sender
  // happens to be in host wall time. Deterministic as long as each flag
  // word has a single writer (the directive runtime's per-source flag slots
  // guarantee this).
  /// Append a write of `value` to the word at `word` on `target_pe`.
  void record_word_write(int target_pe, const void* word, std::uint64_t value,
                         simnet::SimTime delivery);
  /// Pop history up to and including the first write satisfying
  /// `satisfied`, returning its delivery time; nullopt (and no change) when
  /// no recorded write satisfies it — the wait was met by older local state.
  std::optional<simnet::SimTime> consume_word_write(
      int pe, const void* word,
      const std::function<bool(std::uint64_t)>& satisfied);

  /// Default capacity per PE unless overridden before first use.
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  /// Override the per-PE capacity used when a World's heap is first created
  /// (call before the SPMD region, or before any symmetric allocation).
  static void set_default_capacity(std::size_t bytes) noexcept;
  static std::size_t default_capacity() noexcept;

  /// Fetch (or lazily create) the heap of the current World.
  static SymmetricHeap& of_world(rt::RankCtx& ctx);

 private:
  struct WordWrite {
    std::uint64_t value;
    simnet::SimTime delivery;
  };

  struct PeState {
    std::unique_ptr<std::byte[]> storage;
    std::size_t allocated = 0;
    simnet::SimTime incoming_max = 0.0;
    simnet::SimTime outgoing_max = 0.0;
    simnet::SimTime fence_floor = 0.0;
    /// Unconsumed remote writes per flag word (offset into this PE's block).
    std::map<std::size_t, std::deque<WordWrite>> word_writes;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<PeState> pes_;
  /// Allocation sizes observed from PE 0's sequence, used to detect
  /// asymmetric allocation bugs on other PEs.
  std::vector<std::size_t> allocation_log_;
  std::vector<std::size_t> calls_per_pe_;
  /// Key-coordinated internal allocations (offsets from the heap top).
  std::map<std::string, std::size_t> shared_offsets_;
  std::size_t shared_used_ = 0;
};

}  // namespace cid::shmem
