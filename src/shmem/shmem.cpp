#include "shmem/shmem.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace cid::shmem {

namespace {

const simnet::PathCosts& path(const rt::RankCtx& ctx) {
  return ctx.model().shmem;
}

/// Inject one put: charge injection overhead, copy the data into the remote
/// block, and record the delivery time. The final 8-byte-aligned word is
/// stored atomically so a flag word written by put_value64 (or the tail of a
/// data put) can be safely observed by wait_until's reader.
void do_put(rt::RankCtx& ctx, void* dest, const void* source,
            std::size_t bytes, int pe) {
  CID_REQUIRE(pe >= 0 && pe < ctx.nranks(), ErrorCode::InvalidArgument,
              "put target PE out of range");
  CID_REQUIRE(bytes > 0, ErrorCode::InvalidArgument, "zero-byte put");
  auto& heap = SymmetricHeap::of_world(ctx);
  std::byte* remote = heap.translate(ctx.rank(), dest, pe, bytes);

  const auto& costs = path(ctx);
  const simnet::SimTime injection_start = ctx.clock().now();
  ctx.charge_compute(costs.injection_time(bytes));
  const simnet::SimTime delivery =
      std::max({costs.delivery_time(injection_start, bytes),
                ctx.clock().now() + costs.latency,
                heap.fence_floor(ctx.rank())});

  std::memcpy(remote, source, bytes);
  std::atomic_thread_fence(std::memory_order_release);

  heap.record_put(ctx.rank(), pe, delivery);
  ctx.world().notify_rank(pe);
  if (obs::enabled()) {
    obs::count("shmem.put.messages", "heap", ctx.rank());
    obs::count("shmem.put.bytes", "heap", ctx.rank(), bytes);
  }
}

bool compare(std::uint64_t observed, Cmp cmp, std::uint64_t value) {
  switch (cmp) {
    case Cmp::Eq: return observed == value;
    case Cmp::Ne: return observed != value;
    case Cmp::Gt: return observed > value;
    case Cmp::Ge: return observed >= value;
    case Cmp::Lt: return observed < value;
    case Cmp::Le: return observed <= value;
  }
  return false;
}

}  // namespace

int my_pe() { return rt::current_ctx().rank(); }
int n_pes() { return rt::current_ctx().nranks(); }

void* malloc_sym(std::size_t bytes) {
  auto& ctx = rt::current_ctx();
  return SymmetricHeap::of_world(ctx).allocate(ctx.rank(), bytes);
}

bool is_symmetric(const void* ptr) {
  auto& ctx = rt::current_ctx();
  return SymmetricHeap::of_world(ctx).contains(ctx.rank(), ptr);
}

std::uint64_t* shared_flags(const std::string& key, std::size_t count) {
  auto& ctx = rt::current_ctx();
  return static_cast<std::uint64_t*>(SymmetricHeap::of_world(ctx)
      .shared_allocate(ctx.rank(), key, count * sizeof(std::uint64_t)));
}

void putmem(void* dest, const void* source, std::size_t bytes, int pe) {
  do_put(rt::current_ctx(), dest, source, bytes, pe);
}

void put8(void* dest, const void* source, std::size_t count, int pe) {
  putmem(dest, source, count, pe);
}
void put16(void* dest, const void* source, std::size_t count, int pe) {
  putmem(dest, source, count * 2, pe);
}
void put32(void* dest, const void* source, std::size_t count, int pe) {
  putmem(dest, source, count * 4, pe);
}
void put64(void* dest, const void* source, std::size_t count, int pe) {
  putmem(dest, source, count * 8, pe);
}

void put_value64(std::uint64_t* dest, std::uint64_t value, int pe) {
  auto& ctx = rt::current_ctx();
  CID_REQUIRE(pe >= 0 && pe < ctx.nranks(), ErrorCode::InvalidArgument,
              "put target PE out of range");
  auto& heap = SymmetricHeap::of_world(ctx);
  std::byte* remote =
      heap.translate(ctx.rank(), dest, pe, sizeof(std::uint64_t));

  const auto& costs = path(ctx);
  ctx.charge_compute(costs.send_overhead + costs.per_message_gap);
  // A flag put ordered behind a fence is delivered no earlier than the data
  // puts it publishes (fence_floor); see fence().
  const simnet::SimTime delivery =
      std::max(costs.delivery_time(ctx.clock().now(), sizeof(std::uint64_t)),
               heap.fence_floor(ctx.rank()));

  // History before the store: once a waiter can observe the value, the
  // write's delivery time must already be recorded for it to consume.
  heap.record_word_write(pe, remote, value, delivery);
  std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(remote))
      .store(value, std::memory_order_release);
  heap.record_put(ctx.rank(), pe, delivery);
  ctx.world().notify_rank(pe);
}

void getmem(void* dest, const void* source, std::size_t bytes, int pe) {
  auto& ctx = rt::current_ctx();
  CID_REQUIRE(pe >= 0 && pe < ctx.nranks(), ErrorCode::InvalidArgument,
              "get source PE out of range");
  auto& heap = SymmetricHeap::of_world(ctx);
  const std::byte* remote = heap.translate(ctx.rank(), source, pe, bytes);
  const auto& costs = path(ctx);
  // Blocking get pays a round trip plus streaming.
  ctx.charge_compute(costs.send_overhead + 2.0 * costs.latency +
                     static_cast<simnet::SimTime>(bytes) /
                         costs.bytes_per_second);
  std::atomic_thread_fence(std::memory_order_acquire);
  std::memcpy(dest, remote, bytes);
}

void fence() {
  // Transport delivers puts in order per destination, so fence only charges
  // its (small) call cost — but it does establish ordering: every later put
  // is delivered no earlier than the puts issued before the fence.
  auto& ctx = rt::current_ctx();
  ctx.charge_compute(path(ctx).wait_single);
  SymmetricHeap::of_world(ctx).raise_fence_floor(ctx.rank());
}

void quiet() {
  auto& ctx = rt::current_ctx();
  auto& heap = SymmetricHeap::of_world(ctx);
  ctx.charge_compute(path(ctx).waitall_base);
  ctx.clock().advance_to(heap.outgoing_max(ctx.rank()));
}

void barrier_all() {
  auto& ctx = rt::current_ctx();
  auto& heap = SymmetricHeap::of_world(ctx);
  // Complete my outgoing puts, synchronize, then absorb incoming deliveries.
  ctx.charge_compute(path(ctx).waitall_base);
  ctx.clock().advance_to(heap.outgoing_max(ctx.rank()));
  ctx.barrier();
  ctx.clock().advance_to(heap.incoming_max(ctx.rank()));
  heap.reset_incoming(ctx.rank());
}

void broadcast64(void* dest, const void* source, std::size_t count,
                 int root) {
  auto& ctx = rt::current_ctx();
  const int me = ctx.rank();
  const int npes = ctx.nranks();
  auto* flags = shared_flags("shmem.broadcast64", 1);
  static_cast<void>(flags);
  if (me == root) {
    if (dest != source) std::memcpy(dest, source, count * 8);
    for (int pe = 0; pe < npes; ++pe) {
      if (pe != me) putmem(dest, source, count * 8, pe);
    }
  }
  // Completion: SHMEM collectives synchronize via the barrier-style pSync
  // protocol; model it with the runtime barrier (absorbs the deliveries).
  barrier_all();
}

void fcollect64(void* dest, const void* source, std::size_t count) {
  auto& ctx = rt::current_ctx();
  const int me = ctx.rank();
  const int npes = ctx.nranks();
  auto* out = static_cast<std::byte*>(dest);
  const std::size_t block = count * 8;
  std::memcpy(out + static_cast<std::size_t>(me) * block, source, block);
  for (int pe = 0; pe < npes; ++pe) {
    if (pe == me) continue;
    putmem(out + static_cast<std::size_t>(me) * block, source, block, pe);
  }
  barrier_all();
}

void wait_until(const std::uint64_t* ivar, Cmp cmp, std::uint64_t value) {
  auto& ctx = rt::current_ctx();
  auto& heap = SymmetricHeap::of_world(ctx);
  CID_REQUIRE(heap.contains(ctx.rank(), ivar), ErrorCode::InvalidArgument,
              "wait_until flag must live in the symmetric heap");
  std::atomic_ref<const std::uint64_t> flag(*ivar);
  ctx.world().wait_on_signal(ctx.rank(), [&] {
    return compare(flag.load(std::memory_order_acquire), cmp, value);
  });
  ctx.charge_compute(path(ctx).wait_single);
  // Advance to the delivery time of the specific write that first satisfies
  // the comparison — NOT to the latest delivery observed so far, which
  // depends on how far ahead the writer has raced in host wall time and
  // would make virtual time scheduler-dependent. No recorded write means
  // the wait was satisfied by older (already-charged) state.
  const auto delivery = heap.consume_word_write(
      ctx.rank(), ivar,
      [&](std::uint64_t v) { return compare(v, cmp, value); });
  if (delivery.has_value()) ctx.clock().advance_to(*delivery);
}

bool wait_until_for(const std::uint64_t* ivar, Cmp cmp, std::uint64_t value,
                    simnet::SimTime timeout) {
  auto& ctx = rt::current_ctx();
  auto& heap = SymmetricHeap::of_world(ctx);
  CID_REQUIRE(heap.contains(ctx.rank(), ivar), ErrorCode::InvalidArgument,
              "wait_until_for flag must live in the symmetric heap");
  CID_REQUIRE(timeout >= 0.0, ErrorCode::InvalidArgument,
              "wait_until_for timeout must be non-negative");
  const simnet::SimTime deadline = ctx.clock().now() + timeout;
  std::atomic_ref<const std::uint64_t> flag(*ivar);
  bool satisfied = false;
  // Event-driven deadline: wake on every incoming put; the timer "fires"
  // once some delivery carries virtual time past the deadline while the
  // condition is still false.
  ctx.world().wait_on_signal(ctx.rank(), [&] {
    satisfied = compare(flag.load(std::memory_order_acquire), cmp, value);
    return satisfied || heap.incoming_max(ctx.rank()) > deadline;
  });
  ctx.charge_compute(path(ctx).wait_single);
  if (satisfied) {
    const auto delivery = heap.consume_word_write(
        ctx.rank(), ivar,
        [&](std::uint64_t v) { return compare(v, cmp, value); });
    if (delivery.has_value()) ctx.clock().advance_to(*delivery);
    return true;
  }
  ctx.clock().advance_to(deadline);
  return false;
}

}  // namespace cid::shmem
