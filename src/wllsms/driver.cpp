#include "wllsms/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/error.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"
#include "wllsms/comm_directive.hpp"
#include "wllsms/comm_original.hpp"

namespace cid::wllsms {

std::vector<int> Topology::lsms_members(int i) const {
  CID_REQUIRE(valid(), ErrorCode::InvalidArgument, "invalid topology");
  CID_REQUIRE(i >= 0 && i < num_lsms, ErrorCode::InvalidArgument,
              "LSMS instance out of range");
  const int k = ranks_per_lsms();
  std::vector<int> members(static_cast<std::size_t>(k));
  for (int m = 0; m < k; ++m) members[static_cast<std::size_t>(m)] = 1 + i * k + m;
  return members;
}

int Topology::lsms_of(int world_rank) const noexcept {
  if (world_rank <= 0) return -1;
  return (world_rank - 1) / ranks_per_lsms();
}

std::vector<int> Topology::paper_nprocs_sweep() {
  std::vector<int> sweep;
  for (int k = 2; k <= 21; ++k) sweep.push_back(1 + 16 * k);
  return sweep;
}

const char* variant_name(Variant variant) noexcept {
  switch (variant) {
    case Variant::Original: return "original";
    case Variant::OriginalWaitall: return "original+waitall";
    case Variant::DirectiveMpi: return "directive-mpi2side";
    case Variant::DirectiveShmem: return "directive-shmem";
    case Variant::DirectiveMpi1Side: return "directive-mpi1side";
  }
  return "?";
}

namespace {

core::Target target_of(Variant variant) {
  switch (variant) {
    case Variant::DirectiveMpi: return core::Target::Mpi2Side;
    case Variant::DirectiveShmem: return core::Target::Shmem;
    case Variant::DirectiveMpi1Side: return core::Target::Mpi1Side;
    default:
      throw CidError(ErrorCode::InvalidArgument,
                     "variant has no directive target");
  }
}

bool is_directive(Variant variant) {
  return variant == Variant::DirectiveMpi ||
         variant == Variant::DirectiveShmem ||
         variant == Variant::DirectiveMpi1Side;
}

/// Deterministic spin configuration for one WL step.
std::vector<double> make_spins(int natoms, std::uint64_t seed, int step) {
  Rng rng(seed ^ (0xabcdULL + static_cast<std::uint64_t>(step) * 77));
  std::vector<double> ev(3 * static_cast<std::size_t>(natoms));
  for (double& v : ev) v = rng.next_double() * 2.0 - 1.0;
  return ev;
}

/// The phase harness: barrier-align clocks, run the phase, report the
/// makespan beyond the alignment barrier.
double measure(const ExperimentConfig& config,
               const std::function<void(rt::RankCtx&)>& phase) {
  CID_REQUIRE((Topology{config.nprocs, config.num_lsms}.valid()),
              ErrorCode::InvalidArgument,
              "nprocs must be 1 + num_lsms * k with k >= 1");
  rt::RunOptions options;
  options.interceptor = config.interceptor;
  auto result = rt::run(
      config.nprocs, config.model,
      [&](rt::RankCtx& ctx) {
        ctx.barrier();
        phase(ctx);
        if (config.per_rank_epilogue) config.per_rank_epilogue(ctx);
      },
      options);
  return result.makespan() - config.model.barrier_cost(config.nprocs);
}

}  // namespace

double run_single_atom_distribution(const ExperimentConfig& config,
                                    Variant variant) {
  const Topology topo{config.nprocs, config.num_lsms};
  CID_REQUIRE(variant != Variant::OriginalWaitall, ErrorCode::InvalidArgument,
              "the Waitall validation variant applies to the spin scatter");

  // Stage capacities covering the largest atom.
  std::size_t max_pot = 0;
  std::size_t max_core = 0;
  for (int a = 0; a < config.natoms; ++a) {
    max_pot = std::max(max_pot, 2 * atom_potential_rows(a));
    max_core = std::max(max_core, 2 * atom_core_rows(a));
  }

  return measure(config, [&](rt::RankCtx& ctx) {
    const int me = ctx.rank();
    const int inst = topo.lsms_of(me);
    const int k = topo.ranks_per_lsms();

    if (variant == Variant::Original) {
      if (inst < 0) return;  // WL rank idles in this phase
      auto world = mpi::Comm::world();
      const auto members = topo.lsms_members(inst);
      for (int a = 0; a < config.natoms; ++a) {
        const int owner_index = a % k;
        if (owner_index == 0) continue;  // privileged already owns it
        const int from = members[0];
        const int to = members[static_cast<std::size_t>(owner_index)];
        if (me == from) {
          AtomData atom = make_atom(a, config.seed);
          transfer_atom_original(world, from, to, atom);
        } else if (me == to) {
          AtomData atom;  // small initial allocation; resized on receive
          atom.resize_potential(64);
          atom.resize_core(4);
          transfer_atom_original(world, from, to, atom);
        }
      }
      return;
    }

    // Directive variants: one symmetric staging area per rank (valid for
    // every target; required by TARGET_COMM_SHMEM). Collective allocation —
    // all ranks, including the WL rank, participate.
    AtomStage stage = make_symmetric_stage(max_pot, max_core);
    const core::Target target = target_of(variant);
    if (inst < 0) return;

    const auto members = topo.lsms_members(inst);
    for (int a = 0; a < config.natoms; ++a) {
      const int owner_index = a % k;
      if (owner_index == 0) continue;
      const int from = members[0];
      const int to = members[static_cast<std::size_t>(owner_index)];
      if (me == from) {
        const AtomData atom = make_atom(a, config.seed);
        load_stage(atom, stage);
      } else {
        stage.potential_count = 2 * atom_potential_rows(a);
        stage.core_count = 2 * atom_core_rows(a);
      }
      // Every LIZ member reaches the directive; guards select from/to.
      transfer_atom_directive(from, to, stage, target);
    }
  });
}

double run_spin_scatter(const ExperimentConfig& config, Variant variant) {
  const Topology topo{config.nprocs, config.num_lsms};

  return measure(config, [&](rt::RankCtx& ctx) {
    const int me = ctx.rank();
    const int inst = topo.lsms_of(me);

    if (!is_directive(variant)) {
      // One sub-communicator per LSMS instance (collective over world).
      auto world = mpi::Comm::world();
      auto sub = world.split(inst < 0 ? -1 : inst, me);
      if (inst < 0) return;
      const EvecSync sync = variant == Variant::Original
                                ? EvecSync::WaitLoop
                                : EvecSync::Waitall;
      std::vector<double> local_evec(
          3 * static_cast<std::size_t>(config.natoms));
      for (int step = 0; step < config.wl_steps; ++step) {
        std::vector<double> ev;
        if (sub.rank() == 0) {
          ev = make_spins(config.natoms, config.seed, step);
        }
        set_evec_original(sub, ev, config.natoms, local_evec, sync);
      }
      return;
    }

    // Directive variants: symmetric evec storage (same offset on every PE).
    double* local_evec =
        shmem::malloc_of<double>(3 * static_cast<std::size_t>(config.natoms));
    const core::Target target = target_of(variant);
    if (inst < 0) return;

    const auto members = topo.lsms_members(inst);
    for (int step = 0; step < config.wl_steps; ++step) {
      std::vector<double> ev;
      if (me == members[0]) {
        ev = make_spins(config.natoms, config.seed, step);
      }
      set_evec_directive(members, ev, config.natoms, local_evec, target, {},
                         config.reliability);
    }
  });
}

double run_spin_with_compute(const ExperimentConfig& config, Variant variant) {
  const Topology topo{config.nprocs, config.num_lsms};

  return measure(config, [&](rt::RankCtx& ctx) {
    const int me = ctx.rank();
    const int inst = topo.lsms_of(me);

    if (!is_directive(variant)) {
      auto world = mpi::Comm::world();
      auto sub = world.split(inst < 0 ? -1 : inst, me);
      if (inst < 0) return;
      const EvecSync sync = variant == Variant::Original
                                ? EvecSync::WaitLoop
                                : EvecSync::Waitall;
      std::vector<double> local_evec(
          3 * static_cast<std::size_t>(config.natoms));
      const int num_local =
          spin_local_count(sub.rank(), config.natoms, sub.size());
      for (int step = 0; step < config.wl_steps; ++step) {
        std::vector<double> ev;
        if (sub.rank() == 0) {
          ev = make_spins(config.natoms, config.seed, step);
        }
        set_evec_original(sub, ev, config.natoms, local_evec, sync);
        // Sequential: computation starts only after the scatter completed.
        for (int p = 0; p < num_local; ++p) {
          calculate_core_states(ctx, config.compute, p);
        }
      }
      return;
    }

    double* local_evec =
        shmem::malloc_of<double>(3 * static_cast<std::size_t>(config.natoms));
    const core::Target target = target_of(variant);
    if (inst < 0) return;

    const auto members = topo.lsms_members(inst);
    for (int step = 0; step < config.wl_steps; ++step) {
      std::vector<double> ev;
      if (me == members[0]) {
        ev = make_spins(config.natoms, config.seed, step);
      }
      // Overlapped: the initial energy computation runs inside the
      // directive's overlap block while later transfers are in flight.
      set_evec_directive(
          members, ev, config.natoms, local_evec, target,
          [&](int type) { calculate_core_states(ctx, config.compute, type); },
          config.reliability);
    }
  });
}

double run_wl_roundtrip(const ExperimentConfig& config, core::Target target,
                        double* energy_out) {
  using core::Clauses;
  using core::ExprValue;
  using core::Pattern;
  using core::Region;
  using core::buf;
  using core::buf_n;

  const Topology topo{config.nprocs, config.num_lsms};
  const int k = topo.ranks_per_lsms();
  auto wl_energy = std::make_shared<double>(0.0);

  const double makespan = measure(config, [&](rt::RankCtx& ctx) {
    const int me = ctx.rank();
    const int inst = topo.lsms_of(me);
    const std::size_t spin_elems = 3 * static_cast<std::size_t>(config.natoms);

    // Symmetric state: the WL->privileged staging area, the per-member spin
    // vectors, the per-LIZ energy slots and the WL-side totals.
    double* spin_stage = shmem::malloc_of<double>(spin_elems);
    double* local_evec = shmem::malloc_of<double>(spin_elems);
    double* member_energies =
        shmem::malloc_of<double>(static_cast<std::size_t>(k));
    double* wl_slots = shmem::malloc_of<double>(
        static_cast<std::size_t>(config.num_lsms) + 1);
    double my_energy[1] = {0.0};
    double liz_total[1] = {0.0};
    ctx.barrier();

    double accumulated = 0.0;
    for (int step = 0; step < config.wl_steps; ++step) {
      // --- Phase A: WL rank scatters the spin set to each privileged rank.
      std::vector<double> ev;
      if (me == 0) ev = make_spins(config.natoms, config.seed, step);
      const double* ev_base = me == 0 ? ev.data() : spin_stage;
      for (int i = 0; i < config.num_lsms; ++i) {
        const int priv = topo.lsms_members(i)[0];
        core::comm_p2p(
            Clauses()
                .sender(0)
                .receiver(priv)
                .sendwhen([me]() -> ExprValue { return me == 0; })
                .receivewhen([me, priv]() -> ExprValue { return me == priv; })
                .count(static_cast<ExprValue>(spin_elems))
                .target(target)
                .sbuf(buf_n(const_cast<double*>(ev_base), spin_elems, "ev"))
                .rbuf(buf_n(spin_stage, spin_elems, "spin_stage")));
      }

      // --- Phase B: Listing 7 inside each LIZ, with overlapped energies.
      my_energy[0] = 0.0;
      if (inst >= 0) {
        const auto members = topo.lsms_members(inst);
        std::vector<double> liz_ev;
        if (me == members[0]) {
          liz_ev.assign(spin_stage, spin_stage + spin_elems);
        }
        set_evec_directive(
            members, liz_ev, config.natoms, local_evec, target,
            [&](int type) {
              my_energy[0] +=
                  calculate_core_states(ctx, config.compute, type);
            });
      }

      // --- Phase C: MANY_TO_ONE inside each LIZ (group = LSMS instance,
      // WL rank excluded by a negative color; group rank 0 = privileged).
      core::comm_collective(
          Clauses()
              .pattern(Pattern::ManyToOne)
              .root(0)
              .group([inst]() -> ExprValue { return inst; })
              .count(1)
              .target(target)
              .sbuf(buf(my_energy))
              .rbuf(buf_n(member_energies, static_cast<std::size_t>(k))));
      liz_total[0] = 0.0;
      if (inst >= 0 && me == topo.lsms_members(inst)[0]) {
        for (int m = 0; m < k; ++m) liz_total[0] += member_energies[m];
      }

      // --- Phase D: MANY_TO_ONE over {WL, privileged ranks} back to WL.
      core::comm_collective(
          Clauses()
              .pattern(Pattern::ManyToOne)
              .root(0)
              .group([&]() -> ExprValue {
                if (me == 0) return 0;
                return inst >= 0 && me == topo.lsms_members(inst)[0] ? 0 : -1;
              })
              .count(1)
              .target(target)
              .sbuf(buf(liz_total))
              .rbuf(buf_n(wl_slots,
                          static_cast<std::size_t>(config.num_lsms) + 1)));
      if (me == 0) {
        for (int i = 1; i <= config.num_lsms; ++i) {
          accumulated += wl_slots[i];
        }
      }
    }
    if (me == 0) *wl_energy = accumulated;
  });

  if (energy_out != nullptr) *energy_out = *wl_energy;
  return makespan;
}

}  // namespace cid::wllsms
