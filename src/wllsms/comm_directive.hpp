// The DIRECTIVE versions of the WL-LSMS communication paths, reproduced
// from the paper:
//  - Listing 5: single-atom-data transfer as one comm_parameters region with
//    three comm_p2p instances (scalars as one composite; vr+rhotot as a
//    buffer list; ec+nc+lc+kc as a buffer list).
//  - Listing 7: the setEvec scatter as a comm_parameters region with
//    max_comm_iter/place_sync(END_PARAM_REGION) and the initial energy
//    computation overlapped inside the comm_p2p block.
//
// Retargeting is exactly one argument (the target clause) — the paper's
// portability claim.
#pragma once

#include <functional>

#include "core/core.hpp"
#include "wllsms/atom.hpp"

namespace cid::wllsms {

/// Flat staging view of one atom's payloads, as the directive version
/// organizes them ("we organized the scalar data into a single structure,
/// and grouped each matrix according to its communicated data payload").
/// For TARGET_COMM_SHMEM the pointers must reference symmetric objects;
/// make_symmetric_stage() provides that.
struct AtomStage {
  AtomScalarData* scalars = nullptr;
  double* vr = nullptr;
  double* rhotot = nullptr;
  double* ec = nullptr;
  int* nc = nullptr;
  int* lc = nullptr;
  int* kc = nullptr;
  std::size_t potential_count = 0;  ///< elements in vr / rhotot (2*t)
  std::size_t core_count = 0;       ///< elements in ec/nc/lc/kc (2*tc)
  std::size_t potential_capacity = 0;  ///< allocated elements in vr/rhotot
  std::size_t core_capacity = 0;       ///< allocated elements in ec/nc/lc/kc
};

/// Stage pointing directly into an AtomData (usable for MPI targets).
AtomStage stage_of(AtomData& atom);

/// Collective symmetric staging area sized for the largest atom; every rank
/// must call with the same capacities.
AtomStage make_symmetric_stage(std::size_t max_potential_count,
                               std::size_t max_core_count);

/// Copy an atom into / out of a stage (local, not communication).
void load_stage(const AtomData& atom, AtomStage& stage);
void unload_stage(const AtomStage& stage, AtomData& atom);

/// Listing 5: transfer the staged atom from world rank `from` to world rank
/// `to` using the given target. ALL ranks must call (SPMD directive
/// discipline); non-participants are excluded by sendwhen/receivewhen.
void transfer_atom_directive(int from, int to, const AtomStage& stage,
                             core::Target target);

/// Optional reliability protocol for the setEvec scatter: when enabled, the
/// region carries a reliability(timeout_us, max_retries) clause and every
/// transfer runs the ack/timeout/retransmit protocol (TARGET_COMM_MPI_2SIDE
/// only). Used by the fault-injection experiments.
struct EvecReliability {
  bool enabled = false;
  long long timeout_us = 0;  ///< initial retransmit timeout, microseconds
  int max_retries = 0;       ///< retransmissions before giving a pair up
};

/// Listing 7: scatter the spin configuration within one LIZ.
/// `members` are the world ranks of the LIZ (members[0] is privileged and
/// holds `ev`, 3 doubles per type); each other member receives its owned
/// types into local_evec[3*type..]. `overlap` (may be empty) is invoked on
/// the receiving rank inside the directive's overlap block, once per owned
/// type, while transfers are in flight.
void set_evec_directive(const std::vector<int>& members,
                        const std::vector<double>& ev, int num_types,
                        double* local_evec, core::Target target,
                        const std::function<void(int type)>& overlap = {},
                        const EvecReliability& reliability = {});

}  // namespace cid::wllsms
