#include "wllsms/compute.hpp"

#include <cmath>

namespace cid::wllsms {

double calculate_core_states(rt::RankCtx& ctx, const ComputeModel& model,
                             int atom_type) {
  ctx.charge_compute(model.core_state_time());
  // A small deterministic numeric kernel standing in for the spin-
  // independent part of the multiple scattering solve, seeded by the atom
  // type only (the overlapped computation must not touch the in-flight
  // spin vector).
  double energy = 0.0;
  double x = 0.1 + 0.05 * static_cast<double>(atom_type % 16);
  for (int i = 0; i < 16; ++i) {
    x = std::fma(-0.4, x * x, x) + 1e-3;
    energy += x / static_cast<double>(i + 1);
  }
  return energy;
}

}  // namespace cid::wllsms
