// The ORIGINAL WL-LSMS communication paths, reproduced from the paper:
//  - Listing 4: single-atom-data transfer via MPI_Pack / blocking send /
//    MPI_Unpack (with the receiver-side resize logic).
//  - Listing 6: the setEvec random-spin-configuration scatter via
//    MPI_Isend / MPI_Irecv with a per-request MPI_Wait loop.
//  - The paper's validation variant (Section IV-B): identical to Listing 6
//    but with one MPI_Waitall per loop instead of the Wait loop.
#pragma once

#include <vector>

#include "mpi/mpi.hpp"
#include "wllsms/atom.hpp"

namespace cid::wllsms {

/// Listing 4: transfer `atom` from comm rank `from` to comm rank `to`.
/// Both ranks call this; others return immediately. The receiver's `atom`
/// is resized when the incoming matrices are larger than its allocation.
void transfer_atom_original(const mpi::Comm& comm, int from, int to,
                            AtomData& atom);

/// How the spin vectors of `num_types` atom types map onto the members of
/// one LSMS/LIZ communicator: types go round-robin to the non-privileged
/// members 1..size-1 (the privileged rank 0 holds the full `ev` array).
int spin_owner(int type, int comm_size) noexcept;

/// Number of types owned by `comm_rank` (its num_local in Listing 6).
int spin_local_count(int comm_rank, int num_types, int comm_size) noexcept;

/// Completion flavour of the original setEvec.
enum class EvecSync {
  WaitLoop,  ///< Listing 6: loop of MPI_Wait over every request
  Waitall,   ///< the paper's validation variant: one MPI_Waitall
};

/// Listing 6: scatter the random spin configuration. On comm rank 0, `ev`
/// holds 3*num_types doubles; every other member receives its owned types
/// into `local_evec` (3 doubles per owned type, in ownership order).
void set_evec_original(const mpi::Comm& comm, const std::vector<double>& ev,
                       int num_types, std::vector<double>& local_evec,
                       EvecSync sync);

}  // namespace cid::wllsms
