#include "wllsms/comm_directive.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

namespace cid::wllsms {

using core::BufferRef;
using core::Clauses;
using core::Region;
using core::Target;
using core::buf;
using core::buf_n;

AtomStage stage_of(AtomData& atom) {
  AtomStage stage;
  stage.scalars = &atom.scalars;
  stage.vr = atom.vr.data();
  stage.rhotot = atom.rhotot.data();
  stage.ec = atom.ec.data();
  stage.nc = atom.nc.data();
  stage.lc = atom.lc.data();
  stage.kc = atom.kc.data();
  stage.potential_count = atom.vr.size();
  stage.core_count = atom.ec.size();
  stage.potential_capacity = atom.vr.size();
  stage.core_capacity = atom.ec.size();
  return stage;
}

AtomStage make_symmetric_stage(std::size_t max_potential_count,
                               std::size_t max_core_count) {
  AtomStage stage;
  stage.scalars = static_cast<AtomScalarData*>(
      shmem::malloc_sym(sizeof(AtomScalarData)));
  stage.vr = shmem::malloc_of<double>(max_potential_count);
  stage.rhotot = shmem::malloc_of<double>(max_potential_count);
  stage.ec = shmem::malloc_of<double>(max_core_count);
  stage.nc = shmem::malloc_of<int>(max_core_count);
  stage.lc = shmem::malloc_of<int>(max_core_count);
  stage.kc = shmem::malloc_of<int>(max_core_count);
  stage.potential_count = max_potential_count;
  stage.core_count = max_core_count;
  stage.potential_capacity = max_potential_count;
  stage.core_capacity = max_core_count;
  return stage;
}

namespace {

/// Copy a (rows x 2) column-major matrix into a packed (count x 2) staging
/// block, respecting the matrix's leading dimension.
template <typename T>
void matrix_to_stage(const Matrix<T>& m, std::size_t count, T* out) {
  std::memcpy(out, &m(0, 0), count * sizeof(T));
  std::memcpy(out + count, &m(0, 1), count * sizeof(T));
}

template <typename T>
void stage_to_matrix(const T* in, std::size_t count, Matrix<T>& m) {
  std::memcpy(&m(0, 0), in, count * sizeof(T));
  std::memcpy(&m(0, 1), in + count, count * sizeof(T));
}

}  // namespace

void load_stage(const AtomData& atom, AtomStage& stage) {
  CID_REQUIRE(stage.potential_capacity >= atom.vr.size() &&
                  stage.core_capacity >= atom.ec.size(),
              ErrorCode::InvalidArgument, "stage too small for atom");
  *stage.scalars = atom.scalars;
  const std::size_t t = atom.vr.n_row();
  matrix_to_stage(atom.vr, t, stage.vr);
  matrix_to_stage(atom.rhotot, t, stage.rhotot);
  const std::size_t tc = atom.ec.n_row();
  matrix_to_stage(atom.ec, tc, stage.ec);
  matrix_to_stage(atom.nc, tc, stage.nc);
  matrix_to_stage(atom.lc, tc, stage.lc);
  matrix_to_stage(atom.kc, tc, stage.kc);
  stage.potential_count = 2 * t;
  stage.core_count = 2 * tc;
}

void unload_stage(const AtomStage& stage, AtomData& atom) {
  atom.scalars = *stage.scalars;
  const std::size_t t = stage.potential_count / 2;
  const std::size_t tc = stage.core_count / 2;
  if (atom.vr.n_row() != t) atom.resize_potential(t);
  if (atom.ec.n_row() != tc) atom.resize_core(tc);
  stage_to_matrix(stage.vr, t, atom.vr);
  stage_to_matrix(stage.rhotot, t, atom.rhotot);
  stage_to_matrix(stage.ec, tc, atom.ec);
  stage_to_matrix(stage.nc, tc, atom.nc);
  stage_to_matrix(stage.lc, tc, atom.lc);
  stage_to_matrix(stage.kc, tc, atom.kc);
}

void transfer_atom_directive(int from, int to, const AtomStage& stage,
                             Target target) {
  if (from == to) return;
  const int me = rt::current_ctx().rank();

  // Paper Listing 5, with the scalar structure, the potential/density pair,
  // and the core-state group as the three comm_p2p instances of one
  // comm_parameters region.
  core::comm_parameters(
      Clauses()
          .sendwhen([me, from]() -> core::ExprValue { return me == from; })
          .receivewhen([me, to]() -> core::ExprValue { return me == to; })
          .sender(from)
          .receiver(to)
          .target(target),
      [&](Region& region) {
        region.p2p(Clauses()
                       .sbuf(buf(*stage.scalars, "scalaratomdata"))
                       .rbuf(buf(*stage.scalars, "scalaratomdata"))
                       .count(1));
        region.p2p(
            Clauses()
                .sbuf({buf_n(stage.vr, stage.potential_count, "vr"),
                       buf_n(stage.rhotot, stage.potential_count, "rhotot")})
                .rbuf({buf_n(stage.vr, stage.potential_count, "vr"),
                       buf_n(stage.rhotot, stage.potential_count, "rhotot")})
                .count(static_cast<core::ExprValue>(stage.potential_count)));
        region.p2p(
            Clauses()
                .sbuf({buf_n(stage.ec, stage.core_count, "ec"),
                       buf_n(stage.nc, stage.core_count, "nc"),
                       buf_n(stage.lc, stage.core_count, "lc"),
                       buf_n(stage.kc, stage.core_count, "kc")})
                .rbuf({buf_n(stage.ec, stage.core_count, "ec"),
                       buf_n(stage.nc, stage.core_count, "nc"),
                       buf_n(stage.lc, stage.core_count, "lc"),
                       buf_n(stage.kc, stage.core_count, "kc")})
                .count(static_cast<core::ExprValue>(stage.core_count)));
      });
}

void set_evec_directive(const std::vector<int>& members,
                        const std::vector<double>& ev, int num_types,
                        double* local_evec, Target target,
                        const std::function<void(int type)>& overlap,
                        const EvecReliability& reliability) {
  CID_REQUIRE(!members.empty(), ErrorCode::InvalidArgument,
              "set_evec_directive needs at least one member");
  const int me = rt::current_ctx().rank();
  const int root = members[0];
  const int size = static_cast<int>(members.size());
  if (size <= 1) return;

  // Owner (world rank) of type p within this LIZ.
  auto owner_of = [&](int type) {
    return members[static_cast<std::size_t>(
        1 + type % (size - 1))];
  };

  // A valid (never communicated) source pointer for non-root members, whose
  // ev array is empty.
  static thread_local double dummy_source[3] = {};
  const double* ev_base = (me == root) ? ev.data() : dummy_source;
  const std::size_t ev_stride = (me == root) ? 3 : 0;

  int p = 0;  // loop variable captured by the clause callables (Listing 7)
  Clauses region_clauses =
      Clauses()
          .sendwhen([&]() -> core::ExprValue {
            return me == root && owner_of(p) != root;
          })
          .receivewhen(
              [&]() -> core::ExprValue { return me == owner_of(p); })
          .sender(root)
          .receiver([&]() -> core::ExprValue { return owner_of(p); })
          .count(3)
          .max_comm_iter(num_types)
          .place_sync(core::SyncPlacement::EndParamRegion)
          .target(target);
  if (reliability.enabled) {
    region_clauses.reliability(
        static_cast<core::ExprValue>(reliability.timeout_us),
        reliability.max_retries);
  }
  core::comm_parameters(
      region_clauses,
      [&](Region& region) {
        for (p = 0; p < num_types; ++p) {
          region.p2p(
              Clauses()
                  .sbuf(buf_n(
                      const_cast<double*>(ev_base +
                                          ev_stride *
                                              static_cast<std::size_t>(p)),
                      3, "&ev[3*p]"))
                  .rbuf(buf_n(local_evec + 3 * static_cast<std::size_t>(p), 3,
                              "&local.atom[p].evec[0]")),
              [&] {
                // Initial energy computation, overlapped with the in-flight
                // transfers (Listing 7's calculateCoreState call).
                if (overlap && me == owner_of(p)) overlap(p);
              });
        }
      });
}

}  // namespace cid::wllsms
