// The synthetic calculateCoreStates kernel.
//
// The paper does not depend on the physics inside this routine — only on its
// cost relative to communication: "the overall ratio of computation time to
// communication time in WL-LSMS is 19 to 1", and the projected GPU port
// makes the computation "as much as a 10x speed up" (Figure 5). The kernel
// charges calibrated virtual time and runs a tiny deterministic numeric loop
// so the result is data-dependent (preventing the call from being a pure
// no-op in tests).
#pragma once

#include "rt/runtime.hpp"

namespace cid::wllsms {

struct ComputeModel {
  /// Virtual seconds of the initial core-state computation per atom type.
  /// Calibrated so that (num_types * core_state_seconds) : (original spin
  /// scatter time) is about 19:1 at the paper's scale — see
  /// docs in EXPERIMENTS.md and the fig5 bench.
  simnet::SimTime core_state_seconds = 200e-6;
  /// Speedup of the projected GPU port (Figure 5 uses 10).
  double gpu_speedup = 1.0;

  simnet::SimTime core_state_time() const noexcept {
    return core_state_seconds / gpu_speedup;
  }
};

/// Charge the virtual cost of the INITIAL core-state computation of one atom
/// type and return a deterministic energy contribution. Per the paper
/// (Listing 7): "The first of these computations occurs on data that is not
/// dependent on the random spin configurations; so, this computation can be
/// overlapped" — hence the kernel depends only on the atom type, never on
/// the in-flight spin vector.
double calculate_core_states(rt::RankCtx& ctx, const ComputeModel& model,
                             int atom_type);

}  // namespace cid::wllsms
