// Atom data of the WL-LSMS mini-app, with the exact field inventory the
// paper's Listing 4 packs and unpacks: fourteen scalar fields (including the
// 80-char header and the 3-vector evec), the potential/density matrices
// vr & rhotot (2*t doubles each, t = vr.n_row()), and the core-state
// matrices ec (doubles) and nc/lc/kc (ints), 2*tc elements each.
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/type_layout.hpp"

namespace cid::wllsms {

/// The scalar portion of one atom's data, grouped into a single composite
/// (what the paper's directive version calls `scalaratomdata`). Reflected
/// below so the directive layer can synthesize its derived datatype.
struct AtomScalarData {
  int local_id = 0;
  int jmt = 0;
  int jws = 0;
  double xstart = 0.0;
  double rmt = 0.0;
  char header[80] = {};
  double alat = 0.0;
  double efermi = 0.0;
  double vdif = 0.0;
  double ztotss = 0.0;
  double zcorss = 0.0;
  double evec[3] = {};
  int nspin = 0;
  int numc = 0;
};

/// One atom's full data set.
struct AtomData {
  AtomScalarData scalars;
  Matrix<double> vr;      ///< potential, (t, 2)
  Matrix<double> rhotot;  ///< electron density, (t, 2)
  Matrix<double> ec;      ///< core energies, (tc, 2)
  Matrix<int> nc;         ///< core quantum numbers, (tc, 2)
  Matrix<int> lc;
  Matrix<int> kc;

  std::size_t potential_rows() const noexcept { return vr.n_row(); }
  std::size_t core_rows() const noexcept { return ec.n_row(); }

  /// WL-LSMS's resizePotential: grow the potential matrices to `rows`.
  void resize_potential(std::size_t rows);
  /// WL-LSMS's resizeCore.
  void resize_core(std::size_t rows);

  /// Total wire payload in bytes (scalars + matrix payloads), for cost
  /// accounting and buffer sizing.
  std::size_t payload_bytes() const noexcept;
};

bool operator==(const AtomScalarData& a, const AtomScalarData& b) noexcept;
bool operator==(const AtomData& a, const AtomData& b) noexcept;

/// Deterministically generate atom `atom_id` of a system with `natoms`
/// atoms: sizes and contents depend only on (seed, atom_id) so sender and
/// checker agree without communicating.
AtomData make_atom(int atom_id, std::uint64_t seed = 0x5eed);

/// Matrix row count used by make_atom (t in Listing 4).
std::size_t atom_potential_rows(int atom_id) noexcept;
/// Core matrix row count used by make_atom.
std::size_t atom_core_rows(int atom_id) noexcept;

}  // namespace cid::wllsms

CID_REFLECT_STRUCT(cid::wllsms::AtomScalarData, local_id, jmt, jws, xstart,
                   rmt, header, alat, efermi, vdif, ztotss, zcorss, evec,
                   nspin, numc)
