// Experiment drivers: the process topology of Figure 1 (one Wang-Landau
// rank, M LSMS instances of K ranks each, a privileged rank per LIZ) and the
// measured phases of Figures 3-5, each runnable with the original
// communication or the directive version on a chosen target.
//
// All returned times are VIRTUAL seconds (deterministic makespans from the
// LogGP machine model), not wall-clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/clauses.hpp"
#include "simnet/machine_model.hpp"
#include "wllsms/comm_directive.hpp"
#include "wllsms/compute.hpp"

namespace cid::rt {
class DeliveryInterceptor;
class RankCtx;
}  // namespace cid::rt

namespace cid::wllsms {

/// The WL-LSMS process layout: world rank 0 runs Wang-Landau; the remaining
/// ranks form `num_lsms` equal LSMS instances.
struct Topology {
  int nprocs = 0;
  int num_lsms = 16;

  int ranks_per_lsms() const noexcept {
    return (nprocs - 1) / num_lsms;
  }
  bool valid() const noexcept {
    return nprocs > num_lsms && (nprocs - 1) % num_lsms == 0;
  }
  /// World ranks of LSMS instance `i` (members[0] is privileged).
  std::vector<int> lsms_members(int i) const;
  /// LSMS instance of a world rank, or -1 for the WL rank.
  int lsms_of(int world_rank) const noexcept;

  /// The paper's sweep: 33, 49, ..., 337 (1 WL + 16 LSMS x k, k = 2..21).
  static std::vector<int> paper_nprocs_sweep();
};

/// Communication variant under test.
enum class Variant {
  Original,          ///< hand-written MPI (Listings 4 / 6)
  OriginalWaitall,   ///< Listing 6 with Waitall (paper's 2.6x validation)
  DirectiveMpi,      ///< directives targeting TARGET_COMM_MPI_2SIDE
  DirectiveShmem,    ///< directives targeting TARGET_COMM_SHMEM
  DirectiveMpi1Side, ///< directives targeting TARGET_COMM_MPI_1SIDE
};

const char* variant_name(Variant variant) noexcept;

struct ExperimentConfig {
  int nprocs = 33;
  int num_lsms = 16;
  int natoms = 16;  ///< the paper's sixteen iron atoms
  int wl_steps = 8;  ///< main-loop iterations measured for Figures 4/5
  std::uint64_t seed = 0x5eed;
  simnet::MachineModel model = simnet::MachineModel::cray_xk7_gemini();
  ComputeModel compute;

  /// Installed on the World before ranks start (the cid::faults injector,
  /// typically); null runs a fault-free network.
  std::shared_ptr<rt::DeliveryInterceptor> interceptor;

  /// Reliability protocol for the setEvec scatter of the directive variants
  /// (TARGET_COMM_MPI_2SIDE only). Disabled by default.
  EvecReliability reliability;

  /// When set, runs on every rank after the measured phase, still inside the
  /// SPMD region — the hook for harvesting rank-local state (comm_stats,
  /// delivery_report) from an experiment.
  std::function<void(rt::RankCtx&)> per_rank_epilogue;
};

/// Figure 3 phase: distribute every atom's potentials and electron
/// densities from each LIZ's privileged rank to the owning member.
/// Returns the virtual makespan of the distribution.
double run_single_atom_distribution(const ExperimentConfig& config,
                                    Variant variant);

/// Figure 4 phase: the setEvec random-spin-configuration scatter inside
/// every LIZ, repeated for wl_steps main-loop iterations.
double run_spin_scatter(const ExperimentConfig& config, Variant variant);

/// Figure 5 phase: spin scatter plus the initial energy computation, either
/// sequential (original) or overlapped via the directive (directive
/// variants). config.compute.gpu_speedup selects the projected GPU port.
double run_spin_with_compute(const ExperimentConfig& config, Variant variant);

/// One complete Wang-Landau round trip per step (Figure 1's full
/// communication structure, directives only): the WL rank scatters the spin
/// configuration to every LIZ's privileged rank (comm_p2p), each LIZ runs
/// the directive setEvec with overlapped energy computation (Listing 7),
/// and the per-LIZ energies return to the WL rank through a MANY_TO_ONE
/// comm_collective over the group {WL, privileged ranks} — the Section V
/// extension applied to the motivating application. Returns the virtual
/// makespan; `energy_out`, when non-null, receives the final WL-side total
/// (deterministic).
double run_wl_roundtrip(const ExperimentConfig& config, core::Target target,
                        double* energy_out = nullptr);

}  // namespace cid::wllsms
