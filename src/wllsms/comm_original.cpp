#include "wllsms/comm_original.hpp"

#include "common/error.hpp"

namespace cid::wllsms {

namespace {

/// Listing 4's `s`: a protocol-wide packed-buffer size known to both sides
/// (the original code allocates one buffer large enough for any atom).
constexpr std::size_t kPackedCapacity = 64 * 1024;

/// Pack a (rows x 2) column-major matrix as 2*count contiguous elements
/// (count elements per column), respecting the leading dimension.
template <typename T>
void pack_matrix(const mpi::Comm& comm, const Matrix<T>& m, std::size_t count,
                 MutableByteSpan buffer, std::size_t& pos) {
  mpi::pack(comm, &m(0, 0), count, buffer, pos);
  mpi::pack(comm, &m(0, 1), count, buffer, pos);
}

template <typename T>
void unpack_matrix(const mpi::Comm& comm, ByteSpan wire, std::size_t& pos,
                   Matrix<T>& m, std::size_t count) {
  mpi::unpack(comm, wire, pos, &m(0, 0), count);
  mpi::unpack(comm, wire, pos, &m(0, 1), count);
}

}  // namespace

void transfer_atom_original(const mpi::Comm& comm, int from, int to,
                            AtomData& atom) {
  const int rank = comm.rank();
  if (rank != from && rank != to) return;
  if (from == to) return;

  if (rank == from) {
    // Mirrors Listing 4 lines 2-35: pack every field, then one blocking
    // send of the packed buffer.
    std::vector<std::byte> buffer(kPackedCapacity);
    std::size_t pos = 0;
    auto& s = atom.scalars;
    mpi::pack(comm, &s.local_id, 1, buffer, pos);
    mpi::pack(comm, &s.jmt, 1, buffer, pos);
    mpi::pack(comm, &s.jws, 1, buffer, pos);
    mpi::pack(comm, &s.xstart, 1, buffer, pos);
    mpi::pack(comm, &s.rmt, 1, buffer, pos);
    mpi::pack(comm, s.header, 80, buffer, pos);
    mpi::pack(comm, &s.alat, 1, buffer, pos);
    mpi::pack(comm, &s.efermi, 1, buffer, pos);
    mpi::pack(comm, &s.vdif, 1, buffer, pos);
    mpi::pack(comm, &s.ztotss, 1, buffer, pos);
    mpi::pack(comm, &s.zcorss, 1, buffer, pos);
    mpi::pack(comm, s.evec, 3, buffer, pos);
    mpi::pack(comm, &s.nspin, 1, buffer, pos);
    mpi::pack(comm, &s.numc, 1, buffer, pos);

    int t = static_cast<int>(atom.vr.n_row());
    mpi::pack(comm, &t, 1, buffer, pos);
    pack_matrix(comm, atom.vr, static_cast<std::size_t>(t), buffer, pos);
    pack_matrix(comm, atom.rhotot, static_cast<std::size_t>(t), buffer, pos);

    t = static_cast<int>(atom.ec.n_row());
    mpi::pack(comm, &t, 1, buffer, pos);
    pack_matrix(comm, atom.ec, static_cast<std::size_t>(t), buffer, pos);
    pack_matrix(comm, atom.nc, static_cast<std::size_t>(t), buffer, pos);
    pack_matrix(comm, atom.lc, static_cast<std::size_t>(t), buffer, pos);
    pack_matrix(comm, atom.kc, static_cast<std::size_t>(t), buffer, pos);

    mpi::send(comm, buffer.data(), pos,
              mpi::Datatype::basic(mpi::BasicType::Packed), to, 0);
    return;
  }

  // Receiver, Listing 4 lines 36-74.
  std::vector<std::byte> buffer(kPackedCapacity);
  const auto status = mpi::recv(comm, buffer.data(), buffer.size(),
                                mpi::Datatype::basic(mpi::BasicType::Packed),
                                from, 0);
  const ByteSpan wire(buffer.data(), status.count);
  std::size_t pos = 0;
  auto& s = atom.scalars;
  mpi::unpack(comm, wire, pos, &s.local_id, 1);
  mpi::unpack(comm, wire, pos, &s.jmt, 1);
  mpi::unpack(comm, wire, pos, &s.jws, 1);
  mpi::unpack(comm, wire, pos, &s.xstart, 1);
  mpi::unpack(comm, wire, pos, &s.rmt, 1);
  mpi::unpack(comm, wire, pos, s.header, 80);
  mpi::unpack(comm, wire, pos, &s.alat, 1);
  mpi::unpack(comm, wire, pos, &s.efermi, 1);
  mpi::unpack(comm, wire, pos, &s.vdif, 1);
  mpi::unpack(comm, wire, pos, &s.ztotss, 1);
  mpi::unpack(comm, wire, pos, &s.zcorss, 1);
  mpi::unpack(comm, wire, pos, s.evec, 3);
  mpi::unpack(comm, wire, pos, &s.nspin, 1);
  mpi::unpack(comm, wire, pos, &s.numc, 1);

  int t = 0;
  mpi::unpack(comm, wire, pos, &t, 1);
  if (static_cast<std::size_t>(t) > atom.vr.n_row()) {
    atom.resize_potential(static_cast<std::size_t>(t) + 50);
  }
  unpack_matrix(comm, wire, pos, atom.vr, static_cast<std::size_t>(t));
  unpack_matrix(comm, wire, pos, atom.rhotot, static_cast<std::size_t>(t));

  mpi::unpack(comm, wire, pos, &t, 1);
  if (static_cast<std::size_t>(t) > atom.nc.n_row()) {
    atom.resize_core(static_cast<std::size_t>(t));
  }
  unpack_matrix(comm, wire, pos, atom.ec, static_cast<std::size_t>(t));
  unpack_matrix(comm, wire, pos, atom.nc, static_cast<std::size_t>(t));
  unpack_matrix(comm, wire, pos, atom.lc, static_cast<std::size_t>(t));
  unpack_matrix(comm, wire, pos, atom.kc, static_cast<std::size_t>(t));
}

int spin_owner(int type, int comm_size) noexcept {
  if (comm_size <= 1) return 0;
  return 1 + type % (comm_size - 1);
}

int spin_local_count(int comm_rank, int num_types, int comm_size) noexcept {
  if (comm_rank == 0 || comm_size <= 1) return 0;
  int count = 0;
  for (int type = 0; type < num_types; ++type) {
    if (spin_owner(type, comm_size) == comm_rank) ++count;
  }
  return count;
}

void set_evec_original(const mpi::Comm& comm, const std::vector<double>& ev,
                       int num_types, std::vector<double>& local_evec,
                       EvecSync sync) {
  const int rank = comm.rank();
  const int size = comm.size();

  if (rank == 0) {
    // Listing 6 lines 1-8: one Isend per type, then the completion loop.
    CID_REQUIRE(ev.size() >= 3 * static_cast<std::size_t>(num_types),
                ErrorCode::InvalidArgument, "ev too small for num_types");
    std::vector<mpi::Request> requests;
    requests.reserve(static_cast<std::size_t>(num_types));
    for (int p = 0; p < num_types; ++p) {
      const int owner = spin_owner(p, size);
      if (owner == 0) continue;  // degenerate single-member LIZ
      requests.push_back(
          mpi::isend(comm, &ev[3 * static_cast<std::size_t>(p)], 3, owner, p));
    }
    if (sync == EvecSync::WaitLoop) {
      for (auto& request : requests) mpi::wait(request);
    } else {
      mpi::waitall(requests);
    }
  } else {
    // Listing 6 lines 9-16: one Irecv per owned type, then completion.
    const int num_local = spin_local_count(rank, num_types, size);
    CID_REQUIRE(local_evec.size() >= 3 * static_cast<std::size_t>(num_local),
                ErrorCode::InvalidArgument, "local_evec too small");
    std::vector<mpi::Request> requests;
    requests.reserve(static_cast<std::size_t>(num_local));
    for (int p = 0; p < num_local; ++p) {
      requests.push_back(mpi::irecv(
          comm, &local_evec[3 * static_cast<std::size_t>(p)], 3,
          /*source=*/0, mpi::kAnyTag));
    }
    if (sync == EvecSync::WaitLoop) {
      for (auto& request : requests) mpi::wait(request);
    } else {
      mpi::waitall(requests);
    }
  }
}

}  // namespace cid::wllsms
