// Buffer race detection over the directive tree.
//
// The translated program posts nonblocking operations at each comm_p2p and
// completes them at the region's consolidated synchronization, so between
// the directive and the sync every rbuf is live hardware territory. These
// checks find the textual patterns that reuse that territory: a second
// receive into an rbuf still in flight (CID-B020), a directive whose send
// and receive buffers alias on a rank that does both (CID-B021), an
// overlap block touching the buffer it is supposed to be overlapping with
// (CID-B022), and statements between regions touching buffers whose sync
// was deferred by place_sync (CID-B023).
//
// Guards are respected: two receives into the same buffer race only when
// some rank can post both, so receivewhen/sendwhen expressions are swept
// exactly like the match pass sweeps them. Symbolic guards make the pair
// unprovable and produce no diagnostic.
#include <cctype>
#include <optional>

#include "analyze/passes.hpp"
#include "core/expr.hpp"

namespace cid::analyze::detail {

namespace {

using core::Env;
using core::Expr;
using core::RawClause;
using translate::DirectiveNode;

std::string normalized(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

/// A sendwhen/receivewhen guard prepared for the sweep. Absent guards are
/// always true (the directive fires unconditionally); symbolic guards make
/// every query unprovable.
struct Guard {
  bool present = false;
  bool symbolic = false;
  Expr expr;

  static Guard from_text(const std::string& text) {
    Guard guard;
    if (text.empty()) return guard;
    guard.present = true;
    auto parsed = Expr::parse(text);
    if (!parsed.is_ok()) {
      guard.symbolic = true;  // unparseable: treat as unprovable
      return guard;
    }
    guard.expr = std::move(parsed).take();
    for (const std::string& variable : guard.expr.free_variables()) {
      if (variable != "rank" && variable != "nprocs") guard.symbolic = true;
    }
    return guard;
  }

  static Guard from_clause(const core::ParsedDirective& merged,
                           const char* name) {
    const RawClause* clause = merged.find(name);
    return from_text(clause == nullptr ? std::string() : clause->args[0]);
  }

  bool true_on(int rank, int nprocs) const {
    if (!present) return true;
    Env env;
    env.bind("rank", rank);
    env.bind("nprocs", nprocs);
    auto value = expr.eval(env);
    return value.is_ok() && value.value() != 0;
  }
};

/// First (nprocs, rank) in the sweep where both guards hold; nullopt when
/// provably disjoint or when either guard is symbolic.
std::optional<std::pair<int, int>> first_overlap(const AnalysisContext& ctx,
                                                 const Guard& a,
                                                 const Guard& b) {
  if (a.symbolic || b.symbolic) return std::nullopt;
  for (int nprocs = ctx.options.nprocs_min; nprocs <= ctx.options.nprocs_max;
       ++nprocs) {
    for (int rank = 0; rank < nprocs; ++rank) {
      if (a.true_on(rank, nprocs) && b.true_on(rank, nprocs)) {
        return std::make_pair(nprocs, rank);
      }
    }
  }
  return std::nullopt;
}

std::string guard_text(const core::ParsedDirective& merged, const char* name) {
  const RawClause* clause = merged.find(name);
  return clause == nullptr ? std::string() : clause->args[0];
}

}  // namespace

void check_p2p_buffers(AnalysisContext& ctx, const DirectiveNode& node,
                       const core::ParsedDirective& merged,
                       std::vector<InFlight>& inflight, bool append) {
  if (merged.kind != core::DirectiveKind::CommP2P) return;
  const RawClause* sbuf = merged.find("sbuf");
  const RawClause* rbuf = merged.find("rbuf");
  if (rbuf == nullptr) return;

  const std::string receivewhen = guard_text(merged, "receivewhen");
  const Guard recv_guard = Guard::from_text(receivewhen);

  // CID-B020: a receive into a buffer an earlier directive of the same
  // region chain is still receiving into.
  bool reported_b020 = false;
  for (const std::string& argument : rbuf->args) {
    const std::string text = normalized(argument);
    for (const InFlight& earlier : inflight) {
      if (earlier.text != text || reported_b020) continue;
      const Guard earlier_guard = Guard::from_text(earlier.receivewhen);
      const auto overlap = first_overlap(ctx, recv_guard, earlier_guard);
      if (!overlap.has_value()) continue;
      reported_b020 = true;
      ctx.report.add(
          "CID-B020", Severity::Error, node.line,
          clause_column(node, *rbuf),
          "rbuf(" + argument + ") is reused while the receive posted by the "
              "directive at line " + std::to_string(earlier.line) +
              " is still in flight (rank " + std::to_string(overlap->second) +
              " posts both at nprocs=" + std::to_string(overlap->first) + ")",
          "both receives complete only at the consolidated sync, so the "
          "second arrival overwrites the first; use distinct buffers or "
          "split the region");
    }
  }

  // CID-B021: send and receive staged through the same memory on a rank
  // that does both.
  if (sbuf != nullptr) {
    const Guard send_guard =
        Guard::from_text(guard_text(merged, "sendwhen"));
    const std::size_t pairs = std::min(sbuf->args.size(), rbuf->args.size());
    for (std::size_t i = 0; i < pairs; ++i) {
      if (normalized(sbuf->args[i]) != normalized(rbuf->args[i])) continue;
      const auto overlap = first_overlap(ctx, send_guard, recv_guard);
      if (!overlap.has_value()) continue;
      ctx.report.add(
          "CID-B021", Severity::Error, node.line,
          clause_column(node, *rbuf),
          "sbuf and rbuf both name '" + sbuf->args[i] + "' and rank " +
              std::to_string(overlap->second) + " both sends and receives "
              "at nprocs=" + std::to_string(overlap->first) +
              ", so the incoming message overwrites the outgoing data",
          "stage through distinct buffers, or make sendwhen/receivewhen "
          "disjoint as in the paper's transfer_atom example");
      break;
    }
  }

  // CID-B022: the overlap block (the directive's own body) touching an rbuf
  // whose receive it is overlapping with. Clause text of nested pragmas is
  // excluded — naming a buffer in a directive is not touching it.
  if (node.body_is_block) {
    std::vector<std::pair<std::size_t, std::size_t>> exclude;
    for (const DirectiveNode& child : node.children) {
      exclude.emplace_back(child.pragma_begin, child.body_begin);
    }
    for (const std::string& argument : rbuf->args) {
      const std::string base = buffer_base_identifier(argument);
      if (base.empty()) continue;
      if (references_identifier(ctx, node.body_begin, node.body_end, base,
                                exclude)) {
        ctx.report.add(
            "CID-B022", Severity::Warning, node.line,
            clause_column(node, *rbuf),
            "the overlap block reads or writes '" + base + "' while the "
                "receive into rbuf(" + argument + ") is in flight",
            "the receive completes only at the consolidated sync; overlap "
            "computation must not touch the buffers being transferred");
        break;
      }
    }
  }

  if (!append) return;
  for (const std::string& argument : rbuf->args) {
    InFlight entry;
    entry.text = normalized(argument);
    entry.base = buffer_base_identifier(argument);
    entry.receivewhen = receivewhen;
    entry.line = node.line;
    inflight.push_back(std::move(entry));
  }
}

void check_gap_references(AnalysisContext& ctx, std::size_t begin,
                          std::size_t end,
                          const std::vector<InFlight>& deferred) {
  for (const InFlight& entry : deferred) {
    if (entry.base.empty()) continue;
    if (!references_identifier(ctx, begin, end, entry.base, {})) continue;
    ctx.report.add(
        "CID-B023", Severity::Warning, translate::line_of(ctx.source, begin),
        0,
        "code between parameter regions touches '" + entry.base +
            "' while the receive posted at line " +
            std::to_string(entry.line) +
            " is still waiting for its deferred synchronization",
        "place_sync moved the consolidated sync past this code; move the "
        "statements after the next region or use END_PARAM_REGION");
  }
}

void check_buffer_types(AnalysisContext& ctx, const DirectiveNode& node,
                        const core::ParsedDirective& merged) {
  bool reported_pointer = false;
  bool reported_nested = false;
  bool reported_unregistered = false;
  for (const char* list_name : {"sbuf", "rbuf"}) {
    const RawClause* list = merged.find(list_name);
    if (list == nullptr) continue;
    for (const std::string& argument : list->args) {
      const std::string base = buffer_base_identifier(argument);
      if (base.empty()) continue;
      const StructDecl* decl = ctx.model.struct_of_variable(base);
      if (decl == nullptr) continue;
      for (const StructFieldDecl& field : decl->fields) {
        if (field.is_pointer && !reported_pointer) {
          reported_pointer = true;
          ctx.report.add(
              "CID-T040", Severity::Error, node.line,
              clause_column(node, *list),
              "buffer '" + base + "' has composite type '" + decl->name +
                  "' whose member '" + field.name + "' is a pointer; "
                  "reflection transfers raw bytes and cannot follow it",
              "transfer the pointee through its own buffer clause, as the "
              "paper's AtomScalars/vr split does");
        }
        if (!field.is_pointer && !reported_nested &&
            ctx.model.structs.count(field.type) != 0) {
          reported_nested = true;
          ctx.report.add(
              "CID-T041", Severity::Error, node.line,
              clause_column(node, *list),
              "buffer '" + base + "' has composite type '" + decl->name +
                  "' whose member '" + field.name +
                  "' is itself a composite ('" + field.type +
                  "'); nested composites are rejected by type reflection",
              "flatten the nested structure or transfer its fields "
              "directly");
        }
      }
      if (!decl->reflected && !reported_unregistered) {
        reported_unregistered = true;
        ctx.report.add(
            "CID-T042", Severity::Warning, node.line,
            clause_column(node, *list),
            "composite buffer type '" + decl->name +
                "' is transferred but has no CID_REFLECT_STRUCT "
                "registration in this file",
            "register the type with CID_REFLECT_STRUCT(" + decl->name +
                ", ...) so the runtime can derive its layout");
      }
    }
  }
}

}  // namespace cid::analyze::detail
