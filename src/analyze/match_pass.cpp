// Rank-symbolic match analysis: the paper's communication intent, checked.
//
// A comm_p2p executes on every rank of the SPMD program. On rank r the
// directive posts a send to receiver(r) when sendwhen(r) holds, and posts a
// receive from sender(r) when receivewhen(r) holds. For the program to be
// free of stranded messages and never-completing receives, every posted
// send must meet a posted receive on its destination naming the sending
// rank, and vice versa. nprocs is unknown statically, so the pass sweeps a
// configurable range and evaluates the clause expressions with the same
// core::expr evaluator the runtime uses; the first offending (nprocs, rank)
// pair is reported per diagnostic.
//
// Expressions referencing variables other than rank/nprocs (loop counters,
// problem sizes) are symbolic — the pass skips them rather than guess.
#include <algorithm>
#include <optional>
#include <set>

#include "analyze/passes.hpp"
#include "core/expr.hpp"

namespace cid::analyze::detail {

namespace {

using core::Env;
using core::Expr;
using core::ExprValue;
using core::RawClause;
using translate::DirectiveNode;

/// A clause expression prepared for the sweep. `present` false when the
/// clause is absent (guards default to true); `symbolic` true when it
/// references variables the analyzer cannot bind.
struct SweptExpr {
  const RawClause* clause = nullptr;
  Expr expr;
  bool present = false;
  bool symbolic = false;
};

SweptExpr prepare(AnalysisContext& ctx, const DirectiveNode& node,
                  const core::ParsedDirective& merged, const char* name) {
  SweptExpr out;
  out.clause = merged.find(name);
  if (out.clause == nullptr) return out;
  out.present = true;
  auto parsed = Expr::parse(out.clause->args[0]);
  if (!parsed.is_ok()) {
    ctx.report.add("CID-P003", Severity::Error, node.line,
                   clause_column(node, *out.clause),
                   "clause " + std::string(name) + "(" + out.clause->args[0] +
                       ") does not parse: " + parsed.status().message());
    out.symbolic = true;  // unusable; skip the sweep
    return out;
  }
  out.expr = std::move(parsed).take();
  for (const std::string& variable : out.expr.free_variables()) {
    if (variable != "rank" && variable != "nprocs") out.symbolic = true;
  }
  return out;
}

}  // namespace

bool check_required_clauses(AnalysisContext& ctx, const DirectiveNode& node,
                            const core::ParsedDirective& merged) {
  const auto* sbuf = merged.find("sbuf");
  const auto* rbuf = merged.find("rbuf");
  bool usable = true;
  if (merged.kind == core::DirectiveKind::CommP2P) {
    std::string missing;
    for (const char* name : {"sbuf", "rbuf", "sender", "receiver"}) {
      if (merged.find(name) == nullptr) {
        if (!missing.empty()) missing += ", ";
        missing += name;
      }
    }
    if (!missing.empty()) {
      ctx.report.add("CID-P005", Severity::Error, node.line, node.column,
                     "comm_p2p is missing required clause(s) after "
                     "inheritance: " + missing,
                     "add the clause(s) on the directive or on the enclosing "
                     "comm_parameters region");
      usable = false;
    }
    if (sbuf != nullptr && rbuf != nullptr &&
        sbuf->args.size() != rbuf->args.size()) {
      ctx.report.add(
          "CID-P006", Severity::Error, node.line, node.column,
          "sbuf lists " + std::to_string(sbuf->args.size()) +
              " buffer(s) but rbuf lists " +
              std::to_string(rbuf->args.size()) +
              "; paired send/receive buffers must agree in number");
      usable = false;
    }
  } else if (merged.kind == core::DirectiveKind::CommCollective) {
    std::string missing;
    for (const char* name : {"sbuf", "rbuf", "count"}) {
      if (merged.find(name) == nullptr) {
        if (!missing.empty()) missing += ", ";
        missing += name;
      }
    }
    if (!missing.empty()) {
      ctx.report.add("CID-P005", Severity::Error, node.line, node.column,
                     "comm_collective is missing required clause(s): " +
                         missing,
                     "the translated collective needs explicit sbuf, rbuf "
                     "and count");
      usable = false;
    }
    if (sbuf != nullptr && rbuf != nullptr &&
        (sbuf->args.size() != 1 || rbuf->args.size() != 1)) {
      ctx.report.add("CID-P006", Severity::Error, node.line, node.column,
                     "comm_collective takes exactly one sbuf and one rbuf");
      usable = false;
    }
  }
  return usable;
}

void check_match_and_counts(AnalysisContext& ctx, const DirectiveNode& node,
                            const core::ParsedDirective& merged) {
  // --- count / extent agreement (works even with symbolic guards) ----------
  const auto* count_clause = merged.find("count");
  const auto* sbuf = merged.find("sbuf");
  const auto* rbuf = merged.find("rbuf");

  std::optional<ExprValue> count_value;
  if (count_clause != nullptr) {
    auto parsed = Expr::parse(count_clause->args[0]);
    if (parsed.is_ok() && parsed.value().free_variables().empty()) {
      auto value = parsed.value().eval(Env{});
      if (value.is_ok()) count_value = value.value();
    }
  }

  std::vector<std::pair<std::string, long long>> known_extents;
  for (const auto* list : {sbuf, rbuf}) {
    if (list == nullptr) continue;
    for (const auto& argument : list->args) {
      if (auto extent = ctx.model.extent_of(argument)) {
        known_extents.emplace_back(argument, *extent);
      }
    }
  }

  if (count_value.has_value()) {
    for (const auto& [name, extent] : known_extents) {
      if (*count_value > extent) {
        ctx.report.add(
            "CID-M014", Severity::Error, node.line,
            clause_column(node, *count_clause),
            "count(" + count_clause->args[0] + ") transfers " +
                std::to_string(*count_value) + " element(s) but buffer '" +
                name + "' is declared with extent " + std::to_string(extent),
            "reduce the count or enlarge the buffer");
        break;
      }
    }
  } else if (count_clause == nullptr && known_extents.size() >= 2) {
    auto [min_it, max_it] = std::minmax_element(
        known_extents.begin(), known_extents.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (min_it->second != max_it->second) {
      ctx.report.add(
          "CID-M013", Severity::Warning, node.line, node.column,
          "count is inferred from buffer extents, but '" + max_it->first +
              "' has extent " + std::to_string(max_it->second) + " while '" +
              min_it->first + "' has extent " +
              std::to_string(min_it->second) +
              "; the transfer will truncate to the smallest",
          "add an explicit count clause or match the declared extents");
    }
  }

  // --- rank-symbolic match sweep -------------------------------------------
  if (merged.kind == core::DirectiveKind::CommCollective) {
    // For collectives only the root must name a member rank.
    const auto* root = merged.find("root");
    if (root == nullptr) return;
    SweptExpr root_expr = prepare(ctx, node, merged, "root");
    if (root_expr.symbolic) {
      // Parse failures already reported CID-P003; a genuinely symbolic root
      // is a silent skip the user must hear about (see Report::symbolic_skips
      // and `cidt explore`).
      if (root_expr.expr.valid()) ++ctx.report.symbolic_skips;
      return;
    }
    for (int nprocs = ctx.options.nprocs_min;
         nprocs <= ctx.options.nprocs_max; ++nprocs) {
      Env env;
      env.bind("nprocs", nprocs);
      env.bind("rank", 0);
      auto value = root_expr.expr.eval(env);
      if (!value.is_ok()) return;
      if (value.value() < 0 || value.value() >= nprocs) {
        ctx.report.add("CID-M010", Severity::Error, node.line,
                       clause_column(node, *root),
                       "root(" + root->args[0] + ") evaluates to " +
                           std::to_string(value.value()) + " at nprocs=" +
                           std::to_string(nprocs) + ", outside 0.." +
                           std::to_string(nprocs - 1));
        return;
      }
    }
    return;
  }
  if (merged.kind != core::DirectiveKind::CommP2P) return;

  SweptExpr sender = prepare(ctx, node, merged, "sender");
  SweptExpr receiver = prepare(ctx, node, merged, "receiver");
  SweptExpr sendwhen = prepare(ctx, node, merged, "sendwhen");
  SweptExpr receivewhen = prepare(ctx, node, merged, "receivewhen");
  if (!sender.present || !receiver.present) return;  // CID-P005 already fired
  if (sender.symbolic || receiver.symbolic || sendwhen.symbolic ||
      receivewhen.symbolic) {
    // Nothing provable statically. Count the skip (unless a CID-P003 parse
    // error already fired for the clause) so the renderers can tell the user
    // this directive needs `cidt explore` instead of passing silently.
    const bool unparsable =
        (sender.present && !sender.expr.valid()) ||
        (receiver.present && !receiver.expr.valid()) ||
        (sendwhen.present && !sendwhen.expr.valid()) ||
        (receivewhen.present && !receivewhen.expr.valid());
    if (!unparsable) ++ctx.report.symbolic_skips;
    return;
  }

  bool reported_range = false;
  bool reported_stranded = false;
  bool reported_orphan = false;
  bool reported_eval = false;
  bool fires_somewhere = false;

  const std::string sweep_note =
      " (swept nprocs " + std::to_string(ctx.options.nprocs_min) + ".." +
      std::to_string(ctx.options.nprocs_max) + ")";

  for (int nprocs = ctx.options.nprocs_min; nprocs <= ctx.options.nprocs_max;
       ++nprocs) {
    // (rank, peer) pairs posted at this nprocs.
    std::vector<std::pair<int, ExprValue>> sends;
    std::vector<std::pair<int, ExprValue>> recvs;
    bool eval_failed = false;

    auto eval_on = [&](const SweptExpr& swept, int rank,
                       ExprValue fallback) -> std::optional<ExprValue> {
      if (!swept.present) return fallback;
      Env env;
      env.bind("rank", rank);
      env.bind("nprocs", nprocs);
      auto value = swept.expr.eval(env);
      if (!value.is_ok()) {
        if (!reported_eval) {
          reported_eval = true;
          ctx.report.add("CID-M015", Severity::Warning, node.line,
                         clause_column(node, *swept.clause),
                         "clause " + swept.clause->name + "(" +
                             swept.clause->args[0] +
                             ") fails to evaluate on rank " +
                             std::to_string(rank) + " at nprocs=" +
                             std::to_string(nprocs) + ": " +
                             value.status().message() + sweep_note);
        }
        eval_failed = true;
        return std::nullopt;
      }
      return value.value();
    };

    for (int rank = 0; rank < nprocs && !eval_failed; ++rank) {
      const auto sends_here = eval_on(sendwhen, rank, 1);
      const auto recvs_here = eval_on(receivewhen, rank, 1);
      if (!sends_here || !recvs_here) break;
      if (*sends_here != 0) {
        if (const auto peer = eval_on(receiver, rank, 0)) {
          sends.emplace_back(rank, *peer);
        }
      }
      if (*recvs_here != 0) {
        if (const auto peer = eval_on(sender, rank, 0)) {
          recvs.emplace_back(rank, *peer);
        }
      }
    }
    if (eval_failed) continue;
    if (!sends.empty() || !recvs.empty()) fires_somewhere = true;

    for (const auto& [rank, dest] : sends) {
      if (dest < 0 || dest >= nprocs) {
        if (!reported_range) {
          reported_range = true;
          ctx.report.add(
              "CID-M010", Severity::Error, node.line,
              clause_column(node, *receiver.clause),
              "receiver(" + receiver.clause->args[0] + ") evaluates to " +
                  std::to_string(dest) + " on sending rank " +
                  std::to_string(rank) + " at nprocs=" +
                  std::to_string(nprocs) + ", outside 0.." +
                  std::to_string(nprocs - 1) + sweep_note,
              "guard the send with sendwhen(...) so edge ranks do not post "
              "it, as in the paper's Listing 2");
        }
        continue;
      }
      const bool matched = std::any_of(
          recvs.begin(), recvs.end(), [&, r = rank, d = dest](const auto& rv) {
            return rv.first == static_cast<int>(d) && rv.second == r;
          });
      if (!matched && !reported_stranded) {
        reported_stranded = true;
        ctx.report.add(
            "CID-M011", Severity::Warning, node.line, node.column,
            "send posted by rank " + std::to_string(rank) + " to rank " +
                std::to_string(dest) + " at nprocs=" + std::to_string(nprocs) +
                " has no matching receive: rank " + std::to_string(dest) +
                (receivewhen.present
                     ? " does not satisfy receivewhen(" +
                           receivewhen.clause->args[0] + ")"
                     : " expects sender(" + sender.clause->args[0] +
                           ") which does not name rank " +
                           std::to_string(rank)) +
                sweep_note,
            "the message is stranded in the destination mailbox; align the "
            "sender/receiver expressions or the guards");
      }
    }

    for (const auto& [rank, src] : recvs) {
      if (src < 0 || src >= nprocs) {
        if (!reported_range) {
          reported_range = true;
          ctx.report.add(
              "CID-M010", Severity::Error, node.line,
              clause_column(node, *sender.clause),
              "sender(" + sender.clause->args[0] + ") evaluates to " +
                  std::to_string(src) + " on receiving rank " +
                  std::to_string(rank) + " at nprocs=" +
                  std::to_string(nprocs) + ", outside 0.." +
                  std::to_string(nprocs - 1) + sweep_note,
              "guard the receive with receivewhen(...) so edge ranks do not "
              "post it, as in the paper's Listing 2");
        }
        continue;
      }
      const bool matched = std::any_of(
          sends.begin(), sends.end(), [&, r = rank, s = src](const auto& sd) {
            return sd.first == static_cast<int>(s) && sd.second == r;
          });
      if (!matched && !reported_orphan) {
        reported_orphan = true;
        ctx.report.add(
            "CID-M012", Severity::Error, node.line, node.column,
            "receive posted by rank " + std::to_string(rank) +
                " from rank " + std::to_string(src) + " at nprocs=" +
                std::to_string(nprocs) +
                " never completes: rank " + std::to_string(src) +
                (sendwhen.present
                     ? " does not satisfy sendwhen(" +
                           sendwhen.clause->args[0] + ")"
                     : " sends to receiver(" + receiver.clause->args[0] +
                           ") which does not name rank " +
                           std::to_string(rank)) +
                sweep_note,
            "the consolidated sync will deadlock waiting for this receive; "
            "align the sender/receiver expressions or the guards");
      }
    }
  }

  if (!fires_somewhere && (sendwhen.present || receivewhen.present)) {
    ctx.report.add("CID-S034", Severity::Warning, node.line, node.column,
                   "directive never sends nor receives on any rank" +
                       sweep_note,
                   "the guards are unsatisfiable in the swept range; delete "
                   "the directive or fix sendwhen/receivewhen");
  }
}

}  // namespace cid::analyze::detail
