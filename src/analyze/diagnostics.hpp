// Diagnostic model of the static directive verifier ("cidlint").
//
// Every finding carries a stable ID (CID-<family><number>, documented in
// docs/ANALYSIS.md), a severity, a 1-based source position, a message and an
// optional fix hint. Reports render as human-readable compiler-style lines
// or as a machine-readable JSON document for CI gating.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cid::analyze {

enum class Severity { Warning, Error };

std::string_view severity_name(Severity severity) noexcept;

struct Diagnostic {
  std::string id;  ///< stable, e.g. "CID-M012"
  Severity severity = Severity::Error;
  int line = 0;    ///< 1-based; 0 when the finding has no position
  int column = 0;  ///< 1-based; 0 when unknown
  std::string message;
  std::string hint;  ///< optional "fix it by ..." suggestion
};

/// The result of analyzing one source buffer.
struct Report {
  std::vector<Diagnostic> diagnostics;
  int directives_checked = 0;
  /// Directives whose match sweep was skipped because a clause references
  /// variables beyond rank/nprocs — nothing is provable statically about
  /// them. Surfaced (never silently dropped) in both renderers: these are
  /// exactly the directives `cidt explore` checks dynamically.
  int symbolic_skips = 0;

  int errors() const noexcept;
  int warnings() const noexcept;
  bool clean() const noexcept { return diagnostics.empty(); }

  void add(std::string id, Severity severity, int line, int column,
           std::string message, std::string hint = {});

  /// Order by line, then column, then ID — the order both renderers emit.
  void sort();
};

/// One analyzed file, for multi-file renderings.
struct FileReport {
  std::string path;
  Report report;
};

/// Compiler-style rendering: `path:line:col: severity: [ID] message`.
void print_human(const FileReport& file, std::ostream& out);

/// The stable JSON document (schema documented in docs/ANALYSIS.md):
/// {"cidlint":1,"files":[{"path","diagnostics":[...]}],
///  "summary":{"files","directives","errors","warnings"}}.
std::string to_json(const std::vector<FileReport>& files);

}  // namespace cid::analyze
