// The analysis driver: scans the source into a directive tree, recovers the
// declaration model, then walks the tree the way the translator walks it —
// same clause inheritance, same synchronization placement — dispatching the
// match, buffer and type passes and performing the sync-placement checks
// itself (they need sibling context the per-directive passes do not have).
#include <algorithm>
#include <cctype>
#include <string>

#include "analyze/analyze.hpp"
#include "analyze/passes.hpp"
#include "core/clauses.hpp"
#include "core/expr.hpp"
#include "translate/scan.hpp"

namespace cid::analyze {

using translate::DirectiveNode;
using translate::DirectiveTree;

namespace detail {

int clause_column(const DirectiveNode& node, const core::RawClause& clause) {
  // Clause offsets index the joined pragma text; for single-line pragmas
  // that text starts at the '#', so the offset maps straight to a column.
  // Continuation joining rewrites whitespace, and clauses inherited from an
  // enclosing region live on a different line entirely — both fall back to
  // the pragma's own column.
  if (node.pragma_continued) return node.column;
  const core::RawClause* own = node.directive.find(clause.name);
  if (own == nullptr || own->offset != clause.offset) return node.column;
  return node.column + static_cast<int>(clause.offset);
}

namespace {
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

bool references_identifier(
    const AnalysisContext& ctx, std::size_t begin, std::size_t end,
    const std::string& identifier,
    const std::vector<std::pair<std::size_t, std::size_t>>& exclude) {
  if (identifier.empty()) return false;
  const std::string_view source = ctx.source;
  end = std::min(end, source.size());
  for (std::size_t i = begin; i + identifier.size() <= end; ++i) {
    if (ctx.mask[i] == 0) continue;
    bool excluded = false;
    for (const auto& [from, to] : exclude) {
      if (i >= from && i < to) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    if (source.compare(i, identifier.size(), identifier) != 0) continue;
    if (i > begin && ident_char(source[i - 1])) continue;
    const std::size_t after = i + identifier.size();
    if (after < end && ident_char(source[after])) continue;
    return true;
  }
  return false;
}

}  // namespace detail

namespace {

using detail::AnalysisContext;
using detail::InFlight;

/// Receives whose consolidated sync was deferred past their region by
/// place_sync, waiting for the next sibling region.
struct PendingSync {
  std::vector<InFlight> entries;
  bool clears_at_next_begin = false;  ///< BEGIN_NEXT vs END_ADJ
};

class Walker {
 public:
  explicit Walker(AnalysisContext& ctx) : ctx_(ctx) {}

  void run(const std::vector<DirectiveNode>& roots) {
    std::vector<InFlight> inflight;
    sequence(roots, nullptr, inflight);
  }

 private:
  AnalysisContext& ctx_;

  static bool is_region(const DirectiveNode& node) {
    return node.directive.kind == core::DirectiveKind::CommParameters;
  }

  /// The region's own synchronization placement (never inherited — matching
  /// the translator, which reads place_sync off the region directive only).
  core::SyncPlacement placement_of(const DirectiveNode& node) {
    const core::RawClause* clause = node.directive.find("place_sync");
    if (clause == nullptr) return core::SyncPlacement::EndParamRegion;
    auto parsed = core::parse_sync_placement_keyword(clause->args[0]);
    if (!parsed.is_ok()) return core::SyncPlacement::EndParamRegion;
    return parsed.value();
  }

  /// Clause-value checks on a region directive: place_sync/target keywords
  /// (CID-S032), max_comm_iter positivity (CID-S032), conflicts with the
  /// enclosing region (CID-S033) and reliability constraints (CID-S035).
  void check_region_clauses(const DirectiveNode& node,
                            const core::ParsedDirective* inherited,
                            const core::ParsedDirective& merged) {
    if (const auto* clause = node.directive.find("place_sync")) {
      auto parsed = core::parse_sync_placement_keyword(clause->args[0]);
      if (!parsed.is_ok()) {
        ctx_.report.add("CID-S032", Severity::Error, node.line,
                        detail::clause_column(node, *clause),
                        "place_sync(" + clause->args[0] + "): " +
                            parsed.status().message());
      }
    }
    if (const auto* clause = node.directive.find("max_comm_iter")) {
      auto expr = core::Expr::parse(clause->args[0]);
      if (expr.is_ok() && expr.value().free_variables().empty()) {
        auto value = expr.value().eval(core::Env{});
        if (value.is_ok() && value.value() <= 0) {
          ctx_.report.add(
              "CID-S032", Severity::Error, node.line,
              detail::clause_column(node, *clause),
              "max_comm_iter(" + clause->args[0] + ") evaluates to " +
                  std::to_string(value.value()) +
                  "; the region would execute no communication iterations");
        }
      }
      if (inherited != nullptr) {
        if (const auto* outer = inherited->find("max_comm_iter");
            outer != nullptr && outer->args[0] != clause->args[0]) {
          ctx_.report.add(
              "CID-S033", Severity::Warning, node.line,
              detail::clause_column(node, *clause),
              "max_comm_iter(" + clause->args[0] +
                  ") overrides the enclosing region's max_comm_iter(" +
                  outer->args[0] +
                  "); nested regions iterate under the inner bound only",
              "drop the inner clause or make the bounds agree");
        }
      }
    }
    if (const auto* clause = merged.find("reliability")) {
      // TARGET_COMM_AUTO is fine: the runtime tuner forces the two-sided
      // lowering whenever a reliability clause is present.
      if (const auto* target = merged.find("target");
          target != nullptr && target->args[0] != "TARGET_COMM_MPI_2SIDE" &&
          target->args[0] != "TARGET_COMM_AUTO") {
        ctx_.report.add(
            "CID-S035", Severity::Error, node.line,
            detail::clause_column(node, *clause),
            "reliability requires TARGET_COMM_MPI_2SIDE, but the region "
            "targets " + target->args[0],
            "the ack/retransmit protocol rides on two-sided messages; drop "
            "the target clause or the reliability clause");
      }
      for (std::size_t i = 0; i < clause->args.size(); ++i) {
        auto expr = core::Expr::parse(clause->args[i]);
        if (!expr.is_ok() || !expr.value().free_variables().empty()) continue;
        auto value = expr.value().eval(core::Env{});
        if (!value.is_ok()) continue;
        if ((i == 0 && value.value() <= 0) || (i == 1 && value.value() < 0)) {
          ctx_.report.add(
              "CID-S035", Severity::Warning, node.line,
              detail::clause_column(node, *clause),
              "reliability(" + clause->args[0] + ", " + clause->args[1] +
                  "): " + (i == 0 ? "timeout must be positive"
                                  : "retry count must be non-negative"));
          break;
        }
      }
    }
    if (const auto* clause = node.directive.find("target")) {
      auto parsed = core::parse_target_keyword(clause->args[0]);
      if (!parsed.is_ok()) {
        ctx_.report.add("CID-S032", Severity::Error, node.line,
                        detail::clause_column(node, *clause),
                        "target(" + clause->args[0] + "): " +
                            parsed.status().message());
      }
    }
  }

  /// Walk one sibling sequence (the file top level, or a region body).
  void sequence(const std::vector<DirectiveNode>& nodes,
                const core::ParsedDirective* inherited,
                std::vector<InFlight>& inflight) {
    std::vector<PendingSync> pending;
    std::size_t previous_end = std::string::npos;

    for (std::size_t k = 0; k < nodes.size(); ++k) {
      const DirectiveNode& node = nodes[k];
      ++ctx_.report.directives_checked;

      // Statements between this node and the previous sibling run while
      // deferred receives are still in flight.
      if (!pending.empty() && previous_end != std::string::npos &&
          previous_end < node.pragma_begin) {
        for (const PendingSync& sync : pending) {
          detail::check_gap_references(ctx_, previous_end, node.pragma_begin,
                                       sync.entries);
        }
      }

      const core::ParsedDirective merged =
          inherited == nullptr
              ? node.directive
              : translate::merge_directives(*inherited, node.directive);

      if (is_region(node)) {
        check_region_clauses(node, inherited, merged);

        const core::SyncPlacement placement = placement_of(node);
        const bool defers =
            placement != core::SyncPlacement::EndParamRegion;
        if (defers) {
          // Deferred syncs drain only at a later sibling region.
          bool has_following_region = false;
          for (std::size_t j = k + 1; j < nodes.size(); ++j) {
            if (is_region(nodes[j])) has_following_region = true;
          }
          if (!has_following_region) {
            const bool begin_next =
                placement == core::SyncPlacement::BeginNextParamRegion;
            ctx_.report.add(
                begin_next ? "CID-S030" : "CID-S031", Severity::Error,
                node.line, node.column,
                std::string("place_sync(") +
                    (begin_next ? "BEGIN_NEXT_PARAM_REGION"
                                : "END_ADJ_PARAM_REGIONS") +
                    ") defers the consolidated sync to a following "
                    "parameter region, but no region follows this one",
                "the receives posted here would never be completed; use "
                "END_PARAM_REGION or add the adjacent region");
          }
        }

        // BEGIN_NEXT deferred syncs from earlier siblings land at this
        // region's begin; END_ADJ ones stay in flight through its body.
        pending.erase(
            std::remove_if(pending.begin(), pending.end(),
                           [](const PendingSync& sync) {
                             return sync.clears_at_next_begin;
                           }),
            pending.end());
        const std::size_t injected_begin = inflight.size();
        for (const PendingSync& sync : pending) {
          inflight.insert(inflight.end(), sync.entries.begin(),
                          sync.entries.end());
        }

        const std::size_t fresh_begin = inflight.size();
        sequence(node.children, &merged, inflight);

        std::vector<InFlight> fresh(inflight.begin() + fresh_begin,
                                    inflight.end());
        inflight.resize(injected_begin);
        pending.clear();  // END_ADJ syncs land at this adjacent region's end
        if (defers && !fresh.empty()) {
          pending.push_back(
              {std::move(fresh),
               placement == core::SyncPlacement::BeginNextParamRegion});
        }
      } else {
        const bool usable =
            detail::check_required_clauses(ctx_, node, merged);
        if (usable) {
          detail::check_match_and_counts(ctx_, node, merged);
          detail::check_buffer_types(ctx_, node, merged);
          detail::check_p2p_buffers(ctx_, node, merged, inflight,
                                    /*append=*/inherited != nullptr);
        }
        if (const auto* clause = node.directive.find("target")) {
          auto parsed = core::parse_target_keyword(clause->args[0]);
          if (!parsed.is_ok()) {
            ctx_.report.add("CID-S032", Severity::Error, node.line,
                            detail::clause_column(node, *clause),
                            "target(" + clause->args[0] + "): " +
                                parsed.status().message());
          }
        }
        // Directives nested inside a p2p body (unusual, but the scanner
        // models it) inherit the same surrounding region.
        sequence(node.children, inherited, inflight);
      }
      previous_end = node.node_end;
    }
  }
};

/// Classify a scan issue by its message: the scanner produces a closed set
/// of structural messages, everything else is the pragma parser speaking.
void add_scan_issue(Report& report, const translate::ScanIssue& issue) {
  const std::string& message = issue.status.message();
  const char* id = "CID-P001";
  std::string hint;
  if (message.find("continuation") != std::string::npos) {
    id = "CID-P004";
    hint = "every '\\'-continued line must be followed by another line";
  } else if (message == "directive has no attached statement or block" ||
             message == "unbalanced braces after directive" ||
             message == "directive statement is not terminated") {
    id = "CID-P002";
  } else {
    hint = "see docs/DIRECTIVES.md for the clause grammar";
  }
  report.add(id, Severity::Error, issue.line, issue.column, message,
             std::move(hint));
}

}  // namespace

Report analyze_source(std::string_view source, const Options& options) {
  Report report;
  const std::vector<unsigned char> mask = translate::code_mask(source);
  const SourceModel model = SourceModel::scan(source);
  const DirectiveTree tree = translate::scan_directives(source);

  for (const translate::ScanIssue& issue : tree.issues) {
    add_scan_issue(report, issue);
  }

  AnalysisContext ctx{source, mask, model, options, report};
  Walker(ctx).run(tree.roots);
  report.sort();
  return report;
}

}  // namespace cid::analyze
