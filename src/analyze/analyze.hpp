// cid::analyze — the static directive verifier behind `cidt check`.
//
// Verifies a directive program without executing it, over the lexical
// region tree produced by translate::scan_directives():
//  1. rank-symbolic match analysis: sender/receiver/sendwhen/receivewhen
//     expressions are evaluated on every rank for every nprocs in a swept
//     range, pairing each posted send with the receive that should consume
//     it — stranded sends, receives that never fire, and out-of-range peers
//     become diagnostics long before the program deadlocks at run time;
//  2. buffer race detection: an rbuf reused while a previous receive into it
//     is still waiting for the consolidated sync, sbuf/rbuf self-aliasing,
//     and overlap-region statements that touch in-flight buffers;
//  3. sync placement and inheritance validation: dangling
//     BEGIN_NEXT_PARAM_REGION / END_ADJ_PARAM_REGIONS, max_comm_iter
//     conflicts, contradictory inherited clauses, count/extent mismatches;
//  4. reflection rules (pointer members, nested composites) surfaced at
//     lint time instead of at TypeLayout instantiation.
//
// Every diagnostic ID is documented with a minimal triggering example in
// docs/ANALYSIS.md.
#pragma once

#include <string_view>

#include "analyze/diagnostics.hpp"

namespace cid::analyze {

struct Options {
  /// Inclusive nprocs sweep for rank-symbolic match analysis. The defaults
  /// cover the boundary cases (2) and enough ranks to expose modular and
  /// parity patterns (8).
  int nprocs_min = 2;
  int nprocs_max = 8;
};

/// Analyze one source buffer. Never fails: unreadable constructs produce
/// diagnostics (or are skipped), not errors.
Report analyze_source(std::string_view source, const Options& options = {});

}  // namespace cid::analyze
