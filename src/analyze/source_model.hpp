// A lightweight declaration model of the analyzed translation unit.
//
// The analyzer runs before any real compiler, so it recovers just enough
// C/C++ declaration structure textually to reason about directive buffers:
//  - array declarations with constant extents (`double buf[4];`), feeding
//    the paper's count-inference checks;
//  - struct definitions with their field declarations, flagging pointer
//    members and nested composites — the reflection rules TypeLayout
//    enforces at run time, surfaced at lint time;
//  - CID_REFLECT_STRUCT(...) registrations;
//  - variable declarations of composite types (`AtomScalars s;`).
//
// Heuristic by design: declarations the scanner cannot parse are simply
// absent from the model, and every consumer treats "unknown" as "no
// diagnostic" — lint-time analysis must never invent a false positive from
// a parse it did not understand.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cid::analyze {

struct StructFieldDecl {
  std::string type;  ///< leading type token(s), without '*' / array suffix
  std::string name;
  bool is_pointer = false;
  bool is_array = false;
};

struct StructDecl {
  std::string name;
  std::vector<StructFieldDecl> fields;
  bool reflected = false;  ///< CID_REFLECT_STRUCT seen for this type
  int line = 0;            ///< 1-based line of the struct keyword
};

struct SourceModel {
  /// Variable name -> constant array extent (only constant-extent arrays).
  std::map<std::string, long long> array_extents;
  /// Variable name -> declared type name (composite candidates only).
  std::map<std::string, std::string> variable_types;
  /// Struct name -> definition.
  std::map<std::string, StructDecl> structs;

  const StructDecl* struct_of_variable(const std::string& variable) const;

  /// Extent of `buffer_text` when it names a declared constant-extent array
  /// (bare identifier only; indexed or address-of expressions are unknown).
  std::optional<long long> extent_of(const std::string& buffer_text) const;

  /// Scan a source buffer (comments and strings are ignored).
  static SourceModel scan(std::string_view source);
};

/// Base identifier of a buffer clause argument: `&ev[3*p]` -> "ev",
/// `stage.vr` -> "stage", `buf2` -> "buf2". Empty when there is none.
std::string buffer_base_identifier(std::string_view argument);

}  // namespace cid::analyze
