#include "analyze/diagnostics.hpp"

#include <algorithm>
#include <ostream>

namespace cid::analyze {

std::string_view severity_name(Severity severity) noexcept {
  return severity == Severity::Error ? "error" : "warning";
}

int Report::errors() const noexcept {
  int n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

int Report::warnings() const noexcept {
  return static_cast<int>(diagnostics.size()) - errors();
}

void Report::add(std::string id, Severity severity, int line, int column,
                 std::string message, std::string hint) {
  Diagnostic d;
  d.id = std::move(id);
  d.severity = severity;
  d.line = line;
  d.column = column;
  d.message = std::move(message);
  d.hint = std::move(hint);
  diagnostics.push_back(std::move(d));
}

void Report::sort() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.column != b.column) return a.column < b.column;
                     return a.id < b.id;
                   });
}

void print_human(const FileReport& file, std::ostream& out) {
  for (const auto& d : file.report.diagnostics) {
    out << file.path << ':' << d.line << ':' << d.column << ": "
        << severity_name(d.severity) << ": [" << d.id << "] " << d.message
        << '\n';
    if (!d.hint.empty()) out << "  hint: " << d.hint << '\n';
  }
  if (file.report.symbolic_skips > 0) {
    out << file.path << ": note: " << file.report.symbolic_skips
        << " directive(s) skipped: symbolic clause(s) reference variables "
           "beyond rank/nprocs; nothing is provable statically\n"
        << "  hint: run `cidt explore " << file.path
        << "` to check the skipped directives dynamically\n";
  }
}

namespace {

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const std::vector<FileReport>& files) {
  int errors = 0;
  int warnings = 0;
  int directives = 0;
  int symbolic_skips = 0;
  std::string out = "{\"cidlint\":1,\"files\":[";
  bool first_file = true;
  for (const auto& file : files) {
    if (!first_file) out += ',';
    first_file = false;
    out += "{\"path\":";
    append_json_string(out, file.path);
    out += ",\"directives\":" + std::to_string(file.report.directives_checked);
    out += ",\"symbolic_skips\":" + std::to_string(file.report.symbolic_skips);
    out += ",\"diagnostics\":[";
    bool first = true;
    for (const auto& d : file.report.diagnostics) {
      if (!first) out += ',';
      first = false;
      out += "{\"id\":";
      append_json_string(out, d.id);
      out += ",\"severity\":\"";
      out += severity_name(d.severity);
      out += "\",\"line\":" + std::to_string(d.line);
      out += ",\"column\":" + std::to_string(d.column);
      out += ",\"message\":";
      append_json_string(out, d.message);
      if (!d.hint.empty()) {
        out += ",\"hint\":";
        append_json_string(out, d.hint);
      }
      out += '}';
    }
    out += "]}";
    errors += file.report.errors();
    warnings += file.report.warnings();
    directives += file.report.directives_checked;
    symbolic_skips += file.report.symbolic_skips;
  }
  out += "],\"summary\":{\"files\":" + std::to_string(files.size()) +
         ",\"directives\":" + std::to_string(directives) +
         ",\"symbolic_skips\":" + std::to_string(symbolic_skips) +
         ",\"errors\":" + std::to_string(errors) +
         ",\"warnings\":" + std::to_string(warnings) + "}}";
  return out;
}

}  // namespace cid::analyze
