// Internal plumbing shared by the analyzer passes. Not installed; include
// only from within src/analyze.
#pragma once

#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/diagnostics.hpp"
#include "analyze/source_model.hpp"
#include "translate/scan.hpp"

namespace cid::analyze::detail {

struct AnalysisContext {
  std::string_view source;
  const std::vector<unsigned char>& mask;  ///< translate::code_mask(source)
  const SourceModel& model;
  const Options& options;
  Report& report;
};

/// A receive posted by an earlier comm_p2p whose consolidated sync has not
/// landed yet.
struct InFlight {
  std::string text;  ///< rbuf clause argument, whitespace-normalized
  std::string base;  ///< base identifier ("" when none)
  std::string receivewhen;  ///< guard expression text ("" when unguarded)
  int line = 0;             ///< line of the posting directive
};

/// Column of a clause within its pragma (falls back to the pragma's own
/// column for '\'-continued pragmas, where joined offsets do not map back).
int clause_column(const translate::DirectiveNode& node,
                  const core::RawClause& clause);

/// Does [begin,end) reference `identifier` as a whole token in live code
/// (comments/strings masked out), outside the given excluded subranges?
bool references_identifier(
    const AnalysisContext& ctx, std::size_t begin, std::size_t end,
    const std::string& identifier,
    const std::vector<std::pair<std::size_t, std::size_t>>& exclude);

/// Rank-symbolic match analysis + count checks + dead-directive detection
/// for one comm_p2p (CID-M010..M015, CID-S034) or comm_collective
/// (root-range check). `merged` is the directive with inherited clauses.
void check_match_and_counts(AnalysisContext& ctx,
                            const translate::DirectiveNode& node,
                            const core::ParsedDirective& merged);

/// Required clauses after inheritance (CID-P005) and sbuf/rbuf list-length
/// agreement (CID-P006). Returns false when the directive is too malformed
/// for the other passes.
bool check_required_clauses(AnalysisContext& ctx,
                            const translate::DirectiveNode& node,
                            const core::ParsedDirective& merged);

/// Buffer race checks for one comm_p2p: rbuf already in flight (CID-B020),
/// sbuf/rbuf self-alias on a rank that both sends and receives (CID-B021),
/// overlap statements touching an in-flight rbuf (CID-B022). Appends the
/// directive's rbufs to `inflight` when `append` is set (directives inside a
/// comm_parameters region, whose consolidated sync is still to come);
/// standalone directives synchronize immediately and leave nothing behind.
void check_p2p_buffers(AnalysisContext& ctx,
                       const translate::DirectiveNode& node,
                       const core::ParsedDirective& merged,
                       std::vector<InFlight>& inflight, bool append);

/// CID-B023: statements in [begin,end) touching buffers whose sync was
/// deferred past their region (place_sync BEGIN_NEXT/END_ADJ).
void check_gap_references(AnalysisContext& ctx, std::size_t begin,
                          std::size_t end,
                          const std::vector<InFlight>& deferred);

/// Reflection rules surfaced at lint time (CID-T040..T042) for every
/// composite buffer of the directive.
void check_buffer_types(AnalysisContext& ctx,
                        const translate::DirectiveNode& node,
                        const core::ParsedDirective& merged);

}  // namespace cid::analyze::detail
