#include "analyze/source_model.hpp"

#include <cctype>
#include <cstdlib>
#include <set>

#include "common/strings.hpp"
#include "translate/scan.hpp"

namespace cid::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Source with comments and string/char literals blanked to spaces
/// (newlines preserved so offsets and line numbers survive).
std::string blank_non_code(std::string_view source) {
  const std::vector<unsigned char> mask = translate::code_mask(source);
  std::string clean(source);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (mask[i] == 0 && clean[i] != '\n') clean[i] = ' ';
  }
  return clean;
}

struct Token {
  std::string text;
  std::size_t pos = 0;
  bool is_ident = false;
};

std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.pos = i;
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < text.size() && ident_char(text[j])) ++j;
      token.text = std::string(text.substr(i, j - i));
      token.is_ident = true;
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < text.size() && (ident_char(text[j]) || text[j] == '.')) ++j;
      token.text = std::string(text.substr(i, j - i));
      i = j;
    } else {
      token.text = std::string(1, c);
      i += 1;
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

/// Keywords that can precede `name[...]` without being a type.
const std::set<std::string>& non_type_keywords() {
  static const std::set<std::string> keywords = {
      "return", "sizeof", "case",  "goto",      "new",     "delete",
      "throw",  "else",   "do",    "co_return", "co_yield", "in",
      "if",     "while",  "for",   "switch",    "not",     "and",
      "or",     "typedef", "using", "operator"};
  return keywords;
}

/// Type qualifiers stripped when normalizing a field's type name.
std::string normalize_type(std::string type) {
  std::string_view view = cid::trim(type);
  for (std::string_view prefix :
       {"const ", "volatile ", "struct ", "class ", "mutable "}) {
    while (cid::starts_with(view, prefix)) {
      view = cid::trim(view.substr(prefix.size()));
    }
  }
  return std::string(cid::trim(view));
}

/// Parse the field declarations of a struct body into `decl`.
void parse_struct_fields(std::string_view body, StructDecl& decl) {
  for (std::string_view segment : cid::split_top_level(body, ';')) {
    std::string_view text = cid::trim(segment);
    if (text.empty()) continue;
    // Methods, constructors, nested definitions, access specifiers.
    if (text.find('(') != std::string_view::npos) continue;
    if (text.find('{') != std::string_view::npos) continue;
    if (text.back() == ':') continue;
    // Drop a default member initializer.
    if (const std::size_t eq = text.find('='); eq != std::string_view::npos) {
      text = cid::trim(text.substr(0, eq));
    }
    if (text.empty()) continue;

    std::string base_type;
    for (std::string_view piece : cid::split_top_level(text, ',')) {
      std::string_view declarator = cid::trim(piece);
      if (declarator.empty()) continue;
      StructFieldDecl field;
      // Array suffix.
      if (const std::size_t bracket = declarator.find('[');
          bracket != std::string_view::npos) {
        field.is_array = true;
        declarator = cid::trim(declarator.substr(0, bracket));
      }
      // The field name is the trailing identifier.
      std::size_t name_end = declarator.size();
      while (name_end > 0 && !ident_char(declarator[name_end - 1])) {
        --name_end;
      }
      std::size_t name_begin = name_end;
      while (name_begin > 0 && ident_char(declarator[name_begin - 1])) {
        --name_begin;
      }
      if (name_begin == name_end) continue;  // no identifier at all
      field.name =
          std::string(declarator.substr(name_begin, name_end - name_begin));
      std::string_view prefix = declarator.substr(0, name_begin);
      field.is_pointer = prefix.find('*') != std::string_view::npos;
      std::string type_text(prefix);
      for (char& c : type_text) {
        if (c == '*' || c == '&') c = ' ';
      }
      type_text = normalize_type(type_text);
      if (!type_text.empty()) base_type = type_text;
      field.type = base_type;
      if (field.name == base_type) continue;  // parsed a lone type name
      decl.fields.push_back(std::move(field));
    }
  }
}

}  // namespace

const StructDecl* SourceModel::struct_of_variable(
    const std::string& variable) const {
  auto type_it = variable_types.find(variable);
  if (type_it == variable_types.end()) return nullptr;
  auto struct_it = structs.find(type_it->second);
  return struct_it == structs.end() ? nullptr : &struct_it->second;
}

std::optional<long long> SourceModel::extent_of(
    const std::string& buffer_text) const {
  const std::string_view trimmed = cid::trim(buffer_text);
  if (trimmed.empty() || !ident_start(trimmed.front())) return std::nullopt;
  for (const char c : trimmed) {
    if (!ident_char(c)) return std::nullopt;  // indexed / member / address-of
  }
  auto it = array_extents.find(std::string(trimmed));
  if (it == array_extents.end()) return std::nullopt;
  return it->second;
}

SourceModel SourceModel::scan(std::string_view source) {
  SourceModel model;
  const std::string clean = blank_non_code(source);
  const std::string_view text = clean;

  // --- struct definitions --------------------------------------------------
  std::size_t search = 0;
  while ((search = text.find("struct", search)) != std::string_view::npos) {
    const std::size_t keyword = search;
    search += 6;
    const bool word =
        (keyword == 0 || !ident_char(text[keyword - 1])) &&
        (keyword + 6 < text.size() && !ident_char(text[keyword + 6]));
    if (!word) continue;
    std::size_t i = keyword + 6;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size() || !ident_start(text[i])) continue;
    std::size_t name_end = i;
    while (name_end < text.size() && ident_char(text[name_end])) ++name_end;
    std::string name(text.substr(i, name_end - i));
    std::size_t brace = name_end;
    while (brace < text.size() &&
           std::isspace(static_cast<unsigned char>(text[brace]))) {
      ++brace;
    }
    if (brace >= text.size() || text[brace] != '{') continue;  // fwd decl/var
    const std::size_t close = translate::find_block_end(text, brace);
    if (close == std::string_view::npos) continue;
    StructDecl decl;
    decl.name = name;
    decl.line = translate::line_of(text, keyword);
    parse_struct_fields(text.substr(brace + 1, close - brace - 1), decl);
    model.structs.emplace(std::move(name), std::move(decl));
    search = close;
  }

  // --- CID_REFLECT_STRUCT registrations ------------------------------------
  search = 0;
  while ((search = text.find("CID_REFLECT_STRUCT", search)) !=
         std::string_view::npos) {
    std::size_t i = search + 18;
    search = i;
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) ||
            text[i] == '(')) {
      ++i;
    }
    std::size_t name_end = i;
    while (name_end < text.size() && ident_char(text[name_end])) ++name_end;
    if (name_end == i) continue;
    const std::string name(text.substr(i, name_end - i));
    auto it = model.structs.find(name);
    if (it != model.structs.end()) {
      it->second.reflected = true;
    } else {
      StructDecl decl;
      decl.name = name;
      decl.reflected = true;
      decl.line = translate::line_of(text, i);
      model.structs.emplace(name, std::move(decl));
    }
  }

  // --- array extents and composite variables (token level) -----------------
  const std::vector<Token> tokens = tokenize(text);
  std::set<std::string> ambiguous_extents;
  for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
    const Token& current = tokens[t];
    const Token& next = tokens[t + 1];
    if (!current.is_ident) continue;

    // `Type name [ N ]` — a constant-extent array declaration.
    if (next.is_ident && t + 4 < tokens.size() && tokens[t + 2].text == "[" &&
        tokens[t + 4].text == "]" && !tokens[t + 3].text.empty() &&
        std::isdigit(static_cast<unsigned char>(tokens[t + 3].text[0])) &&
        non_type_keywords().count(current.text) == 0) {
      const std::string& name = next.text;
      char* parse_end = nullptr;
      const long long extent =
          std::strtoll(tokens[t + 3].text.c_str(), &parse_end, 0);
      if (parse_end == nullptr || *parse_end != '\0' || extent <= 0) continue;
      auto [it, inserted] = model.array_extents.emplace(name, extent);
      if (!inserted && it->second != extent) {
        ambiguous_extents.insert(name);
      }
    }

    // `StructName var` — a composite variable declaration.
    if (next.is_ident && model.structs.count(current.text) != 0 &&
        non_type_keywords().count(next.text) == 0 &&
        (t + 2 >= tokens.size() || tokens[t + 2].text != "(")) {
      model.variable_types.emplace(next.text, current.text);
    }
  }
  for (const auto& name : ambiguous_extents) model.array_extents.erase(name);
  return model;
}

std::string buffer_base_identifier(std::string_view argument) {
  std::size_t i = 0;
  while (i < argument.size() &&
         (argument[i] == '&' || argument[i] == '*' || argument[i] == '(' ||
          std::isspace(static_cast<unsigned char>(argument[i])))) {
    ++i;
  }
  if (i >= argument.size() || !ident_start(argument[i])) return {};
  std::size_t end = i;
  while (end < argument.size() && ident_char(argument[end])) ++end;
  return std::string(argument.substr(i, end - i));
}

}  // namespace cid::analyze
