// FaultInjector — installs a FaultPlan at the rt::World delivery seam.
//
// Determinism: the injector never consults wall-clock state. Application
// traffic (MPI point-to-point and everything built on it) is numbered by a
// per-(src,dst) counter advanced only by the sending rank's thread in
// program order; library-internal traffic (the reliability protocol's
// data/ack/fin messages, whose emission order across transfers IS
// wall-clock-dependent) is keyed by a content hash of (context, tag,
// payload prefix) instead, which is unique per protocol message. Either way
// the fate of every message is a pure function of the seed.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "faults/fault_plan.hpp"
#include "rt/runtime.hpp"
#include "rt/world.hpp"

namespace cid::faults {

/// Snapshot of what the injector did (counts of decided fates).
struct FaultStats {
  std::uint64_t messages = 0;  ///< deliveries observed
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
  std::uint64_t stalls = 0;

  std::uint64_t faults() const noexcept {
    return drops + duplicates + delays + stalls;
  }
  bool operator==(const FaultStats&) const = default;
};

class FaultInjector final : public rt::DeliveryInterceptor {
 public:
  FaultInjector(const FaultPlan& plan, int nranks);

  rt::DeliveryVerdict on_deliver(const rt::Envelope& envelope,
                                 int dest_rank) override;

  const FaultPlan& plan() const noexcept { return plan_; }
  FaultStats stats() const;

 private:
  FaultPlan plan_;
  int nranks_;
  /// Program-order message counters, one per ordered (src,dst) edge. Under
  /// the simulator row src is only touched by rank src's thread, but the
  /// wall-clock transports put ranks on real cores, so the counters are
  /// atomics: determinism still comes from program order on the sending
  /// rank, the atomicity just makes the single-writer assumption a
  /// non-issue instead of a latent race.
  std::vector<std::atomic<std::uint64_t>> edge_seq_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> stalls_{0};
};

/// Convenience harness: run `fn` as an SPMD region with `plan` installed.
struct FaultRun {
  rt::RunResult result;
  FaultStats stats;
};
FaultRun run_with_faults(int nranks, const simnet::MachineModel& model,
                         const FaultPlan& plan, const rt::RankFn& fn);

}  // namespace cid::faults
