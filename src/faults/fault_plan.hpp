// cid::faults — a seeded, deterministic plan of network faults.
//
// A FaultPlan is a pure function from (seed, message identity) to a fate:
// deliver, drop, duplicate, delay, or stall the sender. No mutable state
// means every run with the same seed makes bit-identical decisions no matter
// how the OS schedules the rank threads; the decisions land in *virtual*
// time through the rt::DeliveryInterceptor seam (see injector.hpp).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/error.hpp"
#include "simnet/machine_model.hpp"

namespace cid::faults {

enum class FaultKind : std::uint8_t {
  None,       ///< deliver untouched
  Drop,       ///< payload lost; a tombstone (Envelope::faulted) is delivered
  Duplicate,  ///< a second clean copy is delivered
  Delay,      ///< extra transit latency
  Stall,      ///< the sending rank freezes for a while mid-injection
};

std::string_view fault_kind_name(FaultKind kind) noexcept;

/// Fault rates and magnitudes. Rates are per message and mutually exclusive
/// (a message suffers at most one fault); their sum must be <= 1.
struct FaultSpec {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  double stall_rate = 0.0;
  simnet::SimTime delay = 20e-6;            ///< added transit time (Delay)
  simnet::SimTime duplicate_delay = 5e-6;   ///< extra lag of the copy
  simnet::SimTime stall = 50e-6;            ///< sender freeze (Stall)
  /// Also fault library-internal traffic (the reliability protocol's
  /// ack/nack/fin messages travel Channel::Internal). Default on: a lossy
  /// network does not spare control messages.
  bool fault_internal = true;

  double total_rate() const noexcept {
    return drop_rate + duplicate_rate + delay_rate + stall_rate;
  }

  static FaultSpec drops(double rate) {
    FaultSpec spec;
    spec.drop_rate = rate;
    return spec;
  }
};

class FaultPlan {
 public:
  /// The default plan injects nothing.
  FaultPlan() = default;

  FaultPlan(std::uint64_t seed, const FaultSpec& spec);

  std::uint64_t seed() const noexcept { return seed_; }
  const FaultSpec& spec() const noexcept { return spec_; }
  bool active() const noexcept { return spec_.total_rate() > 0.0; }

  /// Deterministic fate of one message on the edge src -> dst. `salt` must
  /// identify the message instance deterministically (the injector uses a
  /// per-edge program-order counter for application traffic and a content
  /// hash for protocol traffic).
  FaultKind decide(int src, int dst, std::uint64_t salt) const;

 private:
  std::uint64_t seed_ = 0;
  FaultSpec spec_;
};

}  // namespace cid::faults
