#include "faults/injector.hpp"

#include <cstring>
#include <string>

#include "core/trace.hpp"
#include "obs/obs.hpp"
#include "rt/envelope.hpp"

namespace cid::faults {

namespace {

/// splitmix64 finalizer step (same shape as FaultPlan's key mixer).
std::uint64_t mix(std::uint64_t h, std::uint64_t value) noexcept {
  h += 0x9e3779b97f4a7c15ULL * (value + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Content hash identifying an internal-channel protocol message: context,
/// tag (transfer id) and the payload prefix (attempt number + message kind)
/// distinguish every data/ack/nack/fin instance of a transfer.
std::uint64_t internal_salt(const rt::Envelope& envelope) noexcept {
  std::uint64_t prefix = 0;
  const std::size_t take =
      envelope.payload.size() < 8 ? envelope.payload.size() : 8;
  if (take > 0) std::memcpy(&prefix, envelope.payload.data(), take);
  std::uint64_t h = mix(0x17e41a1ULL, 0);
  h = mix(h, static_cast<std::uint64_t>(envelope.context));
  h = mix(h, static_cast<std::uint64_t>(envelope.tag));
  h = mix(h, static_cast<std::uint64_t>(envelope.payload.size()));
  h = mix(h, prefix);
  // Tag internal salts so they cannot collide with small counter values.
  return h | (1ULL << 63);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, int nranks)
    : plan_(plan), nranks_(nranks) {
  CID_REQUIRE(nranks > 0, ErrorCode::InvalidArgument,
              "FaultInjector requires nranks >= 1");
  // Atomics are neither copyable nor movable, so size the vector in place.
  edge_seq_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks));
}

rt::DeliveryVerdict FaultInjector::on_deliver(const rt::Envelope& envelope,
                                              int dest_rank) {
  rt::DeliveryVerdict verdict;
  const int src = envelope.src;
  if (src < 0 || src >= nranks_ || dest_rank < 0 || dest_rank >= nranks_) {
    return verdict;
  }
  messages_.fetch_add(1, std::memory_order_relaxed);

  const bool internal = envelope.channel == rt::Channel::Internal;
  if (internal && !plan_.spec().fault_internal) return verdict;
  std::uint64_t salt;
  if (internal) {
    salt = internal_salt(envelope);
  } else {
    auto& seq = edge_seq_[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(nranks_) +
                          static_cast<std::size_t>(dest_rank)];
    salt = seq.fetch_add(1, std::memory_order_relaxed);
  }

  const FaultKind fate = plan_.decide(src, dest_rank, salt);
  const FaultSpec& spec = plan_.spec();
  switch (fate) {
    case FaultKind::None:
      return verdict;
    case FaultKind::Drop:
      verdict.drop = true;
      drops_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::Duplicate:
      verdict.duplicate = true;
      verdict.duplicate_delay = spec.duplicate_delay;
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::Delay:
      verdict.delay = spec.delay;
      delays_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::Stall:
      verdict.sender_stall = spec.stall;
      stalls_.fetch_add(1, std::memory_order_relaxed);
      break;
  }

  // Timestamps derive from the envelope alone (not the sender's clock, which
  // during a reliability flush depends on arrival interleaving), keeping the
  // trace byte-identical across runs.
  core::detail::record_trace_event(core::TraceEvent{
      core::TraceEventKind::FaultInjected,
      src,
      envelope.available_at,
      envelope.available_at + verdict.delay + verdict.sender_stall +
          (verdict.duplicate ? verdict.duplicate_delay : 0.0),
      std::string(fault_kind_name(fate)) + " -> " +
          std::to_string(dest_rank),
      envelope.payload.size(),
      1,
  });
  if (obs::enabled()) {
    // Per-kind occurrence counter keyed by the victim sender, alongside the
    // site-grained cid.faults.injected counter derived from the trace event.
    obs::count("faults.injected", fault_kind_name(fate), src);
  }
  return verdict;
}

FaultStats FaultInjector::stats() const {
  FaultStats out;
  out.messages = messages_.load(std::memory_order_relaxed);
  out.drops = drops_.load(std::memory_order_relaxed);
  out.duplicates = duplicates_.load(std::memory_order_relaxed);
  out.delays = delays_.load(std::memory_order_relaxed);
  out.stalls = stalls_.load(std::memory_order_relaxed);
  return out;
}

FaultRun run_with_faults(int nranks, const simnet::MachineModel& model,
                         const FaultPlan& plan, const rt::RankFn& fn) {
  auto injector = std::make_shared<FaultInjector>(plan, nranks);
  rt::RunOptions options;
  options.interceptor = injector;
  FaultRun out;
  out.result = rt::run(nranks, model, fn, options);
  out.stats = injector->stats();
  return out;
}

}  // namespace cid::faults
