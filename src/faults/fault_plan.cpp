#include "faults/fault_plan.hpp"

#include "common/rng.hpp"

namespace cid::faults {

namespace {

/// splitmix64 finalizer step, folding `value` into the running hash.
std::uint64_t mix(std::uint64_t h, std::uint64_t value) noexcept {
  h += 0x9e3779b97f4a7c15ULL * (value + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Drop: return "drop";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Delay: return "delay";
    case FaultKind::Stall: return "stall";
  }
  return "unknown";
}

FaultPlan::FaultPlan(std::uint64_t seed, const FaultSpec& spec)
    : seed_(seed), spec_(spec) {
  CID_REQUIRE(spec.drop_rate >= 0.0 && spec.duplicate_rate >= 0.0 &&
                  spec.delay_rate >= 0.0 && spec.stall_rate >= 0.0,
              ErrorCode::InvalidArgument, "fault rates must be non-negative");
  CID_REQUIRE(spec.total_rate() <= 1.0, ErrorCode::InvalidArgument,
              "fault rates must sum to at most 1");
  CID_REQUIRE(spec.delay >= 0.0 && spec.duplicate_delay >= 0.0 &&
                  spec.stall >= 0.0,
              ErrorCode::InvalidArgument,
              "fault durations must be non-negative");
}

FaultKind FaultPlan::decide(int src, int dst, std::uint64_t salt) const {
  if (!active()) return FaultKind::None;
  // One fresh, independent draw per message: the generator is seeded from a
  // hash of the message identity, so the decision is a pure function with no
  // cross-thread state.
  const std::uint64_t key =
      mix(mix(mix(seed_, static_cast<std::uint64_t>(src)),
              static_cast<std::uint64_t>(dst)),
          salt);
  const double u = Rng(key).next_double();
  double threshold = spec_.drop_rate;
  if (u < threshold) return FaultKind::Drop;
  threshold += spec_.duplicate_rate;
  if (u < threshold) return FaultKind::Duplicate;
  threshold += spec_.delay_rate;
  if (u < threshold) return FaultKind::Delay;
  threshold += spec_.stall_rate;
  if (u < threshold) return FaultKind::Stall;
  return FaultKind::None;
}

}  // namespace cid::faults
