#include "obs/trace_tool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>

namespace cid::obs {

namespace {

struct Aggregate {
  std::uint64_t spans = 0;
  double time_us = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;

  void absorb(const TraceSpan& span) {
    ++spans;
    time_us += span.dur_us;
    bytes += span.bytes;
    messages += span.messages;
  }

  bool operator==(const Aggregate&) const = default;
};

using ByCat = std::map<std::string, Aggregate>;
using BySite = std::map<std::pair<std::string, std::string>, Aggregate>;

ByCat aggregate_by_cat(const TraceFile& trace) {
  ByCat out;
  for (const TraceSpan& span : trace.spans) out[span.cat].absorb(span);
  return out;
}

BySite aggregate_by_site(const TraceFile& trace) {
  BySite out;
  for (const TraceSpan& span : trace.spans) {
    out[{span.cat, span.name}].absorb(span);
  }
  return out;
}

std::string fixed(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

void print_row(std::ostream& out, const std::string& label,
               const Aggregate& agg) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  %-52s %8llu %12s %12llu %9llu\n",
                label.size() > 52
                    ? ("…" + label.substr(label.size() - 49)).c_str()
                    : label.c_str(),
                static_cast<unsigned long long>(agg.spans),
                fixed(agg.time_us).c_str(),
                static_cast<unsigned long long>(agg.bytes),
                static_cast<unsigned long long>(agg.messages));
  out << buffer;
}

void print_header(std::ostream& out, const char* label) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "  %-52s %8s %12s %12s %9s\n", label,
                "spans", "time(us)", "bytes", "messages");
  out << buffer;
}

}  // namespace

void summarize_trace(const TraceFile& trace, std::ostream& out) {
  std::set<int> ranks;
  double first_ts = 0.0;
  double last_end = 0.0;
  Aggregate total;
  for (const TraceSpan& span : trace.spans) {
    ranks.insert(span.rank);
    if (total.spans == 0 || span.ts_us < first_ts) first_ts = span.ts_us;
    last_end = std::max(last_end, span.ts_us + span.dur_us);
    total.absorb(span);
  }

  out << "trace: " << total.spans << " spans on " << ranks.size()
      << " rank(s), virtual window " << fixed(first_ts) << " .. "
      << fixed(last_end) << " us, " << total.bytes << " bytes in "
      << total.messages << " message(s)\n";

  out << "\nper phase:\n";
  print_header(out, "phase");
  for (const auto& [cat, agg] : aggregate_by_cat(trace)) {
    print_row(out, cat.empty() ? "(uncategorized)" : cat, agg);
  }

  out << "\nper site (region/directive, mean latency in parentheses):\n";
  print_header(out, "site");
  for (const auto& [key, agg] : aggregate_by_site(trace)) {
    const auto& [cat, name] = key;
    const double mean =
        agg.spans == 0 ? 0.0 : agg.time_us / static_cast<double>(agg.spans);
    print_row(out, cat + " " + name + " (" + fixed(mean) + ")", agg);
  }

  if (!trace.counters.empty()) {
    out << "\nembedded counters:\n";
    for (const auto& counter : trace.counters) {
      out << "  " << counter.metric;
      if (!counter.site.empty()) out << " @ " << counter.site;
      out << " [rank " << counter.rank << "] = " << counter.value << "\n";
    }
  }
  if (!trace.histograms.empty()) {
    out << "\nembedded histograms:\n";
    for (const auto& hist : trace.histograms) {
      out << "  " << hist.metric;
      if (!hist.site.empty()) out << " @ " << hist.site;
      out << " [rank " << hist.rank << "] n=" << hist.count
          << " sum=" << hist.sum << " min=" << hist.min
          << " max=" << hist.max << "\n";
    }
  }
}

bool diff_traces(const TraceFile& a, const TraceFile& b, std::ostream& out,
                 bool semantic) {
  const BySite left = aggregate_by_site(a);
  const BySite right = aggregate_by_site(b);

  std::set<std::pair<std::string, std::string>> keys;
  for (const auto& [key, agg] : left) keys.insert(key);
  for (const auto& [key, agg] : right) keys.insert(key);

  bool identical = true;
  for (const auto& key : keys) {
    const auto l = left.find(key);
    const auto r = right.find(key);
    Aggregate la = l == left.end() ? Aggregate{} : l->second;
    Aggregate ra = r == right.end() ? Aggregate{} : r->second;
    if (semantic) {
      // Timing is allowed to differ; only what moved where must agree.
      la.time_us = 0.0;
      ra.time_us = 0.0;
    }
    if (la == ra) continue;
    if (identical) {
      out << "differing sites (A vs B):\n";
      print_header(out, "site");
    }
    identical = false;
    print_row(out, "A " + key.first + " " + key.second, la);
    print_row(out, "B " + key.first + " " + key.second, ra);
  }
  if (identical) {
    out << "traces are " << (semantic ? "semantically " : "")
        << "equivalent: " << keys.size() << " aggregated site(s) match\n";
  } else {
    out << "A: " << a.spans.size() << " spans, B: " << b.spans.size()
        << " spans\n";
  }
  return identical;
}

void export_csv(const TraceFile& trace, std::ostream& out) {
  out << "rank,cat,name,ts_us,dur_us,bytes,messages\n";
  for (const TraceSpan& span : trace.spans) {
    std::string name = span.name;
    std::replace(name.begin(), name.end(), ',', ';');
    std::string cat = span.cat;
    std::replace(cat.begin(), cat.end(), ',', ';');
    out << span.rank << ',' << cat << ',' << name << ',' << fixed(span.ts_us)
        << ',' << fixed(span.dur_us) << ',' << span.bytes << ','
        << span.messages << "\n";
  }
}

}  // namespace cid::obs
