// CID_TRACE_OUT — the zero-code-change export switch.
//
//   CID_TRACE_OUT=trace.json build/examples/halo2d
//
// rt::run polls this on every launch; the first poll that finds the
// variable enables obs recording process-wide and registers an atexit
// writer. The file is (re)written at the end of every SPMD run and once
// more at process exit, so it always holds the complete timeline of every
// run the process executed. Load it in Perfetto (ui.perfetto.dev) or
// chrome://tracing; inspect it with `cidt trace summarize`.
#pragma once

#include <string>

namespace cid::obs {

/// Check the environment switch (cached after the first call) and activate
/// recording when set. Returns true while autotrace is active.
bool autotrace_poll();

bool autotrace_active() noexcept;

/// Destination path ("" when inactive).
const std::string& autotrace_path();

/// Write the trace file now. No-op when inactive.
void autotrace_write();

}  // namespace cid::obs
