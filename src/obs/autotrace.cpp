#include "obs/autotrace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/obs.hpp"

namespace cid::obs {

namespace {

std::atomic<bool> g_active{false};

std::string& path_storage() {
  // Intentionally leaked so the atexit writer can read it during teardown.
  static std::string* path = new std::string();
  return *path;
}

void init_from_env() {
  const char* path = std::getenv("CID_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') return;
  std::string resolved = path;
  // Under the tcp transport every process would truncate the same file and
  // the last exiting process would win with only its own ranks' events.
  // Give each process its own file: trace.json -> trace.proc1.json.
  const char* proc = std::getenv("CID_NET_PROC");
  if (proc != nullptr && proc[0] != '\0') {
    const auto slash = resolved.find_last_of('/');
    const auto dot = resolved.find_last_of('.');
    const std::string infix = std::string(".proc") + proc;
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
      resolved.insert(dot, infix);
    } else {
      resolved += infix;
    }
  }
  path_storage() = resolved;
  g_active.store(true, std::memory_order_release);
  set_enabled(true);
  std::atexit([] { autotrace_write(); });
}

}  // namespace

bool autotrace_poll() {
  static std::once_flag once;
  std::call_once(once, init_from_env);
  return autotrace_active();
}

bool autotrace_active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

const std::string& autotrace_path() { return path_storage(); }

void autotrace_write() {
  if (!autotrace_active()) return;
  // Serialize concurrent writers (run end vs. atexit) and rewrite the whole
  // file each time: the recorder accumulates, so the last write wins with
  // the complete timeline. The mutex is leaked so the atexit call can take
  // it after static teardown.
  static std::mutex* mutex = new std::mutex();
  std::lock_guard<std::mutex> lock(*mutex);
  std::ofstream out(path_storage(), std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cid: CID_TRACE_OUT: cannot write '%s'\n",
                 path_storage().c_str());
    return;
  }
  write_chrome_json(out);
}

}  // namespace cid::obs
