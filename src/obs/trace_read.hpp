// Reading trace files back: a minimal JSON parser (sufficient for the
// Chrome trace-event format) and the loader that accepts both shapes this
// repository emits — the bare array written by core::TraceCollector and the
// {"traceEvents": [...], "cidMetrics": {...}} object written by cid::obs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace cid::obs {

/// A parsed JSON value. Numbers are doubles (the trace schema never needs
/// integers beyond 2^53).
struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json* find(std::string_view key) const {
    auto it = object.find(std::string(key));
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parse a complete JSON document (trailing whitespace allowed).
Result<Json> parse_json(std::string_view text);

/// One trace slice as read back from a file.
struct TraceSpan {
  int rank = 0;
  std::string cat;
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

/// Metric rows read back from the "cidMetrics" section (absent for
/// bare-array traces).
struct TraceCounter {
  std::string metric;
  std::string site;
  int rank = -1;
  std::uint64_t value = 0;
};
struct TraceHistogram {
  std::string metric;
  std::string site;
  int rank = -1;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct TraceFile {
  std::vector<TraceSpan> spans;  ///< "ph":"X" events only (metadata skipped)
  std::vector<TraceCounter> counters;
  std::vector<TraceHistogram> histograms;
};

/// Load a trace file from disk (array form or object form).
Result<TraceFile> read_trace_file(const std::string& path);

/// Parse an in-memory trace document (for tests).
Result<TraceFile> parse_trace(std::string_view text);

}  // namespace cid::obs
