// Trace-file analysis behind the `cidt trace` CLI subcommand: summarize one
// trace (per-phase and per-site virtual time / bytes), diff two traces, and
// export spans as CSV. Pure functions over TraceFile so tests can drive them
// without touching the filesystem.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace_read.hpp"

namespace cid::obs {

/// Human-readable summary: totals, per-phase (cat) table, per-site table
/// with bytes and virtual-time latency, and any embedded metrics.
void summarize_trace(const TraceFile& trace, std::ostream& out);

/// Compare two traces by per-(cat, name) aggregates; print the differing
/// rows. Returns true when the aggregates are identical. With `semantic`
/// set, virtual time is excluded from the comparison: two runs that move the
/// same bytes and messages through the same sites are equivalent even when a
/// different lowering gave them different clocks (the `cidt trace diff
/// --semantic` regression gate for tuned runs, docs/TUNING.md).
bool diff_traces(const TraceFile& a, const TraceFile& b, std::ostream& out,
                 bool semantic = false);

/// CSV export: one row per span (rank,cat,name,ts_us,dur_us,bytes,messages).
void export_csv(const TraceFile& trace, std::ostream& out);

}  // namespace cid::obs
