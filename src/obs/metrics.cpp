#include "obs/metrics.hpp"

#include <cmath>

namespace cid::obs {

int Histogram::bucket_of(double value) noexcept {
  if (!(value > kBase)) return 0;  // <= kBase, zero, negative, NaN
  const double x = value / kBase;
  // Values past ~1e300 overflow the division to infinity (frexp would then
  // report exponent 0); they belong in the catch-all last bucket anyway.
  if (!std::isfinite(x)) return kBucketCount - 1;
  // ceil(log2 x) via frexp: frexp returns m in [0.5, 1) with x = m * 2^e,
  // so log2 x lies in (e-1, e] and equals e-1 exactly when m == 0.5.
  int e = 0;
  const double m = std::frexp(x, &e);
  const int ceil_log2 = (m == 0.5) ? e - 1 : e;
  if (ceil_log2 < 1) return 1;  // x in (1, 2] rounds up into bucket 1
  if (ceil_log2 >= kBucketCount) return kBucketCount - 1;
  return ceil_log2;
}

double Histogram::bucket_upper_bound(int index) noexcept {
  return kBase * std::ldexp(1.0, index);
}

void Histogram::observe(double value) noexcept {
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: must survive static teardown for the atexit
  // CID_TRACE_OUT writer (see obs/autotrace.cpp).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::add(std::string_view metric, std::string_view site,
                          int rank, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[MetricKey{std::string(metric), std::string(site), rank}] += delta;
}

void MetricsRegistry::observe(std::string_view metric, std::string_view site,
                              int rank, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_[MetricKey{std::string(metric), std::string(site), rank}]
      .observe(value);
}

std::vector<MetricsRegistry::CounterRow> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterRow> out;
  out.reserve(counters_.size());
  for (const auto& [key, value] : counters_) out.push_back({key, value});
  return out;
}

std::vector<MetricsRegistry::HistogramRow> MetricsRegistry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramRow> out;
  out.reserve(histograms_.size());
  for (const auto& [key, hist] : histograms_) out.push_back({key, hist});
  return out;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  histograms_.clear();
}

}  // namespace cid::obs
