// Chrome trace-event export of the obs span stream + metrics registry.
//
// Object form of the trace-event format, which Perfetto and about:tracing
// both accept:
//
//   {
//     "traceEvents": [
//       {"name":"process_name","ph":"M",...},       // metadata: process
//       {"name":"thread_name","ph":"M","tid":R,...} // metadata: one per rank
//       {"name":<site>,"cat":<phase>,"ph":"X",...}  // one slice per span
//     ],
//     "displayTimeUnit": "ns",
//     "cidMetrics": { "counters": [...], "histograms": [...] }
//   }
//
// Timestamps are virtual microseconds. Number formatting uses %.17g so a
// deterministic run serializes to byte-identical JSON on every host.
#include <cstdio>
#include <ostream>
#include <set>

#include "obs/obs.hpp"

namespace cid::obs {

namespace {

void write_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (c == '\n') {
      out << "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out << hex;
    } else {
      out << c;
    }
  }
  out << '"';
}

void write_double(std::ostream& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

}  // namespace

void write_chrome_json(std::ostream& out) {
  const std::vector<Span> sorted = spans();

  out << "{\n\"traceEvents\": [\n";
  out << R"({"name":"process_name","ph":"M","pid":0,"tid":0,)"
      << R"("args":{"name":"cid virtual time"}})";

  std::set<int> ranks;
  for (const Span& s : sorted) ranks.insert(s.rank);
  for (const int rank : ranks) {
    out << ",\n"
        << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << rank
        << R"(,"args":{"name":"rank )" << rank << R"("}})";
  }

  for (const Span& s : sorted) {
    out << ",\n" << R"({"name":)";
    write_json_string(out, s.name);
    out << R"(,"cat":)";
    write_json_string(out, s.cat);
    out << R"(,"ph":"X","pid":0,"tid":)" << s.rank << R"(,"ts":)";
    write_double(out, s.begin * 1e6);
    out << R"(,"dur":)";
    write_double(out, (s.end - s.begin) * 1e6);
    out << R"(,"args":{"bytes":)" << s.bytes << R"(,"messages":)"
        << s.messages << "}}";
  }
  out << "\n],\n\"displayTimeUnit\": \"ns\",\n";

  out << "\"cidMetrics\": {\n\"counters\": [";
  bool first = true;
  for (const auto& row : MetricsRegistry::global().counters()) {
    out << (first ? "\n" : ",\n") << R"({"metric":)";
    first = false;
    write_json_string(out, row.key.metric);
    out << R"(,"site":)";
    write_json_string(out, row.key.site);
    out << R"(,"rank":)" << row.key.rank << R"(,"value":)" << row.value
        << '}';
  }
  out << "\n],\n\"histograms\": [";
  first = true;
  for (const auto& row : MetricsRegistry::global().histograms()) {
    const Histogram& h = row.histogram;
    out << (first ? "\n" : ",\n") << R"({"metric":)";
    first = false;
    write_json_string(out, row.key.metric);
    out << R"(,"site":)";
    write_json_string(out, row.key.site);
    out << R"(,"rank":)" << row.key.rank << R"(,"count":)" << h.count()
        << R"(,"sum":)";
    write_double(out, h.sum());
    out << R"(,"min":)";
    write_double(out, h.min());
    out << R"(,"max":)";
    write_double(out, h.max());
    // Sparse buckets: [index, count] pairs for non-empty buckets only.
    out << R"(,"buckets":[)";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      const std::uint64_t n = h.buckets()[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      if (!first_bucket) out << ',';
      first_bucket = false;
      out << '[' << i << ',' << n << ']';
    }
    out << "]}";
  }
  out << "\n]\n}\n}\n";
}

}  // namespace cid::obs
