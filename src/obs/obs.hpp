// cid::obs — the unified observability layer.
//
// A process-global instrumentation substrate that every subsystem above
// simnet can feed without knowing who exports the data:
//
//   span(...)     a virtual-time phase on one rank's track (region, sync,
//                 overlap, retransmit, ...) — becomes one Chrome trace-event
//                 "X" slice in the Perfetto export;
//   count(...)    a per-(metric, site, rank) counter increment;
//   observe(...)  a per-(metric, site, rank) histogram sample.
//
// Everything is gated on enabled(): one relaxed atomic load when off, so
// instrumented hot paths cost nothing in normal runs. Recording never
// touches a virtual clock — enabling export cannot perturb virtual-time
// results (pinned by the golden fingerprints in tests/property_test.cpp).
//
// Layering: obs depends only on cid_common + cid_simnet, so cid_rt, cid_mpi,
// cid_shmem, cid_core and cid_faults may all call it directly. The directive
// layer forwards its core::TraceCollector event stream here (core/trace.cpp),
// which is how region/sync/overlap spans reach the exporter.
//
// Exporting:
//   write_chrome_json(out)   Perfetto-loadable trace-event JSON (one thread
//                            track per rank, metrics embedded as
//                            "cidMetrics") — see docs/OBSERVABILITY.md;
//   CID_TRACE_OUT=<path>     environment switch (see obs/autotrace.hpp):
//                            every rt::run records and writes <path> with
//                            zero code changes in the program.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace cid::obs {

/// Global gate. Off by default; autotrace (CID_TRACE_OUT) or tests turn it
/// on. Instrumentation sites must check this before building event payloads.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// One virtual-time phase on one rank's track.
struct Span {
  int rank = 0;
  std::string cat;   ///< phase kind: "comm_p2p", "sync", "retransmit", ...
  std::string name;  ///< directive site or event label
  double begin = 0.0;  ///< virtual seconds
  double end = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;

  bool operator==(const Span&) const = default;
};

/// Record a span (no-op when disabled).
void span(Span s);

/// Counter / histogram probes (no-ops when disabled). `site` may be a
/// directive site ("file:line") or a subsystem label; rank -1 means the
/// value is not rank-attributed.
void count(std::string_view metric, std::string_view site, int rank,
           std::uint64_t delta = 1);
void observe(std::string_view metric, std::string_view site, int rank,
             double value);

/// All recorded spans, sorted by (rank, begin, end, cat, name, bytes,
/// messages) — a total order over every serialized field, so a deterministic
/// run exports byte-identical JSON regardless of thread interleaving.
std::vector<Span> spans();

/// Drop all recorded spans and metrics.
void clear();

/// Chrome trace-event JSON (object form): {"traceEvents": [...],
/// "cidMetrics": {...}}. One metadata-named thread track per rank; span
/// timestamps are virtual microseconds. Loadable by Perfetto / about:tracing.
void write_chrome_json(std::ostream& out);

}  // namespace cid::obs
