// Metrics registry — the counter/histogram half of cid::obs.
//
// Every metric is keyed by (metric name, site, rank): the site is the
// directive site ("file:line") or a subsystem label, so per-(region, rank)
// breakdowns fall out of the key structure instead of a post-processing
// step. Counters are plain u64 sums; histograms bucket non-negative doubles
// (virtual seconds, wall nanoseconds, bytes) into power-of-two buckets above
// a 1e-9 base, which covers a nanosecond to centuries in 64 buckets.
//
// The registry is process-global and mutex-guarded. It sits behind the
// cid::obs::enabled() gate: when observability is off nothing ever reaches
// it, so the hot paths pay one relaxed atomic load.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cid::obs {

/// Fixed-bucket log2 histogram over non-negative values.
///
/// Bucket 0 counts values <= kBase; bucket i (1 <= i < kBucketCount) counts
/// values in (kBase * 2^(i-1), kBase * 2^i], with the last bucket absorbing
/// everything larger. Bucketing uses frexp, not a floating log, so boundary
/// values land deterministically on every host.
class Histogram {
 public:
  static constexpr int kBucketCount = 64;
  static constexpr double kBase = 1e-9;

  /// Bucket index a value falls into (see class comment for the ranges).
  static int bucket_of(double value) noexcept;

  /// Inclusive upper bound of a bucket (kBase * 2^index).
  static double bucket_upper_bound(int index) noexcept;

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::array<std::uint64_t, kBucketCount>& buckets() const noexcept {
    return buckets_;
  }

  bool operator==(const Histogram&) const = default;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Identity of one metric series. Ordered (std::map key) so every export
/// walks series in a deterministic order.
struct MetricKey {
  std::string metric;  ///< dotted name, e.g. "cid.p2p.bytes_sent"
  std::string site;    ///< directive site ("file:line") or subsystem label
  int rank = -1;       ///< world rank; -1 = not rank-attributed

  auto operator<=>(const MetricKey&) const = default;
};

/// Process-global registry of counters and histograms.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  void add(std::string_view metric, std::string_view site, int rank,
           std::uint64_t delta);
  void observe(std::string_view metric, std::string_view site, int rank,
               double value);

  struct CounterRow {
    MetricKey key;
    std::uint64_t value = 0;
  };
  struct HistogramRow {
    MetricKey key;
    Histogram histogram;
  };

  /// Snapshots in key order (deterministic).
  std::vector<CounterRow> counters() const;
  std::vector<HistogramRow> histograms() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<MetricKey, std::uint64_t> counters_;
  std::map<MetricKey, Histogram> histograms_;
};

}  // namespace cid::obs
