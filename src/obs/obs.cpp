#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace cid::obs {

namespace {

std::atomic<bool> g_enabled{false};

struct SpanStore {
  std::mutex mutex;
  std::vector<Span> spans;
};

SpanStore& span_store() {
  // Intentionally leaked: the CID_TRACE_OUT atexit writer runs during
  // process teardown, possibly after static destructors, so the store must
  // outlive every destructor.
  static SpanStore* store = new SpanStore();
  return *store;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void span(Span s) {
  if (!enabled()) return;
  SpanStore& store = span_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  store.spans.push_back(std::move(s));
}

void count(std::string_view metric, std::string_view site, int rank,
           std::uint64_t delta) {
  if (!enabled()) return;
  MetricsRegistry::global().add(metric, site, rank, delta);
}

void observe(std::string_view metric, std::string_view site, int rank,
             double value) {
  if (!enabled()) return;
  MetricsRegistry::global().observe(metric, site, rank, value);
}

std::vector<Span> spans() {
  SpanStore& store = span_store();
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(store.mutex);
    out = store.spans;
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.begin != b.begin) return a.begin < b.begin;
    if (a.end != b.end) return a.end < b.end;
    if (a.cat != b.cat) return a.cat < b.cat;
    if (a.name != b.name) return a.name < b.name;
    if (a.bytes != b.bytes) return a.bytes < b.bytes;
    return a.messages < b.messages;
  });
  return out;
}

void clear() {
  SpanStore& store = span_store();
  {
    std::lock_guard<std::mutex> lock(store.mutex);
    store.spans.clear();
  }
  MetricsRegistry::global().clear();
}

}  // namespace cid::obs
