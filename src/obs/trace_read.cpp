#include "obs/trace_read.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cid::obs {

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    auto value = parse_value();
    if (!value.is_ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return value;
  }

 private:
  Status error(const std::string& message) const {
    return Status(ErrorCode::ParseError,
                  "json: " + message + " at offset " + std::to_string(pos_));
  }
  Result<Json> fail(const std::string& message) const {
    return Result<Json>(error(message));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (consume_word("true")) {
      Json v;
      v.kind = Json::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      Json v;
      v.kind = Json::Kind::Bool;
      return v;
    }
    if (consume_word("null")) return Json{};
    return parse_number();
  }

  Result<Json> parse_object() {
    Json out;
    out.kind = Json::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key.is_ok()) return key;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      auto value = parse_value();
      if (!value.is_ok()) return value;
      out.object.emplace(std::move(key.value().string),
                         std::move(value).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return out;
      return fail("expected ',' or '}'");
    }
  }

  Result<Json> parse_array() {
    Json out;
    out.kind = Json::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      auto value = parse_value();
      if (!value.is_ok()) return value;
      out.array.push_back(std::move(value).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return out;
      return fail("expected ',' or ']'");
    }
  }

  Result<Json> parse_string() {
    if (!consume('"')) return fail("expected string");
    Json out;
    out.kind = Json::Kind::String;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.string.push_back('"'); break;
          case '\\': out.string.push_back('\\'); break;
          case '/': out.string.push_back('/'); break;
          case 'n': out.string.push_back('\n'); break;
          case 't': out.string.push_back('\t'); break;
          case 'r': out.string.push_back('\r'); break;
          case 'b': out.string.push_back('\b'); break;
          case 'f': out.string.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Trace strings are ASCII; map anything else to '?'.
            out.string.push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out.string.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    Json out;
    out.kind = Json::Kind::Number;
    out.number = value;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double number_or(const Json& event, std::string_view key, double fallback) {
  const Json* value = event.find(key);
  return value != nullptr && value->kind == Json::Kind::Number ? value->number
                                                               : fallback;
}

std::string string_or(const Json& event, std::string_view key) {
  const Json* value = event.find(key);
  return value != nullptr && value->kind == Json::Kind::String ? value->string
                                                               : std::string();
}

void load_event(const Json& event, TraceFile& out) {
  const Json* ph = event.find("ph");
  if (ph == nullptr || ph->string != "X") return;  // metadata / counters
  TraceSpan span;
  span.rank = static_cast<int>(number_or(event, "tid", 0.0));
  span.cat = string_or(event, "cat");
  span.name = string_or(event, "name");
  span.ts_us = number_or(event, "ts", 0.0);
  span.dur_us = number_or(event, "dur", 0.0);
  if (const Json* args = event.find("args");
      args != nullptr && args->kind == Json::Kind::Object) {
    span.bytes = static_cast<std::uint64_t>(number_or(*args, "bytes", 0.0));
    span.messages =
        static_cast<std::uint64_t>(number_or(*args, "messages", 0.0));
  }
  out.spans.push_back(std::move(span));
}

void load_metrics(const Json& metrics, TraceFile& out) {
  if (const Json* counters = metrics.find("counters");
      counters != nullptr && counters->kind == Json::Kind::Array) {
    for (const Json& row : counters->array) {
      out.counters.push_back(
          {string_or(row, "metric"), string_or(row, "site"),
           static_cast<int>(number_or(row, "rank", -1.0)),
           static_cast<std::uint64_t>(number_or(row, "value", 0.0))});
    }
  }
  if (const Json* histograms = metrics.find("histograms");
      histograms != nullptr && histograms->kind == Json::Kind::Array) {
    for (const Json& row : histograms->array) {
      out.histograms.push_back(
          {string_or(row, "metric"), string_or(row, "site"),
           static_cast<int>(number_or(row, "rank", -1.0)),
           static_cast<std::uint64_t>(number_or(row, "count", 0.0)),
           number_or(row, "sum", 0.0), number_or(row, "min", 0.0),
           number_or(row, "max", 0.0)});
    }
  }
}

}  // namespace

Result<Json> parse_json(std::string_view text) {
  return Parser(text).parse();
}

Result<TraceFile> parse_trace(std::string_view text) {
  auto document = parse_json(text);
  if (!document.is_ok()) return Result<TraceFile>(document.status());
  const Json& root = document.value();

  TraceFile out;
  const Json* events = nullptr;
  if (root.kind == Json::Kind::Array) {
    events = &root;
  } else if (root.kind == Json::Kind::Object) {
    events = root.find("traceEvents");
    if (events == nullptr || events->kind != Json::Kind::Array) {
      return Result<TraceFile>(
          Status(ErrorCode::ParseError,
                 "trace: object form lacks a \"traceEvents\" array"));
    }
    if (const Json* metrics = root.find("cidMetrics");
        metrics != nullptr && metrics->kind == Json::Kind::Object) {
      load_metrics(*metrics, out);
    }
  } else {
    return Result<TraceFile>(Status(
        ErrorCode::ParseError, "trace: document is neither array nor object"));
  }

  for (const Json& event : events->array) {
    if (event.kind == Json::Kind::Object) load_event(event, out);
  }
  return out;
}

Result<TraceFile> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Result<TraceFile>(
        Status(ErrorCode::IoError, "cannot read '" + path + "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_trace(buffer.str());
}

}  // namespace cid::obs
