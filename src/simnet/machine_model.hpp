// LogGP-style cost model substituting for the paper's Cray XK7 + Gemini
// testbed.
//
// Every communication operation in miniMPI / miniSHMEM charges *virtual time*
// according to these tables instead of measuring wall-clock time, which makes
// all experiment outputs deterministic and independent of host scheduling.
//
// Calibration: the absolute values are in the ballpark of published Gemini
// numbers (microsecond-scale latencies, ~5 GB/s per-direction link bandwidth);
// the *ratios* are calibrated so the structural effects the paper measures are
// reproduced:
//   - per-call MPI_Wait overhead vs one consolidated MPI_Waitall (the paper's
//     2.6x validation experiment, Section IV-B),
//   - compiler-generated (directive) call sequences with hoisted argument
//     marshalling vs hand-written per-iteration request management (the
//     remaining ~1.4x for the MPI target),
//   - the small-message (8-256 B) latency gap between SHMEM puts and MPI
//     two-sided messaging that the paper cites from [13],[14] to explain the
//     ~38x SHMEM speedup in setEvec.
#pragma once

#include <cstddef>

namespace cid::simnet {

/// Seconds of virtual time.
using SimTime = double;

/// Cost table for one communication path (a library + transfer style).
struct PathCosts {
  /// CPU time the sender spends inside the send/put call (o_s in LogGP).
  SimTime send_overhead = 0.0;
  /// CPU time the receiver spends completing one message (o_r).
  SimTime recv_overhead = 0.0;
  /// Wire latency, first byte out to first byte in (L).
  SimTime latency = 0.0;
  /// Streaming bandwidth for the payload (1/G).
  double bytes_per_second = 1.0;
  /// Minimum spacing between consecutive message injections (g).
  SimTime per_message_gap = 0.0;
  /// Sender-side injection occupancy: the NIC interface drains payload at
  /// this rate, so consecutive large sends serialize at the sender (LogGP's
  /// per-byte gap G applied at the injection point). Effectively infinite
  /// by default.
  double injection_bytes_per_second = 1.0e30;

  /// CPU time the sender is busy injecting `bytes` (overhead + occupancy).
  SimTime injection_time(std::size_t bytes) const noexcept {
    return send_overhead + per_message_gap +
           static_cast<SimTime>(bytes) / injection_bytes_per_second;
  }
  /// Cost of one single-request completion call (MPI_Wait).
  SimTime wait_single = 0.0;
  /// Fixed cost of an aggregate completion call (MPI_Waitall, shmem_quiet).
  SimTime waitall_base = 0.0;
  /// Incremental cost per request retired inside the aggregate call.
  SimTime waitall_per_request = 0.0;
  /// Payloads larger than this use the rendezvous protocol.
  std::size_t eager_threshold_bytes = 1u << 30;
  /// Extra one-way latency paid by rendezvous transfers (handshake).
  SimTime rendezvous_extra_latency = 0.0;
  /// One-time cost of building a persistent request (MPI_Send_init /
  /// MPI_Recv_init). Amortized over the region's iterations by the directive
  /// lowering.
  SimTime persistent_setup = 0.0;
  /// Injection/post cost of MPI_Start on a persistent send/recv request;
  /// lower than the full Isend/Irecv path because argument marshalling,
  /// request allocation and matching setup were hoisted.
  SimTime persistent_send_overhead = 0.0;
  SimTime persistent_recv_overhead = 0.0;

  /// Time at which a payload injected at `send_complete_time` is fully
  /// available in the destination's memory.
  SimTime delivery_time(SimTime send_complete_time,
                        std::size_t bytes) const noexcept {
    SimTime t = send_complete_time + latency +
                static_cast<SimTime>(bytes) / bytes_per_second;
    if (bytes > eager_threshold_bytes) t += rendezvous_extra_latency;
    return t;
  }
};

/// Cost table for host-side operations the directive translation changes.
struct HostCosts {
  /// MPI_Pack / MPI_Unpack per-call fixed cost (argument checking, position
  /// bookkeeping) and streaming copy rate.
  SimTime pack_call_overhead = 0.0;
  double pack_bytes_per_second = 1.0;
  /// Derived-datatype construction: MPI_Type_create_struct + commit.
  SimTime type_create_base = 0.0;
  SimTime type_create_per_field = 0.0;
  /// Gather/scatter penalty rate when sending via a non-contiguous derived
  /// type (engine walks the layout instead of a flat memcpy).
  double datatype_pack_bytes_per_second = 1.0;
};

/// The whole machine: one cost table per path plus collective parameters.
struct MachineModel {
  PathCosts mpi_two_sided;
  PathCosts mpi_one_sided;  ///< MPI_Put; waitall_base models MPI_Win_fence
  PathCosts shmem;          ///< puts; waitall_base models shmem_quiet
  HostCosts host;

  /// Barrier cost: base + log2(nranks) * per_stage (dissemination barrier).
  SimTime barrier_base = 0.0;
  SimTime barrier_per_stage = 0.0;

  SimTime barrier_cost(int nranks) const noexcept;

  /// Calibrated preset reproducing the paper's observed behaviour (see file
  /// header). This is the model every bench and example uses.
  static MachineModel cray_xk7_gemini();

  /// A null model (everything free). Used by unit tests that check data
  /// movement semantics without caring about time.
  static MachineModel zero();
};

}  // namespace cid::simnet
