// Per-rank virtual clock. All times reported by benches are read from these
// clocks, never from the host's wall clock, so results are deterministic.
#pragma once

#include "common/error.hpp"
#include "simnet/machine_model.hpp"

namespace cid::simnet {

class VirtualClock {
 public:
  SimTime now() const noexcept { return now_; }

  /// Spend `dt` of local CPU/network time.
  void advance(SimTime dt) {
    CID_REQUIRE(dt >= 0.0, ErrorCode::InvalidArgument,
                "VirtualClock cannot advance by negative time");
    now_ += dt;
  }

  /// Wait until an external event at absolute time `t` (no-op if already
  /// past it — waiting for an event that already happened is free).
  void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

  void reset(SimTime t = 0.0) noexcept { now_ = t; }

 private:
  SimTime now_ = 0.0;
};

}  // namespace cid::simnet
