#include "simnet/machine_model.hpp"

#include <bit>
#include <cmath>

namespace cid::simnet {

namespace {
constexpr double kMicro = 1e-6;
}

SimTime MachineModel::barrier_cost(int nranks) const noexcept {
  if (nranks <= 1) return barrier_base;
  const int stages = std::bit_width(static_cast<unsigned>(nranks - 1));
  return barrier_base + barrier_per_stage * static_cast<SimTime>(stages);
}

MachineModel MachineModel::cray_xk7_gemini() {
  MachineModel m;

  // Two-sided MPI over Gemini. `wait_single` carries the cost of entering the
  // progress engine once per MPI_Wait call; the Waitall path retires requests
  // in one pass. These two values realise the paper's measured ~2.6x gain
  // from replacing a Wait loop with Waitall (Section IV-B).
  m.mpi_two_sided.send_overhead = 2.0 * kMicro;
  m.mpi_two_sided.recv_overhead = 1.5 * kMicro;
  m.mpi_two_sided.latency = 1.6 * kMicro;
  m.mpi_two_sided.bytes_per_second = 5.0e9;
  m.mpi_two_sided.per_message_gap = 0.05 * kMicro;
  m.mpi_two_sided.injection_bytes_per_second = 5.0e9;
  m.mpi_two_sided.wait_single = 3.9 * kMicro;
  m.mpi_two_sided.waitall_base = 2.0 * kMicro;
  m.mpi_two_sided.waitall_per_request = 0.1 * kMicro;
  m.mpi_two_sided.eager_threshold_bytes = 4096;
  m.mpi_two_sided.rendezvous_extra_latency = 2.5 * kMicro;
  // Persistent-request path: what directive-generated code uses inside a
  // comm_parameters region. Produces the paper's residual ~1.4x directive-MPI
  // gain over the Waitall-modified original.
  m.mpi_two_sided.persistent_setup = 3.0 * kMicro;
  m.mpi_two_sided.persistent_send_overhead = 1.0 * kMicro;
  m.mpi_two_sided.persistent_recv_overhead = 0.8 * kMicro;

  // One-sided MPI (MPI_Put + MPI_Win_fence). Fence cost sits in waitall_base.
  m.mpi_one_sided.send_overhead = 1.0 * kMicro;
  m.mpi_one_sided.recv_overhead = 0.0;
  m.mpi_one_sided.latency = 1.5 * kMicro;
  m.mpi_one_sided.bytes_per_second = 5.0e9;
  m.mpi_one_sided.per_message_gap = 0.05 * kMicro;
  m.mpi_one_sided.injection_bytes_per_second = 5.0e9;
  m.mpi_one_sided.wait_single = 1.0 * kMicro;
  m.mpi_one_sided.waitall_base = 3.0 * kMicro;
  m.mpi_one_sided.waitall_per_request = 0.05 * kMicro;
  m.mpi_one_sided.eager_threshold_bytes = 1u << 30;  // puts stream directly
  m.mpi_one_sided.rendezvous_extra_latency = 0.0;

  // SHMEM puts: NIC-offloaded, no tag matching, no request objects. The tiny
  // injection overhead is what produces the paper's small-message (8-256 B)
  // SHMEM advantage; bandwidth is the same wire as MPI so large transfers
  // converge (ablation_msgsize demonstrates the crossover).
  // FMA-descriptor small-put injection on Gemini is of order 100 ns; the
  // sender is free as soon as the descriptor is queued.
  m.shmem.send_overhead = 0.06 * kMicro;
  m.shmem.recv_overhead = 0.0;
  m.shmem.latency = 0.9 * kMicro;
  m.shmem.bytes_per_second = 5.0e9;
  m.shmem.per_message_gap = 0.01 * kMicro;
  m.shmem.injection_bytes_per_second = 5.0e9;
  m.shmem.wait_single = 0.12 * kMicro;     // wait_until poll entry / fence
  m.shmem.waitall_base = 0.35 * kMicro;     // shmem_quiet
  m.shmem.waitall_per_request = 0.0;       // quiet cost is size-independent
  m.shmem.eager_threshold_bytes = 1u << 30;
  m.shmem.rendezvous_extra_latency = 0.0;

  // Host-side costs: MPI_Pack per-call overhead + memcpy rate, and derived
  // datatype construction (paid once per type per scope, then cached).
  m.host.pack_call_overhead = 0.15 * kMicro;
  m.host.pack_bytes_per_second = 6.0e9;  // small-chunk cold-cache copies
  m.host.type_create_base = 15.0 * kMicro;
  m.host.type_create_per_field = 1.5 * kMicro;
  m.host.datatype_pack_bytes_per_second = 12.0e9;

  m.barrier_base = 1.5 * kMicro;
  m.barrier_per_stage = 0.8 * kMicro;
  return m;
}

MachineModel MachineModel::zero() {
  MachineModel m;
  m.mpi_two_sided.bytes_per_second = 1.0e30;
  m.mpi_one_sided.bytes_per_second = 1.0e30;
  m.shmem.bytes_per_second = 1.0e30;
  m.host.pack_bytes_per_second = 1.0e30;
  m.host.datatype_pack_bytes_per_second = 1.0e30;
  return m;
}

}  // namespace cid::simnet
