#include "explore/fuzz.hpp"

#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "common/rng.hpp"
#include "translate/translator.hpp"

namespace cid::explore {

namespace {

const char* pick(Rng& rng, const std::vector<const char*>& pool) {
  return pool[rng.next_below(pool.size())];
}

/// One generated comm_p2p line. The clause pools are chosen so the corpus
/// covers clean rings/chains, statically-provable mismatches (CID-M01x
/// material) and symbolic directives (wildcard/guard-branch material for the
/// explorer) in roughly equal measure.
std::string gen_p2p(Rng& rng, int index) {
  static const std::vector<const char*> kExactPeers = {
      "(rank+1)%nprocs", "(rank+nprocs-1)%nprocs", "rank+1", "rank-1", "0",
      "nprocs-1"};
  static const std::vector<const char*> kSymbolicPeers = {"k", "k%nprocs"};
  static const std::vector<const char*> kExactGuards = {
      "rank>0", "rank<nprocs-1", "rank%2==0", "rank!=0", "rank==0"};
  static const std::vector<const char*> kSymbolicGuards = {"k>0", "k==0"};
  static const std::vector<const char*> kSendBufs = {"a", "c"};
  static const std::vector<const char*> kRecvBufs = {"b", "d"};

  const std::string sbuf = pick(rng, kSendBufs);
  const std::string rbuf = pick(rng, kRecvBufs);
  std::string line = "#pragma comm_p2p sbuf(" + sbuf + ") rbuf(" + rbuf +
                     ") count(4)";
  switch (rng.next_below(4)) {
    case 0:  // clean ring shift
      line += " receiver((rank+1)%nprocs) sender((rank+nprocs-1)%nprocs)";
      break;
    case 1:  // guarded chain
      line += " receiver(rank+1) sendwhen(rank<nprocs-1)"
              " sender(rank-1) receivewhen(rank>0)";
      break;
    case 2: {  // arbitrary exact pair — may or may not match
      line += " receiver(" + std::string(pick(rng, kExactPeers)) + ")";
      line += " sender(" + std::string(pick(rng, kExactPeers)) + ")";
      // the grammar requires the guards paired (CID-P001): both or neither
      if (rng.next_below(2) == 0) {
        line += " sendwhen(" + std::string(pick(rng, kExactGuards)) + ")";
        line += " receivewhen(" + std::string(pick(rng, kExactGuards)) + ")";
      }
      break;
    }
    default: {  // symbolic: wildcard receives and/or branching guards
      line += " receiver(" + std::string(pick(rng, kExactPeers)) + ")";
      line += " sender(" + std::string(pick(rng, kSymbolicPeers)) + ")";
      if (rng.next_below(2) == 0) {
        line += " sendwhen(" + std::string(pick(rng, kSymbolicGuards)) + ")";
        line += " receivewhen(" + std::string(pick(rng, kExactGuards)) + ")";
      }
      break;
    }
  }
  line += "\n  { work" + std::to_string(index) + "(); }\n";
  return line;
}

std::string gen_collective(Rng& rng, int index) {
  static const std::vector<const char*> kPatterns = {
      "PATTERN_ONE_TO_MANY", "PATTERN_MANY_TO_ONE", "PATTERN_ALL_TO_ALL"};
  static const std::vector<const char*> kRoots = {"0", "nprocs-1", "k",
                                                  "nprocs"};
  std::string line = "#pragma comm_collective pattern(" +
                     std::string(pick(rng, kPatterns)) +
                     ") sbuf(a) rbuf(b) count(4)";
  if (rng.next_below(2) == 0) {
    line += " root(" + std::string(pick(rng, kRoots)) + ")";
  }
  line += "\n  { work" + std::to_string(index) + "(); }\n";
  return line;
}

}  // namespace

std::string generate_program(std::uint64_t seed) {
  Rng rng(seed);
  std::string source =
      "// cidt fuzz seed " + std::to_string(seed) + "\n"
      "int a[8]; int b[8]; int c[8]; int d[8];\n"
      "int k;\n"
      "void work0(); void work1(); void work2(); void work3();\n"
      "void work4(); void work5();\n"
      "void step() {\n";
  const int constructs = 1 + static_cast<int>(rng.next_below(3));
  int index = 0;
  for (int i = 0; i < constructs; ++i) {
    switch (rng.next_below(5)) {
      case 0:  // region wrapping one or two p2ps (exercises inheritance)
        source += "#pragma comm_parameters count(4)\n  {\n";
        source += gen_p2p(rng, index++);
        if (rng.next_below(2) == 0) source += gen_p2p(rng, index++);
        source += "  }\n";
        break;
      case 1:
        source += gen_collective(rng, index++);
        break;
      default:
        source += gen_p2p(rng, index++);
        break;
    }
  }
  source += "}\n";
  return source;
}

FuzzOutcome fuzz_one(std::uint64_t seed, const FuzzOptions& options) {
  FuzzOutcome out;
  out.seed = seed;
  out.program = generate_program(seed);

  auto translated = translate::translate_source(out.program, {});
  out.translate_ok = translated.is_ok();

  analyze::Options analyze_options;
  analyze_options.nprocs_min = options.nprocs;
  analyze_options.nprocs_max = options.nprocs;
  const analyze::Report report =
      analyze::analyze_source(out.program, analyze_options);
  out.analyze_errors = report.errors();
  out.analyze_warnings = report.warnings();
  out.analyze_symbolic_skips = report.symbolic_skips;
  bool m010 = false;
  bool m011 = false;
  bool m015 = false;
  for (const analyze::Diagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.id == "CID-M012") out.analyze_m012 = true;
    if (diagnostic.id == "CID-M010") m010 = true;
    if (diagnostic.id == "CID-M011") m011 = true;
    if (diagnostic.id == "CID-M015") m015 = true;
  }

  Options explore_options;
  explore_options.nprocs = options.nprocs;
  explore_options.max_executions = options.max_executions;
  explore_options.max_decisions = options.max_decisions;
  auto explored = explore_source(out.program, explore_options);
  if (!explored.is_ok()) {
    // Explore refusing a program is only a disagreement when the static
    // layer thought it was fine; when analyze also errors, the layers agree
    // the program is malformed and there is nothing to compare.
    if (out.analyze_errors == 0) {
      out.divergence = true;
      out.detail = "explore rejected a program analyze accepted: " +
                   explored.status().message();
    }
    return out;
  }
  const ExploreResult& result = explored.value();
  out.explore_errors = result.report.errors();
  out.explore_warnings = result.report.warnings();
  out.explore_executions = result.executions;
  out.explore_truncated = result.truncated;
  bool value_race = false;
  for (const analyze::Diagnostic& diagnostic : result.report.diagnostics) {
    if (diagnostic.id == "CID-E100" || diagnostic.id == "CID-E101") {
      out.explore_deadlock = true;
    }
    if (diagnostic.id == "CID-E102") value_race = true;
  }

  // rule C — the front ends disagree on the language.
  if (!out.translate_ok && out.analyze_errors == 0) {
    out.divergence = true;
    out.detail = "rule C: translate rejected (" +
                 translated.status().message() +
                 ") but analyze reported no errors";
    return out;
  }
  // rule A — static sweep fully clean, exploration finds a hard defect.
  if (report.clean() && report.symbolic_skips == 0 &&
      (out.explore_deadlock || value_race)) {
    out.divergence = true;
    out.detail =
        "rule A: analyze is clean with nothing skipped, but exploration "
        "reports a deadlock or value race";
    return out;
  }
  // rule B — static proof of a never-completing receive must reproduce as a
  // deadlock in some schedule. Guarded against the cases where the models
  // legitimately differ: out-of-range peers (M010: both layers skip the op,
  // but differently), surplus sends (M011: pooled-tag matching at runtime
  // can reroute them), failed evaluations (M015) and symbolic skips.
  if (out.analyze_m012 && !m010 && !m011 && !m015 &&
      report.symbolic_skips == 0 && !out.explore_deadlock &&
      !out.explore_truncated) {
    out.divergence = true;
    out.detail =
        "rule B: analyze proved CID-M012 (receive never completes) but no "
        "explored schedule deadlocks";
    return out;
  }
  return out;
}

}  // namespace cid::explore
