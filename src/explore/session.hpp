// The schedule oracle for one controlled execution.
//
// A Session owns every source of visible nondeterminism in one run of the
// directive interpreter:
//
//   Guard  — a symbolic sendwhen/receivewhen evaluation (2 outcomes),
//   Value  — a symbolic receiver/root evaluation (nprocs outcomes),
//   Wild   — which gated message a wildcard receive consumes next.
//
// Guard/Value decisions are taken inline on the deciding rank's fiber. Wild
// decisions follow the POE/ISP discipline: the mailbox gate (installed via
// Mailbox::set_explore_hooks) hides every message from wildcard matching
// until the world is *quiescent* — the pooled scheduler's run queue is empty
// and nothing is dispatching, so every candidate that can ever compete for a
// wildcard receive at this point has arrived. The scheduler's idle hook then
// either releases exactly one candidate (a Wild decision over the maximal
// candidate set) or, when no candidate exists and ranks are still blocked,
// declares a deadlock and snapshots the per-rank wait states.
//
// Each decision consumes the next entry of the schedule prefix (0 beyond
// it), so an execution is a deterministic function of (program, schedule) —
// the driver enumerates the schedule tree and replays any prefix verbatim.
//
// The session also records the happens-before trace of the execution: a
// vector clock per rank, ticked on delivery and joined on extraction, with
// every send's clock snapshot kept for race classification.
//
// Threading: the explorer forces the pooled scheduler with ONE worker
// thread, so fibers, mailbox hooks and the idle hook all run on that single
// thread — the session needs no locks of its own.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "explore/program.hpp"
#include "rt/world.hpp"

namespace cid::explore::detail {

/// The pooled point-to-point tag, matching the translator's default
/// (translate::Options::tag): every directive's messages share it, so a
/// wildcard receive competes across directives exactly as translated code
/// would.
inline constexpr int kP2PTag = 2000;

enum class DecisionKind { Guard, Value, Wild };

/// One releasable message at a Wild decision.
struct Candidate {
  int recv_rank = -1;  ///< rank whose wildcard receive can consume it
  int recv_line = 0;   ///< source line that rank is blocked on
  std::uint64_t uid = 0;
  int src = -1;   ///< sending rank
  int site = -1;  ///< sending directive's site index (-1: not a p2p payload)
};

struct ChoicePoint {
  DecisionKind kind = DecisionKind::Guard;
  int rank = -1;  ///< deciding rank (Wild: receiver of the chosen candidate)
  int site = -1;  ///< directive site (Wild: site of the chosen send)
  int num_options = 1;
  int chosen = 0;
  std::vector<Candidate> candidates;  ///< Wild only, in option order
};

/// One delivered envelope with the sender's vector clock at delivery.
struct SendRecord {
  std::uint64_t uid = 0;
  int src = -1;
  int dest = -1;
  int site = -1;  ///< -1 for collective-internal traffic
  bool extracted = false;
  std::vector<std::uint64_t> vc;
};

/// What a rank is blocked on, maintained by the interpreter around every
/// blocking call; the deadlock report is a snapshot of these.
struct WaitInfo {
  enum Kind { kNone, kExactRecv, kWildRecv, kCollective, kDone };
  Kind kind = kNone;
  int peer = -1;  ///< kExactRecv: the awaited sending rank
  int line = 0;
};

struct RbufReuse {
  int rank = -1;
  int line_first = 0;
  int line_second = 0;
  std::string buffer;
};

class Session {
 public:
  Session(const Program& program, int nprocs, bool dpor,
          std::vector<int> schedule, int max_decisions);

  /// Install the delivery tap and per-mailbox wildcard gates / extract taps
  /// on the freshly built world (rt::RunOptions::world_setup).
  void install(rt::World& world);

  /// Scheduler idle hook: quiescence reached. Releases one candidate (true)
  /// or declares deadlock / truncation and poisons the world (false).
  bool on_idle();

  /// Inline Guard/Value decision on a rank fiber. Throws (after poisoning)
  /// when the decision budget is exhausted.
  int decide(DecisionKind kind, int rank, int site, int num_options);

  /// For collectively-agreed symbolic values (a collective's root): the
  /// first rank to arrive decides, every later rank reads the same value.
  int decide_shared(int rank, int site, int num_options);

  void set_wait(int rank, WaitInfo info);
  void rank_done(int rank);
  void note_rbuf_reuse(int rank, int line_first, int line_second,
                       const std::string& buffer);
  void note_recv(int rank, int line, int payload_site, int payload_src);
  /// Model-deviation note (skipped send/receive, failed evaluation, ...).
  void note(std::string text) { notes_.push_back(std::move(text)); }

  // --- post-run results ---
  const std::vector<ChoicePoint>& choices() const { return choices_; }
  bool deadlocked() const { return deadlocked_; }
  bool cyclic() const { return cyclic_; }
  bool truncated() const { return truncated_; }
  const std::vector<WaitInfo>& wait_snapshot() const { return snapshot_; }
  const std::vector<SendRecord>& sends() const { return sends_; }
  const std::vector<RbufReuse>& rbuf_reuses() const { return rbuf_reuses_; }
  const std::vector<std::string>& trace() const { return trace_; }
  const std::vector<std::string>& notes() const { return notes_; }

  /// Neither send happens-before the other (by the recorded vector clocks).
  static bool concurrent(const SendRecord& a, const SendRecord& b);

 private:
  int take_choice(int num_options);
  bool detect_cycle() const;
  void abort_run();

  const Program* program_;
  rt::World* world_ = nullptr;
  int nprocs_;
  bool dpor_;
  std::vector<int> schedule_;
  int max_decisions_;
  std::size_t cursor_ = 0;

  std::vector<ChoicePoint> choices_;
  std::set<std::uint64_t> released_;
  std::vector<SendRecord> sends_;
  std::vector<std::vector<std::uint64_t>> vc_;
  std::vector<WaitInfo> wait_;
  std::vector<std::pair<int, int>> shared_values_;  ///< (site, value)
  int done_count_ = 0;
  bool deadlocked_ = false;
  bool cyclic_ = false;
  bool truncated_ = false;
  bool aborting_ = false;
  std::vector<WaitInfo> snapshot_;
  std::vector<RbufReuse> rbuf_reuses_;
  std::vector<std::string> trace_;
  std::vector<std::string> notes_;
};

}  // namespace cid::explore::detail
