// The cross-layer directive fuzzer (`cidt fuzz`).
//
// Seeded generation of well-formed pragma programs, each pushed through all
// three intent layers — translate (must it lower?), analyze (what does the
// static sweep prove?) and explore (what do the schedules actually do?) —
// with the layers cross-checked against each other. A divergence is a bug in
// one of the layers by construction:
//
//   rule A  analyze is fully clean (no diagnostics, no symbolic skips) yet
//           exploration finds a deadlock or value race (E100/E101/E102):
//           the static matcher missed a provable defect.
//   rule B  analyze proves a never-completing receive (CID-M012, with no
//           muddying CID-M010/M011/M015 on the same file) yet no explored
//           schedule deadlocks: the dynamic model missed a proven defect.
//   rule C  translate rejects a program analyze accepted without errors:
//           the front ends disagree on the language.
//
// Symbolic programs (analyze skips, explore branches) are exercised but
// exempt from rule A — that division of labor is the design, not a bug.
#pragma once

#include <cstdint>
#include <string>

#include "explore/explore.hpp"

namespace cid::explore {

struct FuzzOptions {
  int nprocs = 3;
  int max_executions = 128;
  int max_decisions = 64;
};

struct FuzzOutcome {
  std::uint64_t seed = 0;
  std::string program;
  bool divergence = false;
  std::string detail;  ///< which rule fired and why (empty when none)
  // layer observations, for summaries and tests
  bool translate_ok = false;
  int analyze_errors = 0;
  int analyze_warnings = 0;
  int analyze_symbolic_skips = 0;
  bool analyze_m012 = false;
  int explore_errors = 0;
  int explore_warnings = 0;
  int explore_executions = 0;
  bool explore_deadlock = false;
  bool explore_truncated = false;
};

/// Deterministically generate one directive program from a seed.
std::string generate_program(std::uint64_t seed);

/// Generate, run all three layers, cross-check. Never throws on layer
/// disagreement — that is the reportable outcome.
FuzzOutcome fuzz_one(std::uint64_t seed, const FuzzOptions& options);

}  // namespace cid::explore
