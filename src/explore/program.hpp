// The directive program model executed by the schedule-space explorer.
//
// cid::explore does not interpret arbitrary C++ — it interprets the
// *communication intent*: the tree of #pragma comm_* directives, with clause
// inheritance resolved, flattened into the sequence of synchronization
// scopes the translator would generate (post every transfer of the scope,
// one consolidated completion at its end). Everything the static analyzer
// must skip as symbolic — guards, peers and roots referencing variables
// other than rank/nprocs — becomes an explicit nondeterministic decision
// point for the explorer instead.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "core/expr.hpp"

namespace cid::explore {

/// One clause expression as the interpreter sees it. `symbolic` marks
/// expressions with free variables beyond rank/nprocs: the explorer branches
/// over their outcomes instead of evaluating them.
struct ClauseExpr {
  bool present = false;
  bool symbolic = false;
  core::Expr expr;   ///< valid iff present and the text parsed
  std::string text;  ///< verbatim clause argument (for reports)
};

enum class CollectiveKind { Bcast, Gather, AllToAll };

/// One transfer of the program: a comm_p2p (on rank r: send to receiver(r)
/// under sendwhen(r), receive from sender(r) under receivewhen(r)) or a
/// comm_collective. `site` is the directive's index in textual order — it is
/// stamped into every payload the directive sends, which is how the explorer
/// attributes a delivered message back to its source line.
struct Op {
  bool collective = false;
  int site = 0;
  int line = 0;
  // point-to-point
  ClauseExpr sender, receiver, sendwhen, receivewhen;
  std::string sbuf, rbuf;
  // collective
  CollectiveKind kind = CollectiveKind::Bcast;
  ClauseExpr root;
};

/// Ops posted together and completed by one consolidated sync — a
/// comm_parameters region (or the slice of one between nested regions), or
/// a standalone directive.
struct SyncScope {
  std::vector<Op> ops;
  int line = 0;
};

struct Program {
  std::vector<SyncScope> scopes;
  std::vector<int> site_lines;     ///< site index -> 1-based source line
  std::vector<std::string> notes;  ///< model simplifications applied
  int symbolic_clauses = 0;        ///< ops carrying >= 1 symbolic clause
};

/// Build the program from annotated source. Fails on scan-level structural
/// errors; directives that are unusable (missing required clauses, unparsable
/// expressions) are skipped with a note — the static analyzer already
/// reports those as CID-P0xx errors.
Result<Program> build_program(std::string_view source);

}  // namespace cid::explore
