// cid::explore — the schedule-space model checker (`cidt explore`).
//
// The static analyzer (cid::analyze) proves what it can from clause
// expressions over rank/nprocs and *skips* everything symbolic. This module
// is the dynamic complement: it runs the directive program under a
// controlled scheduler that owns every source of nondeterminism — symbolic
// guard outcomes, symbolic peer/root values, and the order in which
// wildcard receives consume competing messages — and enumerates the
// schedule tree, DPOR-style, reporting:
//
//   CID-E100  cyclic-wait deadlock                       (error)
//   CID-E101  stalled ranks, no cycle (orphaned waits)   (error)
//   CID-E102  wildcard receive value race                (error)
//   CID-E103  wildcard match-order race, same site       (warning)
//   CID-E104  messages never received (stranded sends)   (warning)
//   CID-E105  receive buffer reused while in flight      (warning)
//
// Every diagnostic carries a witness schedule; replaying it
// (Options::schedule) deterministically reproduces the finding. See
// docs/EXPLORE.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analyze/diagnostics.hpp"
#include "common/error.hpp"

namespace cid::explore {

struct Options {
  /// Rank count of the explored executions (one fixed size per run, unlike
  /// the analyzer's sweep — schedule enumeration is per-nprocs).
  int nprocs = 4;
  /// DPOR mode (default): at each quiescence branch only over the lowest
  /// pending rank's candidates. false: naive mode, branch over every
  /// (rank, message) pair — same findings, measurably more executions.
  bool dpor = true;
  /// Stop after this many executions (the run is marked truncated).
  int max_executions = 512;
  /// Abort any single execution after this many decisions.
  int max_decisions = 128;
  /// Replay prefix: decision i takes schedule[i] (0 beyond the prefix).
  /// Combined with max_executions = 1 this replays one execution exactly.
  std::vector<int> schedule;
};

/// One diagnostic's replay recipe.
struct Witness {
  std::string id;
  int line = 0;
  std::vector<int> schedule;
};

struct ExploreResult {
  /// The findings, in the analyzer's diagnostic currency so cidt renders
  /// both layers identically.
  analyze::Report report;
  std::vector<Witness> witnesses;
  int nprocs = 0;
  bool dpor = true;
  int executions = 0;
  long long decisions = 0;  ///< total choice points across executions
  int max_depth = 0;        ///< longest decision sequence seen
  bool truncated = false;   ///< hit max_executions / max_decisions
  int symbolic_clauses = 0; ///< directives the analyzer had to skip
  std::vector<std::string> notes;  ///< model simplifications applied
};

/// Explore every schedule of the directive program in `source`. Fails only
/// on structural scan errors; unusable directives are skipped with a note.
Result<ExploreResult> explore_source(std::string_view source,
                                     const Options& options);

/// Render the result as JSON ({"cidexplore":1, ...}).
std::string to_json(const std::string& path, const ExploreResult& result);

/// Format a schedule as the --schedule argument ("1,0,2"; "-" when empty).
std::string format_schedule(const std::vector<int>& schedule);

/// Parse a --schedule argument; empty vector on "-" or "".
Result<std::vector<int>> parse_schedule(std::string_view text);

}  // namespace cid::explore
