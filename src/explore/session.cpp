#include "explore/session.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace cid::explore::detail {

Session::Session(const Program& program, int nprocs, bool dpor,
                 std::vector<int> schedule, int max_decisions)
    : program_(&program),
      nprocs_(nprocs),
      dpor_(dpor),
      schedule_(std::move(schedule)),
      max_decisions_(max_decisions),
      vc_(nprocs, std::vector<std::uint64_t>(nprocs, 0)),
      wait_(nprocs) {}

void Session::install(rt::World& world) {
  world_ = &world;
  // Delivery tap: runs on the sending fiber before the envelope is routed.
  // Assigns the stable per-run uid, ticks the sender's vector clock and
  // snapshots it into the send record.
  world.set_delivery_tap([this](rt::Envelope& envelope, int dest) {
    if (envelope.src < 0 || envelope.src >= nprocs_) return;
    ++vc_[envelope.src][envelope.src];
    SendRecord record;
    record.uid = sends_.size() + 1;
    record.src = envelope.src;
    record.dest = dest;
    record.vc = vc_[envelope.src];
    // A directive payload carries {site, sender}; anything else (collective
    // tree traffic) keeps site -1 and only contributes happens-before edges.
    if (envelope.channel == rt::Channel::MpiPointToPoint &&
        envelope.tag == kP2PTag && envelope.payload.size() >= sizeof(int)) {
      int site = 0;
      std::memcpy(&site, envelope.payload.span().data(), sizeof(int));
      record.site = site;
    }
    envelope.explore_uid = record.uid;
    trace_.push_back("send uid=" + std::to_string(record.uid) + " rank " +
                     std::to_string(record.src) + " -> " +
                     std::to_string(dest) +
                     (record.site >= 0
                          ? " (site " + std::to_string(record.site) + ", line " +
                                std::to_string(program_->site_lines[record.site]) +
                                ")"
                          : " (internal)"));
    sends_.push_back(std::move(record));
  });
  for (int r = 0; r < nprocs_; ++r) {
    // The gate hides envelopes from *wildcard* matching until released at a
    // quiescence point; exact-key matching is never gated. The extract tap
    // joins the receiver's vector clock with the send's snapshot. Both run
    // under the mailbox mutex on the single worker thread.
    world.mailbox(r).set_explore_hooks(
        [this](const rt::Envelope& envelope) {
          return envelope.explore_uid == 0 ||
                 released_.count(envelope.explore_uid) > 0;
        },
        [this, r](const rt::Envelope& envelope) {
          if (envelope.explore_uid == 0) return;
          SendRecord& record = sends_[envelope.explore_uid - 1];
          record.extracted = true;
          for (int k = 0; k < nprocs_; ++k) {
            vc_[r][k] = std::max(vc_[r][k], record.vc[k]);
          }
          ++vc_[r][r];
          trace_.push_back("extract uid=" + std::to_string(envelope.explore_uid) +
                           " by rank " + std::to_string(r));
        });
  }
}

int Session::take_choice(int num_options) {
  int choice = 0;
  if (cursor_ < schedule_.size()) choice = schedule_[cursor_];
  ++cursor_;
  if (choice < 0) choice = 0;
  if (choice >= num_options) choice = num_options - 1;
  return choice;
}

void Session::abort_run() {
  aborting_ = true;
  world_->poison();
}

int Session::decide(DecisionKind kind, int rank, int site, int num_options) {
  if (num_options < 1) num_options = 1;
  if (static_cast<int>(choices_.size()) >= max_decisions_) {
    truncated_ = true;
    abort_run();
    throw CidError(ErrorCode::RuntimeFault,
                   "cid::explore: decision budget exhausted");
  }
  ChoicePoint point;
  point.kind = kind;
  point.rank = rank;
  point.site = site;
  point.num_options = num_options;
  point.chosen = take_choice(num_options);
  choices_.push_back(point);
  trace_.push_back(std::string(kind == DecisionKind::Guard ? "guard" : "value") +
                   " decision rank " + std::to_string(rank) + " site " +
                   std::to_string(site) + " -> " +
                   std::to_string(point.chosen) + "/" +
                   std::to_string(num_options));
  return point.chosen;
}

int Session::decide_shared(int rank, int site, int num_options) {
  for (const auto& [decided_site, value] : shared_values_) {
    if (decided_site == site) return value;
  }
  const int value = decide(DecisionKind::Value, rank, site, num_options);
  shared_values_.emplace_back(site, value);
  return value;
}

void Session::set_wait(int rank, WaitInfo info) { wait_[rank] = info; }

void Session::rank_done(int rank) {
  wait_[rank] = WaitInfo{WaitInfo::kDone, -1, 0};
  ++done_count_;
}

void Session::note_rbuf_reuse(int rank, int line_first, int line_second,
                              const std::string& buffer) {
  rbuf_reuses_.push_back({rank, line_first, line_second, buffer});
}

void Session::note_recv(int rank, int line, int payload_site,
                        int payload_src) {
  trace_.push_back("recv complete rank " + std::to_string(rank) + " line " +
                   std::to_string(line) + " <- rank " +
                   std::to_string(payload_src) + " (site " +
                   std::to_string(payload_site) + ")");
}

bool Session::detect_cycle() const {
  // Walk the exact-receive wait-for edges; any walk that revisits a rank
  // proves a cyclic wait (E100). Everything else is a stall (E101).
  for (int start = 0; start < nprocs_; ++start) {
    int current = start;
    std::vector<char> on_path(nprocs_, 0);
    while (current >= 0 && current < nprocs_ &&
           snapshot_[current].kind == WaitInfo::kExactRecv) {
      if (on_path[current]) return true;
      on_path[current] = 1;
      current = snapshot_[current].peer;
    }
  }
  return false;
}

bool Session::on_idle() {
  if (aborting_ || done_count_ == nprocs_) return false;
  // Quiescence: every unfinished rank is parked. The gated envelopes
  // admissible by some registered wildcard waiter are the maximal candidate
  // set — nothing else can arrive until one of them is released.
  std::vector<Candidate> all;
  for (int r = 0; r < nprocs_; ++r) {
    for (const rt::Mailbox::HeldCandidate& held :
         world_->mailbox(r).held_candidates()) {
      Candidate candidate;
      candidate.recv_rank = r;
      candidate.recv_line = wait_[r].line;
      candidate.uid = held.uid;
      candidate.src = held.src;
      if (held.uid >= 1 && held.uid <= sends_.size()) {
        candidate.site = sends_[held.uid - 1].site;
      }
      all.push_back(candidate);
    }
  }
  if (all.empty()) {
    deadlocked_ = true;
    snapshot_ = wait_;
    cyclic_ = detect_cycle();
    abort_run();
    return false;
  }
  if (static_cast<int>(choices_.size()) >= max_decisions_) {
    truncated_ = true;
    abort_run();
    return false;
  }
  // DPOR-style persistent set: wildcard resolutions on different ranks touch
  // disjoint mailboxes and commute, so branching over one rank's candidates
  // (the lowest pending, canonically) covers the schedule space. Naive mode
  // branches over every (rank, message) pair — strictly more executions,
  // same findings; the gap is the measured reduction.
  std::vector<Candidate> options;
  if (dpor_) {
    int lowest = all.front().recv_rank;
    for (const Candidate& candidate : all) {
      lowest = std::min(lowest, candidate.recv_rank);
    }
    for (const Candidate& candidate : all) {
      if (candidate.recv_rank == lowest) options.push_back(candidate);
    }
  } else {
    options = all;
  }
  ChoicePoint point;
  point.kind = DecisionKind::Wild;
  point.num_options = static_cast<int>(options.size());
  point.chosen = take_choice(point.num_options);
  const Candidate& chosen = options[point.chosen];
  point.rank = chosen.recv_rank;
  point.site = chosen.site;
  point.candidates = std::move(options);
  choices_.push_back(std::move(point));
  released_.insert(chosen.uid);
  trace_.push_back("wild decision: release uid=" + std::to_string(chosen.uid) +
                   " (rank " + std::to_string(chosen.src) + " -> " +
                   std::to_string(chosen.recv_rank) + ") of " +
                   std::to_string(choices_.back().num_options) +
                   " candidate(s)");
  // Wake the receiving rank's parked waiter so it rescans and matches the
  // released envelope (interrupt_all is a rescan signal, not an error, when
  // the world is healthy).
  world_->mailbox(chosen.recv_rank).interrupt_all();
  return true;
}

bool Session::concurrent(const SendRecord& a, const SendRecord& b) {
  bool a_le_b = true;
  bool b_le_a = true;
  for (std::size_t k = 0; k < a.vc.size() && k < b.vc.size(); ++k) {
    if (a.vc[k] > b.vc[k]) a_le_b = false;
    if (b.vc[k] > a.vc[k]) b_le_a = false;
  }
  return !a_le_b && !b_le_a;
}

}  // namespace cid::explore::detail
