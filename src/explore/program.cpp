#include "explore/program.hpp"

#include "core/clauses.hpp"
#include "core/pragma.hpp"
#include "translate/scan.hpp"

namespace cid::explore {

namespace {

using core::DirectiveKind;
using core::ParsedDirective;
using translate::DirectiveNode;

ClauseExpr prepare_clause(const ParsedDirective& merged, const char* name,
                          bool* unparsable) {
  ClauseExpr out;
  const core::RawClause* clause = merged.find(name);
  if (clause == nullptr) return out;
  out.present = true;
  out.text = clause->args[0];
  auto parsed = core::Expr::parse(out.text);
  if (!parsed.is_ok()) {
    *unparsable = true;
    return out;
  }
  out.expr = std::move(parsed).take();
  for (const std::string& variable : out.expr.free_variables()) {
    if (variable != "rank" && variable != "nprocs") out.symbolic = true;
  }
  return out;
}

struct Builder {
  Program program;
  SyncScope open;

  void flush() {
    if (open.ops.empty()) return;
    program.scopes.push_back(std::move(open));
    open = SyncScope{};
  }

  void note(const DirectiveNode& node, const std::string& text) {
    program.notes.push_back("line " + std::to_string(node.line) + ": " + text);
  }

  int new_site(int line) {
    program.site_lines.push_back(line);
    return static_cast<int>(program.site_lines.size()) - 1;
  }

  void add_p2p(const DirectiveNode& node, const ParsedDirective& merged) {
    Op op;
    op.site = new_site(node.line);
    op.line = node.line;
    bool unparsable = false;
    op.sender = prepare_clause(merged, "sender", &unparsable);
    op.receiver = prepare_clause(merged, "receiver", &unparsable);
    op.sendwhen = prepare_clause(merged, "sendwhen", &unparsable);
    op.receivewhen = prepare_clause(merged, "receivewhen", &unparsable);
    if (unparsable) {
      note(node, "comm_p2p skipped: clause expression does not parse "
                 "(CID-P003 territory)");
      return;
    }
    if (!op.sender.present || !op.receiver.present) {
      note(node, "comm_p2p skipped: missing sender/receiver after "
                 "inheritance (CID-P005 territory)");
      return;
    }
    if (const auto* sbuf = merged.find("sbuf");
        sbuf != nullptr && !sbuf->args.empty()) {
      op.sbuf = sbuf->args[0];
      if (sbuf->args.size() > 1) {
        note(node, "only the first sbuf/rbuf pair is modeled");
      }
    }
    if (const auto* rbuf = merged.find("rbuf");
        rbuf != nullptr && !rbuf->args.empty()) {
      op.rbuf = rbuf->args[0];
    }
    if (op.sender.symbolic || op.receiver.symbolic || op.sendwhen.symbolic ||
        op.receivewhen.symbolic) {
      ++program.symbolic_clauses;
    }
    open.ops.push_back(std::move(op));
  }

  void add_collective(const DirectiveNode& node,
                      const ParsedDirective& merged) {
    Op op;
    op.collective = true;
    op.site = new_site(node.line);
    op.line = node.line;
    const core::RawClause* pattern = merged.find("pattern");
    if (pattern == nullptr || pattern->args.empty()) {
      note(node, "comm_collective skipped: missing pattern clause");
      return;
    }
    auto kind = core::parse_pattern_keyword(pattern->args[0]);
    if (!kind.is_ok()) {
      note(node, "comm_collective skipped: unknown pattern '" +
                     pattern->args[0] + "'");
      return;
    }
    switch (kind.value()) {
      case core::Pattern::OneToMany:
        op.kind = CollectiveKind::Bcast;
        break;
      case core::Pattern::ManyToOne:
        op.kind = CollectiveKind::Gather;
        break;
      case core::Pattern::AllToAll:
        op.kind = CollectiveKind::AllToAll;
        break;
    }
    bool unparsable = false;
    op.root = prepare_clause(merged, "root", &unparsable);
    if (unparsable) {
      note(node, "comm_collective skipped: root expression does not parse");
      return;
    }
    if (op.root.symbolic) ++program.symbolic_clauses;
    open.ops.push_back(std::move(op));
  }

  /// Walk the children of a region (or the root list). A nested
  /// comm_parameters closes the surrounding scope: its transfers complete at
  /// its own end, before anything posted after it.
  void walk(const std::vector<DirectiveNode>& nodes,
            const ParsedDirective* inherited) {
    for (const DirectiveNode& node : nodes) {
      ParsedDirective merged =
          inherited != nullptr
              ? translate::merge_directives(*inherited, node.directive)
              : node.directive;
      switch (node.directive.kind) {
        case DirectiveKind::CommParameters: {
          flush();
          if (merged.find("reliability") != nullptr) {
            note(node, "reliability clause ignored (no fault layer under "
                       "exploration)");
          }
          if (merged.find("max_comm_iter") != nullptr) {
            note(node, "region body executes once (max_comm_iter ignored)");
          }
          if (const auto* sync = merged.find("place_sync");
              sync != nullptr && !sync->args.empty() &&
              sync->args[0] != "END_PARAM_REGION") {
            note(node, "place_sync " + sync->args[0] +
                           " modeled as END_PARAM_REGION");
          }
          const int before = static_cast<int>(program.scopes.size());
          walk(node.children, &merged);
          flush();
          if (static_cast<int>(program.scopes.size()) > before &&
              program.scopes[before].line == 0) {
            program.scopes[before].line = node.line;
          }
          break;
        }
        case DirectiveKind::CommP2P:
          add_p2p(node, merged);
          if (open.line == 0) open.line = node.line;
          if (inherited == nullptr) flush();  // standalone: own sync scope
          break;
        case DirectiveKind::CommCollective:
          add_collective(node, merged);
          if (open.line == 0) open.line = node.line;
          if (inherited == nullptr) flush();
          break;
      }
    }
  }
};

}  // namespace

Result<Program> build_program(std::string_view source) {
  translate::DirectiveTree tree = translate::scan_directives(source);
  if (!tree.issues.empty()) {
    const translate::ScanIssue& first = tree.issues.front();
    return Status(ErrorCode::ParseError,
                  "line " + std::to_string(first.line) + ": " +
                      first.status.message());
  }
  Builder builder;
  builder.walk(tree.roots, nullptr);
  builder.flush();
  return std::move(builder.program);
}

}  // namespace cid::explore
