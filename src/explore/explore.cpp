#include "explore/explore.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "explore/program.hpp"
#include "explore/session.hpp"
#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"
#include "mpi/p2p.hpp"
#include "mpi/request.hpp"
#include "net/transport.hpp"
#include "rt/runtime.hpp"
#include "simnet/machine_model.hpp"

namespace cid::explore {

namespace {

using detail::Candidate;
using detail::ChoicePoint;
using detail::DecisionKind;
using detail::kP2PTag;
using detail::RbufReuse;
using detail::SendRecord;
using detail::Session;
using detail::WaitInfo;

std::optional<core::ExprValue> eval_clause(const ClauseExpr& clause, int rank,
                                           int nprocs) {
  core::Env env;
  env.bind("rank", rank);
  env.bind("nprocs", nprocs);
  auto value = clause.expr.eval(env);
  if (!value.is_ok()) return std::nullopt;
  return value.value();
}

/// Guard evaluation: absent means true; symbolic branches the execution;
/// a failed evaluation (division by zero) is modeled as false with a note.
bool eval_guard(Session& session, const ClauseExpr& guard, int rank,
                int nprocs, int site, int line) {
  if (!guard.present) return true;
  if (guard.symbolic) {
    return session.decide(DecisionKind::Guard, rank, site, 2) == 1;
  }
  auto value = eval_clause(guard, rank, nprocs);
  if (!value) {
    session.note("line " + std::to_string(line) + ": guard fails to evaluate "
                 "on rank " + std::to_string(rank) + "; treated as false");
    return false;
  }
  return *value != 0;
}

void run_collective(const Op& op, Session& session, const mpi::Comm& world,
                    int rank, int nprocs) {
  int root = 0;
  if (op.root.present) {
    if (op.root.symbolic) {
      // A collective's root must be agreed by every rank (MPI semantics):
      // one shared decision, not a per-rank branch.
      root = session.decide_shared(rank, op.site, nprocs);
    } else {
      auto value = eval_clause(op.root, rank, nprocs);
      if (!value || *value < 0 || *value >= nprocs) {
        session.note("line " + std::to_string(op.line) +
                     ": collective skipped on rank " + std::to_string(rank) +
                     " (root unevaluable or out of range)");
        return;
      }
      root = static_cast<int>(*value);
    }
  }
  session.set_wait(rank, {WaitInfo::kCollective, -1, op.line});
  std::vector<int> send(nprocs, rank);
  std::vector<int> recv(nprocs, 0);
  switch (op.kind) {
    case CollectiveKind::Bcast:
      mpi::bcast(world, send.data(), 1, root);
      break;
    case CollectiveKind::Gather:
      mpi::gather(world, send.data(), 1, recv.data(), root);
      break;
    case CollectiveKind::AllToAll:
      mpi::alltoall(world, send.data(), 1, recv.data());
      break;
  }
  session.set_wait(rank, {WaitInfo::kNone, -1, 0});
}

void interpret_rank(const Program& program, Session& session,
                    rt::RankCtx& ctx) {
  const int rank = ctx.rank();
  const int nprocs = ctx.nranks();
  const mpi::Comm world = mpi::Comm::world();
  for (const SyncScope& scope : program.scopes) {
    struct PostedRecv {
      mpi::Request request;
      int line = 0;
      bool wild = false;
      int src = -1;
      std::array<int, 2> data{{-1, -1}};
      std::string rbuf;
    };
    std::deque<PostedRecv> recvs;  // deque: stable payload addresses
    std::vector<mpi::Request> sends;
    for (const Op& op : scope.ops) {
      if (op.collective) {
        run_collective(op, session, world, rank, nprocs);
        continue;
      }
      // Receive side first (the translator posts irecv before isend).
      if (eval_guard(session, op.receivewhen, rank, nprocs, op.site,
                     op.line)) {
        int src = -1;
        bool wild = false;
        bool usable = true;
        if (op.sender.symbolic) {
          wild = true;
          src = mpi::kAnySource;
        } else {
          auto value = eval_clause(op.sender, rank, nprocs);
          if (!value || *value < 0 || *value >= nprocs) {
            session.note("line " + std::to_string(op.line) +
                         ": receive skipped on rank " + std::to_string(rank) +
                         " (sender unevaluable or out of range)");
            usable = false;
          } else {
            src = static_cast<int>(*value);
          }
        }
        if (usable) {
          if (!op.rbuf.empty()) {
            for (const PostedRecv& pending : recvs) {
              if (pending.rbuf == op.rbuf) {
                session.note_rbuf_reuse(rank, pending.line, op.line, op.rbuf);
                break;
              }
            }
          }
          recvs.push_back({{}, op.line, wild, src, {{-1, -1}}, op.rbuf});
          PostedRecv& posted = recvs.back();
          posted.request =
              mpi::irecv(world, posted.data.data(), 2, src, kP2PTag);
        }
      }
      // Send side.
      if (eval_guard(session, op.sendwhen, rank, nprocs, op.site, op.line)) {
        std::optional<int> dest;
        if (op.receiver.symbolic) {
          dest = session.decide(DecisionKind::Value, rank, op.site, nprocs);
        } else {
          auto value = eval_clause(op.receiver, rank, nprocs);
          if (!value || *value < 0 || *value >= nprocs) {
            session.note("line " + std::to_string(op.line) +
                         ": send skipped on rank " + std::to_string(rank) +
                         " (receiver unevaluable or out of range)");
          } else {
            dest = static_cast<int>(*value);
          }
        }
        if (dest) {
          const std::array<int, 2> payload{{op.site, rank}};
          sends.push_back(
              mpi::isend(world, payload.data(), 2, *dest, kP2PTag));
        }
      }
    }
    // Consolidated sync: complete the scope's receives in post order, then
    // finalize the (eagerly completed) sends.
    for (PostedRecv& posted : recvs) {
      session.set_wait(
          rank, {posted.wild ? WaitInfo::kWildRecv : WaitInfo::kExactRecv,
                 posted.src, posted.line});
      mpi::wait(posted.request);
      session.note_recv(rank, posted.line, posted.data[0], posted.data[1]);
    }
    session.set_wait(rank, {WaitInfo::kNone, -1, 0});
    for (mpi::Request& request : sends) mpi::wait(request);
  }
  session.rank_done(rank);
}

struct ExecutionOutcome {
  std::vector<ChoicePoint> choices;
  bool deadlocked = false;
  bool cyclic = false;
  bool truncated = false;
  std::vector<WaitInfo> snapshot;
  std::vector<SendRecord> sends;
  std::vector<RbufReuse> rbuf_reuses;
  std::vector<std::string> notes;
  std::string error;
};

ExecutionOutcome run_one(const Program& program, const Options& options,
                         std::vector<int> schedule) {
  Session session(program, options.nprocs, options.dpor, std::move(schedule),
                  options.max_decisions);
  rt::RunOptions run_options;
  // Determinism is load-bearing: the explicit sim transport (never
  // CID_BACKEND) and a single pooled worker make every execution a pure
  // function of (program, schedule).
  run_options.transport = net::make_transport(net::Backend::Sim);
  run_options.scheduler = rt::sched::Mode::kPool;
  run_options.sim_workers = 1;
  run_options.world_setup = [&](rt::World& world) { session.install(world); };
  run_options.idle_hook = [&] { return session.on_idle(); };
  ExecutionOutcome outcome;
  try {
    rt::run(options.nprocs, simnet::MachineModel::cray_xk7_gemini(),
            [&](rt::RankCtx& ctx) { interpret_rank(program, session, ctx); },
            run_options);
  } catch (const CidError& error) {
    if (!session.deadlocked() && !session.truncated()) {
      outcome.error = error.what();
    }
  }
  outcome.choices = session.choices();
  outcome.deadlocked = session.deadlocked();
  outcome.cyclic = session.cyclic();
  outcome.truncated = session.truncated();
  outcome.snapshot = session.wait_snapshot();
  outcome.sends = session.sends();
  outcome.rbuf_reuses = session.rbuf_reuses();
  outcome.notes = session.notes();
  return outcome;
}

std::vector<int> chosen_prefix(const std::vector<ChoicePoint>& choices,
                               std::size_t length) {
  std::vector<int> prefix;
  prefix.reserve(length);
  for (std::size_t i = 0; i < length && i < choices.size(); ++i) {
    prefix.push_back(choices[i].chosen);
  }
  return prefix;
}

std::string wait_description(const WaitInfo& wait, int rank) {
  switch (wait.kind) {
    case WaitInfo::kExactRecv:
      return "rank " + std::to_string(rank) + " waits for a receive from " +
             "rank " + std::to_string(wait.peer) + " (line " +
             std::to_string(wait.line) + ")";
    case WaitInfo::kWildRecv:
      return "rank " + std::to_string(rank) +
             " waits on a wildcard receive with no candidate message (line " +
             std::to_string(wait.line) + ")";
    case WaitInfo::kCollective:
      return "rank " + std::to_string(rank) +
             " is blocked inside a collective (line " +
             std::to_string(wait.line) + ")";
    case WaitInfo::kNone:
      return "rank " + std::to_string(rank) + " is blocked in the runtime";
    case WaitInfo::kDone:
      return "rank " + std::to_string(rank) + " finished";
  }
  return {};
}

/// Collects diagnostics across executions, deduplicating by content key so
/// the same finding reached along many schedules reports once (with the
/// first witness).
struct Harvest {
  const Program* program;
  const Options* options;
  analyze::Report report;
  std::vector<Witness> witnesses;
  std::set<std::string> seen;
  std::set<std::string> notes;

  std::string replay_hint(const std::vector<int>& schedule) const {
    return "replay: cidt explore --nprocs " + std::to_string(options->nprocs) +
           (options->dpor ? "" : " --naive") + " --schedule " +
           format_schedule(schedule) + " --max-executions 1 <file>";
  }

  void add(const std::string& key, const std::string& id,
           analyze::Severity severity, int line, const std::string& message,
           const std::vector<int>& schedule) {
    if (!seen.insert(key).second) return;
    report.add(id, severity, line, 0,
               message + " [witness schedule " + format_schedule(schedule) +
                   "]",
               replay_hint(schedule));
    witnesses.push_back({id, line, schedule});
  }

  void harvest(const ExecutionOutcome& outcome) {
    for (const std::string& note : outcome.notes) notes.insert(note);
    const std::vector<int> full = chosen_prefix(outcome.choices,
                                                outcome.choices.size());
    if (outcome.deadlocked) {
      std::string signature;
      std::string description;
      int line = 0;
      int blocked = 0;
      for (std::size_t r = 0; r < outcome.snapshot.size(); ++r) {
        const WaitInfo& wait = outcome.snapshot[r];
        signature += std::to_string(static_cast<int>(wait.kind)) + ":" +
                     std::to_string(wait.peer) + ":" +
                     std::to_string(wait.line) + ";";
        if (wait.kind == WaitInfo::kDone) continue;
        ++blocked;
        if (!description.empty()) description += "; ";
        description += wait_description(wait, static_cast<int>(r));
        if (line == 0 && wait.line > 0) line = wait.line;
      }
      const std::string id = outcome.cyclic ? "CID-E100" : "CID-E101";
      add(id + signature, id, analyze::Severity::Error, line,
          "schedule-space deadlock (" + std::to_string(blocked) + " of " +
              std::to_string(options->nprocs) + " ranks blocked" +
              (outcome.cyclic ? ", cyclic wait" : ", no cycle: orphaned waits") +
              "): " + description,
          full);
    }
    // Wildcard races: every Wild decision whose candidate set (per receiving
    // rank) holds >= 2 messages is nondeterministic. Distinct send sites
    // feed the receive from different source lines — a value race (E102);
    // one site with several senders is a match-order race (E103).
    for (std::size_t i = 0; i < outcome.choices.size(); ++i) {
      const ChoicePoint& point = outcome.choices[i];
      if (point.kind != DecisionKind::Wild) continue;
      std::map<int, std::vector<const Candidate*>> by_rank;
      for (const Candidate& candidate : point.candidates) {
        by_rank[candidate.recv_rank].push_back(&candidate);
      }
      for (const auto& [recv_rank, candidates] : by_rank) {
        if (candidates.size() < 2) continue;
        std::set<int> sites;
        std::set<int> srcs;
        bool all_concurrent = true;
        for (const Candidate* candidate : candidates) {
          if (candidate->site >= 0) sites.insert(candidate->site);
          srcs.insert(candidate->src);
        }
        for (std::size_t a = 0; a + 1 < candidates.size(); ++a) {
          for (std::size_t b = a + 1; b < candidates.size(); ++b) {
            const SendRecord& sa = outcome.sends[candidates[a]->uid - 1];
            const SendRecord& sb = outcome.sends[candidates[b]->uid - 1];
            if (!Session::concurrent(sa, sb)) all_concurrent = false;
          }
        }
        const int line = candidates.front()->recv_line;
        std::string origin;
        for (const Candidate* candidate : candidates) {
          if (!origin.empty()) origin += ", ";
          origin += "rank " + std::to_string(candidate->src);
          if (candidate->site >= 0) {
            origin += " (line " +
                      std::to_string(program->site_lines[candidate->site]) +
                      ")";
          }
        }
        const std::vector<int> witness = chosen_prefix(outcome.choices, i + 1);
        std::string key_sites;
        for (int site : sites) key_sites += std::to_string(site) + ",";
        std::string key_srcs;
        for (int src : srcs) key_srcs += std::to_string(src) + ",";
        if (sites.size() > 1) {
          add("E102:" + std::to_string(recv_rank) + ":" +
                  std::to_string(line) + ":" + key_sites,
              "CID-E102", analyze::Severity::Error, line,
              "wildcard receive value race on rank " +
                  std::to_string(recv_rank) + ": " +
                  std::to_string(candidates.size()) +
                  " concurrent messages from different directives compete — " +
                  origin + "; the received value depends on the schedule" +
                  (all_concurrent ? "" : " (some sends are ordered)"),
              witness);
        } else {
          add("E103:" + std::to_string(recv_rank) + ":" +
                  std::to_string(line) + ":" + key_sites + key_srcs,
              "CID-E103", analyze::Severity::Warning, line,
              "wildcard match-order race on rank " +
                  std::to_string(recv_rank) + ": " +
                  std::to_string(candidates.size()) +
                  " concurrent sends from the same directive compete — " +
                  origin + "; completion order is schedule-dependent",
              witness);
        }
      }
    }
    if (!outcome.deadlocked && !outcome.truncated && outcome.error.empty()) {
      std::vector<const SendRecord*> stranded;
      for (const SendRecord& send : outcome.sends) {
        if (send.site >= 0 && !send.extracted) stranded.push_back(&send);
      }
      if (!stranded.empty()) {
        std::string key = "E104:";
        std::string detail;
        for (std::size_t k = 0; k < stranded.size(); ++k) {
          key += std::to_string(stranded[k]->site) + ",";
          if (k >= 3) continue;
          if (!detail.empty()) detail += "; ";
          detail += "send at line " +
                    std::to_string(program->site_lines[stranded[k]->site]) +
                    " (rank " + std::to_string(stranded[k]->src) + " -> " +
                    std::to_string(stranded[k]->dest) + ")";
        }
        if (stranded.size() > 3) detail += "; ...";
        add(key, "CID-E104", analyze::Severity::Warning,
            program->site_lines[stranded.front()->site],
            std::to_string(stranded.size()) +
                " message(s) left unreceived at exit: " + detail,
            full);
      }
    }
    for (const RbufReuse& reuse : outcome.rbuf_reuses) {
      add("E105:" + std::to_string(reuse.line_first) + ":" +
              std::to_string(reuse.line_second) + ":" + reuse.buffer,
          "CID-E105", analyze::Severity::Warning, reuse.line_second,
          "receive at line " + std::to_string(reuse.line_second) +
              " posts into buffer '" + reuse.buffer +
              "' while the receive at line " +
              std::to_string(reuse.line_first) +
              " is still in flight (seen on rank " +
              std::to_string(reuse.rank) + ")",
          full);
    }
    if (!outcome.error.empty()) {
      notes.insert("internal: execution failed: " + outcome.error);
    }
  }
};

}  // namespace

std::string format_schedule(const std::vector<int>& schedule) {
  if (schedule.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(schedule[i]);
  }
  return out;
}

Result<std::vector<int>> parse_schedule(std::string_view text) {
  std::vector<int> out;
  if (text.empty() || text == "-") return out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string token(text.substr(begin, end - begin));
    try {
      std::size_t used = 0;
      const int value = std::stoi(token, &used);
      if (used != token.size() || value < 0) throw std::invalid_argument("");
      out.push_back(value);
    } catch (...) {
      return Status(ErrorCode::ParseError,
                    "bad schedule entry '" + token +
                        "': expected a comma-separated list of choice "
                        "indices, e.g. 1,0,2");
    }
    begin = end + 1;
    if (end == text.size()) break;
  }
  return out;
}

Result<ExploreResult> explore_source(std::string_view source,
                                     const Options& options) {
  if (options.nprocs < 1) {
    return Status(ErrorCode::InvalidArgument, "--nprocs must be >= 1");
  }
  auto built = build_program(source);
  if (!built.is_ok()) return built.status();
  const Program program = std::move(built).take();

  ExploreResult result;
  result.nprocs = options.nprocs;
  result.dpor = options.dpor;
  result.symbolic_clauses = program.symbolic_clauses;

  Harvest harvest{&program, &options, {}, {}, {}, {}};
  for (const std::string& note : program.notes) harvest.notes.insert(note);

  // Stateless DFS over schedule prefixes. Each execution records its full
  // decision sequence; every untaken alternative at or beyond the prefix
  // becomes a new prefix to run. The seed prefix (Options::schedule) is
  // fixed — replay never re-expands below it.
  std::vector<std::vector<int>> worklist;
  worklist.push_back(options.schedule);
  const std::size_t seed_length = options.schedule.size();
  while (!worklist.empty() && result.executions < options.max_executions) {
    std::vector<int> prefix = std::move(worklist.back());
    worklist.pop_back();
    const ExecutionOutcome outcome = run_one(program, options, prefix);
    ++result.executions;
    result.decisions += static_cast<long long>(outcome.choices.size());
    result.max_depth = std::max(result.max_depth,
                                static_cast<int>(outcome.choices.size()));
    harvest.harvest(outcome);
    if (outcome.truncated) {
      result.truncated = true;
      continue;
    }
    for (std::size_t i = std::max(prefix.size(), seed_length);
         i < outcome.choices.size(); ++i) {
      for (int alt = 1; alt < outcome.choices[i].num_options; ++alt) {
        std::vector<int> next = chosen_prefix(outcome.choices, i);
        next.push_back(alt);
        worklist.push_back(std::move(next));
      }
    }
  }
  if (!worklist.empty()) result.truncated = true;

  harvest.report.directives_checked =
      static_cast<int>(program.site_lines.size());
  harvest.report.sort();
  result.report = std::move(harvest.report);
  result.witnesses = std::move(harvest.witnesses);
  result.notes.assign(harvest.notes.begin(), harvest.notes.end());
  return result;
}

std::string to_json(const std::string& path, const ExploreResult& result) {
  std::string out;
  auto append_escaped = [&out](std::string_view text) {
    out += '"';
    for (char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  };
  out += "{\"cidexplore\":1,\"file\":";
  append_escaped(path);
  out += ",\"nprocs\":" + std::to_string(result.nprocs);
  out += ",\"mode\":\"" + std::string(result.dpor ? "dpor" : "naive") + "\"";
  out += ",\"executions\":" + std::to_string(result.executions);
  out += ",\"decisions\":" + std::to_string(result.decisions);
  out += ",\"max_depth\":" + std::to_string(result.max_depth);
  out += ",\"truncated\":" + std::string(result.truncated ? "true" : "false");
  out += ",\"symbolic_clauses\":" + std::to_string(result.symbolic_clauses);
  out += ",\"diagnostics\":[";
  for (std::size_t i = 0; i < result.report.diagnostics.size(); ++i) {
    const analyze::Diagnostic& diagnostic = result.report.diagnostics[i];
    if (i > 0) out += ',';
    out += "{\"id\":";
    append_escaped(diagnostic.id);
    out += ",\"severity\":\"";
    out += diagnostic.severity == analyze::Severity::Error ? "error"
                                                           : "warning";
    out += "\",\"line\":" + std::to_string(diagnostic.line);
    out += ",\"message\":";
    append_escaped(diagnostic.message);
    out += ",\"hint\":";
    append_escaped(diagnostic.hint);
    out += '}';
  }
  out += "],\"witnesses\":[";
  for (std::size_t i = 0; i < result.witnesses.size(); ++i) {
    const Witness& witness = result.witnesses[i];
    if (i > 0) out += ',';
    out += "{\"id\":";
    append_escaped(witness.id);
    out += ",\"line\":" + std::to_string(witness.line);
    out += ",\"schedule\":[";
    for (std::size_t k = 0; k < witness.schedule.size(); ++k) {
      if (k > 0) out += ',';
      out += std::to_string(witness.schedule[k]);
    }
    out += "]}";
  }
  out += "],\"notes\":[";
  for (std::size_t i = 0; i < result.notes.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(result.notes[i]);
  }
  out += "],\"summary\":{\"errors\":" + std::to_string(result.report.errors());
  out += ",\"warnings\":" + std::to_string(result.report.warnings());
  out += "}}\n";
  return out;
}

}  // namespace cid::explore
