// Source-to-source translation of the communication directives: the role
// Open64 plays in the paper. The translator consumes C/C++ source containing
// #pragma comm_parameters / #pragma comm_p2p and emits source in which every
// directive has been replaced by the message passing calls of the selected
// target library (miniMPI two-sided, miniMPI one-sided, or miniSHMEM), with
// clause inheritance resolved statically, count inference emitted as
// array-extent expressions, automatic datatype handling, and consolidated
// synchronization per place_sync.
//
// Scope, matching the paper's structured-region design: a directive must be
// followed by a statement or a brace-delimited block (the overlap region for
// comm_p2p, the clause scope for comm_parameters). Pragma lines may be
// continued with trailing backslashes. Adjacent comm_parameters regions for
// BEGIN_NEXT_PARAM_REGION / END_ADJ_PARAM_REGIONS must be lexical siblings.
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"
#include "core/clauses.hpp"

namespace cid::translate {

struct Options {
  /// Target used when a directive has no target clause.
  core::Target default_target = core::Target::Mpi2Side;
  /// Expression for the communicator in generated MPI calls.
  std::string comm_expr = "::cid::mpi::Comm::world()";
  /// Message tag used by generated point-to-point calls.
  int tag = 2000;
  /// Emit explanatory comments in the generated code.
  bool annotate = true;
};

/// Statistics of one translation.
struct Summary {
  int p2p_directives = 0;
  int parameter_regions = 0;
  int consolidated_syncs = 0;
  /// Regions carrying a reliability clause, lowered through the embedded
  /// runtime API (the protocol is a runtime service, not a call pattern).
  int reliable_regions = 0;
};

struct Translation {
  std::string source;
  Summary summary;
};

/// Translate a whole source buffer. Fails (with a line-annotated message) on
/// malformed pragmas or directives without an attached statement/block.
Result<Translation> translate_source(std::string_view source,
                                     const Options& options = {});

}  // namespace cid::translate
