// Lexical analysis of directive-annotated source, shared by the
// source-to-source translator and the static analyzer (cid::analyze).
//
// Two layers:
//  - character-level helpers (block/statement extents, pragma detection,
//    line/column mapping, a code mask that blanks comments and string
//    literals) used by the translator's rewriting loop;
//  - scan_directives(), which builds the lexical region tree the analyzer
//    consumes: every #pragma comm_* in the source, parsed, with source
//    locations, attached-body extents and nesting. Malformed pragmas and
//    structural problems (missing body, unbalanced braces, unterminated
//    continuations) are reported as ScanIssues instead of aborting the scan,
//    so one bad directive does not hide the rest of the file.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "core/pragma.hpp"

namespace cid::translate {

// --- character-level helpers ------------------------------------------------

/// Position of the matching '}' for the '{' at `open`, skipping string and
/// character literals and // and /* */ comments. npos when unbalanced.
std::size_t find_block_end(std::string_view text, std::size_t open);

/// Position just past the ';' terminating the statement starting at `start`
/// (same literal/comment skipping). npos when not found.
std::size_t find_statement_end(std::string_view text, std::size_t start);

/// 1-based line number of `pos`.
int line_of(std::string_view text, std::size_t pos);

/// 1-based column number of `pos`.
int column_of(std::string_view text, std::size_t pos);

/// Is there a comm directive pragma starting at the beginning of the line
/// containing position `i`? (`i` must point at the '#'.)
bool is_pragma_start(std::string_view text, std::size_t i);

/// Byte mask over `text`: 1 where the byte is live code, 0 inside comments,
/// string literals (including raw strings) and character literals. Used to
/// ignore pragma text quoted in strings and to scan identifier references.
std::vector<unsigned char> code_mask(std::string_view text);

/// Textual clause inheritance: `inner`'s clauses layered over `outer`'s
/// (clauses present on `inner` win, absent ones inherit) — the static
/// counterpart of core::Clauses::merged. The result keeps `inner`'s kind.
core::ParsedDirective merge_directives(const core::ParsedDirective& outer,
                                       const core::ParsedDirective& inner);

// --- the directive tree -----------------------------------------------------

/// One directive with its attached body, nested inside the tree of
/// comm_parameters regions exactly as the translator sees it.
struct DirectiveNode {
  core::ParsedDirective directive;
  int line = 0;    ///< 1-based line of the pragma's '#'
  int column = 0;  ///< 1-based column of the pragma's '#'
  std::size_t pragma_begin = 0;  ///< offset of the '#'
  std::size_t body_begin = 0;    ///< content offset (inside braces, or the
                                 ///< statement / nested-directive start)
  std::size_t body_end = 0;      ///< content end (exclusive)
  std::size_t node_end = 0;      ///< offset just past the whole construct
  bool body_is_block = false;
  bool pragma_continued = false;  ///< pragma spanned '\'-continued lines
  std::vector<DirectiveNode> children;  ///< directives nested in the body
};

/// A problem found while scanning: a malformed pragma line or a structural
/// error around a directive. `status` carries the parser's message.
struct ScanIssue {
  int line = 0;
  int column = 0;
  Status status;
};

struct DirectiveTree {
  std::vector<DirectiveNode> roots;
  std::vector<ScanIssue> issues;
};

/// Scan a whole source buffer into its directive tree. Pragma text inside
/// comments and string literals is ignored. Never fails: problems are
/// reported through `issues` and the affected directive is skipped.
DirectiveTree scan_directives(std::string_view source);

}  // namespace cid::translate
