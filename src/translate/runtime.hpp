// Support helpers referenced by translator-generated code (namespace
// cid::trt). The generated code contains the actual message passing calls
// (cid::mpi / cid::shmem); these templates only supply the pieces Open64
// resolved from its AST — element pointers, element datatypes, array-extent
// based count inference, and byte sizes.
#pragma once

#include <algorithm>
#include <cstring>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "core/exec_state.hpp"
#include "core/type_layout.hpp"
#include "mpi/datatype.hpp"

namespace cid::trt {

/// Element pointer of a buffer expression: arrays decay, pointers pass
/// through, reflected struct lvalues take their address.
template <typename T>
auto* data_ptr(T&& object) {
  using U = std::remove_reference_t<T>;
  if constexpr (std::is_array_v<U>) {
    return &object[0];
  } else if constexpr (std::is_pointer_v<U>) {
    return object;
  } else {
    return &object;
  }
}

namespace detail {
template <typename T>
using element_t =
    std::remove_pointer_t<decltype(data_ptr(std::declval<T&>()))>;
}

/// miniMPI datatype of a buffer expression's element type: basic types map
/// directly; reflected composites build (and cache per scope) the derived
/// struct type — the translated equivalent of the compiler's automatic
/// data-type handling.
template <typename T>
mpi::Datatype datatype_of_expr(T&& object) {
  using E = std::remove_cv_t<detail::element_t<T>>;
  if constexpr (std::is_arithmetic_v<E>) {
    return mpi::datatype_of<E>();
  } else {
    static_assert(core::Reflected<E>,
                  "composite buffer type needs CID_REFLECT_STRUCT before the "
                  "translated code can build its MPI datatype");
    return core::detail::ExecState::mine().datatype_for(
        core::TypeLayoutOf<E>::get());
  }
}

/// Bytes per element of a buffer expression.
template <typename T>
constexpr std::size_t element_size(T&&) {
  return sizeof(detail::element_t<T>);
}

namespace detail {
template <typename T>
std::size_t extent_of(T&& object) {
  using U = std::remove_reference_t<T>;
  if constexpr (std::is_array_v<U>) {
    return std::extent_v<U>;
  } else if constexpr (requires { object.size(); }) {
    return object.size();
  } else {
    static_assert(std::is_array_v<U>,
                  "count clause omitted but the buffer has no array extent "
                  "(paper Section III-B requires at least one array buffer)");
    return 0;
  }
}
}  // namespace detail

/// Count inference: the size of the smallest array among the listed buffers
/// (paper: "the message size will be the size of the smallest array").
template <typename... Buffers>
std::size_t smallest_extent(Buffers&&... buffers) {
  return std::min({detail::extent_of(buffers)...});
}

/// Local block copy used by generated collective code (root seeding its own
/// rbuf before a broadcast).
template <typename Dst, typename Src>
void copy_block(Dst&& dst, Src&& src, std::size_t count) {
  auto* d = data_ptr(dst);
  const auto* s = data_ptr(src);
  std::memcpy(d, s, count * sizeof(*s));
}

}  // namespace cid::trt
