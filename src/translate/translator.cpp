#include "translate/translator.hpp"

#include <map>
#include <optional>
#include <vector>

#include "common/strings.hpp"
#include "core/pragma.hpp"
#include "translate/scan.hpp"

namespace cid::translate {

namespace {

using core::DirectiveKind;
using core::ParsedDirective;
using core::RawClause;
using core::SyncPlacement;
using core::Target;

// ---------------------------------------------------------------------------
// Clause utilities (lexical helpers and the textual clause merge live in
// translate/scan.cpp, shared with the static analyzer)
// ---------------------------------------------------------------------------

std::string clause_arg(const ParsedDirective& directive,
                       std::string_view name, std::string fallback = {}) {
  const RawClause* clause = directive.find(name);
  return clause != nullptr ? clause->args[0] : fallback;
}

std::vector<std::string> clause_args(const ParsedDirective& directive,
                                     std::string_view name) {
  const RawClause* clause = directive.find(name);
  return clause != nullptr ? clause->args : std::vector<std::string>{};
}

// ---------------------------------------------------------------------------
// Translator
// ---------------------------------------------------------------------------

class Translator {
 public:
  Translator(std::string_view source, const Options& options)
      : source_(source), options_(options) {}

  Result<Translation> run() {
    auto body = translate_range(0, source_.size(), nullptr);
    if (!body.is_ok()) return body.status();
    Translation out;
    out.source = std::move(body).take();
    if (!deferred_syncs_.empty()) {
      out.source +=
          "\n/* cid-translate WARNING: deferred synchronization without a "
          "following comm_parameters region; draining here. */\n";
      out.source += drain_deferred(/*only_begin_next=*/false);
    }
    out.summary = summary_;
    return out;
  }

 private:
  struct RegionContext {
    ParsedDirective clauses;
    Target target = Target::Mpi2Side;
    std::string requests_var;  ///< MPI request vector in scope
    std::string comm_var;
    bool used_mpi2 = false;
    bool used_shmem = false;
    /// A reliability clause forces the embedded-API lowering: the ack/
    /// retransmit protocol is a runtime service, not a call pattern the
    /// translator can open-code.
    bool reliable = false;
    std::string region_var;  ///< the ::cid::core::Region lambda parameter
  };

  struct DeferredSync {
    std::string code;       ///< the synchronization statement(s)
    bool at_next_begin;     ///< BEGIN_NEXT_PARAM_REGION vs END_ADJ_*
  };

  /// Translate source_[begin, end); `region` is the innermost enclosing
  /// comm_parameters context (nullptr at top level).
  Result<std::string> translate_range(std::size_t begin, std::size_t end,
                                      RegionContext* region) {
    std::string out;
    std::size_t i = begin;
    while (i < end) {
      if (source_[i] == '#' && is_pragma_start(source_, i)) {
        auto handled = handle_directive(i, end, region, out);
        if (!handled.is_ok()) return handled.status();
        i = handled.value();
        continue;
      }
      out += source_[i];
      ++i;
    }
    return out;
  }

  /// Parse and translate the directive whose '#' is at `i`; append generated
  /// code to `out` and return the index just past the directive's block.
  Result<std::size_t> handle_directive(std::size_t i, std::size_t end,
                                       RegionContext* region,
                                       std::string& out) {
    // Collect the pragma line (with backslash continuations).
    std::size_t cursor = i;
    std::string pragma_text;
    for (;;) {
      std::size_t eol = source_.find('\n', cursor);
      if (eol == std::string_view::npos || eol > end) eol = end;
      std::string_view line = source_.substr(cursor, eol - cursor);
      cursor = eol < end ? eol + 1 : end;
      std::string_view trimmed = cid::trim(line);
      if (!trimmed.empty() && trimmed.back() == '\\') {
        pragma_text += trimmed.substr(0, trimmed.size() - 1);
        pragma_text += ' ';
      } else {
        pragma_text += trimmed;
        break;
      }
    }

    auto parsed = core::parse_pragma(pragma_text);
    if (!parsed.is_ok()) {
      return Status(parsed.status().code(),
                    "line " + std::to_string(line_of(source_, i)) + ": " +
                        parsed.status().message());
    }

    // Locate the attached statement or block.
    std::size_t body_begin = cursor;
    while (body_begin < end &&
           (source_[body_begin] == ' ' || source_[body_begin] == '\t' ||
            source_[body_begin] == '\n' || source_[body_begin] == '\r')) {
      ++body_begin;
    }
    if (body_begin >= end) {
      return Status(ErrorCode::ParseError,
                    "line " + std::to_string(line_of(source_, i)) +
                        ": directive has no attached statement or block");
    }

    std::size_t body_content_begin;
    std::size_t body_content_end;
    std::size_t after_body;
    if (source_[body_begin] == '{') {
      const std::size_t close = find_block_end(source_, body_begin);
      if (close == std::string_view::npos || close > end) {
        return Status(ErrorCode::ParseError,
                      "line " + std::to_string(line_of(source_, body_begin)) +
                          ": unbalanced braces after directive");
      }
      body_content_begin = body_begin + 1;
      body_content_end = close;
      after_body = close + 1;
    } else if (source_[body_begin] == '#' &&
               is_pragma_start(source_, body_begin) &&
               parsed.value().kind == DirectiveKind::CommParameters) {
      // A comm_parameters followed directly by another directive: treat the
      // inner directive (with its block) as the region body.
      auto inner_end = directive_extent(body_begin, end);
      if (!inner_end.is_ok()) return inner_end.status();
      body_content_begin = body_begin;
      body_content_end = inner_end.value();
      after_body = inner_end.value();
    } else {
      const std::size_t semi = find_statement_end(source_, body_begin);
      if (semi == std::string_view::npos || semi > end) {
        return Status(ErrorCode::ParseError,
                      "line " + std::to_string(line_of(source_, body_begin)) +
                          ": directive statement is not terminated");
      }
      body_content_begin = body_begin;
      body_content_end = semi;
      after_body = semi;
    }

    if (parsed.value().kind == DirectiveKind::CommParameters) {
      auto code = emit_region(parsed.value(), body_content_begin,
                              body_content_end, region);
      if (!code.is_ok()) return code.status();
      out += std::move(code).take();
    } else if (parsed.value().kind == DirectiveKind::CommCollective) {
      auto code = emit_collective(parsed.value(), body_content_begin,
                                  body_content_end, region);
      if (!code.is_ok()) return code.status();
      out += std::move(code).take();
    } else {
      auto code = emit_p2p(parsed.value(), body_content_begin,
                           body_content_end, region);
      if (!code.is_ok()) return code.status();
      out += std::move(code).take();
    }
    return after_body;
  }

  /// End index (exclusive) of the directive starting at `i` including its
  /// attached block — used when a region's body is a bare nested directive.
  Result<std::size_t> directive_extent(std::size_t i, std::size_t end) {
    std::size_t eol = i;
    for (;;) {
      eol = source_.find('\n', eol);
      if (eol == std::string_view::npos || eol >= end) {
        return Status(ErrorCode::ParseError,
                      "directive at end of file without a block");
      }
      std::string_view line_start = source_.substr(i, eol - i);
      if (!line_start.empty() && cid::trim(line_start).back() == '\\') {
        ++eol;
        continue;
      }
      break;
    }
    std::size_t body = eol + 1;
    while (body < end && std::isspace(static_cast<unsigned char>(
                             source_[body]))) {
      ++body;
    }
    if (body < end && source_[body] == '{') {
      const std::size_t close = find_block_end(source_, body);
      if (close == std::string_view::npos) {
        return Status(ErrorCode::ParseError, "unbalanced nested block");
      }
      return close + 1;
    }
    const std::size_t semi = find_statement_end(source_, body);
    if (semi == std::string_view::npos) {
      return Status(ErrorCode::ParseError, "unterminated nested statement");
    }
    return semi;
  }

  // --- code generation ----------------------------------------------------

  Target directive_target(const ParsedDirective& directive) const {
    const RawClause* clause = directive.find("target");
    if (clause == nullptr) return options_.default_target;
    auto target = core::parse_target_keyword(clause->args[0]);
    if (!target.is_ok()) return options_.default_target;
    // target(auto) adapts per site at runtime (cid::tune); the open-coded
    // translation is static, so it lowers to the configured default.
    if (target.value() == Target::Auto) return options_.default_target;
    return target.value();
  }

  std::string annotate(const std::string& note) const {
    return options_.annotate ? "/* cid-translate: " + note + " */" : "";
  }

  /// A clause's C expression wrapped as a runtime callable, evaluated in the
  /// user's scope each time the directive executes (the embedded-API
  /// equivalent of pasting the expression into generated code).
  static std::string expr_lambda(const std::string& expr) {
    return "[&]() -> ::cid::core::ExprValue { return "
           "static_cast<::cid::core::ExprValue>(" +
           expr + "); }";
  }

  /// Rebuild a parsed clause set as a ::cid::core::Clauses builder chain for
  /// the embedded-API lowering (reliable regions).
  Result<std::string> clauses_builder(const ParsedDirective& directive) {
    std::string out = "::cid::core::Clauses()";
    for (const auto& clause : directive.clauses) {
      if (clause.name == "sender" || clause.name == "receiver" ||
          clause.name == "sendwhen" || clause.name == "receivewhen" ||
          clause.name == "count" || clause.name == "max_comm_iter") {
        out += "\n    ." + clause.name + "(" + expr_lambda(clause.args[0]) +
               ")";
      } else if (clause.name == "reliability") {
        out += "\n    .reliability(" + expr_lambda(clause.args[0]) + ", " +
               expr_lambda(clause.args[1]) + ")";
      } else if (clause.name == "target") {
        auto target = core::parse_target_keyword(clause.args[0]);
        if (!target.is_ok()) return target.status();
        if (target.value() == Target::Auto) {
          // Resolved per site by the runtime; reliability forces the
          // two-sided lowering there (tune::auto_target).
          out += "\n    .target(::cid::core::Target::Auto)";
        } else if (target.value() != Target::Mpi2Side) {
          return Status(ErrorCode::UnsupportedTarget,
                        "reliability requires TARGET_COMM_MPI_2SIDE");
        } else {
          out += "\n    .target(::cid::core::Target::Mpi2Side)";
        }
      } else if (clause.name == "place_sync") {
        auto placement = core::parse_sync_placement_keyword(clause.args[0]);
        if (!placement.is_ok()) return placement.status();
        const char* keyword =
            placement.value() == SyncPlacement::EndParamRegion
                ? "EndParamRegion"
                : placement.value() == SyncPlacement::BeginNextParamRegion
                      ? "BeginNextParamRegion"
                      : "EndAdjParamRegions";
        out += "\n    .place_sync(::cid::core::SyncPlacement::" +
               std::string(keyword) + ")";
      } else if (clause.name == "sbuf" || clause.name == "rbuf") {
        for (const auto& arg : clause.args) {
          out += "\n    ." + clause.name + "(::cid::core::buf(" + arg +
                 ", \"" + arg + "\"))";
        }
      } else {
        return Status(ErrorCode::InvalidClause,
                      "clause '" + clause.name +
                          "' is not supported in a reliability region");
      }
    }
    return out;
  }

  Result<std::string> emit_region(const ParsedDirective& directive,
                                  std::size_t body_begin,
                                  std::size_t body_end,
                                  RegionContext* parent) {
    ++summary_.parameter_regions;
    const int id = next_id_++;

    RegionContext region;
    region.clauses = parent != nullptr
                         ? merge_directives(parent->clauses, directive)
                         : directive;
    region.clauses.kind = DirectiveKind::CommParameters;
    region.target = directive_target(region.clauses);
    region.requests_var = "cid_reqs_" + std::to_string(id);
    region.comm_var = "cid_comm_" + std::to_string(id);
    region.reliable = region.clauses.find("reliability") != nullptr;
    region.region_var = "cid_region_" + std::to_string(id);

    if (region.reliable) {
      ++summary_.reliable_regions;
      // The reliability protocol (ack/timeout/retransmit, DeliveryReport)
      // lives in the runtime, so the region is lowered through the embedded
      // API instead of open-coded message passing; nested comm_p2p
      // directives become Region::p2p calls on the lambda's Region.
      auto builder = clauses_builder(region.clauses);
      if (!builder.is_ok()) return builder.status();
      auto body = translate_range(body_begin, body_end, &region);
      if (!body.is_ok()) return body.status();
      std::string out;
      out += "{ " + annotate("comm_parameters region " + std::to_string(id) +
                             " (reliable: runtime-lowered)") + "\n";
      out += drain_deferred(/*only_begin_next=*/true);
      out += "::cid::core::comm_parameters(" + std::move(builder).take() +
             ",\n    [&](::cid::core::Region& " + region.region_var +
             ") {\n";
      out += std::move(body).take();
      out += "}); " +
             annotate("reliable synchronization: ack/retransmit protocol "
                      "drains here") +
             "\n";
      out += "}\n";
      ++summary_.consolidated_syncs;
      return out;
    }

    auto body = translate_range(body_begin, body_end, &region);
    if (!body.is_ok()) return body.status();

    SyncPlacement placement = SyncPlacement::EndParamRegion;
    if (const RawClause* clause = directive.find("place_sync")) {
      auto parsed = core::parse_sync_placement_keyword(clause->args[0]);
      if (!parsed.is_ok()) return parsed.status();
      placement = parsed.value();
    }

    std::string sync_code;
    if (region.used_mpi2) {
      sync_code += "::cid::mpi::waitall(" + region.requests_var + "); " +
                   annotate("consolidated synchronization") + "\n";
      ++summary_.consolidated_syncs;
    }
    if (region.used_shmem) {
      sync_code += "::cid::shmem::barrier_all(); " +
                   annotate("consolidated SHMEM synchronization") + "\n";
      ++summary_.consolidated_syncs;
    }

    std::string out;
    // Requests vector lives in the enclosing scope when synchronization is
    // deferred past the region, else inside the region block.
    const bool deferred = placement != SyncPlacement::EndParamRegion;
    std::string decls;
    if (region.used_mpi2) {
      decls += "std::vector<::cid::mpi::Request> " + region.requests_var +
               ";\n";
      decls += "auto " + region.comm_var + " = " + options_.comm_expr + ";\n";
    } else if (region.used_shmem || region_needs_comm_) {
      decls += "auto " + region.comm_var + " = " + options_.comm_expr + ";\n";
    }
    region_needs_comm_ = false;

    if (deferred && region.used_mpi2) {
      out += decls;  // enclosing scope
      out += "{ " + annotate("comm_parameters region " + std::to_string(id)) +
             "\n";
    } else {
      out += "{ " + annotate("comm_parameters region " + std::to_string(id)) +
             "\n";
      out += decls;
    }

    // BEGIN_NEXT deferred syncs from earlier regions drain at this region's
    // beginning; END_ADJ ones at this region's end (when not deferring).
    out += drain_deferred(/*only_begin_next=*/true);
    out += std::move(body).take();

    switch (placement) {
      case SyncPlacement::EndParamRegion:
        out += drain_deferred(/*only_begin_next=*/false);
        out += sync_code;
        out += "}\n";
        break;
      case SyncPlacement::BeginNextParamRegion:
        out += "}\n";
        deferred_syncs_.push_back({sync_code, /*at_next_begin=*/true});
        break;
      case SyncPlacement::EndAdjParamRegions:
        out += "}\n";
        deferred_syncs_.push_back({sync_code, /*at_next_begin=*/false});
        break;
    }
    return out;
  }

  std::string drain_deferred(bool only_begin_next) {
    std::string out;
    auto it = deferred_syncs_.begin();
    while (it != deferred_syncs_.end()) {
      if (!only_begin_next || it->at_next_begin) {
        out += it->code;
        it = deferred_syncs_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  /// The collective-directive extension (paper Section V): lowered to the
  /// cid::mpi collectives on a group communicator. Only the (default) MPI
  /// two-sided target is supported by generated code; retarget via the
  /// embedded API for SHMEM collectives.
  Result<std::string> emit_collective(const ParsedDirective& directive,
                                      std::size_t body_begin,
                                      std::size_t body_end,
                                      RegionContext* region) {
    ++summary_.p2p_directives;  // counted with the point-to-point directives
    const int id = next_id_++;

    if (region != nullptr && region->reliable) {
      return Status(ErrorCode::InvalidClause,
                    "comm_collective inside a reliability region is not "
                    "supported (reliability covers point-to-point transfers)");
    }

    const ParsedDirective merged =
        region != nullptr ? merge_directives(region->clauses, directive)
                          : directive;

    const Target target = directive_target(merged);
    if (target != Target::Mpi2Side) {
      return Status(ErrorCode::UnsupportedTarget,
                    "translated comm_collective supports only "
                    "TARGET_COMM_MPI_2SIDE; use the embedded API for other "
                    "targets");
    }
    const std::string pattern = clause_arg(merged, "pattern");
    const auto sbufs = clause_args(merged, "sbuf");
    const auto rbufs = clause_args(merged, "rbuf");
    if (sbufs.size() != 1 || rbufs.size() != 1) {
      return Status(ErrorCode::InvalidClause,
                    "comm_collective takes exactly one sbuf and one rbuf");
    }
    const std::string count = clause_arg(merged, "count");
    if (count.empty()) {
      return Status(ErrorCode::InvalidClause,
                    "translated comm_collective requires an explicit count "
                    "clause");
    }
    const std::string root = clause_arg(merged, "root", "0");
    const std::string group = clause_arg(merged, "group");
    const std::string& sb = sbufs[0];
    const std::string& rb = rbufs[0];

    const std::string comm_var = "cid_gcomm_" + std::to_string(id);
    std::string out;
    out += "{ " + annotate("comm_collective " + std::to_string(id)) + "\n";
    if (group.empty()) {
      out += "auto " + comm_var + " = " + options_.comm_expr + ";\n";
      out += "{\n";
    } else {
      out += "auto " + comm_var + " = " + options_.comm_expr + ".split((" +
             group + ") < 0 ? -1 : static_cast<int>(" + group +
             "), ::cid::rt::current_ctx().rank());\n";
      out += "if (" + comm_var + ".valid()) {\n";
    }

    if (pattern == "PATTERN_ONE_TO_MANY") {
      out += "if (" + comm_var + ".rank() == (" + root +
             ")) ::cid::trt::copy_block(" + rb + ", " + sb +
             ", static_cast<std::size_t>(" + count + "));\n";
      out += "::cid::mpi::bcast(" + comm_var + ", ::cid::trt::data_ptr(" +
             rb + "), static_cast<std::size_t>(" + count +
             "), ::cid::trt::datatype_of_expr(" + rb + "), (" + root +
             "));\n";
    } else if (pattern == "PATTERN_MANY_TO_ONE") {
      out += "::cid::mpi::gather(" + comm_var + ", ::cid::trt::data_ptr(" +
             sb + "), static_cast<std::size_t>(" + count +
             "), ::cid::trt::datatype_of_expr(" + sb + "), " + comm_var +
             ".rank() == (" + root +
             ") ? static_cast<void*>(::cid::trt::data_ptr(" + rb +
             ")) : nullptr, (" + root + "));\n";
    } else if (pattern == "PATTERN_ALL_TO_ALL") {
      out += "::cid::mpi::alltoall(" + comm_var + ", ::cid::trt::data_ptr(" +
             sb + "), static_cast<std::size_t>(" + count +
             "), ::cid::trt::datatype_of_expr(" + sb +
             "), ::cid::trt::data_ptr(" + rb + "));\n";
    } else {
      return Status(ErrorCode::InvalidClause,
                    "unknown pattern keyword '" + pattern + "'");
    }
    out += "}\n";

    const std::string body(source_.substr(body_begin, body_end - body_begin));
    if (!cid::trim(body).empty()) {
      out += "{ " + annotate("post-collective statement") + "\n" + body +
             "\n}\n";
    }
    out += "}\n";
    return out;
  }

  Result<std::string> emit_p2p(const ParsedDirective& directive,
                               std::size_t body_begin, std::size_t body_end,
                               RegionContext* region) {
    ++summary_.p2p_directives;
    const int id = next_id_++;

    const ParsedDirective merged =
        region != nullptr ? merge_directives(region->clauses, directive)
                          : directive;

    // Static validation mirroring Clauses::validate_for_p2p.
    const auto sbufs = clause_args(merged, "sbuf");
    const auto rbufs = clause_args(merged, "rbuf");
    if (sbufs.empty() || rbufs.empty()) {
      return Status(ErrorCode::InvalidClause,
                    "comm_p2p requires sbuf and rbuf clauses");
    }
    if (sbufs.size() != rbufs.size()) {
      return Status(ErrorCode::InvalidClause,
                    "sbuf and rbuf must list the same number of buffers");
    }
    if (merged.find("sender") == nullptr ||
        merged.find("receiver") == nullptr) {
      return Status(ErrorCode::InvalidClause,
                    "comm_p2p requires sender and receiver clauses");
    }

    const std::string sender = clause_arg(merged, "sender");
    const std::string receiver = clause_arg(merged, "receiver");
    const std::string sendwhen = clause_arg(merged, "sendwhen");
    const std::string receivewhen = clause_arg(merged, "receivewhen");
    std::string count = clause_arg(merged, "count");
    if (count.empty()) {
      // Count inference from array extents, resolved in the generated code.
      std::string args;
      for (const auto& name : sbufs) {
        if (!args.empty()) args += ", ";
        args += name;
      }
      for (const auto& name : rbufs) {
        args += ", ";
        args += name;
      }
      count = "::cid::trt::smallest_extent(" + args + ")";
    }
    const Target target = region != nullptr && merged.find("target") == nullptr
                              ? region->target
                              : directive_target(merged);

    const std::string overlap(
        source_.substr(body_begin, body_end - body_begin));
    const bool has_overlap = !cid::trim(overlap).empty();
    const std::string tag = std::to_string(options_.tag);

    if (region != nullptr && region->reliable) {
      // Inside a reliable region the runtime executes the directive (and its
      // retransmission protocol); emit a Region::p2p call with the site's
      // own clauses — inheritance happens in the runtime, like the paper's
      // region-scoped assertions.
      auto builder = clauses_builder(directive);
      if (!builder.is_ok()) return builder.status();
      std::string out = annotate("comm_p2p " + std::to_string(id) +
                                 " (reliable region)") + "\n";
      out += region->region_var + ".p2p(" + std::move(builder).take();
      if (has_overlap) {
        out += ",\n    [&]() { " + annotate("overlapped computation") + "\n" +
               overlap + "\n}";
      }
      out += ");\n";
      return out;
    }

    std::string out;
    out += "{ " + annotate("comm_p2p " + std::to_string(id)) + "\n";

    std::string reqs_var;
    std::string comm_var;
    const bool standalone = region == nullptr;
    switch (target) {
      case Target::Auto:  // directive_target resolves Auto to the default
      case Target::Mpi2Side: {
        if (standalone) {
          reqs_var = "cid_reqs_" + std::to_string(id);
          comm_var = "cid_comm_" + std::to_string(id);
          out += "std::vector<::cid::mpi::Request> " + reqs_var + ";\n";
          out += "auto " + comm_var + " = " + options_.comm_expr + ";\n";
        } else {
          reqs_var = region->requests_var;
          comm_var = region->comm_var;
          region->used_mpi2 = true;
        }
        const std::string indent = "  ";
        std::string recv_code;
        for (const auto& rb : rbufs) {
          recv_code += indent + reqs_var + ".push_back(::cid::mpi::irecv(" +
                       comm_var + ", ::cid::trt::data_ptr(" + rb +
                       "), static_cast<std::size_t>(" + count +
                       "), ::cid::trt::datatype_of_expr(" + rb + "), (" +
                       sender + "), " + tag + "));\n";
        }
        std::string send_code;
        for (const auto& sb : sbufs) {
          send_code += indent + reqs_var + ".push_back(::cid::mpi::isend(" +
                       comm_var + ", ::cid::trt::data_ptr(" + sb +
                       "), static_cast<std::size_t>(" + count +
                       "), ::cid::trt::datatype_of_expr(" + sb + "), (" +
                       receiver + "), " + tag + "));\n";
        }
        if (!receivewhen.empty()) {
          out += "if (" + receivewhen + ") {\n" + recv_code + "}\n";
        } else {
          out += recv_code;
        }
        if (!sendwhen.empty()) {
          out += "if (" + sendwhen + ") {\n" + send_code + "}\n";
        } else {
          out += send_code;
        }
        break;
      }

      case Target::Shmem: {
        std::string put_code;
        for (std::size_t b = 0; b < sbufs.size(); ++b) {
          put_code += "  ::cid::shmem::putmem(::cid::trt::data_ptr(" +
                      rbufs[b] + "), ::cid::trt::data_ptr(" + sbufs[b] +
                      "), static_cast<std::size_t>(" + count +
                      ") * ::cid::trt::element_size(" + sbufs[b] + "), (" +
                      receiver + "));\n";
        }
        if (!sendwhen.empty()) {
          out += "if (" + sendwhen + ") {\n" + put_code + "}\n";
        } else {
          out += put_code;
        }
        if (region != nullptr) region->used_shmem = true;
        break;
      }

      case Target::Mpi1Side: {
        comm_var = standalone ? "cid_comm_" + std::to_string(id)
                              : region->comm_var;
        if (standalone) {
          out += "auto " + comm_var + " = " + options_.comm_expr + ";\n";
        } else {
          region_needs_comm_ = true;
        }
        for (std::size_t b = 0; b < rbufs.size(); ++b) {
          const std::string win_var =
              "cid_win_" + std::to_string(id) + "_" + std::to_string(b);
          out += "auto " + win_var + " = ::cid::mpi::Win::create(" + comm_var +
                 ", ::cid::trt::data_ptr(" + rbufs[b] +
                 "), static_cast<std::size_t>(" + count +
                 ") * ::cid::trt::element_size(" + rbufs[b] + "));\n";
          std::string put_code = "  " + win_var +
                                 ".put(::cid::trt::data_ptr(" + sbufs[b] +
                                 "), static_cast<std::size_t>(" + count +
                                 "), ::cid::trt::datatype_of_expr(" +
                                 sbufs[b] + "), (" + receiver + "), 0);\n";
          if (!sendwhen.empty()) {
            out += "if (" + sendwhen + ") {\n" + put_code + "}\n";
          } else {
            out += put_code;
          }
          window_fences_.push_back(win_var);
        }
        break;
      }
    }

    if (has_overlap) {
      out += "{ " + annotate("overlapped computation") + "\n";
      out += overlap;
      out += "\n}\n";
    }

    // Standalone directive (or one-sided windows): synchronize here.
    if (target == Target::Mpi1Side) {
      for (const auto& win_var : window_fences_) {
        out += win_var + ".fence();\n";
      }
      window_fences_.clear();
    }
    if (standalone) {
      switch (target) {
        case Target::Auto:
        case Target::Mpi2Side:
          out += "::cid::mpi::waitall(" + reqs_var + ");\n";
          break;
        case Target::Shmem:
          out += "::cid::shmem::barrier_all();\n";
          break;
        case Target::Mpi1Side:
          break;  // fences above
      }
    }
    out += "}\n";
    return out;
  }

  std::string_view source_;
  Options options_;
  Summary summary_;
  int next_id_ = 1;
  std::vector<DeferredSync> deferred_syncs_;
  std::vector<std::string> window_fences_;
  bool region_needs_comm_ = false;
};

}  // namespace

Result<Translation> translate_source(std::string_view source,
                                     const Options& options) {
  return Translator(source, options).run();
}

}  // namespace cid::translate
