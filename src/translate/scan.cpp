#include "translate/scan.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace cid::translate {

namespace {

/// Lexical state shared by the extent finders.
enum class LexState { Code, LineComment, BlockComment, String, Char };

/// Advance one character of the comment/literal state machine. Returns the
/// number of extra characters consumed (0 or 1).
std::size_t step(std::string_view text, std::size_t i, LexState& state) {
  const char c = text[i];
  const char next = i + 1 < text.size() ? text[i + 1] : '\0';
  switch (state) {
    case LexState::Code:
      if (c == '/' && next == '/') {
        state = LexState::LineComment;
        return 1;
      }
      if (c == '/' && next == '*') {
        state = LexState::BlockComment;
        return 1;
      }
      if (c == '"') state = LexState::String;
      if (c == '\'') state = LexState::Char;
      return 0;
    case LexState::LineComment:
      if (c == '\n') state = LexState::Code;
      return 0;
    case LexState::BlockComment:
      if (c == '*' && next == '/') {
        state = LexState::Code;
        return 1;
      }
      return 0;
    case LexState::String:
      if (c == '\\') return 1;
      if (c == '"') state = LexState::Code;
      return 0;
    case LexState::Char:
      if (c == '\\') return 1;
      if (c == '\'') state = LexState::Code;
      return 0;
  }
  return 0;
}

}  // namespace

std::size_t find_block_end(std::string_view text, std::size_t open) {
  int depth = 0;
  LexState state = LexState::Code;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (state == LexState::Code) {
      const char c = text[i];
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) return i;
      }
    }
    i += step(text, i, state);
  }
  return std::string_view::npos;
}

std::size_t find_statement_end(std::string_view text, std::size_t start) {
  LexState state = LexState::Code;
  int parens = 0;
  for (std::size_t i = start; i < text.size(); ++i) {
    if (state == LexState::Code) {
      const char c = text[i];
      if (c == '(') {
        ++parens;
      } else if (c == ')') {
        --parens;
      } else if (c == ';' && parens == 0) {
        return i + 1;
      }
    }
    i += step(text, i, state);
  }
  return std::string_view::npos;
}

int line_of(std::string_view text, std::size_t pos) {
  int line = 1;
  for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

int column_of(std::string_view text, std::size_t pos) {
  int column = 1;
  for (std::size_t i = pos; i > 0 && text[i - 1] != '\n'; --i) ++column;
  return column;
}

bool is_pragma_start(std::string_view text, std::size_t i) {
  // i must point at '#' that begins (after whitespace) a line.
  std::size_t j = i;
  while (j > 0 && (text[j - 1] == ' ' || text[j - 1] == '\t')) --j;
  if (j != 0 && text[j - 1] != '\n') return false;
  std::string_view rest = text.substr(i);
  if (!cid::starts_with(rest, "#")) return false;
  rest = cid::trim(rest.substr(1, 64));
  return cid::starts_with(rest, "pragma comm_parameters") ||
         cid::starts_with(rest, "pragma comm_p2p") ||
         cid::starts_with(rest, "pragma comm_collective");
}

std::vector<unsigned char> code_mask(std::string_view text) {
  std::vector<unsigned char> mask(text.size(), 0);
  LexState state = LexState::Code;
  for (std::size_t i = 0; i < text.size(); ++i) {
    // Raw string literals need lookahead the LexState machine does not have:
    // R"delim( ... )delim" with no escape processing.
    if (state == LexState::Code && text[i] == 'R' && i + 1 < text.size() &&
        text[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                    text[i - 1] != '_'))) {
      std::size_t delim_end = i + 2;
      while (delim_end < text.size() && text[delim_end] != '(' &&
             text[delim_end] != '"' && text[delim_end] != '\n') {
        ++delim_end;
      }
      if (delim_end < text.size() && text[delim_end] == '(') {
        const std::string closer =
            ")" + std::string(text.substr(i + 2, delim_end - (i + 2))) + "\"";
        const std::size_t close = text.find(closer, delim_end + 1);
        const std::size_t stop = close == std::string_view::npos
                                     ? text.size()
                                     : close + closer.size();
        i = stop - 1;  // literal bytes stay masked out
        continue;
      }
    }
    const LexState before = state;
    const std::size_t extra = step(text, i, state);
    // A byte is code when it is outside comments/literals both before and
    // after the step (so quotes and comment openers are not marked live).
    if (before == LexState::Code && state == LexState::Code) mask[i] = 1;
    i += extra;
  }
  return mask;
}

core::ParsedDirective merge_directives(const core::ParsedDirective& outer,
                                       const core::ParsedDirective& inner) {
  core::ParsedDirective merged;
  merged.kind = inner.kind;
  for (const auto& clause : outer.clauses) {
    if (inner.find(clause.name) == nullptr) merged.clauses.push_back(clause);
  }
  for (const auto& clause : inner.clauses) merged.clauses.push_back(clause);
  return merged;
}

namespace {

class Scanner {
 public:
  explicit Scanner(std::string_view source)
      : source_(source), mask_(code_mask(source)) {}

  DirectiveTree run() {
    DirectiveTree tree;
    scan_range(0, source_.size(), tree.roots, tree.issues);
    return tree;
  }

 private:
  void add_issue(std::vector<ScanIssue>& issues, std::size_t pos,
                 Status status) {
    issues.push_back({line_of(source_, pos), column_of(source_, pos),
                      std::move(status)});
  }

  /// Collect the pragma line starting at `i` (joining backslash
  /// continuations); sets `cursor` just past it. Returns false (with an
  /// issue) when a continuation runs off the end of the range.
  bool collect_pragma(std::size_t i, std::size_t end, std::string& text,
                      std::size_t& cursor, bool& continued,
                      std::vector<ScanIssue>& issues) {
    cursor = i;
    text.clear();
    continued = false;
    for (;;) {
      std::size_t eol = source_.find('\n', cursor);
      if (eol == std::string_view::npos || eol > end) eol = end;
      std::string_view line = source_.substr(cursor, eol - cursor);
      const bool at_end = eol >= end;
      cursor = at_end ? end : eol + 1;
      std::string_view trimmed = cid::trim(line);
      if (!trimmed.empty() && trimmed.back() == '\\') {
        text += trimmed.substr(0, trimmed.size() - 1);
        text += ' ';
        continued = true;
        if (at_end) {
          add_issue(issues, i,
                    Status(ErrorCode::ParseError,
                           "unterminated '\\' continuation in pragma"));
          return false;
        }
      } else {
        text += trimmed;
        return true;
      }
    }
  }

  void scan_range(std::size_t begin, std::size_t end,
                  std::vector<DirectiveNode>& nodes,
                  std::vector<ScanIssue>& issues) {
    std::size_t i = begin;
    while (i < end) {
      if (source_[i] == '#' && mask_[i] != 0 &&
          is_pragma_start(source_, i)) {
        i = scan_directive(i, end, nodes, issues);
        continue;
      }
      ++i;
    }
  }

  /// Scan the directive at `i`; append a node (or an issue) and return the
  /// position to continue from.
  std::size_t scan_directive(std::size_t i, std::size_t end,
                             std::vector<DirectiveNode>& nodes,
                             std::vector<ScanIssue>& issues) {
    std::string pragma_text;
    std::size_t cursor = 0;
    bool continued = false;
    if (!collect_pragma(i, end, pragma_text, cursor, continued, issues)) {
      return end;
    }

    auto parsed = core::parse_pragma(pragma_text);
    if (!parsed.is_ok()) {
      add_issue(issues, i, parsed.status());
      return cursor;  // keep scanning after the bad pragma line
    }

    DirectiveNode node;
    node.directive = std::move(parsed).take();
    node.pragma_continued = continued;
    node.line = line_of(source_, i);
    node.column = column_of(source_, i);
    node.pragma_begin = i;

    // Locate the attached statement or block (same rules as the translator).
    std::size_t body_begin = cursor;
    while (body_begin < end &&
           std::isspace(static_cast<unsigned char>(source_[body_begin]))) {
      ++body_begin;
    }
    if (body_begin >= end) {
      add_issue(issues, i,
                Status(ErrorCode::ParseError,
                       "directive has no attached statement or block"));
      return end;
    }

    if (source_[body_begin] == '{') {
      const std::size_t close = find_block_end(
          source_.substr(0, end), body_begin);
      if (close == std::string_view::npos) {
        add_issue(issues, body_begin,
                  Status(ErrorCode::ParseError,
                         "unbalanced braces after directive"));
        return end;
      }
      node.body_is_block = true;
      node.body_begin = body_begin + 1;
      node.body_end = close;
      node.node_end = close + 1;
    } else if (source_[body_begin] == '#' && mask_[body_begin] != 0 &&
               is_pragma_start(source_, body_begin) &&
               node.directive.kind == core::DirectiveKind::CommParameters) {
      // A comm_parameters followed directly by another directive: the inner
      // directive (with its block) is the region body.
      std::vector<DirectiveNode> inner;
      const std::size_t before = issues.size();
      const std::size_t after =
          scan_directive(body_begin, end, inner, issues);
      if (inner.empty()) {
        // The nested directive failed to scan; its issue is already recorded.
        if (issues.size() == before) {
          add_issue(issues, body_begin,
                    Status(ErrorCode::ParseError,
                           "directive has no attached statement or block"));
        }
        return after;
      }
      node.body_begin = body_begin;
      node.body_end = after;
      node.node_end = after;
      node.children = std::move(inner);
      nodes.push_back(std::move(node));
      return after;
    } else {
      const std::size_t semi =
          find_statement_end(source_.substr(0, end), body_begin);
      if (semi == std::string_view::npos) {
        add_issue(issues, body_begin,
                  Status(ErrorCode::ParseError,
                         "directive statement is not terminated"));
        return end;
      }
      node.body_begin = body_begin;
      node.body_end = semi;
      node.node_end = semi;
    }

    scan_range(node.body_begin, node.body_end, node.children, issues);
    const std::size_t node_end = node.node_end;
    nodes.push_back(std::move(node));
    return node_end;
  }

  std::string_view source_;
  std::vector<unsigned char> mask_;
};

}  // namespace

DirectiveTree scan_directives(std::string_view source) {
  return Scanner(source).run();
}

}  // namespace cid::translate
