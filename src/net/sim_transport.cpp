#include "net/sim_transport.hpp"

#include <utility>

#include "common/error.hpp"
#include "rt/world.hpp"

namespace cid::net {

void SimTransport::attach(rt::World& world) { world_ = &world; }

void SimTransport::deliver(int dest, rt::Envelope envelope) {
  CID_ASSERT(world_ != nullptr, "SimTransport::deliver before attach()");
  world_->mailbox(dest).push(std::move(envelope));
}

void SimTransport::detach() { world_ = nullptr; }

}  // namespace cid::net
