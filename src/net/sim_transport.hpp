// SimTransport — the virtual-time simulator behind the transport seam.
//
// deliver() pushes the envelope straight into the destination mailbox on
// the sending rank's thread, exactly as the pre-seam rt::World did; the
// golden fingerprints in tests/property_test.cpp pin that trace, stats and
// clock outputs stayed byte-identical.
#pragma once

#include "net/transport.hpp"

namespace cid::net {

class SimTransport final : public Transport {
 public:
  Backend kind() const noexcept override { return Backend::Sim; }

  void attach(rt::World& world) override;
  void deliver(int dest, rt::Envelope envelope) override;
  void detach() override;

 private:
  rt::World* world_ = nullptr;
};

}  // namespace cid::net
