#include "net/frame.hpp"

#include <string>

namespace cid::net {

void put_le_u64(std::byte* out, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
  }
}

std::uint64_t get_le_u64(const std::byte* in) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in[i]))
             << (8 * i);
  }
  return value;
}

namespace {

bool known_type(std::uint8_t type) noexcept {
  switch (static_cast<FrameType>(type)) {
    case FrameType::Hello:
    case FrameType::Welcome:
    case FrameType::Payload:
    case FrameType::BarrierArrive:
    case FrameType::BarrierRelease:
      return true;
  }
  return false;
}

}  // namespace

void encode_frame_header(const FrameHeader& header,
                         std::array<std::byte, kFrameHeaderBytes>& out)
    noexcept {
  put_le_u64(out.data() + 0, header.generation);
  const std::uint64_t type_word =
      static_cast<std::uint64_t>(header.type) |
      (static_cast<std::uint64_t>(header.channel) << 8);
  put_le_u64(out.data() + 8, type_word);
  put_le_u64(out.data() + 16, static_cast<std::uint64_t>(header.sender));
  put_le_u64(out.data() + 24, static_cast<std::uint64_t>(header.receiver));
  put_le_u64(out.data() + 32, static_cast<std::uint64_t>(header.tag));
  put_le_u64(out.data() + 40, header.length);
}

Result<FrameHeader> decode_frame_header(ByteSpan bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status(ErrorCode::InvalidArgument,
                  "truncated frame header: " + std::to_string(bytes.size()) +
                      " of " + std::to_string(kFrameHeaderBytes) + " bytes");
  }
  const std::uint64_t type_word = get_le_u64(bytes.data() + 8);
  const auto type_byte = static_cast<std::uint8_t>(type_word & 0xff);
  if (!known_type(type_byte) || (type_word >> 16) != 0) {
    return Status(ErrorCode::InvalidArgument,
                  "unknown frame type word " + std::to_string(type_word));
  }
  FrameHeader header;
  header.generation = get_le_u64(bytes.data() + 0);
  header.type = static_cast<FrameType>(type_byte);
  header.channel = static_cast<std::uint8_t>((type_word >> 8) & 0xff);
  header.sender = static_cast<std::int64_t>(get_le_u64(bytes.data() + 16));
  header.receiver = static_cast<std::int64_t>(get_le_u64(bytes.data() + 24));
  header.tag = static_cast<std::int64_t>(get_le_u64(bytes.data() + 32));
  header.length = get_le_u64(bytes.data() + 40);
  if (header.length > kMaxFramePayloadBytes) {
    return Status(ErrorCode::InvalidArgument,
                  "frame payload length " + std::to_string(header.length) +
                      " exceeds the " +
                      std::to_string(kMaxFramePayloadBytes) + "-byte cap");
  }
  return header;
}

Status frame_self_test() {
  const FrameHeader cases[] = {
      {0, FrameType::Hello, 0, 1, 0, 0, 0},
      {7, FrameType::Payload, 2, 3, 5, -1, 4096},
      {42, FrameType::BarrierArrive, 0, 1, 0, 0, 8},
      {42, FrameType::BarrierRelease, 0, 0, 3, 0, 8},
      {1, FrameType::Welcome, 0, 0, 2, -7, 0},
  };
  for (const FrameHeader& header : cases) {
    std::array<std::byte, kFrameHeaderBytes> wire{};
    encode_frame_header(header, wire);
    auto decoded = decode_frame_header(ByteSpan(wire.data(), wire.size()));
    if (!decoded.is_ok()) {
      return Status(ErrorCode::RuntimeFault,
                    "frame self-test: decode failed: " +
                        decoded.status().to_string());
    }
    if (!(decoded.value() == header)) {
      return Status(ErrorCode::RuntimeFault,
                    "frame self-test: round trip mismatch");
    }
  }
  // The error paths must reject rather than mis-decode.
  std::array<std::byte, kFrameHeaderBytes> wire{};
  encode_frame_header(cases[1], wire);
  if (decode_frame_header(ByteSpan(wire.data(), kFrameHeaderBytes - 1))
          .is_ok()) {
    return Status(ErrorCode::RuntimeFault,
                  "frame self-test: truncated header not rejected");
  }
  wire[8] = std::byte{0x77};  // unknown type byte
  if (decode_frame_header(ByteSpan(wire.data(), wire.size())).is_ok()) {
    return Status(ErrorCode::RuntimeFault,
                  "frame self-test: unknown type not rejected");
  }
  return Status::ok();
}

}  // namespace cid::net
