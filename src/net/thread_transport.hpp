// ThreadTransport — ranks as real std::threads on real cores.
//
// Unlike the simulator, delivery is asynchronous like a NIC: deliver()
// enqueues the envelope into the destination rank's inbox (mutex+condvar
// deque — the lock-free upgrade slots in behind the same interface) and a
// single messenger thread drains the inboxes into the mailboxes. Per-(src,
// dst) FIFO order is preserved: a sender enqueues in program order and the
// messenger drains each inbox front-to-back, so MPI non-overtaking per
// (src, tag) holds exactly as on the simulator.
//
// Wall-clock timing flows into cid::obs: the messenger records per-rank
// delivery counters and inbox-residency histograms, and rt::run wraps each
// rank in a wall-clock obs span when the transport reports wall_time().
//
// Shutdown protocol (deterministic): rt::run joins every rank thread, then
// calls detach(), which (1) marks the transport stopping, (2) wakes the
// messenger, which drains every remaining envelope before exiting, and
// (3) joins it. After detach() returns no envelope is left undelivered.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "rt/envelope.hpp"

namespace cid::net {

class ThreadTransport final : public Transport {
 public:
  Backend kind() const noexcept override { return Backend::Thread; }
  bool wall_time() const noexcept override { return true; }

  void attach(rt::World& world) override;
  void deliver(int dest, rt::Envelope envelope) override;
  void detach() override;

 private:
  /// One rank's arrival queue. Senders append under the inbox mutex; only
  /// the messenger thread removes.
  struct Inbox {
    std::mutex mutex;
    std::deque<std::pair<rt::Envelope, double>> queue;  ///< (envelope, t_in)
  };

  void messenger_main();

  rt::World* world_ = nullptr;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::thread messenger_;

  // Wakeup channel shared by all inboxes. pending_ counts undrained
  // envelopes; it is signed because the messenger may drain an envelope
  // between its inbox push and its sender's increment, making the count
  // transiently negative.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace cid::net
