// Transport backend selection: which machinery carries envelopes between
// ranks and what "time" means while it does.
//
//   sim     one-thread-per-rank virtual-time simulator (the default);
//           deterministic, golden-fingerprint pinned
//   thread  ranks on real cores, wall-clock timing, in-process inboxes
//   tcp     ranks sharded over OS processes, framed messages over sockets
//
// Selected by CID_BACKEND=sim|thread|tcp or programmatically via
// rt::RunOptions::transport. See docs/TRANSPORTS.md.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace cid::net {

enum class Backend {
  Sim = 0,
  Thread,
  Tcp,
};

std::string_view backend_name(Backend backend) noexcept;

/// Parse a backend name ("sim" / "thread" / "tcp"); nullopt when unknown.
std::optional<Backend> parse_backend(std::string_view name) noexcept;

/// Resolve CID_BACKEND (default Sim when unset/empty). Throws
/// CidError(InvalidArgument) on an unknown value — a typo must not silently
/// fall back to the simulator.
Backend backend_from_env();

/// Monotonic wall-clock seconds since an arbitrary (per-process) origin.
/// The wall-time backends feed this into obs spans and reliability timers.
double wall_seconds() noexcept;

/// Scale factor from virtual timeout seconds to wall-clock seconds used by
/// reliability deadlines on real-loss transports (CID_NET_TIMEOUT_SCALE,
/// default 1000: a 20 us virtual timeout becomes a 20 ms wall deadline).
double timeout_scale_from_env();

}  // namespace cid::net
