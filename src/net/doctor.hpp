// `cidt net doctor` — preflight diagnosis of the transport configuration:
// which backend the environment selects, whether the frame codec is
// healthy, and (when tcp is configured) the peer table and whether this
// process's port can actually be bound.
#pragma once

#include <ostream>

namespace cid::net {

/// Run every check, print a human-readable report to `out`, and return the
/// number of findings (0 = the configuration is runnable as-is).
int run_net_doctor(std::ostream& out);

}  // namespace cid::net
