#include "net/backend.hpp"

#include <chrono>
#include <cstdlib>

#include "common/error.hpp"
#include "tune/tune.hpp"

namespace cid::net {

std::string_view backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::Sim: return "sim";
    case Backend::Thread: return "thread";
    case Backend::Tcp: return "tcp";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "sim") return Backend::Sim;
  if (name == "thread") return Backend::Thread;
  if (name == "tcp") return Backend::Tcp;
  return std::nullopt;
}

Backend backend_from_env() {
  const char* value = std::getenv("CID_BACKEND");
  if (value == nullptr || value[0] == '\0') return Backend::Sim;
  const auto backend = parse_backend(value);
  CID_REQUIRE(backend.has_value(), ErrorCode::InvalidArgument,
              std::string("CID_BACKEND: unknown backend '") + value +
                  "' (want sim, thread or tcp)");
  return *backend;
}

double wall_seconds() noexcept {
  // One fixed origin per process so spans from different threads line up.
  static const auto origin = std::chrono::steady_clock::now();
  const auto elapsed = std::chrono::steady_clock::now() - origin;
  return std::chrono::duration<double>(elapsed).count();
}

double timeout_scale_from_env() {
  const char* value = std::getenv("CID_NET_TIMEOUT_SCALE");
  if (value == nullptr || value[0] == '\0') {
    // When tuning is active, an observed wall-rtt profile supplies a tighter
    // derived default than the conservative 1000x (docs/TUNING.md).
    if (tune::active()) {
      if (const auto derived = tune::Tuner::global().derived_timeout_scale()) {
        return *derived;
      }
    }
    return 1000.0;
  }
  char* end = nullptr;
  const double scale = std::strtod(value, &end);
  CID_REQUIRE(end != value && *end == '\0' && scale > 0.0,
              ErrorCode::InvalidArgument,
              std::string("CID_NET_TIMEOUT_SCALE: bad value '") + value +
                  "' (want a positive number)");
  return scale;
}

}  // namespace cid::net
