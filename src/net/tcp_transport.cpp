#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "rt/world.hpp"

namespace cid::net {

namespace {

constexpr int kConnectTimeoutMs = 15000;  ///< peer startup grace window
constexpr int kConnectRetryMs = 50;
constexpr int kPollTimeoutMs = 50;

std::uint64_t double_bits(double value) noexcept {
  return std::bit_cast<std::uint64_t>(value);
}

double bits_double(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

/// Write all of `bytes` to `fd`, retrying partial writes and EINTR.
bool write_exact(int fd, const std::byte* bytes, std::size_t size) noexcept {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n =
        ::send(fd, bytes + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `size` bytes from `fd`; false on EOF or error. Blocking:
/// called only after poll() reported the fd readable, and senders write
/// whole frames under a lock, so the remainder of a frame is always on its
/// way.
bool read_exact(int fd, std::byte* bytes, std::size_t size) noexcept {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, bytes + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Result<TcpConfig> tcp_config_from_env() {
  const char* peers_env = std::getenv("CID_NET_PEERS");
  if (peers_env == nullptr || *peers_env == '\0') {
    return Status(ErrorCode::InvalidArgument,
                  "CID_BACKEND=tcp requires CID_NET_PEERS "
                  "(\"host:port,host:port,...\", one entry per process)");
  }
  TcpConfig config;
  std::string_view rest(peers_env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status(ErrorCode::InvalidArgument,
                    "CID_NET_PEERS entry '" + std::string(entry) +
                        "' is not host:port");
    }
    TcpConfig::Peer peer;
    peer.host = std::string(entry.substr(0, colon));
    const std::string port_text(entry.substr(colon + 1));
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == port_text.c_str() || *end != '\0' || port < 1 ||
        port > 65535) {
      return Status(ErrorCode::InvalidArgument,
                    "CID_NET_PEERS entry '" + std::string(entry) +
                        "' has an invalid port");
    }
    peer.port = static_cast<std::uint16_t>(port);
    config.peers.push_back(std::move(peer));
  }
  const char* proc_env = std::getenv("CID_NET_PROC");
  if (proc_env == nullptr || *proc_env == '\0') {
    return Status(ErrorCode::InvalidArgument,
                  "CID_BACKEND=tcp requires CID_NET_PROC (this process's "
                  "index into CID_NET_PEERS)");
  }
  char* end = nullptr;
  const long proc = std::strtol(proc_env, &end, 10);
  if (end == proc_env || *end != '\0' || proc < 0 ||
      proc >= static_cast<long>(config.peers.size())) {
    return Status(ErrorCode::InvalidArgument,
                  "CID_NET_PROC must be an integer in [0, " +
                      std::to_string(config.peers.size()) + ")");
  }
  config.proc = static_cast<int>(proc);
  return config;
}

RankRange partition_ranks(int nranks, int nprocs, int proc) noexcept {
  const int base = nranks / nprocs;
  const int rem = nranks % nprocs;
  RankRange range;
  range.begin = proc * base + std::min(proc, rem);
  range.count = base + (proc < rem ? 1 : 0);
  return range;
}

TcpTransport::TcpTransport(TcpConfig config) : config_(std::move(config)) {
  CID_REQUIRE(config_.nprocs() > 0, ErrorCode::InvalidArgument,
              "TcpTransport requires at least one peer");
  CID_REQUIRE(config_.proc >= 0 && config_.proc < config_.nprocs(),
              ErrorCode::InvalidArgument,
              "TcpTransport process index out of range");
  outbound_.reserve(config_.peers.size());
  for (std::size_t p = 0; p < config_.peers.size(); ++p) {
    outbound_.push_back(std::make_unique<Outbound>());
  }
}

TcpTransport::~TcpTransport() {
  if (messenger_.joinable()) {
    stopping_.store(true, std::memory_order_release);
    messenger_.join();
  }
  close_all_sockets();
}

int TcpTransport::owner_proc(int rank) const noexcept {
  // Invert the block partition: walk the (at most nprocs) boundaries.
  for (int p = 0; p < config_.nprocs(); ++p) {
    const RankRange range = partition_ranks(nranks_, config_.nprocs(), p);
    if (rank >= range.begin && rank < range.begin + range.count) return p;
  }
  return -1;
}

void TcpTransport::attach(rt::World& world) {
  CID_REQUIRE(world_ == nullptr, ErrorCode::RuntimeFault,
              "TcpTransport is already attached to a world");
  CID_REQUIRE(world.nranks() >= config_.nprocs(), ErrorCode::InvalidArgument,
              "tcp backend: more processes (" +
                  std::to_string(config_.nprocs()) + ") than world ranks (" +
                  std::to_string(world.nranks()) + ")");
  world_ = &world;
  nranks_ = world.nranks();
  stopping_.store(false, std::memory_order_release);

  // Bind the listen socket for inbound connections from every other proc.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CID_REQUIRE(listen_fd_ >= 0, ErrorCode::RuntimeFault,
              "tcp backend: socket() failed: " +
                  std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.peers[config_.proc].port);
  CID_REQUIRE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              ErrorCode::RuntimeFault,
              "tcp backend: cannot bind port " +
                  std::to_string(config_.peers[config_.proc].port) + ": " +
                  std::string(std::strerror(errno)));
  CID_REQUIRE(::listen(listen_fd_, config_.nprocs()) == 0,
              ErrorCode::RuntimeFault,
              "tcp backend: listen() failed: " +
                  std::string(std::strerror(errno)));

  messenger_ = std::thread(&TcpTransport::messenger_main, this);

  // Rendezvous: every proc announces itself to proc 0 with the rank count
  // it was configured with; proc 0 answers each Hello with a Welcome once
  // all peers have checked in. Exercises both connection directions.
  if (config_.nprocs() == 1) return;
  if (config_.proc != 0) {
    FrameHeader hello;
    hello.type = FrameType::Hello;
    hello.generation = static_cast<std::uint64_t>(nranks_);
    hello.sender = config_.proc;
    hello.receiver = 0;
    hello.length = 0;
    send_frame(0, hello, ByteSpan());
    std::unique_lock<std::mutex> lock(control_mutex_);
    control_cv_.wait(lock, [&] {
      return welcomed_ || stopping_.load(std::memory_order_acquire);
    });
    CID_REQUIRE(welcomed_, ErrorCode::RuntimeFault,
                "tcp backend: rendezvous aborted before Welcome");
  } else {
    {
      std::unique_lock<std::mutex> lock(control_mutex_);
      control_cv_.wait(lock, [&] {
        return hellos_seen_ == config_.nprocs() - 1 ||
               stopping_.load(std::memory_order_acquire);
      });
      CID_REQUIRE(hellos_seen_ == config_.nprocs() - 1,
                  ErrorCode::RuntimeFault,
                  "tcp backend: rendezvous aborted before all Hellos");
    }
    for (int p = 1; p < config_.nprocs(); ++p) {
      FrameHeader welcome;
      welcome.type = FrameType::Welcome;
      welcome.generation = static_cast<std::uint64_t>(nranks_);
      welcome.sender = 0;
      welcome.receiver = p;
      welcome.length = 0;
      send_frame(p, welcome, ByteSpan());
    }
  }
}

int TcpTransport::outbound_fd(int proc) {
  Outbound& out = *outbound_[proc];
  // Caller must hold out.mutex.
  if (out.fd >= 0) return out.fd;
  const TcpConfig::Peer& peer = config_.peers[proc];
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_text = std::to_string(peer.port);
  CID_REQUIRE(::getaddrinfo(peer.host.c_str(), port_text.c_str(), &hints,
                            &resolved) == 0 && resolved != nullptr,
              ErrorCode::RuntimeFault,
              "tcp backend: cannot resolve peer host '" + peer.host + "'");
  int fd = -1;
  // Peers start at different times; retry refused connects for a while.
  for (int waited_ms = 0;; waited_ms += kConnectRetryMs) {
    fd = ::socket(resolved->ai_family, resolved->ai_socktype,
                  resolved->ai_protocol);
    if (fd >= 0 &&
        ::connect(fd, resolved->ai_addr, resolved->ai_addrlen) == 0) {
      break;
    }
    if (fd >= 0) ::close(fd);
    fd = -1;
    if (waited_ms >= kConnectTimeoutMs) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(kConnectRetryMs));
  }
  ::freeaddrinfo(resolved);
  CID_REQUIRE(fd >= 0, ErrorCode::RuntimeFault,
              "tcp backend: cannot connect to peer " + peer.host + ":" +
                  port_text + " within " +
                  std::to_string(kConnectTimeoutMs) + " ms");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  out.fd = fd;
  return fd;
}

void TcpTransport::send_frame(int proc, const FrameHeader& header,
                              ByteSpan body) {
  CID_ASSERT(header.length == body.size(),
             "tcp backend: frame header length does not match body");
  std::array<std::byte, kFrameHeaderBytes> wire{};
  encode_frame_header(header, wire);
  std::lock_guard<std::mutex> lock(outbound_[proc]->mutex);
  const int fd = outbound_fd(proc);
  const bool ok =
      write_exact(fd, wire.data(), wire.size()) &&
      (body.empty() || write_exact(fd, body.data(), body.size()));
  CID_REQUIRE(ok, ErrorCode::RuntimeFault,
              "tcp backend: send to proc " + std::to_string(proc) +
                  " failed: " + std::string(std::strerror(errno)));
  if (obs::enabled()) {
    obs::count("net.tcp.tx_frames", "net", config_.proc);
    obs::count("net.tcp.tx_bytes", "net", config_.proc,
               wire.size() + body.size());
  }
}

void TcpTransport::deliver(int dest, rt::Envelope envelope) {
  CID_ASSERT(world_ != nullptr, "TcpTransport::deliver before attach()");
  const int proc = owner_proc(dest);
  CID_REQUIRE(proc >= 0, ErrorCode::InvalidArgument,
              "tcp backend: deliver destination rank out of range");
  if (proc == config_.proc) {
    world_->mailbox(dest).push(std::move(envelope));
    return;
  }
  // Real loss: a dropped envelope never made it onto the wire, so there is
  // nothing to send (World discards it before calling us).
  CID_ASSERT(!envelope.faulted,
             "tcp backend: tombstones must not cross the wire");
  FrameHeader header;
  header.type = FrameType::Payload;
  header.channel = static_cast<std::uint8_t>(envelope.channel);
  header.generation = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(envelope.context));
  header.sender = envelope.src;
  header.receiver = dest;
  header.tag = envelope.tag;
  header.length = 8 + envelope.payload.size();
  ByteBuffer body(header.length);
  put_le_u64(body.data(), double_bits(envelope.available_at));
  if (!envelope.payload.empty()) {
    std::memcpy(body.data() + 8, envelope.payload.data(),
                envelope.payload.size());
  }
  send_frame(proc, header, ByteSpan(body.data(), body.size()));
}

simnet::SimTime TcpTransport::barrier_sync(simnet::SimTime local_max) {
  CID_ASSERT(world_ != nullptr, "TcpTransport::barrier_sync before attach()");
  if (config_.nprocs() == 1) return local_max;
  std::uint64_t round = 0;
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    round = barrier_round_++;
  }
  std::array<std::byte, 8> body{};
  if (config_.proc == 0) {
    // Coordinator: wait for every peer's arrival, fold in our own local
    // maximum, then release everyone with the global maximum.
    simnet::SimTime global = local_max;
    {
      std::unique_lock<std::mutex> lock(control_mutex_);
      control_cv_.wait(lock, [&] {
        return barrier_rounds_[round].arrived == config_.nprocs() - 1 ||
               stopping_.load(std::memory_order_acquire);
      });
      CID_REQUIRE(barrier_rounds_[round].arrived == config_.nprocs() - 1,
                  ErrorCode::RuntimeFault,
                  "tcp backend: barrier aborted during shutdown");
      global = std::max(global, barrier_rounds_[round].max_clock);
      barrier_rounds_.erase(round);
    }
    put_le_u64(body.data(), double_bits(global));
    for (int p = 1; p < config_.nprocs(); ++p) {
      FrameHeader release;
      release.type = FrameType::BarrierRelease;
      release.generation = round;
      release.sender = 0;
      release.receiver = p;
      release.length = body.size();
      send_frame(p, release, ByteSpan(body.data(), body.size()));
    }
    return global;
  }
  put_le_u64(body.data(), double_bits(local_max));
  FrameHeader arrive;
  arrive.type = FrameType::BarrierArrive;
  arrive.generation = round;
  arrive.sender = config_.proc;
  arrive.receiver = 0;
  arrive.length = body.size();
  send_frame(0, arrive, ByteSpan(body.data(), body.size()));
  std::unique_lock<std::mutex> lock(control_mutex_);
  control_cv_.wait(lock, [&] {
    return barrier_rounds_[round].released ||
           stopping_.load(std::memory_order_acquire);
  });
  CID_REQUIRE(barrier_rounds_[round].released, ErrorCode::RuntimeFault,
              "tcp backend: barrier aborted during shutdown");
  const simnet::SimTime global = barrier_rounds_[round].max_clock;
  barrier_rounds_.erase(round);
  return global;
}

void TcpTransport::messenger_main() {
  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(inbound_mutex_);
      for (int fd : inbound_fds_) fds.push_back({fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready <= 0) continue;
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::lock_guard<std::mutex> lock(inbound_mutex_);
        inbound_fds_.push_back(fd);
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!read_one_frame(fds[i].fd)) {
        ::close(fds[i].fd);
        std::lock_guard<std::mutex> lock(inbound_mutex_);
        std::erase(inbound_fds_, fds[i].fd);
      }
    }
  }
}

bool TcpTransport::read_one_frame(int fd) {
  std::array<std::byte, kFrameHeaderBytes> wire{};
  if (!read_exact(fd, wire.data(), wire.size())) return false;
  auto decoded = decode_frame_header(ByteSpan(wire.data(), wire.size()));
  if (!decoded.is_ok()) {
    // A malformed header means the stream is out of sync; drop the
    // connection rather than guess at a resync point.
    world_->poison();
    return false;
  }
  const FrameHeader header = decoded.value();
  ByteBuffer body(header.length);
  if (header.length > 0 &&
      !read_exact(fd, body.data(), body.size())) {
    return false;
  }
  if (obs::enabled()) {
    obs::count("net.tcp.rx_frames", "net", config_.proc);
    obs::count("net.tcp.rx_bytes", "net", config_.proc,
               wire.size() + body.size());
  }
  switch (header.type) {
    case FrameType::Hello: {
      std::lock_guard<std::mutex> lock(control_mutex_);
      if (header.generation != static_cast<std::uint64_t>(nranks_)) {
        world_->poison();  // peers disagree on the world size
        return false;
      }
      ++hellos_seen_;
      control_cv_.notify_all();
      break;
    }
    case FrameType::Welcome: {
      std::lock_guard<std::mutex> lock(control_mutex_);
      welcomed_ = true;
      control_cv_.notify_all();
      break;
    }
    case FrameType::Payload:
      handle_payload(header, ByteSpan(body.data(), body.size()));
      break;
    case FrameType::BarrierArrive: {
      std::lock_guard<std::mutex> lock(control_mutex_);
      BarrierRound& round = barrier_rounds_[header.generation];
      round.arrived += 1;
      if (body.size() >= 8) {
        round.max_clock =
            std::max(round.max_clock, bits_double(get_le_u64(body.data())));
      }
      control_cv_.notify_all();
      break;
    }
    case FrameType::BarrierRelease: {
      std::lock_guard<std::mutex> lock(control_mutex_);
      BarrierRound& round = barrier_rounds_[header.generation];
      round.released = true;
      if (body.size() >= 8) {
        round.max_clock = bits_double(get_le_u64(body.data()));
      }
      control_cv_.notify_all();
      break;
    }
  }
  return true;
}

void TcpTransport::handle_payload(const FrameHeader& header, ByteSpan body) {
  const int dest = static_cast<int>(header.receiver);
  const RankRange local =
      partition_ranks(nranks_, config_.nprocs(), config_.proc);
  if (dest < local.begin || dest >= local.begin + local.count ||
      body.size() < 8) {
    world_->poison();  // mis-routed or truncated payload frame
    return;
  }
  rt::Envelope envelope;
  envelope.src = static_cast<int>(header.sender);
  envelope.tag = static_cast<int>(header.tag);
  envelope.channel = static_cast<rt::Channel>(header.channel);
  envelope.context =
      static_cast<int>(static_cast<std::int64_t>(header.generation));
  envelope.available_at = bits_double(get_le_u64(body.data()));
  if (body.size() > 8) {
    envelope.payload = rt::Payload::copy_of(body.subspan(8));
  }
  world_->mailbox(dest).push(std::move(envelope));
}

void TcpTransport::interrupt() noexcept {
  stopping_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(control_mutex_);
  control_cv_.notify_all();
}

void TcpTransport::detach() {
  if (world_ == nullptr) return;
  // Flush barrier: nobody closes a socket until every process has finished
  // its program and written all of its frames. TCP ordering then ensures
  // every payload frame was received before the release arrived.
  if (config_.nprocs() > 1 && !world_->poisoned()) {
    barrier_sync(0.0);
  }
  stopping_.store(true, std::memory_order_release);
  control_cv_.notify_all();
  if (messenger_.joinable()) messenger_.join();
  close_all_sockets();
  world_ = nullptr;
  nranks_ = 0;
  hellos_seen_ = 0;
  welcomed_ = false;
  barrier_round_ = 0;
  barrier_rounds_.clear();
}

void TcpTransport::close_all_sockets() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& out : outbound_) {
    std::lock_guard<std::mutex> lock(out->mutex);
    if (out->fd >= 0) {
      ::close(out->fd);
      out->fd = -1;
    }
  }
  std::lock_guard<std::mutex> lock(inbound_mutex_);
  for (int fd : inbound_fds_) ::close(fd);
  inbound_fds_.clear();
}

}  // namespace cid::net
