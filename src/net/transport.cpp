#include "net/transport.hpp"

#include <utility>

#include "common/error.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"
#include "net/thread_transport.hpp"

namespace cid::net {

Transport::~Transport() = default;

std::shared_ptr<Transport> make_transport(Backend backend) {
  switch (backend) {
    case Backend::Sim:
      return std::make_shared<SimTransport>();
    case Backend::Thread:
      return std::make_shared<ThreadTransport>();
    case Backend::Tcp: {
      auto config = tcp_config_from_env();
      if (!config.is_ok()) {
        throw CidError(config.status().code(), config.status().message());
      }
      return std::make_shared<TcpTransport>(std::move(config).take());
    }
  }
  throw CidError(ErrorCode::InvalidArgument, "unknown transport backend");
}

std::shared_ptr<Transport> make_transport_from_env() {
  return make_transport(backend_from_env());
}

}  // namespace cid::net
