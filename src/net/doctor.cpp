#include "net/doctor.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "net/backend.hpp"
#include "net/frame.hpp"
#include "net/tcp_transport.hpp"

namespace cid::net {

namespace {

/// Try to bind (and immediately release) this process's listen port.
Status try_bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(ErrorCode::IoError,
                  std::string("socket() failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  const bool ok =
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
  const int bind_errno = errno;
  ::close(fd);
  if (!ok) {
    return Status(ErrorCode::IoError,
                  std::string("bind failed: ") + std::strerror(bind_errno));
  }
  return Status::ok();
}

}  // namespace

int run_net_doctor(std::ostream& out) {
  int findings = 0;
  out << "cid net doctor\n";

  // Backend selection.
  const char* backend_env = std::getenv("CID_BACKEND");
  try {
    const Backend backend = backend_from_env();
    out << "  backend        " << backend_name(backend)
        << (backend_env == nullptr || *backend_env == '\0'
                ? " (CID_BACKEND unset, default)"
                : " (CID_BACKEND)")
        << "\n";
  } catch (const CidError& error) {
    out << "  backend        FINDING: " << error.what() << "\n";
    ++findings;
  }

  // Reliability timeout mapping for real-loss transports.
  try {
    out << "  timeout scale  " << timeout_scale_from_env()
        << "x virtual->wall (CID_NET_TIMEOUT_SCALE)\n";
  } catch (const CidError& error) {
    out << "  timeout scale  FINDING: " << error.what() << "\n";
    ++findings;
  }

  // Frame codec self-test (encode/decode round trip + error paths).
  const Status frame = frame_self_test();
  if (frame.is_ok()) {
    out << "  frame codec    ok (" << kFrameHeaderBytes
        << "-byte headers round-trip; truncation and unknown types "
           "rejected)\n";
  } else {
    out << "  frame codec    FINDING: " << frame.to_string() << "\n";
    ++findings;
  }

  // TCP peer table + bound port.
  const char* peers_env = std::getenv("CID_NET_PEERS");
  if (peers_env == nullptr || *peers_env == '\0') {
    out << "  tcp peers      not configured (CID_NET_PEERS unset; "
           "sim/thread backends do not need it)\n";
    return findings;
  }
  auto config = tcp_config_from_env();
  if (!config.is_ok()) {
    out << "  tcp peers      FINDING: " << config.status().to_string()
        << "\n";
    return findings + 1;
  }
  const TcpConfig& tcp = config.value();
  out << "  tcp peers      " << tcp.nprocs() << " process"
      << (tcp.nprocs() == 1 ? "" : "es") << ", this is proc " << tcp.proc
      << " (CID_NET_PROC)\n";
  for (int p = 0; p < tcp.nprocs(); ++p) {
    out << "    proc " << p << "       " << tcp.peers[p].host << ":"
        << tcp.peers[p].port << (p == tcp.proc ? "  (self)" : "") << "\n";
  }
  const std::uint16_t port = tcp.peers[tcp.proc].port;
  const Status bound = try_bind(port);
  if (bound.is_ok()) {
    out << "  bind :" << port << "    ok (port is free)\n";
  } else {
    out << "  bind :" << port << "    FINDING: " << bound.to_string()
        << "\n";
    ++findings;
  }
  return findings;
}

}  // namespace cid::net
