#include "net/thread_transport.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "rt/world.hpp"

namespace cid::net {

void ThreadTransport::attach(rt::World& world) {
  CID_REQUIRE(world_ == nullptr, ErrorCode::RuntimeFault,
              "ThreadTransport is already attached to a world");
  world_ = &world;
  inboxes_.clear();
  for (int r = 0; r < world.nranks(); ++r) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
  pending_.store(0, std::memory_order_relaxed);
  stopping_.store(false, std::memory_order_relaxed);
  messenger_ = std::thread(&ThreadTransport::messenger_main, this);
}

void ThreadTransport::deliver(int dest, rt::Envelope envelope) {
  CID_ASSERT(world_ != nullptr, "ThreadTransport::deliver before attach()");
  CID_REQUIRE(dest >= 0 && dest < static_cast<int>(inboxes_.size()),
              ErrorCode::InvalidArgument,
              "ThreadTransport deliver destination out of range");
  {
    std::lock_guard<std::mutex> lock(inboxes_[dest]->mutex);
    inboxes_[dest]->queue.emplace_back(std::move(envelope), wall_seconds());
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section pairs with the messenger's predicate check so
  // the notification cannot slip between its check and its wait.
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_one();
}

void ThreadTransport::messenger_main() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [&] {
        return pending_.load(std::memory_order_acquire) > 0 ||
               stopping_.load(std::memory_order_acquire);
      });
    }
    std::int64_t drained = 0;
    for (std::size_t rank = 0; rank < inboxes_.size(); ++rank) {
      std::deque<std::pair<rt::Envelope, double>> batch;
      {
        std::lock_guard<std::mutex> lock(inboxes_[rank]->mutex);
        batch.swap(inboxes_[rank]->queue);
      }
      if (batch.empty()) continue;
      drained += static_cast<std::int64_t>(batch.size());
      const bool record = obs::enabled();
      for (auto& [envelope, enqueued_at] : batch) {
        if (record) {
          obs::count("net.thread.delivered", "net", static_cast<int>(rank));
          obs::observe("net.thread.inbox_seconds", "net",
                       static_cast<int>(rank),
                       wall_seconds() - enqueued_at);
        }
        world_->mailbox(static_cast<int>(rank)).push(std::move(envelope));
      }
    }
    if (drained > 0) {
      pending_.fetch_sub(drained, std::memory_order_acq_rel);
    }
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) <= 0) {
      // detach() runs after every sender thread joined, so a zero count
      // with stopping set means every inbox is drained for good.
      return;
    }
  }
}

void ThreadTransport::detach() {
  if (!messenger_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_all();
  messenger_.join();
  inboxes_.clear();
  world_ = nullptr;
}

}  // namespace cid::net
