// cid::net::Transport — the seam between the runtime's intent ("this
// envelope must reach that rank's mailbox, and the world must synchronize")
// and the machinery that carries it. rt::World routes every delivery and
// world barrier through the installed Transport instead of assuming the
// virtual-time simulator, so the same directive program can run on:
//
//   SimTransport     the one-thread-per-rank virtual-time simulator
//                    (deterministic; byte-identical to the pre-seam runtime)
//   ThreadTransport  ranks on real cores with per-rank inboxes drained by a
//                    messenger thread; wall-clock timing flows into cid::obs
//   TcpTransport     ranks sharded over OS processes, framed messages over
//                    connection-cached sockets (LAIK minimpi style)
//
// Lifecycle: rt::run resolves a Transport (RunOptions::transport or
// CID_BACKEND), constructs the World, calls attach(world) before any rank
// thread starts, and detach() after every rank thread has joined. detach()
// is the deterministic shutdown point: when it returns, every envelope
// handed to deliver() has reached its destination mailbox (or, for tcp,
// its destination process) and all transport threads are joined.
#pragma once

#include <memory>

#include "net/backend.hpp"
#include "simnet/machine_model.hpp"

namespace cid::rt {
class World;
struct Envelope;
}  // namespace cid::rt

namespace cid::net {

class Transport {
 public:
  virtual ~Transport();

  virtual Backend kind() const noexcept = 0;

  /// Timing regime: false = deterministic virtual time (bench results read
  /// from virtual clocks); true = clocks are bookkeeping and the numbers
  /// that matter are wall-clock (rt::run records wall spans into cid::obs).
  virtual bool wall_time() const noexcept { return false; }

  /// True when a fault-layer drop destroys the envelope outright instead of
  /// delivering a payload-less tombstone. Reliability protocols must then
  /// detect loss with wall-clock timers (see core/reliability.cpp).
  virtual bool real_loss() const noexcept { return false; }

  /// True when the world's ranks are split across OS processes. In-process
  /// facilities (shmem symmetric heap, MPI windows, communicator split)
  /// refuse to start on cross-process transports.
  virtual bool cross_process() const noexcept { return false; }

  /// World ranks hosted by this process: [local_rank_begin,
  /// local_rank_begin + local_rank_count). In-process transports host all.
  virtual int local_rank_begin(int nranks) const noexcept {
    (void)nranks;
    return 0;
  }
  virtual int local_rank_count(int nranks) const noexcept { return nranks; }

  /// Bind to `world` for one SPMD run: allocate inboxes, start messenger
  /// threads, perform the cross-process rendezvous. Called by rt::run
  /// before any rank thread starts.
  virtual void attach(rt::World& world) = 0;

  /// Route one envelope to `dest`'s mailbox (possibly in another process).
  /// Called on the sending rank's thread, after the World's fault-
  /// interceptor seam has run.
  virtual void deliver(int dest, rt::Envelope envelope) = 0;

  /// Cross-process reduction step of the world barrier: called once per
  /// barrier by the last locally-arriving rank with the local clock
  /// maximum; returns the global maximum. In-process transports return the
  /// input unchanged (the local maximum IS the global one).
  virtual simnet::SimTime barrier_sync(simnet::SimTime local_max) {
    return local_max;
  }

  /// Called from World::poison() (noexcept path): wake any thread blocked
  /// inside barrier_sync() so a failing world unwinds instead of hanging.
  /// In-process transports never block there, so the default is a no-op.
  virtual void interrupt() noexcept {}

  /// Deterministic shutdown: drain every in-flight delivery, join
  /// transport threads, release sockets. Called by rt::run after all rank
  /// threads joined; the World outlives the call.
  virtual void detach() = 0;
};

/// Construct a transport for `backend`. Tcp reads its peer table from
/// CID_NET_PEERS / CID_NET_PROC (see docs/TRANSPORTS.md) and throws
/// CidError(InvalidArgument) when they are missing or malformed.
std::shared_ptr<Transport> make_transport(Backend backend);

/// make_transport(backend_from_env()).
std::shared_ptr<Transport> make_transport_from_env();

}  // namespace cid::net
