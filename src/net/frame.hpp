// Wire framing for the TCP transport, in the style of LAIK's minimpi: every
// message is a fixed header of six little-endian 64-bit words followed by
// `length` payload bytes.
//
//   { generation, type, sender, receiver, tag, length }
//
//   generation  envelope context id (communicator / protocol context) for
//               payload frames; barrier generation for barrier frames;
//               expected nranks for the rendezvous handshake
//   type        low byte: FrameType; byte 1: rt::Channel for payload frames
//   sender      world rank (payload) or process index (control)
//   receiver    world rank (payload) or process index (control)
//   tag         envelope tag as two's-complement int64
//   length      payload byte count following the header
//
// The encoding is byte-order independent: words are serialized byte by byte
// little-endian, so a big-endian host produces the identical wire image.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace cid::net {

enum class FrameType : std::uint8_t {
  Hello = 0x01,           ///< rendezvous: proc -> proc 0
  Welcome = 0x02,         ///< rendezvous reply: proc 0 -> proc
  Payload = 0xdd,         ///< one rt::Envelope
  BarrierArrive = 0xaa,   ///< proc -> proc 0, payload = local max clock
  BarrierRelease = 0xab,  ///< proc 0 -> proc, payload = global max clock
};

/// Decoded header of one frame.
struct FrameHeader {
  std::uint64_t generation = 0;
  FrameType type = FrameType::Payload;
  std::uint8_t channel = 0;  ///< rt::Channel for Payload frames
  std::int64_t sender = 0;
  std::int64_t receiver = 0;
  std::int64_t tag = 0;
  std::uint64_t length = 0;

  bool operator==(const FrameHeader&) const = default;
};

inline constexpr std::size_t kFrameHeaderBytes = 6 * sizeof(std::uint64_t);

/// Little-endian u64 (de)serialization, byte by byte so the wire image is
/// identical on big-endian hosts. Shared by the header codec and the frame
/// body encodings (clock stamps travel as bit-cast u64 words).
void put_le_u64(std::byte* out, std::uint64_t value) noexcept;
std::uint64_t get_le_u64(const std::byte* in) noexcept;

/// Largest payload a frame may carry; a decoded length beyond this is
/// treated as a corrupt header rather than an allocation request.
inline constexpr std::uint64_t kMaxFramePayloadBytes = 1ull << 32;

/// Serialize `header` into exactly kFrameHeaderBytes at `out`.
void encode_frame_header(const FrameHeader& header,
                         std::array<std::byte, kFrameHeaderBytes>& out)
    noexcept;

/// Decode a header from `bytes`. Fails with InvalidArgument when the buffer
/// is shorter than a header (truncated frame), carries an unknown frame
/// type, or declares an absurd payload length.
Result<FrameHeader> decode_frame_header(ByteSpan bytes);

/// Round-trip a representative set of headers through encode/decode,
/// including the truncation and unknown-type error paths. Returns Ok when
/// the framing layer is healthy; used by `cidt net doctor`.
Status frame_self_test();

}  // namespace cid::net
