// TcpTransport — world ranks sharded over OS processes, envelopes carried
// as framed messages over connection-cached TCP sockets (LAIK minimpi
// style).
//
// Topology. CID_NET_PEERS lists one "host:port" per process, comma
// separated; CID_NET_PROC is this process's index into that list. The
// world's ranks are block-partitioned over the processes: with R ranks and
// P processes, process p hosts floor(R/P) ranks plus one of the first
// R mod P remainders. Every process runs the same binary with the same
// RunOptions, so the partition is agreed without negotiation; the
// rendezvous handshake (Hello/Welcome with proc 0) double-checks the rank
// count anyway.
//
// Connections. Directed: the pair (p -> q) gets its own socket, opened
// lazily by p on its first send to q and cached for the rest of the run.
// Outbound writes are serialized per connection by a mutex; inbound frames
// from every accepted socket are drained by a single messenger thread that
// polls the listen socket plus all accepted connections.
//
// Wire format. Each message is a frame (see net/frame.hpp). For Payload
// frames the body is the envelope's virtual available_at stamp (8 bytes,
// IEEE-754 bit pattern little-endian) followed by the payload bytes, so
// `length` = 8 + payload size. Barrier frames carry the max virtual clock
// the same way (length = 8).
//
// Semantics. wall_time: virtual clocks diverge across processes and are
// bookkeeping only. real_loss: a fault-layer drop destroys the envelope
// (no tombstone crosses the wire) — reliability protocols must use
// wall-clock deadlines (core/reliability.cpp, CID_NET_TIMEOUT_SCALE).
// cross_process: in-process facilities (shmem heap, MPI windows,
// communicator split) refuse to start.
//
// Shutdown. detach() runs one extra barrier round over the control plane,
// so every process has flushed all of its sends before anyone closes a
// socket, then stops the messenger and closes every fd.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "rt/envelope.hpp"

namespace cid::net {

/// Parsed CID_NET_PEERS / CID_NET_PROC pair.
struct TcpConfig {
  struct Peer {
    std::string host;
    std::uint16_t port = 0;
  };
  std::vector<Peer> peers;  ///< one per process, index = process id
  int proc = 0;             ///< this process's index into `peers`

  int nprocs() const noexcept { return static_cast<int>(peers.size()); }
};

/// Parse CID_NET_PEERS ("host:port,host:port,...") and CID_NET_PROC.
/// Fails with InvalidArgument when either is missing or malformed.
Result<TcpConfig> tcp_config_from_env();

/// Rank partition of `nranks` world ranks over `nprocs` processes: process
/// `proc` hosts [begin, begin + count).
struct RankRange {
  int begin = 0;
  int count = 0;
};
RankRange partition_ranks(int nranks, int nprocs, int proc) noexcept;

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpConfig config);
  ~TcpTransport() override;

  Backend kind() const noexcept override { return Backend::Tcp; }
  bool wall_time() const noexcept override { return true; }
  bool real_loss() const noexcept override { return true; }
  bool cross_process() const noexcept override { return true; }

  int local_rank_begin(int nranks) const noexcept override {
    return partition_ranks(nranks, config_.nprocs(), config_.proc).begin;
  }
  int local_rank_count(int nranks) const noexcept override {
    return partition_ranks(nranks, config_.nprocs(), config_.proc).count;
  }

  void attach(rt::World& world) override;
  void deliver(int dest, rt::Envelope envelope) override;
  simnet::SimTime barrier_sync(simnet::SimTime local_max) override;
  void interrupt() noexcept override;
  void detach() override;

 private:
  /// One cached outbound connection (this proc -> `proc`). The mutex
  /// serializes whole frames from concurrent local rank threads.
  struct Outbound {
    std::mutex mutex;
    int fd = -1;
  };

  int owner_proc(int rank) const noexcept;
  /// Connect-on-first-use; retries while the peer is still starting up.
  int outbound_fd(int proc);
  void send_frame(int proc, const FrameHeader& header, ByteSpan body);
  void messenger_main();
  /// Read and dispatch exactly one frame from `fd`; false on EOF.
  bool read_one_frame(int fd);
  void handle_payload(const FrameHeader& header, ByteSpan body);
  void close_all_sockets();

  TcpConfig config_;
  rt::World* world_ = nullptr;
  int nranks_ = 0;

  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Outbound>> outbound_;
  std::mutex inbound_mutex_;
  std::vector<int> inbound_fds_;

  std::thread messenger_;
  std::atomic<bool> stopping_{false};

  // Control-plane state fed by the messenger, consumed by attach() /
  // barrier_sync() under control_mutex_.
  std::mutex control_mutex_;
  std::condition_variable control_cv_;
  int hellos_seen_ = 0;       ///< proc 0: rendezvous Hellos received
  bool welcomed_ = false;     ///< proc != 0: Welcome received
  std::uint64_t barrier_round_ = 0;  ///< next barrier generation to use
  struct BarrierRound {
    int arrived = 0;
    simnet::SimTime max_clock = 0.0;
    bool released = false;
  };
  std::map<std::uint64_t, BarrierRound> barrier_rounds_;
};

}  // namespace cid::net
