#include "mpi/datatype.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <mutex>

#include "rt/arena.hpp"

namespace cid::mpi {

std::size_t basic_type_size(BasicType type) noexcept {
  switch (type) {
    case BasicType::Char:
    case BasicType::SignedChar:
    case BasicType::UnsignedChar:
    case BasicType::Byte:
    case BasicType::Packed:
      return 1;
    case BasicType::Short:
      return sizeof(short);
    case BasicType::Int:
    case BasicType::UnsignedInt:
      return sizeof(int);
    case BasicType::Long:
    case BasicType::UnsignedLong:
      return sizeof(long);
    case BasicType::LongLong:
      return sizeof(long long);
    case BasicType::Float:
      return sizeof(float);
    case BasicType::Double:
      return sizeof(double);
    case BasicType::LongDouble:
      return sizeof(long double);
  }
  return 1;
}

std::string_view basic_type_name(BasicType type) noexcept {
  switch (type) {
    case BasicType::Char: return "MPI_CHAR";
    case BasicType::SignedChar: return "MPI_SIGNED_CHAR";
    case BasicType::UnsignedChar: return "MPI_UNSIGNED_CHAR";
    case BasicType::Short: return "MPI_SHORT";
    case BasicType::Int: return "MPI_INT";
    case BasicType::UnsignedInt: return "MPI_UNSIGNED";
    case BasicType::Long: return "MPI_LONG";
    case BasicType::UnsignedLong: return "MPI_UNSIGNED_LONG";
    case BasicType::LongLong: return "MPI_LONG_LONG";
    case BasicType::Float: return "MPI_FLOAT";
    case BasicType::Double: return "MPI_DOUBLE";
    case BasicType::LongDouble: return "MPI_LONG_DOUBLE";
    case BasicType::Byte: return "MPI_BYTE";
    case BasicType::Packed: return "MPI_PACKED";
  }
  return "MPI_UNKNOWN";
}

struct Datatype::Impl {
  bool is_basic = true;
  BasicType basic = BasicType::Byte;
  std::vector<TypeField> fields;
  std::size_t extent = 1;
  std::size_t payload = 1;
  bool contiguous = true;
  bool committed = false;
  /// Compiled once at creation; every gather/scatter walks these runs.
  std::vector<PackRun> plan;
  /// Constant-stride plan shape (e.g. a column of doubles out of a row-major
  /// matrix): every run is `run_bytes` long and starts `run_stride` after
  /// the previous. Detected once here so gather/scatter can use a tight
  /// fixed-size-copy loop instead of iterating PackRun records.
  bool uniform_runs = false;
  std::size_t run_bytes = 0;
  std::size_t run_stride = 0;
  std::size_t run_first = 0;  ///< offset of the first run in the element
};

namespace {

/// Coalesce declaration-order fields into maximal contiguous memcpy runs.
/// Only declaration-adjacent fields may merge — the wire stores fields in
/// declaration order, so merging any other pair would reorder wire bytes.
std::vector<PackRun> compile_pack_plan(const std::vector<TypeField>& fields) {
  std::vector<PackRun> plan;
  for (const auto& field : fields) {
    const std::size_t bytes = field.block_length * basic_type_size(field.type);
    if (!plan.empty() &&
        plan.back().offset + plan.back().bytes == field.displacement) {
      plan.back().bytes += bytes;
    } else {
      plan.push_back({field.displacement, bytes});
    }
  }
  return plan;
}

/// Detected constant-stride shape of a compiled plan.
struct PlanShape {
  bool uniform = false;
  std::size_t bytes = 0;
  std::size_t stride = 0;
  std::size_t first = 0;
};

/// Detect the constant-stride shape: >= 2 runs, all the same length, offsets
/// in arithmetic progression. Offsets ascend by construction (declaration
/// order with ascending displacements is enforced at creation).
PlanShape analyze_plan_shape(const std::vector<PackRun>& plan) {
  PlanShape shape;
  if (plan.size() < 2) return shape;
  const std::size_t bytes = plan[0].bytes;
  const std::size_t stride = plan[1].offset - plan[0].offset;
  for (std::size_t i = 1; i < plan.size(); ++i) {
    if (plan[i].bytes != bytes ||
        plan[i].offset != plan[0].offset + i * stride) {
      return shape;
    }
  }
  shape.uniform = true;
  shape.bytes = bytes;
  shape.stride = stride;
  shape.first = plan[0].offset;
  return shape;
}

/// Tight strided copy loops. The fixed-size variants compile to single
/// loads/stores (no memcpy call, no per-run PackRun fetch), which is where
/// the strided-pack win comes from.
template <std::size_t kBytes>
void copy_runs_fixed(std::byte* wire, const std::byte* element,
                     std::size_t runs, std::size_t stride) {
  for (std::size_t r = 0; r < runs; ++r) {
    std::memcpy(wire, element, kBytes);
    wire += kBytes;
    element += stride;
  }
}

template <std::size_t kBytes>
void scatter_runs_fixed(std::byte* element, const std::byte* wire,
                        std::size_t runs, std::size_t stride) {
  for (std::size_t r = 0; r < runs; ++r) {
    std::memcpy(element, wire, kBytes);
    wire += kBytes;
    element += stride;
  }
}

void copy_runs(std::byte* wire, const std::byte* element, std::size_t runs,
               std::size_t bytes, std::size_t stride) {
  switch (bytes) {
    case 4: copy_runs_fixed<4>(wire, element, runs, stride); return;
    case 8: copy_runs_fixed<8>(wire, element, runs, stride); return;
    case 16: copy_runs_fixed<16>(wire, element, runs, stride); return;
    default:
      for (std::size_t r = 0; r < runs; ++r) {
        std::memcpy(wire, element, bytes);
        wire += bytes;
        element += stride;
      }
  }
}

void scatter_runs(std::byte* element, const std::byte* wire, std::size_t runs,
                  std::size_t bytes, std::size_t stride) {
  switch (bytes) {
    case 4: scatter_runs_fixed<4>(element, wire, runs, stride); return;
    case 8: scatter_runs_fixed<8>(element, wire, runs, stride); return;
    case 16: scatter_runs_fixed<16>(element, wire, runs, stride); return;
    default:
      for (std::size_t r = 0; r < runs; ++r) {
        std::memcpy(element, wire, bytes);
        wire += bytes;
        element += stride;
      }
  }
}

}  // namespace

Datatype Datatype::basic(BasicType type) {
  // One shared immutable Impl per basic type.
  static std::mutex mutex;
  static std::array<std::shared_ptr<Impl>, 14> cache;
  const auto index = static_cast<std::size_t>(type);
  std::lock_guard<std::mutex> lock(mutex);
  if (!cache[index]) {
    auto impl = std::make_shared<Impl>();
    impl->is_basic = true;
    impl->basic = type;
    impl->extent = basic_type_size(type);
    impl->payload = impl->extent;
    impl->contiguous = true;
    impl->committed = true;
    impl->plan = {{0, impl->payload}};
    cache[index] = std::move(impl);
  }
  return Datatype(cache[index]);
}

Result<Datatype> Datatype::create_struct(std::vector<TypeField> fields,
                                         std::size_t extent) {
  if (fields.empty()) {
    return Status(ErrorCode::TypeError,
                  "derived struct type needs at least one field");
  }
  if (extent == 0) {
    return Status(ErrorCode::TypeError, "derived struct extent cannot be 0");
  }
  std::size_t payload = 0;
  for (const auto& field : fields) {
    if (field.block_length == 0) {
      return Status(ErrorCode::TypeError, "field block_length cannot be 0");
    }
    if (field.type == BasicType::Packed) {
      return Status(ErrorCode::TypeError,
                    "MPI_PACKED cannot appear inside a struct type");
    }
    const std::size_t bytes = field.block_length * basic_type_size(field.type);
    if (field.displacement + bytes > extent) {
      return Status(ErrorCode::TypeError,
                    "field extends past the struct extent");
    }
    payload += bytes;
  }
  // Reject overlapping fields: sort a copy by displacement and check.
  std::vector<TypeField> sorted = fields;
  std::sort(sorted.begin(), sorted.end(),
            [](const TypeField& a, const TypeField& b) {
              return a.displacement < b.displacement;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const auto& prev = sorted[i - 1];
    const std::size_t prev_end =
        prev.displacement + prev.block_length * basic_type_size(prev.type);
    if (sorted[i].displacement < prev_end) {
      return Status(ErrorCode::TypeError, "struct fields overlap");
    }
  }
  auto impl = std::make_shared<Impl>();
  impl->is_basic = false;
  impl->fields = std::move(fields);
  impl->extent = extent;
  impl->payload = payload;
  // Contiguous = payload fills the extent starting at 0 with no holes.
  impl->contiguous = (payload == extent);
  impl->committed = false;
  impl->plan = impl->contiguous ? std::vector<PackRun>{{0, payload}}
                                : compile_pack_plan(impl->fields);
  const PlanShape shape = analyze_plan_shape(impl->plan);
  impl->uniform_runs = shape.uniform;
  impl->run_bytes = shape.bytes;
  impl->run_stride = shape.stride;
  impl->run_first = shape.first;
  return Datatype(std::move(impl));
}

void Datatype::commit() noexcept { impl_->committed = true; }
bool Datatype::committed() const noexcept { return impl_->committed; }
bool Datatype::is_basic() const noexcept { return impl_->is_basic; }

BasicType Datatype::basic_type() const {
  CID_REQUIRE(impl_->is_basic, ErrorCode::InvalidArgument,
              "basic_type() on a derived datatype");
  return impl_->basic;
}

std::size_t Datatype::extent() const noexcept { return impl_->extent; }
std::size_t Datatype::payload_size() const noexcept { return impl_->payload; }
bool Datatype::is_contiguous() const noexcept { return impl_->contiguous; }
std::size_t Datatype::field_count() const noexcept {
  return impl_->is_basic ? 1 : impl_->fields.size();
}
const std::vector<TypeField>& Datatype::fields() const noexcept {
  return impl_->fields;
}

const std::vector<PackRun>& Datatype::pack_plan() const noexcept {
  return impl_->plan;
}

void Datatype::gather_into(MutableByteSpan out, const void* base,
                           std::size_t count) const {
  CID_REQUIRE(committed(), ErrorCode::InvalidArgument,
              "datatype used before commit()");
  CID_REQUIRE(out.size() == payload_size() * count, ErrorCode::InvalidArgument,
              "gather destination size does not match datatype payload");
  const auto* src = static_cast<const std::byte*>(base);
  if (is_contiguous()) {
    // Elements are back to back: one flat copy regardless of count.
    std::memcpy(out.data(), src, out.size());
    return;
  }
  if (impl_->uniform_runs) {
    // Constant-stride plan (strided column/row extraction): one tight loop
    // per element, no per-run PackRun record walk.
    const std::size_t runs = impl_->plan.size();
    std::byte* wire = out.data();
    for (std::size_t e = 0; e < count; ++e) {
      copy_runs(wire, src + e * extent() + impl_->run_first, runs,
                impl_->run_bytes, impl_->run_stride);
      wire += runs * impl_->run_bytes;
    }
    return;
  }
  std::size_t pos = 0;
  for (std::size_t e = 0; e < count; ++e) {
    const std::byte* element = src + e * extent();
    for (const auto& run : impl_->plan) {
      std::memcpy(out.data() + pos, element + run.offset, run.bytes);
      pos += run.bytes;
    }
  }
}

ByteBuffer Datatype::gather(const void* base, std::size_t count) const {
  // Arena-recycled: at scale every send allocates here, and the matching
  // release happens when the receiving envelope's payload drops its last
  // reference.
  ByteBuffer out = rt::PayloadArena::global().acquire(payload_size() * count);
  gather_into(MutableByteSpan(out.data(), out.size()), base, count);
  return out;
}

Status Datatype::scatter(ByteSpan wire, void* base, std::size_t count) const {
  CID_REQUIRE(committed(), ErrorCode::InvalidArgument,
              "datatype used before commit()");
  if (wire.size() != payload_size() * count) {
    return Status(ErrorCode::InvalidArgument,
                  "wire buffer size does not match datatype payload: got " +
                      std::to_string(wire.size()) + ", want " +
                      std::to_string(payload_size() * count));
  }
  auto* dst = static_cast<std::byte*>(base);
  if (is_contiguous()) {
    std::memcpy(dst, wire.data(), wire.size());
    return Status::ok();
  }
  if (impl_->uniform_runs) {
    const std::size_t runs = impl_->plan.size();
    const std::byte* wire_pos = wire.data();
    for (std::size_t e = 0; e < count; ++e) {
      scatter_runs(dst + e * extent() + impl_->run_first, wire_pos, runs,
                   impl_->run_bytes, impl_->run_stride);
      wire_pos += runs * impl_->run_bytes;
    }
    return Status::ok();
  }
  std::size_t pos = 0;
  for (std::size_t e = 0; e < count; ++e) {
    std::byte* element = dst + e * extent();
    for (const auto& run : impl_->plan) {
      std::memcpy(element + run.offset, wire.data() + pos, run.bytes);
      pos += run.bytes;
    }
  }
  return Status::ok();
}

}  // namespace cid::mpi
