// miniMPI point-to-point operations: blocking and nonblocking send/receive,
// completion (wait / waitall / test), and persistent requests
// (send_init / recv_init / start) — the building blocks every directive
// lowering in cid::core targets.
#pragma once

#include <span>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "mpi/request.hpp"

namespace cid::mpi {

/// Nonblocking send of `count` elements of `dtype` at `buf` to comm rank
/// `dest`. The request is complete immediately for eager payloads; for
/// rendezvous payloads (above the model's eager threshold) its completion
/// time is the delivery time.
Request isend(const Comm& comm, const void* buf, std::size_t count,
              const Datatype& dtype, int dest, int tag);

/// Nonblocking receive of up to `capacity` elements into `buf` from comm
/// rank `source` (or kAnySource) with tag `tag` (or kAnyTag).
Request irecv(const Comm& comm, void* buf, std::size_t capacity,
              const Datatype& dtype, int source, int tag);

/// Blocking variants.
void send(const Comm& comm, const void* buf, std::size_t count,
          const Datatype& dtype, int dest, int tag);
RecvStatus recv(const Comm& comm, void* buf, std::size_t capacity,
                const Datatype& dtype, int source, int tag);

/// MPI_Wait: block until the request completes. Charges the per-call wait
/// overhead (the cost the paper's sync-consolidation analysis removes).
RecvStatus wait(Request& request);

/// Wait with a virtual-time deadline of now + `timeout`. Returns true (and
/// finalizes the request, like wait()) when the request completed by the
/// deadline. Returns false — with the clock advanced to the deadline and the
/// request cancelled — when the message is known lost (a fault-layer
/// tombstone arrived) or arrived only after the deadline. Deadlines are
/// event-driven: with no fault layer installed and no matching message ever
/// sent, this blocks exactly like wait(), because in virtual time the
/// absence of an event is unobservable.
bool wait_for(Request& request, simnet::SimTime timeout);

/// MPI_Waitall: one aggregate completion call for all requests.
void waitall(std::span<Request> requests);

/// MPI_Test: returns true (and finalizes the request) if complete.
bool test(Request& request);

/// MPI_Waitany: block until at least one request completes; returns its
/// index and nulls that entry (MPI_REQUEST_NULL). Invalid entries are
/// skipped; returns -1 when every entry is invalid.
int waitany(std::span<Request> requests);

/// MPI_Waitsome: complete every request that is already (or becomes) ready —
/// at least one — appending their indices to `ready` and nulling the
/// completed entries. Returns the count.
int waitsome(std::span<Request> requests, std::vector<int>& ready);

/// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start /
/// MPI_Startall). Directive-generated code inside a comm_parameters region
/// uses these: setup cost is paid once, each start is cheaper than a full
/// isend/irecv.
Request send_init(const Comm& comm, const void* buf, std::size_t count,
                  const Datatype& dtype, int dest, int tag);
Request recv_init(const Comm& comm, void* buf, std::size_t capacity,
                  const Datatype& dtype, int source, int tag);
void start(Request& request);
void startall(std::span<Request> requests);

/// Update the buffer binding of an INACTIVE persistent request before
/// restarting it. Models compiler-generated code that hoists argument
/// marshalling out of a loop while the loop walks through an array
/// (&buf[p] per iteration) — the datatype, peer and tag stay fixed.
void rebind_send(Request& request, const void* buf, std::size_t count);
void rebind_recv(Request& request, void* buf, std::size_t capacity);

/// MPI_Sendrecv: post the receive, inject the send, complete both (safe for
/// shift patterns that would deadlock with two blocking calls).
RecvStatus sendrecv(const Comm& comm, const void* send_buf,
                    std::size_t send_count, const Datatype& send_type,
                    int dest, int send_tag, void* recv_buf,
                    std::size_t recv_capacity, const Datatype& recv_type,
                    int source, int recv_tag);

/// MPI_Probe / MPI_Iprobe: wait for (or test) a matching message without
/// receiving it; returns its status (count in elements of `dtype`).
RecvStatus probe(const Comm& comm, int source, int tag,
                 const Datatype& dtype);
bool iprobe(const Comm& comm, int source, int tag, const Datatype& dtype,
            RecvStatus* status);

/// MPI_Barrier over the communicator.
inline void barrier(const Comm& comm) { comm.barrier(); }

// ---- Typed convenience overloads -----------------------------------------

template <typename T>
Request isend(const Comm& comm, const T* buf, std::size_t count, int dest,
              int tag) {
  return isend(comm, buf, count, datatype_of<T>(), dest, tag);
}

template <typename T>
Request irecv(const Comm& comm, T* buf, std::size_t capacity, int source,
              int tag) {
  return irecv(comm, buf, capacity, datatype_of<T>(), source, tag);
}

template <typename T>
void send(const Comm& comm, const T* buf, std::size_t count, int dest,
          int tag) {
  send(comm, buf, count, datatype_of<T>(), dest, tag);
}

template <typename T>
RecvStatus recv(const Comm& comm, T* buf, std::size_t capacity, int source,
                int tag) {
  return recv(comm, buf, capacity, datatype_of<T>(), source, tag);
}

}  // namespace cid::mpi
