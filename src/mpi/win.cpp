#include "mpi/win.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "mpi/request.hpp"
#include "rt/runtime.hpp"

namespace cid::mpi {

namespace {
/// Cross-rank state of one window, stashed in the World registry.
struct WinShared {
  std::mutex mutex;
  std::vector<void*> bases;
  std::vector<std::size_t> sizes;
  /// Latest delivery time of a put targeting each member in this epoch.
  std::vector<simnet::SimTime> incoming_max;
  int registered = 0;
};
}  // namespace

struct Win::Impl {
  Comm comm;
  std::shared_ptr<WinShared> shared;
};

Win Win::create(const Comm& comm, void* base, std::size_t bytes) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "Win::create on invalid communicator");
  CID_REQUIRE(base != nullptr || bytes == 0, ErrorCode::InvalidArgument,
              "Win::create with null base and nonzero size");
  auto& ctx = rt::current_ctx();
  auto& world = ctx.world();
  // One-sided access loads/stores the target's buffer through a shared
  // pointer table; that only exists inside one process.
  world.require_single_process("MPI windows");

  // All members call create in the same collective order, so a per-rank
  // sequence number names the same window on every member.
  const int window_id = Engine::mine().next_window_id();
  const std::string key = "mpi.win." + std::to_string(comm.context()) + "." +
                          std::to_string(window_id);

  auto shared = world.shared_object<WinShared>(key);
  const int members = comm.size();
  const int my_rank = comm.rank();
  {
    std::unique_lock<std::mutex> lock(world.global_mutex());
    {
      std::lock_guard<std::mutex> state_lock(shared->mutex);
      if (shared->bases.empty()) {
        shared->bases.resize(members, nullptr);
        shared->sizes.resize(members, 0);
        shared->incoming_max.resize(members, 0.0);
      }
      shared->bases[my_rank] = base;
      shared->sizes[my_rank] = bytes;
      ++shared->registered;
    }
    world.notify_global();
    world.wait_global(lock, [&] {
      std::lock_guard<std::mutex> state_lock(shared->mutex);
      return shared->registered >= members;
    });
  }
  comm.barrier();  // creation is synchronizing, like MPI_Win_create

  auto impl = std::make_shared<Impl>();
  impl->comm = comm;
  impl->shared = std::move(shared);
  return Win(std::move(impl));
}

void Win::put(const void* origin, std::size_t count, const Datatype& dtype,
              int target_rank, std::size_t target_disp) {
  CID_REQUIRE(valid(), ErrorCode::InvalidArgument, "put() on invalid Win");
  CID_REQUIRE(origin != nullptr, ErrorCode::InvalidArgument,
              "put() origin buffer is null");
  CID_REQUIRE(target_rank >= 0 && target_rank < impl_->comm.size(),
              ErrorCode::InvalidArgument, "put() target rank out of range");
  auto& ctx = rt::current_ctx();
  const auto& costs = ctx.model().mpi_one_sided;

  if (!dtype.is_contiguous()) {
    ctx.charge_compute(
        static_cast<simnet::SimTime>(dtype.payload_size() * count) /
        ctx.model().host.datatype_pack_bytes_per_second);
  }
  const ByteBuffer wire = dtype.gather(origin, count);

  const simnet::SimTime injection_start = ctx.clock().now();
  ctx.charge_compute(costs.injection_time(wire.size()));
  const simnet::SimTime delivery =
      std::max(costs.delivery_time(injection_start, wire.size()),
               ctx.clock().now() + costs.latency);

  std::lock_guard<std::mutex> lock(impl_->shared->mutex);
  const std::size_t target_bytes = dtype.extent() * count;
  CID_REQUIRE(target_disp + target_bytes <= impl_->shared->sizes[target_rank],
              ErrorCode::InvalidArgument,
              "put() writes past the end of the target window");
  // The target datatype mirrors the origin datatype (as the directive
  // lowering generates), so the gathered wire bytes are scattered back into
  // the same layout at the target.
  std::byte* target_base =
      static_cast<std::byte*>(impl_->shared->bases[target_rank]) + target_disp;
  const Status status =
      dtype.scatter(ByteSpan(wire.data(), wire.size()), target_base, count);
  CID_REQUIRE(status.is_ok(), ErrorCode::RuntimeFault, status.to_string());
  impl_->shared->incoming_max[target_rank] =
      std::max(impl_->shared->incoming_max[target_rank], delivery);
}

void Win::fence() {
  CID_REQUIRE(valid(), ErrorCode::InvalidArgument, "fence() on invalid Win");
  auto& ctx = rt::current_ctx();
  const auto& costs = ctx.model().mpi_one_sided;
  ctx.charge_compute(costs.waitall_base);
  impl_->comm.barrier();
  // The epoch closes only when every incoming put has landed.
  const int my_rank = impl_->comm.rank();
  std::lock_guard<std::mutex> lock(impl_->shared->mutex);
  ctx.clock().advance_to(impl_->shared->incoming_max[my_rank]);
  impl_->shared->incoming_max[my_rank] = 0.0;
}

}  // namespace cid::mpi
