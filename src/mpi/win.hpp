// miniMPI one-sided communication (MPI-2 RMA subset): window creation,
// MPI_Put, and fence synchronization — the lowering target of the directive's
// TARGET_COMM_MPI_1SIDE keyword.
#pragma once

#include <memory>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"

namespace cid::mpi {

class Win {
 public:
  Win() = default;

  /// Collective over `comm`: expose `bytes` of local memory at `base`.
  static Win create(const Comm& comm, void* base, std::size_t bytes);

  /// MPI_Put: write `count` elements of `dtype` from `origin` into the
  /// window of `target_rank` (comm rank) at byte offset `target_disp`.
  /// Must be called between two fences.
  void put(const void* origin, std::size_t count, const Datatype& dtype,
           int target_rank, std::size_t target_disp);

  /// MPI_Win_fence: collective; completes all puts of the closing epoch
  /// (both outgoing and incoming).
  void fence();

  bool valid() const noexcept { return impl_ != nullptr; }

  friend bool operator==(const Win& a, const Win& b) noexcept {
    return a.impl_ == b.impl_;
  }

 private:
  struct Impl;
  explicit Win(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

}  // namespace cid::mpi
