// miniMPI communicators: an ordered group of world ranks plus a context id
// that isolates its point-to-point traffic (the `comm.comm` objects that
// WL-LSMS passes around).
#pragma once

#include <memory>
#include <vector>

#include "rt/runtime.hpp"

namespace cid::mpi {

/// Wildcards for irecv/recv matching.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class Comm {
 public:
  /// An invalid communicator (MPI_COMM_NULL); returned by split() for
  /// MPI_UNDEFINED colors.
  Comm() = default;

  /// The world communicator of the surrounding SPMD region (context 0,
  /// identity rank mapping).
  static Comm world();

  /// My rank within this communicator.
  int rank() const;
  /// Number of members.
  int size() const noexcept;
  /// Context id (unique per communicator within a World).
  int context() const noexcept;

  /// World rank of a member. Throws on out-of-range.
  int world_rank(int comm_rank) const;
  /// Comm rank of a world rank, or -1 when not a member.
  int comm_rank_of_world(int world_rank) const noexcept;
  bool is_member(int world_rank) const noexcept {
    return comm_rank_of_world(world_rank) >= 0;
  }

  /// MPI_Comm_split: collective over *all members*. Members with the same
  /// color land in the same sub-communicator, ordered by (key, parent rank).
  /// color < 0 (MPI_UNDEFINED) yields an invalid Comm for that caller.
  Comm split(int color, int key) const;

  /// Collective barrier over the members (max-reduces their virtual clocks
  /// and charges the machine barrier cost for the group size).
  void barrier() const;

  bool valid() const noexcept { return group_ != nullptr; }

  friend bool operator==(const Comm& a, const Comm& b) noexcept {
    return a.group_ == b.group_;
  }

  /// Implementation detail (defined in comm.cpp); public only so the
  /// collective split machinery can name it.
  struct Group;

 private:
  explicit Comm(std::shared_ptr<const Group> group)
      : group_(std::move(group)) {}

  std::shared_ptr<const Group> group_;
};

}  // namespace cid::mpi
