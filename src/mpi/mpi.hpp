// Umbrella header for miniMPI.
#pragma once

#include "mpi/collectives.hpp"  // IWYU pragma: export
#include "mpi/comm.hpp"      // IWYU pragma: export
#include "mpi/datatype.hpp"  // IWYU pragma: export
#include "mpi/p2p.hpp"       // IWYU pragma: export
#include "mpi/pack.hpp"      // IWYU pragma: export
#include "mpi/request.hpp"   // IWYU pragma: export
#include "mpi/win.hpp"       // IWYU pragma: export
