#include "mpi/comm.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "net/transport.hpp"

namespace cid::mpi {

struct Comm::Group {
  int context = 0;
  std::vector<int> members;  ///< members[comm_rank] = world rank
};

namespace {

/// Collective bookkeeping shared by every communicator in one World.
struct CommRegistry {
  int next_context = 1;

  struct SplitOp {
    struct Entry {
      int color;
      int key;
      int parent_rank;
      int world_rank;
    };
    std::vector<Entry> entries;
    bool done = false;
    int fetched = 0;
    std::map<int, std::shared_ptr<const Comm::Group>> result_by_world_rank;
  };
  // Keyed by (parent context, per-parent split call index).
  std::map<std::pair<int, std::uint64_t>, SplitOp> splits;
  // Per (parent context, world rank): how many splits this rank started.
  std::map<std::pair<int, int>, std::uint64_t> split_calls;

  struct GroupBarrier {
    int arrived = 0;
    std::uint64_t generation = 0;
    simnet::SimTime max_clock = 0.0;
  };
  std::map<int, GroupBarrier> barriers;  // keyed by context
};
// Note: all registry state is protected by World::global_mutex() so waits can
// use World::wait_global() and be woken by poison().

std::shared_ptr<CommRegistry> registry(rt::World& world) {
  return world.shared_object<CommRegistry>("mpi.comm.registry");
}

}  // namespace

Comm Comm::world() {
  auto& ctx = rt::current_ctx();
  auto group = ctx.world().shared_object<const Group>("mpi.comm.world", [&] {
    Group g;
    g.context = 0;
    g.members.resize(ctx.nranks());
    for (int r = 0; r < ctx.nranks(); ++r) g.members[r] = r;
    return g;
  }());
  return Comm(std::move(group));
}

int Comm::rank() const {
  CID_REQUIRE(valid(), ErrorCode::InvalidArgument, "rank() on invalid Comm");
  const int me = rt::current_ctx().rank();
  const int comm_rank = comm_rank_of_world(me);
  CID_REQUIRE(comm_rank >= 0, ErrorCode::RuntimeFault,
              "calling rank is not a member of this communicator");
  return comm_rank;
}

int Comm::size() const noexcept {
  return group_ ? static_cast<int>(group_->members.size()) : 0;
}

int Comm::context() const noexcept { return group_ ? group_->context : -1; }

int Comm::world_rank(int comm_rank) const {
  CID_REQUIRE(valid(), ErrorCode::InvalidArgument,
              "world_rank() on invalid Comm");
  CID_REQUIRE(comm_rank >= 0 && comm_rank < size(), ErrorCode::InvalidArgument,
              "comm rank out of range");
  return group_->members[comm_rank];
}

int Comm::comm_rank_of_world(int world_rank) const noexcept {
  if (!group_) return -1;
  for (std::size_t i = 0; i < group_->members.size(); ++i) {
    if (group_->members[i] == world_rank) return static_cast<int>(i);
  }
  return -1;
}

Comm Comm::split(int color, int key) const {
  CID_REQUIRE(valid(), ErrorCode::InvalidArgument, "split() on invalid Comm");
  auto& ctx = rt::current_ctx();
  auto& world = ctx.world();
  // The split negotiation lives in the in-process registry; members hosted
  // by another process could never contribute their (color, key).
  world.require_single_process("Comm::split");
  auto reg = registry(world);

  const int me = ctx.rank();
  const int my_parent_rank = rank();
  const int members = size();

  std::unique_lock<std::mutex> lock(world.global_mutex());
  const std::uint64_t call_index =
      reg->split_calls[{group_->context, me}]++;
  const auto op_key = std::make_pair(group_->context, call_index);
  auto& op = reg->splits[op_key];
  op.entries.push_back({color, key, my_parent_rank, me});

  if (static_cast<int>(op.entries.size()) == members) {
    // Last arrival resolves the split for everyone, deterministically.
    std::sort(op.entries.begin(), op.entries.end(),
              [](const auto& a, const auto& b) {
                return std::tuple(a.color, a.key, a.parent_rank) <
                       std::tuple(b.color, b.key, b.parent_rank);
              });
    for (std::size_t i = 0; i < op.entries.size();) {
      const int current_color = op.entries[i].color;
      std::size_t j = i;
      while (j < op.entries.size() && op.entries[j].color == current_color) {
        ++j;
      }
      if (current_color >= 0) {
        auto group = std::make_shared<Group>();
        group->context = reg->next_context++;
        for (std::size_t k = i; k < j; ++k) {
          group->members.push_back(op.entries[k].world_rank);
        }
        for (std::size_t k = i; k < j; ++k) {
          op.result_by_world_rank[op.entries[k].world_rank] = group;
        }
      } else {
        for (std::size_t k = i; k < j; ++k) {
          op.result_by_world_rank[op.entries[k].world_rank] = nullptr;
        }
      }
      i = j;
    }
    op.done = true;
    world.notify_global();
  } else {
    world.wait_global(lock, [&] { return op.done; });
  }

  auto result = op.result_by_world_rank.at(me);
  if (++op.fetched == members) reg->splits.erase(op_key);
  lock.unlock();
  return Comm(std::move(result));
}

void Comm::barrier() const {
  CID_REQUIRE(valid(), ErrorCode::InvalidArgument, "barrier() on invalid Comm");
  auto& ctx = rt::current_ctx();
  auto& world = ctx.world();
  const int members = size();
  const int me = ctx.rank();
  CID_REQUIRE(is_member(me), ErrorCode::RuntimeFault,
              "barrier() caller is not a member");
  const simnet::SimTime cost = world.model().barrier_cost(members);

  if (world.transport() != nullptr && world.transport()->cross_process()) {
    if (members == world.nranks()) {
      // Full-world barrier: same max-reduce + cost arithmetic, and the
      // world barrier knows how to synchronize across processes.
      world.barrier(me, cost);
      return;
    }
    for (int member : group_->members) {
      CID_REQUIRE(world.rank_is_local(member), ErrorCode::UnsupportedTarget,
                  "sub-communicator barrier spans processes; only "
                  "process-local sub-groups are supported on the tcp "
                  "transport");
    }
  }

  auto reg = registry(world);
  std::unique_lock<std::mutex> lock(world.global_mutex());
  auto& bar = reg->barriers[group_->context];
  bar.max_clock = std::max(bar.max_clock, ctx.clock().now());
  if (++bar.arrived == members) {
    const simnet::SimTime release = bar.max_clock + cost;
    for (int member : group_->members) world.clock(member).reset(release);
    bar.arrived = 0;
    bar.max_clock = 0.0;
    ++bar.generation;
    world.notify_global();
    return;
  }
  const std::uint64_t my_generation = bar.generation;
  world.wait_global(lock, [&] { return bar.generation != my_generation; });
}

}  // namespace cid::mpi
