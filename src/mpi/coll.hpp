// cid::mpi::coll — the multi-algorithm collective engine.
//
// Every public collective in mpi/collectives.hpp forwards here; the engine
// picks an algorithm per call and runs it on the p2p layer. Selection
// precedence (resolved per call, all layers deterministic):
//
//   1. CID_COLL=<collective>:<algo>[,...] operator override (parsed once per
//      rt::run by tune::Tuner::prepare(); see tune/coll.hpp for names);
//   2. the caller's `hint` — the collective-directive lowering passes one
//      under CID_TUNE=on, computed from the site's recorded profile;
//   3. the cost model: tune::choose_collective() over (block bytes, total
//      bytes, nprocs, machine model).
//
// An override or hint that does not apply to the current shape (e.g.
// recursive-doubling allgather on a non-power-of-two group) falls through
// to the next layer. Algorithms (tune/coll.hpp tabulates the op -> algo
// map):
//
//   bcast      binomial tree | van de Geijn (binomial scatter + ring
//              allgather)
//   gather     flat fan-in | binomial tree (subtree blocks relayed upward)
//   scatter    flat fan-out | binomial tree
//   allgather  ring | recursive doubling (power-of-two groups)
//   alltoall   flat request storm | Bruck (ceil(log2 P) combined messages)
//              | pairwise exchange under a bounded request window
//   reduce     binomial tree | Rabenseifner (ring reduce-scatter + binomial
//              gather)
//   allreduce  reduce+bcast | recursive doubling | ring (reduce-scatter +
//              allgather)
//
// Every algorithm is element-equal to the flat/binomial reference paths
// (tests/collectives_test.cpp cross-checks each one), and when cid::obs is
// recording, each call emits a "coll" span named "<op>[<algo>]" plus a
// "cid.coll.calls" counter so traces name the algorithm that ran.
#pragma once

#include <optional>

#include "mpi/collectives.hpp"
#include "tune/coll.hpp"

namespace cid::mpi::coll {

using tune::CollAlgo;
using tune::CollOp;

/// Resolve the algorithm for one collective call: CID_COLL override, then
/// `hint`, then the cost model (each skipped when inapplicable to the
/// shape). Pure given the Tuner state parsed at rt::run start, so every
/// member of the group resolves identically.
CollAlgo resolve(CollOp op, std::size_t block_bytes, std::size_t total_bytes,
                 int nprocs, std::optional<CollAlgo> hint = std::nullopt);

// Engine entry points: semantics of the mpi/collectives.hpp functions, plus
// the optional algorithm hint. Root-rooted entries validate the root range;
// all entries early-out on empty payloads and single-member groups.

void bcast(const Comm& comm, void* buffer, std::size_t count,
           const Datatype& dtype, int root,
           std::optional<CollAlgo> hint = std::nullopt);

void gather(const Comm& comm, const void* send, std::size_t count,
            const Datatype& dtype, void* recv, int root,
            std::optional<CollAlgo> hint = std::nullopt);

void scatter(const Comm& comm, const void* send, std::size_t count,
             const Datatype& dtype, void* recv, int root,
             std::optional<CollAlgo> hint = std::nullopt);

void allgather(const Comm& comm, const void* send, std::size_t count,
               const Datatype& dtype, void* recv,
               std::optional<CollAlgo> hint = std::nullopt);

void alltoall(const Comm& comm, const void* send, std::size_t count,
              const Datatype& dtype, void* recv,
              std::optional<CollAlgo> hint = std::nullopt);

void reduce(const Comm& comm, const double* send, double* recv,
            std::size_t count, ReduceOp op, int root,
            std::optional<CollAlgo> hint = std::nullopt);
void reduce(const Comm& comm, const int* send, int* recv, std::size_t count,
            ReduceOp op, int root,
            std::optional<CollAlgo> hint = std::nullopt);

void allreduce(const Comm& comm, const double* send, double* recv,
               std::size_t count, ReduceOp op,
               std::optional<CollAlgo> hint = std::nullopt);
void allreduce(const Comm& comm, const int* send, int* recv,
               std::size_t count, ReduceOp op,
               std::optional<CollAlgo> hint = std::nullopt);

}  // namespace cid::mpi::coll
