#include "mpi/pack.hpp"

#include <chrono>

#include "obs/obs.hpp"
#include "rt/runtime.hpp"

namespace cid::mpi {

namespace {
void charge_pack(std::size_t bytes) {
  auto& ctx = rt::current_ctx();
  const auto& host = ctx.model().host;
  ctx.charge_compute(host.pack_call_overhead +
                     static_cast<simnet::SimTime>(bytes) /
                         host.pack_bytes_per_second);
}

/// Wall-clock timer for the host-side datatype walk. This is real host time
/// (not virtual time): it profiles the simulator's own packing cost, and it
/// never touches rank clocks, so recording cannot perturb virtual results.
class PackTimer {
 public:
  explicit PackTimer(const char* site) : site_(site) {
    if (obs::enabled()) start_ = std::chrono::steady_clock::now();
  }
  ~PackTimer() {
    if (!obs::enabled()) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double ns =
        std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(
            elapsed)
            .count();
    obs::observe("mpi.pack.wall_ns", site_, rt::current_ctx().rank(), ns);
  }
  PackTimer(const PackTimer&) = delete;
  PackTimer& operator=(const PackTimer&) = delete;

 private:
  const char* site_;
  std::chrono::steady_clock::time_point start_{};
};
}  // namespace

std::size_t pack_size(std::size_t count, const Datatype& dtype) {
  return count * dtype.payload_size();
}

void pack(const Comm& comm, const void* inbuf, std::size_t count,
          const Datatype& dtype, MutableByteSpan outbuf,
          std::size_t& position) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "pack on invalid communicator");
  CID_REQUIRE(inbuf != nullptr, ErrorCode::InvalidArgument,
              "pack input buffer is null");
  const std::size_t bytes = count * dtype.payload_size();
  CID_REQUIRE(position + bytes <= outbuf.size(), ErrorCode::InvalidArgument,
              "pack overflows the output buffer");
  // Gather straight into the caller's buffer; no wire staging copy.
  {
    PackTimer timer("pack");
    dtype.gather_into(outbuf.subspan(position, bytes), inbuf, count);
  }
  position += bytes;
  charge_pack(bytes);
}

void unpack(const Comm& comm, ByteSpan inbuf, std::size_t& position,
            void* outbuf, std::size_t count, const Datatype& dtype) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "unpack on invalid communicator");
  CID_REQUIRE(outbuf != nullptr, ErrorCode::InvalidArgument,
              "unpack output buffer is null");
  const std::size_t bytes = count * dtype.payload_size();
  CID_REQUIRE(position + bytes <= inbuf.size(), ErrorCode::InvalidArgument,
              "unpack reads past the end of the input buffer");
  Status status = Status::ok();
  {
    PackTimer timer("unpack");
    status = dtype.scatter(inbuf.subspan(position, bytes), outbuf, count);
  }
  CID_REQUIRE(status.is_ok(), ErrorCode::InvalidArgument, status.to_string());
  position += bytes;
  charge_pack(bytes);
}

}  // namespace cid::mpi
