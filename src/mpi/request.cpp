#include "mpi/request.hpp"

#include <algorithm>
#include <vector>

#include "obs/obs.hpp"
#include "rt/envelope.hpp"
#include "rt/mailbox.hpp"

namespace cid::mpi {

namespace {

/// Field-level matching for one posted receive, ignoring the fault flag
/// (used by the timed wait to spot tombstones addressed to a request).
bool envelope_fields_match(const rt::Envelope& envelope,
                           const detail::RequestImpl& request) {
  if (envelope.channel != rt::Channel::MpiPointToPoint) return false;
  if (envelope.context != request.comm.context()) return false;
  if (request.match_tag != kAnyTag && envelope.tag != request.match_tag) {
    return false;
  }
  const int src_comm_rank = request.comm.comm_rank_of_world(envelope.src);
  if (src_comm_rank < 0) return false;  // not a member of this communicator
  if (request.match_source != kAnySource &&
      src_comm_rank != request.match_source) {
    return false;
  }
  return true;
}

/// Matching predicate for one posted receive. Tombstones (dropped messages)
/// never match: plain MPI has no recovery protocol, so a lost message simply
/// never arrives.
bool envelope_matches(const rt::Envelope& envelope,
                      const detail::RequestImpl& request) {
  if (envelope.faulted) return false;
  return envelope_fields_match(envelope, request);
}

/// Structured key admitting the envelopes `envelope_fields_match` accepts for
/// `request`, up to communicator membership (which only the residual can
/// check when the source is a wildcard). match_source is a comm rank; the
/// wire carries world ranks, so exact sources are translated here.
rt::MatchKey key_for(const detail::RequestImpl& request,
                     rt::FaultFilter faults) {
  rt::MatchKey key;
  key.channel = rt::Channel::MpiPointToPoint;
  key.context = request.comm.context();
  key.src = request.match_source == kAnySource
                ? rt::kMatchAny
                : request.comm.world_rank(request.match_source);
  key.tag = request.match_tag == kAnyTag ? rt::kMatchAny : request.match_tag;
  key.faults = faults;
  return key;
}

/// Keys of every posted incomplete receive, for indexed mailbox matching.
std::vector<rt::MatchKey> posted_keys(
    const std::vector<std::shared_ptr<detail::RequestImpl>>& posted) {
  std::vector<rt::MatchKey> keys;
  keys.reserve(posted.size());
  for (const auto& request : posted) {
    if (!request->complete) {
      keys.push_back(key_for(*request, rt::FaultFilter::Clean));
    }
  }
  return keys;
}

/// When every key pins (src, tag), the residual re-scan of the posted list
/// is redundant: an envelope admitted by an exact key already field-matches
/// the (incomplete) receive that produced the key — same channel, context,
/// source and tag, and membership holds because the key's src came through
/// the receive's own communicator. Skipping it turns the flat fan-in
/// pattern (a root waiting on P-1 exact receives) from O(P^3) envelope
/// matching into O(P^2). Wildcard receives keep the residual: kMatchAny
/// admits envelopes from ranks outside the receive's communicator.
bool all_exact(const std::vector<rt::MatchKey>& keys) noexcept {
  for (const auto& key : keys) {
    if (!key.exact()) return false;
  }
  return true;
}

}  // namespace

Engine& Engine::mine() {
  auto& ctx = rt::current_ctx();
  auto engines =
      ctx.world().shared_object<std::vector<Engine>>("mpi.engines",
                                                     ctx.nranks());
  return (*engines)[ctx.rank()];
}

void Engine::post_recv(const std::shared_ptr<detail::RequestImpl>& request) {
  request->post_order = next_post_order_++;
  posted_.push_back(request);
}

void Engine::deliver(rt::RankCtx& ctx, detail::RequestImpl& request,
                     const rt::Envelope& envelope) {
  const std::size_t element_bytes = request.dtype.payload_size();
  const std::size_t wire_bytes = envelope.payload.size();
  CID_REQUIRE(element_bytes > 0 && wire_bytes % element_bytes == 0,
              ErrorCode::RuntimeFault,
              "incoming message of " + std::to_string(wire_bytes) +
                  " bytes is not a whole number of " +
                  std::to_string(element_bytes) + "-byte elements");
  const std::size_t count = wire_bytes / element_bytes;
  CID_REQUIRE(count <= request.recv_capacity, ErrorCode::RuntimeFault,
              "message truncation: incoming " + std::to_string(count) +
                  " elements exceed posted capacity " +
                  std::to_string(request.recv_capacity));

  const Status scatter_status = request.dtype.scatter(
      ByteSpan(envelope.payload.data(), wire_bytes), request.recv_buf, count);
  CID_REQUIRE(scatter_status.is_ok(), ErrorCode::RuntimeFault,
              scatter_status.to_string());
  if (!request.dtype.is_contiguous()) {
    // Engine walks the derived layout on delivery instead of a flat copy.
    ctx.charge_compute(static_cast<simnet::SimTime>(wire_bytes) /
                       ctx.model().host.datatype_pack_bytes_per_second);
  }

  request.status.source = request.comm.comm_rank_of_world(envelope.src);
  request.status.tag = envelope.tag;
  request.status.count = count;
  request.complete_at = envelope.available_at;
  request.complete = true;
  request.active = false;
  if (obs::enabled()) {
    obs::count("mpi.match.messages", "engine", ctx.rank());
    obs::count("mpi.match.bytes", "engine", ctx.rank(), wire_bytes);
  }
}

void Engine::progress(rt::RankCtx& ctx) {
  // Message-driven matching, like an MPI progress engine: take arriving
  // envelopes one at a time (in arrival order) and hand each to the FIRST
  // posted incomplete receive it matches. Extracting the envelope and
  // choosing its receive atomically (per envelope) avoids the race where a
  // message arriving mid-sweep is claimed by a later posted receive after
  // an earlier matching receive already scanned an empty queue.
  const rt::Mailbox::Residual residual = [this](const rt::Envelope& e) {
    for (const auto& posted : posted_) {
      if (!posted->complete && envelope_matches(e, *posted)) return true;
    }
    return false;
  };
  for (;;) {
    const std::vector<rt::MatchKey> keys = posted_keys(posted_);
    if (keys.empty()) break;
    auto envelope = ctx.mailbox().try_extract(
        keys, all_exact(keys) ? nullptr : &residual);
    if (!envelope) break;
    for (auto& posted : posted_) {
      if (!posted->complete && envelope_matches(*envelope, *posted)) {
        deliver(ctx, *posted, *envelope);
        break;
      }
    }
  }
  posted_.erase(std::remove_if(posted_.begin(), posted_.end(),
                               [](const auto& r) { return r->complete; }),
                posted_.end());
}

void Engine::wait_any_progress(rt::RankCtx& ctx) {
  const std::vector<rt::MatchKey> keys = posted_keys(posted_);
  const rt::Mailbox::Residual residual = [this](const rt::Envelope& e) {
    for (const auto& posted : posted_) {
      if (!posted->complete && envelope_matches(e, *posted)) return true;
    }
    return false;
  };
  ctx.mailbox().wait_present(keys, all_exact(keys) ? nullptr : &residual);
  progress(ctx);
}

bool Engine::wait_complete_for(
    rt::RankCtx& ctx, const std::shared_ptr<detail::RequestImpl>& request,
    simnet::SimTime deadline) {
  for (;;) {
    progress(ctx);
    if (request->complete) break;
    // A tombstone addressed to this request means its message was dropped:
    // the virtual-time timer fires at the deadline.
    const rt::MatchKey tombstone_key =
        key_for(*request, rt::FaultFilter::Faulted);
    const rt::Mailbox::Residual fields_residual = [&](const rt::Envelope& e) {
      return envelope_fields_match(e, *request);
    };
    auto tombstone = ctx.mailbox().try_extract(
        std::span<const rt::MatchKey>(&tombstone_key, 1),
        tombstone_key.exact() ? nullptr : &fields_residual);
    if (tombstone) {
      posted_.erase(std::remove(posted_.begin(), posted_.end(), request),
                    posted_.end());
      request->active = false;
      ctx.clock().advance_to(deadline);
      return false;
    }
    std::vector<rt::MatchKey> keys = posted_keys(posted_);
    keys.push_back(tombstone_key);
    const rt::Mailbox::Residual residual = [&](const rt::Envelope& e) {
      if (e.faulted) return envelope_fields_match(e, *request);
      for (const auto& posted : posted_) {
        if (!posted->complete && envelope_matches(e, *posted)) return true;
      }
      return false;
    };
    ctx.mailbox().wait_present(keys, all_exact(keys) ? nullptr : &residual);
  }
  if (request->complete_at <= deadline) return true;
  // The payload landed, but only after the deadline: the timer fired first.
  ctx.clock().advance_to(deadline);
  return false;
}

void Engine::wait_complete(
    rt::RankCtx& ctx, const std::shared_ptr<detail::RequestImpl>& request) {
  if ((request->kind == detail::ReqKind::PersistentSend ||
       request->kind == detail::ReqKind::PersistentRecv) &&
      !request->active && !request->complete) {
    return;  // MPI: waiting on an inactive persistent request is a no-op
  }
  for (;;) {
    progress(ctx);
    if (request->complete) return;
    // Block until something that could complete ANY posted receive arrives,
    // then re-run ordered matching. (Send requests complete at creation, so
    // reaching here means `request` is a posted receive.)
    const std::vector<rt::MatchKey> keys = posted_keys(posted_);
    const rt::Mailbox::Residual residual = [this](const rt::Envelope& e) {
      for (const auto& posted : posted_) {
        if (!posted->complete && envelope_matches(e, *posted)) return true;
      }
      return false;
    };
    ctx.mailbox().wait_present(keys, all_exact(keys) ? nullptr : &residual);
  }
}

}  // namespace cid::mpi
