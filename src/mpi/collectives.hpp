// miniMPI collectives, built on the point-to-point layer with the classical
// algorithms (binomial trees, ring allgather, pairwise alltoall) so their
// virtual-time cost reflects real implementations. These are the lowering
// targets of the collective directive extension (the paper's Section V
// future work).
#pragma once

#include <functional>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"

namespace cid::mpi {

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { Sum, Min, Max, Prod };

/// MPI_Bcast: binomial tree from `root`.
void bcast(const Comm& comm, void* buffer, std::size_t count,
           const Datatype& dtype, int root);

/// MPI_Gather: every rank contributes `count` elements; root receives
/// size*count into `recv` (rank i's block at offset i*count). `recv` may be
/// null on non-root ranks.
void gather(const Comm& comm, const void* send, std::size_t count,
            const Datatype& dtype, void* recv, int root);

/// MPI_Scatter: root holds size*count elements in `send` (block i to rank
/// i); every rank receives `count` into `recv`. `send` may be null on
/// non-root ranks.
void scatter(const Comm& comm, const void* send, std::size_t count,
             const Datatype& dtype, void* recv, int root);

/// MPI_Allgather: ring algorithm; `recv` holds size*count elements.
void allgather(const Comm& comm, const void* send, std::size_t count,
               const Datatype& dtype, void* recv);

/// MPI_Alltoall: pairwise exchange; `send`/`recv` hold size*count elements
/// (block j of `send` goes to rank j).
void alltoall(const Comm& comm, const void* send, std::size_t count,
              const Datatype& dtype, void* recv);

/// MPI_Reduce over doubles or ints (binomial tree). `recv` may alias `send`
/// on the root; may be null elsewhere.
void reduce(const Comm& comm, const double* send, double* recv,
            std::size_t count, ReduceOp op, int root);
void reduce(const Comm& comm, const int* send, int* recv, std::size_t count,
            ReduceOp op, int root);

/// MPI_Allreduce = reduce + bcast.
void allreduce(const Comm& comm, const double* send, double* recv,
               std::size_t count, ReduceOp op);
void allreduce(const Comm& comm, const int* send, int* recv,
               std::size_t count, ReduceOp op);

// Typed conveniences for basic element types.
template <typename T>
void bcast(const Comm& comm, T* buffer, std::size_t count, int root) {
  bcast(comm, buffer, count, datatype_of<T>(), root);
}
template <typename T>
void gather(const Comm& comm, const T* send, std::size_t count, T* recv,
            int root) {
  gather(comm, send, count, datatype_of<T>(), recv, root);
}
template <typename T>
void scatter(const Comm& comm, const T* send, std::size_t count, T* recv,
             int root) {
  scatter(comm, send, count, datatype_of<T>(), recv, root);
}
template <typename T>
void allgather(const Comm& comm, const T* send, std::size_t count, T* recv) {
  allgather(comm, send, count, datatype_of<T>(), recv);
}
template <typename T>
void alltoall(const Comm& comm, const T* send, std::size_t count, T* recv) {
  alltoall(comm, send, count, datatype_of<T>(), recv);
}

}  // namespace cid::mpi
