// MPI_Pack / MPI_Unpack: the explicit marshalling API the original WL-LSMS
// single-atom-data transfer uses (paper Listing 4). Each call charges the
// per-call overhead plus a streaming copy cost, which is exactly the cost the
// directive's derived-datatype path avoids.
#pragma once

#include "common/bytes.hpp"
#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"

namespace cid::mpi {

/// Bytes needed to pack `count` elements of `dtype` (MPI_Pack_size).
std::size_t pack_size(std::size_t count, const Datatype& dtype);

/// Append `count` elements at `inbuf` to `outbuf` at `position`; advances
/// `position`. Throws on overflow of `outbuf`.
void pack(const Comm& comm, const void* inbuf, std::size_t count,
          const Datatype& dtype, MutableByteSpan outbuf,
          std::size_t& position);

/// Extract `count` elements from `inbuf` at `position` into `outbuf`;
/// advances `position`. Throws on underflow of `inbuf`.
void unpack(const Comm& comm, ByteSpan inbuf, std::size_t& position,
            void* outbuf, std::size_t count, const Datatype& dtype);

/// Typed conveniences.
template <typename T>
void pack(const Comm& comm, const T* inbuf, std::size_t count,
          MutableByteSpan outbuf, std::size_t& position) {
  pack(comm, inbuf, count, datatype_of<T>(), outbuf, position);
}

template <typename T>
void unpack(const Comm& comm, ByteSpan inbuf, std::size_t& position,
            T* outbuf, std::size_t count) {
  unpack(comm, inbuf, position, outbuf, count, datatype_of<T>());
}

}  // namespace cid::mpi
