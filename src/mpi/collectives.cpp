// The public collective entry points forward to the cid::mpi::coll engine
// (mpi/coll.hpp), which validates arguments, early-outs trivial shapes, and
// picks an algorithm per call (CID_COLL override > caller hint > cost
// model). Directive lowerings that carry a tune-steered hint call the
// coll:: entries directly; these wrappers pass no hint.
#include "mpi/collectives.hpp"

#include "mpi/coll.hpp"

namespace cid::mpi {

void bcast(const Comm& comm, void* buffer, std::size_t count,
           const Datatype& dtype, int root) {
  coll::bcast(comm, buffer, count, dtype, root);
}

void gather(const Comm& comm, const void* send, std::size_t count,
            const Datatype& dtype, void* recv, int root) {
  coll::gather(comm, send, count, dtype, recv, root);
}

void scatter(const Comm& comm, const void* send, std::size_t count,
             const Datatype& dtype, void* recv, int root) {
  coll::scatter(comm, send, count, dtype, recv, root);
}

void allgather(const Comm& comm, const void* send, std::size_t count,
               const Datatype& dtype, void* recv) {
  coll::allgather(comm, send, count, dtype, recv);
}

void alltoall(const Comm& comm, const void* send, std::size_t count,
              const Datatype& dtype, void* recv) {
  coll::alltoall(comm, send, count, dtype, recv);
}

void reduce(const Comm& comm, const double* send, double* recv,
            std::size_t count, ReduceOp op, int root) {
  coll::reduce(comm, send, recv, count, op, root);
}
void reduce(const Comm& comm, const int* send, int* recv, std::size_t count,
            ReduceOp op, int root) {
  coll::reduce(comm, send, recv, count, op, root);
}

void allreduce(const Comm& comm, const double* send, double* recv,
               std::size_t count, ReduceOp op) {
  coll::allreduce(comm, send, recv, count, op);
}
void allreduce(const Comm& comm, const int* send, int* recv,
               std::size_t count, ReduceOp op) {
  coll::allreduce(comm, send, recv, count, op);
}

}  // namespace cid::mpi
