#include "mpi/collectives.hpp"

#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "mpi/p2p.hpp"

namespace cid::mpi {

namespace {

constexpr int kCollectiveTag = 3000;

/// Rank relative to the root (so trees can always be rooted at 0).
int relative(int rank, int root, int size) {
  return (rank - root + size) % size;
}
int absolute(int rel, int root, int size) { return (rel + root) % size; }

template <typename T>
void apply_op(ReduceOp op, const T* in, T* inout, std::size_t count) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < count; ++i) inout[i] += in[i];
      return;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < count; ++i) {
        if (in[i] < inout[i]) inout[i] = in[i];
      }
      return;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < count; ++i) {
        if (in[i] > inout[i]) inout[i] = in[i];
      }
      return;
    case ReduceOp::Prod:
      for (std::size_t i = 0; i < count; ++i) inout[i] *= in[i];
      return;
  }
}

/// Binomial-tree reduce implementation shared by the typed overloads.
template <typename T>
void reduce_impl(const Comm& comm, const T* send, T* recv, std::size_t count,
                 ReduceOp op, int root) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "reduce on invalid communicator");
  const int size = comm.size();
  const int me = comm.rank();
  const int rel = relative(me, root, size);

  std::vector<T> accumulator(send, send + count);
  std::vector<T> incoming(count);

  // Binomial tree: in round k, relative ranks with bit k set send their
  // partial result to (rel - 2^k) and leave.
  for (int mask = 1; mask < size; mask <<= 1) {
    if ((rel & mask) != 0) {
      const int dest = absolute(rel - mask, root, size);
      mpi::send(comm, accumulator.data(), count, datatype_of<T>(), dest,
                kCollectiveTag);
      return;  // non-root recv buffers are left untouched
    }
    if (rel + mask < size) {
      const int source = absolute(rel + mask, root, size);
      mpi::recv(comm, incoming.data(), count, datatype_of<T>(), source,
                kCollectiveTag);
      apply_op(op, incoming.data(), accumulator.data(), count);
    }
  }
  CID_REQUIRE(me == root, ErrorCode::RuntimeFault,
              "reduce tree terminated on a non-root rank");
  CID_REQUIRE(recv != nullptr, ErrorCode::InvalidArgument,
              "reduce root requires a receive buffer");
  std::memcpy(recv, accumulator.data(), count * sizeof(T));
}

}  // namespace

void bcast(const Comm& comm, void* buffer, std::size_t count,
           const Datatype& dtype, int root) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "bcast on invalid communicator");
  CID_REQUIRE(root >= 0 && root < comm.size(), ErrorCode::InvalidArgument,
              "bcast root out of range");
  const int size = comm.size();
  if (size == 1) return;
  const int me = comm.rank();
  const int rel = relative(me, root, size);

  // Classic binomial tree: climb masks until my receive bit, take the
  // payload from my parent, then forward to children at all lower masks.
  int mask = 1;
  while (mask < size) {
    if ((rel & mask) != 0) {
      const int source = absolute(rel - mask, root, size);
      mpi::recv(comm, buffer, count, dtype, source, kCollectiveTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      const int dest = absolute(rel + mask, root, size);
      mpi::send(comm, buffer, count, dtype, dest, kCollectiveTag);
    }
    mask >>= 1;
  }
}

void gather(const Comm& comm, const void* send, std::size_t count,
            const Datatype& dtype, void* recv, int root) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "gather on invalid communicator");
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  if (me == root) {
    CID_REQUIRE(recv != nullptr, ErrorCode::InvalidArgument,
                "gather root requires a receive buffer");
    auto* out = static_cast<std::byte*>(recv);
    // Root's own block.
    std::memcpy(out + static_cast<std::size_t>(me) * block, send, block);
    // Flat gather with nonblocking receives + one Waitall.
    std::vector<Request> requests;
    requests.reserve(static_cast<std::size_t>(size - 1));
    for (int r = 0; r < size; ++r) {
      if (r == me) continue;
      requests.push_back(irecv(comm,
                               out + static_cast<std::size_t>(r) * block,
                               count, dtype, r, kCollectiveTag));
    }
    waitall(requests);
  } else {
    mpi::send(comm, send, count, dtype, root, kCollectiveTag);
  }
}

void scatter(const Comm& comm, const void* send, std::size_t count,
             const Datatype& dtype, void* recv, int root) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "scatter on invalid communicator");
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  if (me == root) {
    CID_REQUIRE(send != nullptr, ErrorCode::InvalidArgument,
                "scatter root requires a send buffer");
    const auto* in = static_cast<const std::byte*>(send);
    std::vector<Request> requests;
    for (int r = 0; r < size; ++r) {
      if (r == me) {
        std::memcpy(recv, in + static_cast<std::size_t>(r) * block, block);
        continue;
      }
      requests.push_back(isend(comm,
                               in + static_cast<std::size_t>(r) * block,
                               count, dtype, r, kCollectiveTag));
    }
    waitall(requests);
  } else {
    mpi::recv(comm, recv, count, dtype, root, kCollectiveTag);
  }
}

void allgather(const Comm& comm, const void* send, std::size_t count,
               const Datatype& dtype, void* recv) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "allgather on invalid communicator");
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  auto* out = static_cast<std::byte*>(recv);
  std::memcpy(out + static_cast<std::size_t>(me) * block, send, block);
  if (size == 1) return;

  // Ring: in step s, send the block received in step s-1 to the right
  // neighbour and receive a new block from the left neighbour.
  const int right = (me + 1) % size;
  const int left = (me - 1 + size) % size;
  int have = me;  // block index most recently available
  for (int step = 0; step < size - 1; ++step) {
    const int incoming_index = (have - 1 + size) % size;
    auto recv_req =
        irecv(comm, out + static_cast<std::size_t>(incoming_index) * block,
              count, dtype, left, kCollectiveTag);
    auto send_req =
        isend(comm, out + static_cast<std::size_t>(have) * block, count,
              dtype, right, kCollectiveTag);
    wait(recv_req);
    wait(send_req);
    have = incoming_index;
  }
}

void alltoall(const Comm& comm, const void* send, std::size_t count,
              const Datatype& dtype, void* recv) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "alltoall on invalid communicator");
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  const auto* in = static_cast<const std::byte*>(send);
  auto* out = static_cast<std::byte*>(recv);

  // Self block.
  std::memcpy(out + static_cast<std::size_t>(me) * block,
              in + static_cast<std::size_t>(me) * block, block);
  // Post everything nonblocking, one Waitall (flat pairwise exchange).
  std::vector<Request> requests;
  requests.reserve(2 * static_cast<std::size_t>(size - 1));
  for (int offset = 1; offset < size; ++offset) {
    const int peer = (me + offset) % size;
    requests.push_back(irecv(comm,
                             out + static_cast<std::size_t>(peer) * block,
                             count, dtype, peer, kCollectiveTag));
  }
  for (int offset = 1; offset < size; ++offset) {
    const int peer = (me + offset) % size;
    requests.push_back(isend(comm,
                             in + static_cast<std::size_t>(peer) * block,
                             count, dtype, peer, kCollectiveTag));
  }
  waitall(requests);
}

void reduce(const Comm& comm, const double* send, double* recv,
            std::size_t count, ReduceOp op, int root) {
  reduce_impl(comm, send, recv, count, op, root);
}
void reduce(const Comm& comm, const int* send, int* recv, std::size_t count,
            ReduceOp op, int root) {
  reduce_impl(comm, send, recv, count, op, root);
}

void allreduce(const Comm& comm, const double* send, double* recv,
               std::size_t count, ReduceOp op) {
  reduce(comm, send, recv, count, op, 0);
  bcast(comm, recv, count, datatype_of<double>(), 0);
}
void allreduce(const Comm& comm, const int* send, int* recv,
               std::size_t count, ReduceOp op) {
  reduce(comm, send, recv, count, op, 0);
  bcast(comm, recv, count, datatype_of<int>(), 0);
}

}  // namespace cid::mpi
