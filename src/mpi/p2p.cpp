#include "mpi/p2p.hpp"

#include <algorithm>
#include <array>

#include "rt/envelope.hpp"
#include "rt/sched.hpp"

namespace cid::mpi {

namespace {

using detail::ReqKind;
using detail::RequestImpl;

const simnet::PathCosts& path(const rt::RankCtx& ctx) {
  return ctx.model().mpi_two_sided;
}

void validate_send_args(const Comm& comm, const void* buf, int dest,
                        const Datatype& dtype) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "send on invalid communicator");
  CID_REQUIRE(buf != nullptr, ErrorCode::InvalidArgument,
              "send buffer is null");
  CID_REQUIRE(dest >= 0 && dest < comm.size(), ErrorCode::InvalidArgument,
              "send destination rank out of range");
  CID_REQUIRE(dtype.committed(), ErrorCode::InvalidArgument,
              "send datatype not committed");
}

void validate_recv_args(const Comm& comm, const void* buf, int source,
                        const Datatype& dtype) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "recv on invalid communicator");
  CID_REQUIRE(buf != nullptr, ErrorCode::InvalidArgument,
              "recv buffer is null");
  CID_REQUIRE(source == kAnySource || (source >= 0 && source < comm.size()),
              ErrorCode::InvalidArgument, "recv source rank out of range");
  CID_REQUIRE(dtype.committed(), ErrorCode::InvalidArgument,
              "recv datatype not committed");
}

/// Shared injection path for isend and persistent-send start.
void inject(rt::RankCtx& ctx, RequestImpl& request, const void* buf,
            std::size_t count, const Datatype& dtype, const Comm& comm,
            int dest, int tag, simnet::SimTime injection_overhead) {
  const auto& costs = path(ctx);
  if (!dtype.is_contiguous()) {
    // The engine gathers the derived layout into the wire buffer.
    ctx.charge_compute(
        static_cast<simnet::SimTime>(dtype.payload_size() * count) /
        ctx.model().host.datatype_pack_bytes_per_second);
  }
  ByteBuffer payload = dtype.gather(buf, count);
  const std::size_t bytes = payload.size();

  const simnet::SimTime injection_start = ctx.clock().now();
  ctx.charge_compute(injection_overhead + costs.per_message_gap +
                     static_cast<simnet::SimTime>(bytes) /
                         costs.injection_bytes_per_second);
  // Delivery: wire pipeline from injection start, but never before the last
  // byte left the sender.
  const simnet::SimTime delivery =
      std::max(costs.delivery_time(injection_start, bytes),
               ctx.clock().now() + costs.latency);

  rt::Envelope envelope;
  envelope.src = ctx.rank();  // world rank
  envelope.tag = tag;
  envelope.channel = rt::Channel::MpiPointToPoint;
  envelope.context = comm.context();
  // Wrap once; fault-layer duplicates and retransmissions alias these bytes.
  envelope.payload = rt::Payload(std::move(payload));
  envelope.available_at = delivery;
  // Through the world's delivery seam so an installed fault interceptor can
  // drop / delay / duplicate the message.
  ctx.world().deliver(comm.world_rank(dest), std::move(envelope));

  request.complete = true;
  request.active = false;
  // Eager sends complete locally at injection; rendezvous sends cannot
  // complete before the receiver shows up, approximated by delivery time.
  request.complete_at = (bytes > costs.eager_threshold_bytes)
                            ? delivery
                            : ctx.clock().now();
}

std::shared_ptr<RequestImpl> make_recv_impl(const Comm& comm, void* buf,
                                            std::size_t capacity,
                                            const Datatype& dtype, int source,
                                            int tag, ReqKind kind) {
  auto impl = std::make_shared<RequestImpl>();
  impl->kind = kind;
  impl->recv_buf = buf;
  impl->recv_capacity = capacity;
  impl->dtype = dtype;
  impl->match_source = source;
  impl->match_tag = tag;
  impl->comm = comm;
  return impl;
}

/// Finish one completed request on the calling rank: advance the clock to
/// the message availability time and deactivate.
void finalize(rt::RankCtx& ctx, RequestImpl& request) {
  ctx.clock().advance_to(request.complete_at);
  if (request.kind == ReqKind::Send || request.kind == ReqKind::Recv) {
    // One-shot requests stay complete; persistent ones may be restarted.
  }
  request.active = false;
}

}  // namespace

Request isend(const Comm& comm, const void* buf, std::size_t count,
              const Datatype& dtype, int dest, int tag) {
  auto& ctx = rt::current_ctx();
  validate_send_args(comm, buf, dest, dtype);
  auto impl = std::make_shared<RequestImpl>();
  impl->kind = ReqKind::Send;
  inject(ctx, *impl, buf, count, dtype, comm, dest, tag,
         path(ctx).send_overhead);
  return RequestAccess::wrap(std::move(impl));
}

Request irecv(const Comm& comm, void* buf, std::size_t capacity,
              const Datatype& dtype, int source, int tag) {
  auto& ctx = rt::current_ctx();
  validate_recv_args(comm, buf, source, dtype);
  ctx.charge_compute(path(ctx).recv_overhead);
  auto impl =
      make_recv_impl(comm, buf, capacity, dtype, source, tag, ReqKind::Recv);
  impl->active = true;
  auto& engine = Engine::mine();
  engine.post_recv(impl);
  engine.progress(ctx);  // cheap opportunistic match
  return RequestAccess::wrap(std::move(impl));
}

void send(const Comm& comm, const void* buf, std::size_t count,
          const Datatype& dtype, int dest, int tag) {
  auto& ctx = rt::current_ctx();
  validate_send_args(comm, buf, dest, dtype);
  RequestImpl impl;
  impl.kind = ReqKind::Send;
  inject(ctx, impl, buf, count, dtype, comm, dest, tag,
         path(ctx).send_overhead);
  // Blocking send returns when the buffer is reusable; no wait-call charge.
  ctx.clock().advance_to(impl.complete_at);
}

RecvStatus recv(const Comm& comm, void* buf, std::size_t capacity,
                const Datatype& dtype, int source, int tag) {
  auto& ctx = rt::current_ctx();
  validate_recv_args(comm, buf, source, dtype);
  ctx.charge_compute(path(ctx).recv_overhead);
  auto impl =
      make_recv_impl(comm, buf, capacity, dtype, source, tag, ReqKind::Recv);
  impl->active = true;
  auto& engine = Engine::mine();
  engine.post_recv(impl);
  engine.wait_complete(ctx, impl);
  finalize(ctx, *impl);
  return impl->status;
}

RecvStatus wait(Request& request) {
  auto& ctx = rt::current_ctx();
  auto& impl = RequestAccess::impl(request);
  CID_REQUIRE(impl != nullptr, ErrorCode::InvalidArgument,
              "wait() on invalid Request");
  ctx.charge_compute(path(ctx).wait_single);
  Engine::mine().wait_complete(ctx, impl);
  finalize(ctx, *impl);
  return impl->status;
}

bool wait_for(Request& request, simnet::SimTime timeout) {
  auto& ctx = rt::current_ctx();
  auto& impl = RequestAccess::impl(request);
  CID_REQUIRE(impl != nullptr, ErrorCode::InvalidArgument,
              "wait_for() on invalid Request");
  CID_REQUIRE(timeout >= 0.0, ErrorCode::InvalidArgument,
              "wait_for() timeout must be non-negative");
  ctx.charge_compute(path(ctx).wait_single);
  const simnet::SimTime deadline = ctx.clock().now() + timeout;
  if (!Engine::mine().wait_complete_for(ctx, impl, deadline)) return false;
  finalize(ctx, *impl);
  return true;
}

void waitall(std::span<Request> requests) {
  auto& ctx = rt::current_ctx();
  const auto& costs = path(ctx);
  ctx.charge_compute(costs.waitall_base +
                     costs.waitall_per_request *
                         static_cast<simnet::SimTime>(requests.size()));
  auto& engine = Engine::mine();
  simnet::SimTime latest = ctx.clock().now();
  for (auto& request : requests) {
    auto& impl = RequestAccess::impl(request);
    if (!impl) continue;  // MPI_REQUEST_NULL entries are permitted
    engine.wait_complete(ctx, impl);
    latest = std::max(latest, impl->complete_at);
    impl->active = false;
  }
  ctx.clock().advance_to(latest);
}

bool test(Request& request) {
  auto& ctx = rt::current_ctx();
  auto& impl = RequestAccess::impl(request);
  CID_REQUIRE(impl != nullptr, ErrorCode::InvalidArgument,
              "test() on invalid Request");
  ctx.charge_compute(path(ctx).waitall_per_request);  // cheap poll
  Engine::mine().progress(ctx);
  if (!impl->complete) {
    // Callers poll test() in a loop; under the pooled scheduler the rank
    // must yield its worker or the peer it is polling for never runs.
    rt::sched::yield();
    return false;
  }
  finalize(ctx, *impl);
  return true;
}

int waitany(std::span<Request> requests) {
  auto& ctx = rt::current_ctx();
  ctx.charge_compute(path(ctx).wait_single);
  auto& engine = Engine::mine();
  bool any_valid = false;
  for (;;) {
    engine.progress(ctx);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      auto& impl = RequestAccess::impl(requests[i]);
      if (!impl) continue;
      any_valid = true;
      if (impl->complete) {
        finalize(ctx, *impl);
        // Like MPI_Waitany: the completed slot becomes MPI_REQUEST_NULL so
        // the next call does not return it again.
        requests[i] = Request{};
        return static_cast<int>(i);
      }
    }
    if (!any_valid) return -1;
    // Send requests complete at creation, so every incomplete entry is a
    // posted receive; block until the engine can progress one.
    engine.wait_any_progress(ctx);
  }
}

int waitsome(std::span<Request> requests, std::vector<int>& ready) {
  auto& ctx = rt::current_ctx();
  const auto& costs = path(ctx);
  ctx.charge_compute(costs.waitall_base);
  auto& engine = Engine::mine();
  const std::size_t before = ready.size();
  for (;;) {
    engine.progress(ctx);
    simnet::SimTime latest = ctx.clock().now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      auto& impl = RequestAccess::impl(requests[i]);
      if (impl && impl->complete) {
        latest = std::max(latest, impl->complete_at);
        impl->active = false;
        ready.push_back(static_cast<int>(i));
        requests[i] = Request{};  // MPI_REQUEST_NULL, like MPI_Waitsome
      }
    }
    if (ready.size() > before) {
      ctx.clock().advance_to(latest);
      return static_cast<int>(ready.size() - before);
    }
    bool any_valid = false;
    for (auto& request : requests) {
      if (RequestAccess::impl(request)) any_valid = true;
    }
    if (!any_valid) return 0;
    engine.wait_any_progress(ctx);
  }
}

Request send_init(const Comm& comm, const void* buf, std::size_t count,
                  const Datatype& dtype, int dest, int tag) {
  auto& ctx = rt::current_ctx();
  validate_send_args(comm, buf, dest, dtype);
  ctx.charge_compute(path(ctx).persistent_setup);
  auto impl = std::make_shared<RequestImpl>();
  impl->kind = ReqKind::PersistentSend;
  impl->send_buf = buf;
  impl->send_count = count;
  impl->dtype = dtype;
  impl->dest = dest;
  impl->send_tag = tag;
  impl->comm = comm;
  return RequestAccess::wrap(std::move(impl));
}

Request recv_init(const Comm& comm, void* buf, std::size_t capacity,
                  const Datatype& dtype, int source, int tag) {
  auto& ctx = rt::current_ctx();
  validate_recv_args(comm, buf, source, dtype);
  ctx.charge_compute(path(ctx).persistent_setup);
  auto impl = make_recv_impl(comm, buf, capacity, dtype, source, tag,
                             ReqKind::PersistentRecv);
  return RequestAccess::wrap(std::move(impl));
}

void start(Request& request) {
  auto& ctx = rt::current_ctx();
  auto& impl = RequestAccess::impl(request);
  CID_REQUIRE(impl != nullptr, ErrorCode::InvalidArgument,
              "start() on invalid Request");
  CID_REQUIRE(!impl->active, ErrorCode::InvalidArgument,
              "start() on an already-active persistent request");
  const auto& costs = path(ctx);
  switch (impl->kind) {
    case ReqKind::PersistentSend:
      impl->complete = false;
      inject(ctx, *impl, impl->send_buf, impl->send_count, impl->dtype,
             impl->comm, impl->dest, impl->send_tag,
             costs.persistent_send_overhead);
      break;
    case ReqKind::PersistentRecv: {
      ctx.charge_compute(costs.persistent_recv_overhead);
      impl->complete = false;
      impl->active = true;
      auto& engine = Engine::mine();
      engine.post_recv(impl);
      engine.progress(ctx);
      break;
    }
    default:
      throw CidError(ErrorCode::InvalidArgument,
                     "start() on a non-persistent request");
  }
}

void startall(std::span<Request> requests) {
  for (auto& request : requests) start(request);
}

RecvStatus sendrecv(const Comm& comm, const void* send_buf,
                    std::size_t send_count, const Datatype& send_type,
                    int dest, int send_tag, void* recv_buf,
                    std::size_t recv_capacity, const Datatype& recv_type,
                    int source, int recv_tag) {
  Request recv_req =
      irecv(comm, recv_buf, recv_capacity, recv_type, source, recv_tag);
  Request send_req =
      isend(comm, send_buf, send_count, send_type, dest, send_tag);
  // Complete both with one aggregate call (no per-request wait charges).
  std::array<Request, 2> both{recv_req, send_req};
  waitall(both);
  return recv_req.status();
}

namespace {
/// Probe key: a clean message matching (comm, source, tag). Tombstones are
/// invisible to plain MPI (FaultFilter::Clean); communicator membership of
/// wildcard sources is checked by membership_residual.
rt::MatchKey probe_key(const Comm& comm, int source, int tag) {
  rt::MatchKey key;
  key.channel = rt::Channel::MpiPointToPoint;
  key.context = comm.context();
  key.src = source == kAnySource ? rt::kMatchAny : comm.world_rank(source);
  key.tag = tag == kAnyTag ? rt::kMatchAny : tag;
  return key;
}

rt::Mailbox::Residual membership_residual(const Comm& comm) {
  return [&comm](const rt::Envelope& e) { return comm.is_member(e.src); };
}

RecvStatus status_from_header(const Comm& comm,
                              const rt::Mailbox::Header& header,
                              const Datatype& dtype) {
  RecvStatus status;
  status.source = comm.comm_rank_of_world(header.src);
  status.tag = header.tag;
  status.count = dtype.payload_size() > 0
                     ? header.payload_bytes / dtype.payload_size()
                     : 0;
  return status;
}
}  // namespace

RecvStatus probe(const Comm& comm, int source, int tag,
                 const Datatype& dtype) {
  auto& ctx = rt::current_ctx();
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "probe on invalid communicator");
  ctx.charge_compute(path(ctx).wait_single);
  const rt::MatchKey key = probe_key(comm, source, tag);
  const rt::Mailbox::Residual residual = membership_residual(comm);
  ctx.mailbox().wait_present(std::span<const rt::MatchKey>(&key, 1),
                             &residual);
  auto header = ctx.mailbox().peek(key, &residual);
  CID_ASSERT(header.has_value(), "probe lost the message it waited for");
  ctx.clock().advance_to(header->available_at);
  return status_from_header(comm, *header, dtype);
}

bool iprobe(const Comm& comm, int source, int tag, const Datatype& dtype,
            RecvStatus* status) {
  auto& ctx = rt::current_ctx();
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "iprobe on invalid communicator");
  ctx.charge_compute(path(ctx).waitall_per_request);  // cheap poll
  const rt::Mailbox::Residual residual = membership_residual(comm);
  auto header = ctx.mailbox().peek(probe_key(comm, source, tag), &residual);
  if (!header) {
    rt::sched::yield();  // let the polled-for peer run (see mpi::test)
    return false;
  }
  ctx.clock().advance_to(header->available_at);
  if (status != nullptr) *status = status_from_header(comm, *header, dtype);
  return true;
}

void rebind_send(Request& request, const void* buf, std::size_t count) {
  auto& impl = RequestAccess::impl(request);
  CID_REQUIRE(impl != nullptr && impl->kind == ReqKind::PersistentSend,
              ErrorCode::InvalidArgument,
              "rebind_send() requires a persistent send request");
  CID_REQUIRE(!impl->active, ErrorCode::InvalidArgument,
              "rebind_send() on an active request");
  CID_REQUIRE(buf != nullptr, ErrorCode::InvalidArgument,
              "rebind_send() buffer is null");
  impl->send_buf = buf;
  impl->send_count = count;
}

void rebind_recv(Request& request, void* buf, std::size_t capacity) {
  auto& impl = RequestAccess::impl(request);
  CID_REQUIRE(impl != nullptr && impl->kind == ReqKind::PersistentRecv,
              ErrorCode::InvalidArgument,
              "rebind_recv() requires a persistent recv request");
  CID_REQUIRE(!impl->active, ErrorCode::InvalidArgument,
              "rebind_recv() on an active request");
  CID_REQUIRE(buf != nullptr, ErrorCode::InvalidArgument,
              "rebind_recv() buffer is null");
  impl->recv_buf = buf;
  impl->recv_capacity = capacity;
}

}  // namespace cid::mpi
