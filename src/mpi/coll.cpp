#include "mpi/coll.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "mpi/p2p.hpp"
#include "obs/obs.hpp"
#include "rt/runtime.hpp"
#include "tune/tune.hpp"

namespace cid::mpi::coll {

namespace {

constexpr int kCollectiveTag = 3000;
/// Outstanding isend/irecv pairs per waitall batch in the pairwise
/// alltoall — bounds request-table growth at 10k ranks.
constexpr int kPairwiseWindow = 16;

/// Rank relative to the root (so trees can always be rooted at 0).
int relative(int rank, int root, int size) {
  return (rank - root + size) % size;
}
int absolute(int rel, int root, int size) { return (rel + root) % size; }

bool pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

/// First element of chunk `r` when `count` elements split across `size`
/// ranks. Floor boundaries: every rank computes identical values, so both
/// sides of a transfer agree on each chunk's length (including zero).
std::size_t chunk_begin(int r, std::size_t count, int size) {
  return static_cast<std::size_t>(r) * count / static_cast<std::size_t>(size);
}

template <typename T>
void apply_op(ReduceOp op, const T* in, T* inout, std::size_t count) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < count; ++i) inout[i] += in[i];
      return;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < count; ++i) {
        if (in[i] < inout[i]) inout[i] = in[i];
      }
      return;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < count; ++i) {
        if (in[i] > inout[i]) inout[i] = in[i];
      }
      return;
    case ReduceOp::Prod:
      for (std::size_t i = 0; i < count; ++i) inout[i] *= in[i];
      return;
  }
}

/// Names the algorithm in the trace: one "coll" span "<op>[<algo>]" over the
/// call's virtual-time extent, plus a "cid.coll.calls" counter keyed by the
/// same label. Reads clocks only — recording cannot perturb virtual time.
class CollSpan {
 public:
  CollSpan(CollOp op, CollAlgo algo, std::uint64_t bytes)
      : enabled_(obs::enabled()), op_(op), algo_(algo), bytes_(bytes) {
    if (enabled_) begin_ = rt::current_ctx().clock().now();
  }
  CollSpan(const CollSpan&) = delete;
  CollSpan& operator=(const CollSpan&) = delete;
  ~CollSpan() {
    if (!enabled_) return;
    auto& ctx = rt::current_ctx();
    std::string name = std::string(tune::coll_op_name(op_)) + "[" +
                       std::string(tune::coll_algo_name(algo_)) + "]";
    obs::span({ctx.rank(), "coll", name, begin_, ctx.clock().now(), bytes_,
               /*messages=*/0});
    obs::count("cid.coll.calls", name, ctx.rank());
  }

 private:
  bool enabled_;
  CollOp op_;
  CollAlgo algo_;
  std::uint64_t bytes_;
  double begin_ = 0.0;
};

// ---------------------------------------------------------------------------
// bcast
// ---------------------------------------------------------------------------

void bcast_binomial(const Comm& comm, void* buffer, std::size_t count,
                    const Datatype& dtype, int root) {
  const int size = comm.size();
  const int rel = relative(comm.rank(), root, size);

  // Climb masks to my receive bit, take the payload from the parent, then
  // forward to children at all lower masks.
  int mask = 1;
  while (mask < size) {
    if ((rel & mask) != 0) {
      mpi::recv(comm, buffer, count, dtype, absolute(rel - mask, root, size),
                kCollectiveTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      mpi::send(comm, buffer, count, dtype, absolute(rel + mask, root, size),
                kCollectiveTag);
    }
    mask >>= 1;
  }
}

void bcast_vandegeijn(const Comm& comm, void* buffer, std::size_t count,
                      const Datatype& dtype, int root) {
  const int size = comm.size();
  const int rel = relative(comm.rank(), root, size);
  const std::size_t extent = dtype.extent();
  auto* base = static_cast<std::byte*>(buffer);
  // Chunk range [lo, hi) of the vector, as (pointer, element count).
  auto range = [&](int lo, int hi) {
    const std::size_t b = chunk_begin(lo, count, size);
    const std::size_t e = chunk_begin(hi, count, size);
    return std::pair<std::byte*, std::size_t>(base + b * extent, e - b);
  };

  // Phase 1 — binomial scatter: a node holding chunks [rel, rel+2*mask)
  // forwards the upper half [rel+mask, rel+2*mask) to its child; relative
  // rank r ends up holding exactly chunk r.
  int mask = 1;
  while (mask < size) {
    if ((rel & mask) != 0) {
      auto [ptr, n] = range(rel, std::min(rel + mask, size));
      if (n > 0) {
        mpi::recv(comm, ptr, n, dtype, absolute(rel - mask, root, size),
                  kCollectiveTag);
      }
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      auto [ptr, n] = range(rel + mask, std::min(rel + 2 * mask, size));
      if (n > 0) {
        mpi::send(comm, ptr, n, dtype, absolute(rel + mask, root, size),
                  kCollectiveTag);
      }
    }
    mask >>= 1;
  }

  // Phase 2 — ring allgather of the chunks around the relative ring.
  const int right = absolute((rel + 1) % size, root, size);
  const int left = absolute((rel - 1 + size) % size, root, size);
  int have = rel;
  for (int step = 0; step < size - 1; ++step) {
    const int incoming = (have - 1 + size) % size;
    auto [rptr, rn] = range(incoming, incoming + 1);
    auto [sptr, sn] = range(have, have + 1);
    Request recv_req, send_req;
    if (rn > 0) recv_req = irecv(comm, rptr, rn, dtype, left, kCollectiveTag);
    if (sn > 0) send_req = isend(comm, sptr, sn, dtype, right, kCollectiveTag);
    if (rn > 0) wait(recv_req);
    if (sn > 0) wait(send_req);
    have = incoming;
  }
}

// ---------------------------------------------------------------------------
// gather / scatter
// ---------------------------------------------------------------------------

void gather_flat(const Comm& comm, const void* send, std::size_t count,
                 const Datatype& dtype, void* recv, int root) {
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  if (me == root) {
    auto* out = static_cast<std::byte*>(recv);
    std::memcpy(out + static_cast<std::size_t>(me) * block, send, block);
    std::vector<Request> requests;
    requests.reserve(static_cast<std::size_t>(size - 1));
    for (int r = 0; r < size; ++r) {
      if (r == me) continue;
      requests.push_back(irecv(comm,
                               out + static_cast<std::size_t>(r) * block,
                               count, dtype, r, kCollectiveTag));
    }
    waitall(requests);
  } else {
    mpi::send(comm, send, count, dtype, root, kCollectiveTag);
  }
}

void gather_binomial(const Comm& comm, const void* send, std::size_t count,
                     const Datatype& dtype, void* recv, int root) {
  const int size = comm.size();
  const int rel = relative(comm.rank(), root, size);
  const std::size_t block = count * dtype.extent();

  // In relative order every subtree is a contiguous block range: the node at
  // `rel` with receive bit m owns [rel, min(rel+m, size)). Children report
  // in ascending mask order, then the whole range relays upward in one send.
  int my_bit = 0;  // 0: relative root (no receive bit inside the group)
  for (int m = 1; m < size; m <<= 1) {
    if ((rel & m) != 0) {
      my_bit = m;
      break;
    }
  }
  const int span = my_bit == 0 ? size : std::min(my_bit, size - rel);
  std::vector<std::byte> temp(static_cast<std::size_t>(span) * block);
  std::memcpy(temp.data(), send, block);

  for (int mask = 1; mask < size; mask <<= 1) {
    if ((rel & mask) != 0) {
      mpi::send(comm, temp.data(), static_cast<std::size_t>(span) * count,
                dtype, absolute(rel - mask, root, size), kCollectiveTag);
      return;
    }
    if (rel + mask < size) {
      const int child = rel + mask;
      const int clen = std::min(mask, size - child);
      mpi::recv(comm, temp.data() + static_cast<std::size_t>(mask) * block,
                static_cast<std::size_t>(clen) * count, dtype,
                absolute(child, root, size), kCollectiveTag);
    }
  }
  // Relative root: unrotate the relative-ordered blocks into rank order.
  auto* out = static_cast<std::byte*>(recv);
  for (int j = 0; j < size; ++j) {
    std::memcpy(
        out + static_cast<std::size_t>(absolute(j, root, size)) * block,
        temp.data() + static_cast<std::size_t>(j) * block, block);
  }
}

void scatter_flat(const Comm& comm, const void* send, std::size_t count,
                  const Datatype& dtype, void* recv, int root) {
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  if (me == root) {
    const auto* in = static_cast<const std::byte*>(send);
    std::vector<Request> requests;
    for (int r = 0; r < size; ++r) {
      if (r == me) {
        std::memcpy(recv, in + static_cast<std::size_t>(r) * block, block);
        continue;
      }
      requests.push_back(isend(comm,
                               in + static_cast<std::size_t>(r) * block,
                               count, dtype, r, kCollectiveTag));
    }
    waitall(requests);
  } else {
    mpi::recv(comm, recv, count, dtype, root, kCollectiveTag);
  }
}

void scatter_binomial(const Comm& comm, const void* send, std::size_t count,
                      const Datatype& dtype, void* recv, int root) {
  const int size = comm.size();
  const int rel = relative(comm.rank(), root, size);
  const std::size_t block = count * dtype.extent();

  // Mirror of gather_binomial: receive my subtree's relative-ordered range
  // from the parent, forward each child its sub-range, keep block 0.
  std::vector<std::byte> temp;
  int mask = 1;
  if (rel == 0) {
    temp.resize(static_cast<std::size_t>(size) * block);
    const auto* in = static_cast<const std::byte*>(send);
    for (int j = 0; j < size; ++j) {
      std::memcpy(
          temp.data() + static_cast<std::size_t>(j) * block,
          in + static_cast<std::size_t>(absolute(j, root, size)) * block,
          block);
    }
    while (mask < size) mask <<= 1;
  } else {
    while ((rel & mask) == 0) mask <<= 1;
    const int span = std::min(mask, size - rel);
    temp.resize(static_cast<std::size_t>(span) * block);
    mpi::recv(comm, temp.data(), static_cast<std::size_t>(span) * count,
              dtype, absolute(rel - mask, root, size), kCollectiveTag);
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      const int child = rel + mask;
      const int clen = std::min(mask, size - child);
      mpi::send(comm, temp.data() + static_cast<std::size_t>(mask) * block,
                static_cast<std::size_t>(clen) * count, dtype,
                absolute(child, root, size), kCollectiveTag);
    }
    mask >>= 1;
  }
  std::memcpy(recv, temp.data(), block);
}

// ---------------------------------------------------------------------------
// allgather
// ---------------------------------------------------------------------------

void allgather_ring(const Comm& comm, const void* send, std::size_t count,
                    const Datatype& dtype, void* recv) {
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  auto* out = static_cast<std::byte*>(recv);
  std::memcpy(out + static_cast<std::size_t>(me) * block, send, block);

  // In step s, pass the block received in step s-1 to the right neighbour
  // and take a new one from the left.
  const int right = (me + 1) % size;
  const int left = (me - 1 + size) % size;
  int have = me;
  for (int step = 0; step < size - 1; ++step) {
    const int incoming = (have - 1 + size) % size;
    auto recv_req =
        irecv(comm, out + static_cast<std::size_t>(incoming) * block, count,
              dtype, left, kCollectiveTag);
    auto send_req = isend(comm, out + static_cast<std::size_t>(have) * block,
                          count, dtype, right, kCollectiveTag);
    wait(recv_req);
    wait(send_req);
    have = incoming;
  }
}

void allgather_rd(const Comm& comm, const void* send, std::size_t count,
                  const Datatype& dtype, void* recv) {
  const int size = comm.size();  // power of two (checked by the dispatcher)
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  auto* out = static_cast<std::byte*>(recv);
  std::memcpy(out + static_cast<std::size_t>(me) * block, send, block);

  // At step `mask` I hold the blocks of my 2^k-aligned group
  // [me & ~(mask-1), +mask); swap whole groups with the partner across the
  // bit. Both ranges are contiguous, so no staging buffer is needed.
  for (int mask = 1; mask < size; mask <<= 1) {
    const int partner = me ^ mask;
    const int my_lo = me & ~(mask - 1);
    const int peer_lo = partner & ~(mask - 1);
    sendrecv(comm, out + static_cast<std::size_t>(my_lo) * block,
             static_cast<std::size_t>(mask) * count, dtype, partner,
             kCollectiveTag, out + static_cast<std::size_t>(peer_lo) * block,
             static_cast<std::size_t>(mask) * count, dtype, partner,
             kCollectiveTag);
  }
}

// ---------------------------------------------------------------------------
// alltoall
// ---------------------------------------------------------------------------

void alltoall_flat(const Comm& comm, const void* send, std::size_t count,
                   const Datatype& dtype, void* recv) {
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  const auto* in = static_cast<const std::byte*>(send);
  auto* out = static_cast<std::byte*>(recv);

  std::memcpy(out + static_cast<std::size_t>(me) * block,
              in + static_cast<std::size_t>(me) * block, block);
  std::vector<Request> requests;
  requests.reserve(2 * static_cast<std::size_t>(size - 1));
  for (int offset = 1; offset < size; ++offset) {
    const int peer = (me + offset) % size;
    requests.push_back(irecv(comm,
                             out + static_cast<std::size_t>(peer) * block,
                             count, dtype, peer, kCollectiveTag));
  }
  for (int offset = 1; offset < size; ++offset) {
    const int peer = (me + offset) % size;
    requests.push_back(isend(comm,
                             in + static_cast<std::size_t>(peer) * block,
                             count, dtype, peer, kCollectiveTag));
  }
  waitall(requests);
}

void alltoall_bruck(const Comm& comm, const void* send, std::size_t count,
                    const Datatype& dtype, void* recv) {
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  const auto* in = static_cast<const std::byte*>(send);
  auto* out = static_cast<std::byte*>(recv);

  // Rotate so position i holds my block for rank (me + i): block i then
  // needs to travel exactly i hops, which the rounds decompose in binary.
  std::vector<std::byte> tmp(static_cast<std::size_t>(size) * block);
  for (int i = 0; i < size; ++i) {
    std::memcpy(tmp.data() + static_cast<std::size_t>(i) * block,
                in + static_cast<std::size_t>((me + i) % size) * block,
                block);
  }

  std::vector<std::byte> staging_out;
  std::vector<std::byte> staging_in;
  std::vector<int> indices;
  for (int pof = 1; pof < size; pof <<= 1) {
    indices.clear();
    for (int i = pof; i < size; ++i) {
      if ((i & pof) != 0) indices.push_back(i);
    }
    staging_out.resize(indices.size() * block);
    staging_in.resize(indices.size() * block);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      std::memcpy(
          staging_out.data() + k * block,
          tmp.data() + static_cast<std::size_t>(indices[k]) * block, block);
    }
    // Every block with bit `pof` still set moves pof ranks forward, packed
    // into ONE message — ceil(log2 P) messages total instead of P-1.
    const int dest = (me + pof) % size;
    const int src = (me - pof + size) % size;
    sendrecv(comm, staging_out.data(), indices.size() * count, dtype, dest,
             kCollectiveTag, staging_in.data(), indices.size() * count, dtype,
             src, kCollectiveTag);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      std::memcpy(tmp.data() + static_cast<std::size_t>(indices[k]) * block,
                  staging_in.data() + k * block, block);
    }
  }

  // Block i travelled i hops, so at me it came from rank (me - i).
  for (int i = 0; i < size; ++i) {
    std::memcpy(out + static_cast<std::size_t>((me - i + size) % size) * block,
                tmp.data() + static_cast<std::size_t>(i) * block, block);
  }
}

void alltoall_pairwise(const Comm& comm, const void* send, std::size_t count,
                       const Datatype& dtype, void* recv) {
  const int size = comm.size();
  const int me = comm.rank();
  const std::size_t block = count * dtype.extent();
  const auto* in = static_cast<const std::byte*>(send);
  auto* out = static_cast<std::byte*>(recv);

  std::memcpy(out + static_cast<std::size_t>(me) * block,
              in + static_cast<std::size_t>(me) * block, block);
  // Offsets pair up globally: my send to (me+o) meets that rank's receive
  // from ((me+o)-o). Batching offsets into windows bounds the outstanding
  // requests at 2*kPairwiseWindow instead of 2*(P-1).
  std::vector<Request> requests;
  requests.reserve(2 * static_cast<std::size_t>(kPairwiseWindow));
  for (int base = 1; base < size; base += kPairwiseWindow) {
    const int limit = std::min(size, base + kPairwiseWindow);
    requests.clear();
    for (int offset = base; offset < limit; ++offset) {
      const int from = (me - offset + size) % size;
      requests.push_back(irecv(comm,
                               out + static_cast<std::size_t>(from) * block,
                               count, dtype, from, kCollectiveTag));
    }
    for (int offset = base; offset < limit; ++offset) {
      const int to = (me + offset) % size;
      requests.push_back(isend(comm,
                               in + static_cast<std::size_t>(to) * block,
                               count, dtype, to, kCollectiveTag));
    }
    waitall(requests);
  }
}

// ---------------------------------------------------------------------------
// reduce / allreduce
// ---------------------------------------------------------------------------

/// Binomial-tree reduce: in round k, relative ranks with bit k set send
/// their partial result to (rel - 2^k) and leave.
template <typename T>
void reduce_binomial(const Comm& comm, const T* send, T* recv,
                     std::size_t count, ReduceOp op, int root) {
  const int size = comm.size();
  const int me = comm.rank();
  const int rel = relative(me, root, size);

  std::vector<T> accumulator(send, send + count);
  std::vector<T> incoming(count);
  for (int mask = 1; mask < size; mask <<= 1) {
    if ((rel & mask) != 0) {
      mpi::send(comm, accumulator.data(), count, datatype_of<T>(),
                absolute(rel - mask, root, size), kCollectiveTag);
      return;  // non-root recv buffers are left untouched
    }
    if (rel + mask < size) {
      mpi::recv(comm, incoming.data(), count, datatype_of<T>(),
                absolute(rel + mask, root, size), kCollectiveTag);
      apply_op(op, incoming.data(), accumulator.data(), count);
    }
  }
  CID_REQUIRE(me == root, ErrorCode::RuntimeFault,
              "reduce tree terminated on a non-root rank");
  std::memcpy(recv, accumulator.data(), count * sizeof(T));
}

/// Ring reduce-scatter whose schedule is shifted so relative rank r ends up
/// owning chunk r: partial sums for chunk c start at relative rank c+1 and
/// travel the ring rightward, each rank folding in its contribution. Shared
/// by Rabenseifner reduce and ring allreduce. `acc` starts as the caller's
/// full input vector; on return acc[chunk rel] is fully reduced.
template <typename T>
void ring_reduce_scatter(const Comm& comm, T* acc, std::size_t count,
                         ReduceOp op, int root) {
  const int size = comm.size();
  const int rel = relative(comm.rank(), root, size);
  const int right = absolute((rel + 1) % size, root, size);
  const int left = absolute((rel - 1 + size) % size, root, size);
  std::vector<T> incoming(count / static_cast<std::size_t>(size) + 1);
  for (int s = 0; s < size - 1; ++s) {
    const int cs = (rel - s - 1 + size) % size;  // chunk I pass rightward
    const int cr = (rel - s - 2 + 2 * size) % size;  // chunk I fold into
    const std::size_t sb = chunk_begin(cs, count, size);
    const std::size_t se = chunk_begin(cs + 1, count, size);
    const std::size_t rb = chunk_begin(cr, count, size);
    const std::size_t re = chunk_begin(cr + 1, count, size);
    Request recv_req, send_req;
    if (re > rb) {
      recv_req = irecv(comm, incoming.data(), re - rb, datatype_of<T>(), left,
                       kCollectiveTag);
    }
    if (se > sb) {
      send_req = isend(comm, acc + sb, se - sb, datatype_of<T>(), right,
                       kCollectiveTag);
    }
    if (re > rb) {
      wait(recv_req);
      apply_op(op, incoming.data(), acc + rb, re - rb);
    }
    if (se > sb) wait(send_req);
  }
}

/// Rabenseifner reduce: ring reduce-scatter, then a binomial gather of the
/// owned chunks — subtree [rel, rel+span) maps to the contiguous element
/// range [chunk_begin(rel), chunk_begin(rel+span)), so the root assembles
/// the vector with no rotation.
template <typename T>
void reduce_rabenseifner(const Comm& comm, const T* send, T* recv,
                         std::size_t count, ReduceOp op, int root) {
  const int size = comm.size();
  const int rel = relative(comm.rank(), root, size);
  std::vector<T> acc(send, send + count);
  ring_reduce_scatter(comm, acc.data(), count, op, root);

  for (int mask = 1; mask < size; mask <<= 1) {
    if ((rel & mask) != 0) {
      const std::size_t b = chunk_begin(rel, count, size);
      const std::size_t e = chunk_begin(std::min(rel + mask, size), count,
                                        size);
      if (e > b) {
        mpi::send(comm, acc.data() + b, e - b, datatype_of<T>(),
                  absolute(rel - mask, root, size), kCollectiveTag);
      }
      return;
    }
    if (rel + mask < size) {
      const int child = rel + mask;
      const std::size_t b = chunk_begin(child, count, size);
      const std::size_t e = chunk_begin(std::min(child + mask, size), count,
                                        size);
      if (e > b) {
        mpi::recv(comm, acc.data() + b, e - b, datatype_of<T>(),
                  absolute(child, root, size), kCollectiveTag);
      }
    }
  }
  std::memcpy(recv, acc.data(), count * sizeof(T));
}

/// Recursive-doubling allreduce with the MPICH non-power-of-two fold: the
/// first 2*rem ranks pair up (odd folds into even and idles), the surviving
/// pof2 ranks run log2 doubling exchanges, then the idle ranks get the
/// result back from their partners.
template <typename T>
void allreduce_rd(const Comm& comm, const T* send, T* recv, std::size_t count,
                  ReduceOp op) {
  const int size = comm.size();
  const int me = comm.rank();
  if (recv != send) std::memcpy(recv, send, count * sizeof(T));
  std::vector<T> incoming(count);

  const int pof2 = static_cast<int>(
      std::bit_floor(static_cast<unsigned>(size)));
  const int rem = size - pof2;
  int newrank;
  if (me < 2 * rem) {
    if ((me % 2) != 0) {
      mpi::send(comm, recv, count, datatype_of<T>(), me - 1, kCollectiveTag);
      newrank = -1;
    } else {
      mpi::recv(comm, incoming.data(), count, datatype_of<T>(), me + 1,
                kCollectiveTag);
      apply_op(op, incoming.data(), recv, count);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int peer_new = newrank ^ mask;
      const int peer = peer_new < rem ? peer_new * 2 : peer_new + rem;
      sendrecv(comm, recv, count, datatype_of<T>(), peer, kCollectiveTag,
               incoming.data(), count, datatype_of<T>(), peer,
               kCollectiveTag);
      apply_op(op, incoming.data(), recv, count);
    }
  }

  if (me < 2 * rem) {
    if ((me % 2) == 0) {
      mpi::send(comm, recv, count, datatype_of<T>(), me + 1, kCollectiveTag);
    } else {
      mpi::recv(comm, recv, count, datatype_of<T>(), me - 1, kCollectiveTag);
    }
  }
}

/// Ring allreduce: reduce-scatter (each rank ends owning chunk `me`), then
/// a ring allgather of the reduced chunks. 2*(P-1) nearest-neighbour steps,
/// each carrying ~count/P elements — bandwidth-optimal.
template <typename T>
void allreduce_ring(const Comm& comm, const T* send, T* recv,
                    std::size_t count, ReduceOp op) {
  const int size = comm.size();
  const int me = comm.rank();
  if (recv != send) std::memcpy(recv, send, count * sizeof(T));
  ring_reduce_scatter(comm, recv, count, op, /*root=*/0);

  const int right = (me + 1) % size;
  const int left = (me - 1 + size) % size;
  int have = me;
  for (int s = 0; s < size - 1; ++s) {
    const int incoming = (have - 1 + size) % size;
    const std::size_t sb = chunk_begin(have, count, size);
    const std::size_t se = chunk_begin(have + 1, count, size);
    const std::size_t rb = chunk_begin(incoming, count, size);
    const std::size_t re = chunk_begin(incoming + 1, count, size);
    Request recv_req, send_req;
    if (re > rb) {
      recv_req = irecv(comm, recv + rb, re - rb, datatype_of<T>(), left,
                       kCollectiveTag);
    }
    if (se > sb) {
      send_req = isend(comm, recv + sb, se - sb, datatype_of<T>(), right,
                       kCollectiveTag);
    }
    if (re > rb) wait(recv_req);
    if (se > sb) wait(send_req);
    have = incoming;
  }
}

// ---------------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------------

template <typename T>
void reduce_entry(const Comm& comm, const T* send, T* recv, std::size_t count,
                  ReduceOp op, int root, std::optional<CollAlgo> hint) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "reduce on invalid communicator");
  CID_REQUIRE(root >= 0 && root < comm.size(), ErrorCode::InvalidArgument,
              "reduce root out of range");
  if (comm.rank() == root) {
    CID_REQUIRE(recv != nullptr, ErrorCode::InvalidArgument,
                "reduce root requires a receive buffer");
  }
  if (count == 0) return;
  const int size = comm.size();
  if (size == 1) {
    if (recv != send) std::memcpy(recv, send, count * sizeof(T));
    return;
  }
  const std::size_t bytes = count * sizeof(T);
  const CollAlgo algo = resolve(CollOp::Reduce, bytes, bytes, size, hint);
  CollSpan span(CollOp::Reduce, algo, bytes);
  if (algo == CollAlgo::Rabenseifner) {
    reduce_rabenseifner(comm, send, recv, count, op, root);
  } else {
    reduce_binomial(comm, send, recv, count, op, root);
  }
}

template <typename T>
void allreduce_entry(const Comm& comm, const T* send, T* recv,
                     std::size_t count, ReduceOp op,
                     std::optional<CollAlgo> hint) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "allreduce on invalid communicator");
  CID_REQUIRE(recv != nullptr, ErrorCode::InvalidArgument,
              "allreduce requires a receive buffer");
  if (count == 0) return;
  const int size = comm.size();
  if (size == 1) {
    if (recv != send) std::memcpy(recv, send, count * sizeof(T));
    return;
  }
  const std::size_t bytes = count * sizeof(T);
  const CollAlgo algo = resolve(CollOp::Allreduce, bytes, bytes, size, hint);
  CollSpan span(CollOp::Allreduce, algo, bytes);
  switch (algo) {
    case CollAlgo::Ring:
      allreduce_ring(comm, send, recv, count, op);
      return;
    case CollAlgo::ReduceBcast:
      // The pre-engine reference path: binomial reduce, then binomial bcast.
      reduce_binomial(comm, send, recv, count, op, /*root=*/0);
      bcast_binomial(comm, recv, count, datatype_of<T>(), /*root=*/0);
      return;
    default:
      allreduce_rd(comm, send, recv, count, op);
      return;
  }
}

}  // namespace

CollAlgo resolve(CollOp op, std::size_t block_bytes, std::size_t total_bytes,
                 int nprocs, std::optional<CollAlgo> hint) {
  if (auto override = tune::Tuner::global().coll_override(op);
      override.has_value() && tune::coll_algo_valid(op, *override, nprocs)) {
    return *override;
  }
  if (hint.has_value() && tune::coll_algo_valid(op, *hint, nprocs)) {
    return *hint;
  }
  const tune::CollShape shape{block_bytes, total_bytes, nprocs};
  return tune::choose_collective(op, shape, rt::current_ctx().model()).algo;
}

void bcast(const Comm& comm, void* buffer, std::size_t count,
           const Datatype& dtype, int root, std::optional<CollAlgo> hint) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "bcast on invalid communicator");
  CID_REQUIRE(root >= 0 && root < comm.size(), ErrorCode::InvalidArgument,
              "bcast root out of range");
  const int size = comm.size();
  if (size == 1 || count == 0) return;
  const std::size_t bytes = count * dtype.extent();
  const CollAlgo algo = resolve(CollOp::Bcast, bytes, bytes, size, hint);
  CollSpan span(CollOp::Bcast, algo, bytes);
  if (algo == CollAlgo::VanDeGeijn) {
    bcast_vandegeijn(comm, buffer, count, dtype, root);
  } else {
    bcast_binomial(comm, buffer, count, dtype, root);
  }
}

void gather(const Comm& comm, const void* send, std::size_t count,
            const Datatype& dtype, void* recv, int root,
            std::optional<CollAlgo> hint) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "gather on invalid communicator");
  CID_REQUIRE(root >= 0 && root < comm.size(), ErrorCode::InvalidArgument,
              "gather root out of range");
  if (comm.rank() == root) {
    CID_REQUIRE(recv != nullptr, ErrorCode::InvalidArgument,
                "gather root requires a receive buffer");
  }
  if (count == 0) return;
  const int size = comm.size();
  const std::size_t block = count * dtype.extent();
  if (size == 1) {
    std::memcpy(recv, send, block);
    return;
  }
  const CollAlgo algo = resolve(CollOp::Gather, block,
                                block * static_cast<std::size_t>(size), size,
                                hint);
  CollSpan span(CollOp::Gather, algo,
                block * static_cast<std::size_t>(size));
  if (algo == CollAlgo::Binomial) {
    gather_binomial(comm, send, count, dtype, recv, root);
  } else {
    gather_flat(comm, send, count, dtype, recv, root);
  }
}

void scatter(const Comm& comm, const void* send, std::size_t count,
             const Datatype& dtype, void* recv, int root,
             std::optional<CollAlgo> hint) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "scatter on invalid communicator");
  CID_REQUIRE(root >= 0 && root < comm.size(), ErrorCode::InvalidArgument,
              "scatter root out of range");
  if (comm.rank() == root) {
    CID_REQUIRE(send != nullptr, ErrorCode::InvalidArgument,
                "scatter root requires a send buffer");
  }
  if (count == 0) return;
  const int size = comm.size();
  const std::size_t block = count * dtype.extent();
  if (size == 1) {
    std::memcpy(recv, send, block);
    return;
  }
  const CollAlgo algo = resolve(CollOp::Scatter, block,
                                block * static_cast<std::size_t>(size), size,
                                hint);
  CollSpan span(CollOp::Scatter, algo,
                block * static_cast<std::size_t>(size));
  if (algo == CollAlgo::Binomial) {
    scatter_binomial(comm, send, count, dtype, recv, root);
  } else {
    scatter_flat(comm, send, count, dtype, recv, root);
  }
}

void allgather(const Comm& comm, const void* send, std::size_t count,
               const Datatype& dtype, void* recv,
               std::optional<CollAlgo> hint) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "allgather on invalid communicator");
  CID_REQUIRE(recv != nullptr, ErrorCode::InvalidArgument,
              "allgather requires a receive buffer");
  if (count == 0) return;
  const int size = comm.size();
  const std::size_t block = count * dtype.extent();
  if (size == 1) {
    std::memcpy(recv, send, block);
    return;
  }
  const CollAlgo algo = resolve(CollOp::Allgather, block,
                                block * static_cast<std::size_t>(size), size,
                                hint);
  CollSpan span(CollOp::Allgather, algo,
                block * static_cast<std::size_t>(size));
  if (algo == CollAlgo::RecursiveDoubling && pow2(size)) {
    allgather_rd(comm, send, count, dtype, recv);
  } else {
    allgather_ring(comm, send, count, dtype, recv);
  }
}

void alltoall(const Comm& comm, const void* send, std::size_t count,
              const Datatype& dtype, void* recv,
              std::optional<CollAlgo> hint) {
  CID_REQUIRE(comm.valid(), ErrorCode::InvalidArgument,
              "alltoall on invalid communicator");
  CID_REQUIRE(recv != nullptr, ErrorCode::InvalidArgument,
              "alltoall requires a receive buffer");
  if (count == 0) return;
  const int size = comm.size();
  const std::size_t block = count * dtype.extent();
  if (size == 1) {
    std::memcpy(recv, send, block);
    return;
  }
  const CollAlgo algo = resolve(CollOp::Alltoall, block,
                                block * static_cast<std::size_t>(size), size,
                                hint);
  CollSpan span(CollOp::Alltoall, algo,
                block * static_cast<std::size_t>(size));
  switch (algo) {
    case CollAlgo::Bruck:
      alltoall_bruck(comm, send, count, dtype, recv);
      return;
    case CollAlgo::PairwiseWindow:
      alltoall_pairwise(comm, send, count, dtype, recv);
      return;
    default:
      alltoall_flat(comm, send, count, dtype, recv);
      return;
  }
}

void reduce(const Comm& comm, const double* send, double* recv,
            std::size_t count, ReduceOp op, int root,
            std::optional<CollAlgo> hint) {
  reduce_entry(comm, send, recv, count, op, root, hint);
}
void reduce(const Comm& comm, const int* send, int* recv, std::size_t count,
            ReduceOp op, int root, std::optional<CollAlgo> hint) {
  reduce_entry(comm, send, recv, count, op, root, hint);
}

void allreduce(const Comm& comm, const double* send, double* recv,
               std::size_t count, ReduceOp op, std::optional<CollAlgo> hint) {
  allreduce_entry(comm, send, recv, count, op, hint);
}
void allreduce(const Comm& comm, const int* send, int* recv,
               std::size_t count, ReduceOp op, std::optional<CollAlgo> hint) {
  allreduce_entry(comm, send, recv, count, op, hint);
}

}  // namespace cid::mpi::coll
