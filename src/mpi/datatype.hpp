// miniMPI datatypes: the basic types plus MPI_Type_create_struct-style
// derived struct types (displacement / block-length / basic-type triples, the
// exact representation the paper's compiler builds for composite buffers).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace cid::mpi {

enum class BasicType {
  Char,
  SignedChar,
  UnsignedChar,
  Short,
  Int,
  UnsignedInt,
  Long,
  UnsignedLong,
  LongLong,
  Float,
  Double,
  LongDouble,
  Byte,
  Packed,  ///< opaque bytes produced by pack()
};

/// Size in bytes of one element of a basic type.
std::size_t basic_type_size(BasicType type) noexcept;

/// Stable display name ("MPI_DOUBLE"-style) used in messages and codegen.
std::string_view basic_type_name(BasicType type) noexcept;

/// One block of a derived struct type.
struct TypeField {
  std::size_t displacement = 0;  ///< byte offset from the element base
  std::size_t block_length = 0;  ///< number of basic elements in the block
  BasicType type = BasicType::Byte;
};

/// One copy of a compiled pack plan: `bytes` contiguous bytes at `offset`
/// from the element base. Declaration-adjacent fields that are also
/// memory-adjacent compile into a single run, so a padded-but-ordered struct
/// packs with far fewer memcpy calls than it has fields (and a hole-free one
/// with exactly one). Runs are in declaration order: the wire byte layout is
/// identical to a field-by-field walk.
struct PackRun {
  std::size_t offset = 0;
  std::size_t bytes = 0;
};

/// Value-semantic datatype handle. Basic types are singletons; struct types
/// share their immutable layout.
class Datatype {
 public:
  /// A basic (predefined) type. Already committed.
  static Datatype basic(BasicType type);

  /// MPI_Type_create_struct: build a derived type from field blocks over an
  /// element of total byte extent `extent` (sizeof the C struct, including
  /// trailing padding). Fails on empty/overlapping/out-of-extent fields.
  static Result<Datatype> create_struct(std::vector<TypeField> fields,
                                        std::size_t extent);

  /// MPI_Type_commit: must be called on derived types before use.
  void commit() noexcept;
  bool committed() const noexcept;

  bool is_basic() const noexcept;
  BasicType basic_type() const;  ///< valid only when is_basic()

  /// Byte extent of one element (stride between consecutive elements).
  std::size_t extent() const noexcept;
  /// Bytes of payload in one element (sum of blocks; == extent when the type
  /// has no padding holes).
  std::size_t payload_size() const noexcept;
  /// True when the payload occupies the whole extent with no holes, so
  /// `count` elements can be moved as one flat copy.
  bool is_contiguous() const noexcept;

  std::size_t field_count() const noexcept;
  const std::vector<TypeField>& fields() const noexcept;

  /// Compiled pack plan (built once at type creation): the maximal
  /// contiguous runs a pack/unpack walks per element. Basic and contiguous
  /// types have a single run covering the whole payload.
  const std::vector<PackRun>& pack_plan() const noexcept;

  /// Gather `count` elements starting at `base` into a contiguous wire
  /// buffer (run by run along the pack plan for non-contiguous types).
  ByteBuffer gather(const void* base, std::size_t count) const;
  /// Gather directly into caller-owned storage; `out` must be exactly
  /// payload_size() * count bytes. Lets callers that already own the wire
  /// destination (pack(), prefixed protocol payloads) skip a staging copy.
  void gather_into(MutableByteSpan out, const void* base,
                   std::size_t count) const;
  /// Scatter a wire buffer produced by gather() into `count` elements at
  /// `base`. Fails if the buffer size does not match.
  Status scatter(ByteSpan wire, void* base, std::size_t count) const;

  friend bool operator==(const Datatype& a, const Datatype& b) noexcept {
    return a.impl_ == b.impl_;
  }

 private:
  struct Impl;
  explicit Datatype(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

/// Map a C++ arithmetic type to its miniMPI basic type.
template <typename T>
constexpr BasicType basic_type_of() noexcept;

template <> constexpr BasicType basic_type_of<char>() noexcept { return BasicType::Char; }
template <> constexpr BasicType basic_type_of<signed char>() noexcept { return BasicType::SignedChar; }
template <> constexpr BasicType basic_type_of<unsigned char>() noexcept { return BasicType::UnsignedChar; }
template <> constexpr BasicType basic_type_of<short>() noexcept { return BasicType::Short; }
template <> constexpr BasicType basic_type_of<int>() noexcept { return BasicType::Int; }
template <> constexpr BasicType basic_type_of<unsigned int>() noexcept { return BasicType::UnsignedInt; }
template <> constexpr BasicType basic_type_of<long>() noexcept { return BasicType::Long; }
template <> constexpr BasicType basic_type_of<unsigned long>() noexcept { return BasicType::UnsignedLong; }
template <> constexpr BasicType basic_type_of<long long>() noexcept { return BasicType::LongLong; }
template <> constexpr BasicType basic_type_of<float>() noexcept { return BasicType::Float; }
template <> constexpr BasicType basic_type_of<double>() noexcept { return BasicType::Double; }
template <> constexpr BasicType basic_type_of<long double>() noexcept { return BasicType::LongDouble; }

/// Datatype handle for a C++ arithmetic type.
template <typename T>
Datatype datatype_of() {
  return Datatype::basic(basic_type_of<T>());
}

}  // namespace cid::mpi
