// miniMPI requests and the per-rank progress engine.
//
// Matching rules follow MPI: a receive matches (source, tag, communicator)
// with wildcards kAnySource / kAnyTag; posted receives are satisfied in post
// order; messages from one source on one (comm, tag) never overtake each
// other (guaranteed by the arrival-ordered mailbox scan).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/datatype.hpp"
#include "rt/runtime.hpp"

namespace cid::mpi {

/// Completion information of a receive (MPI_Status subset).
struct RecvStatus {
  int source = kAnySource;  ///< comm rank of the sender
  int tag = kAnyTag;
  std::size_t count = 0;  ///< elements actually received
};

namespace detail {

enum class ReqKind : std::uint8_t {
  Send,
  Recv,
  PersistentSend,
  PersistentRecv,
};

struct RequestImpl {
  ReqKind kind = ReqKind::Send;
  bool active = false;    ///< persistent requests: started and not yet waited
  bool complete = false;
  simnet::SimTime complete_at = 0.0;
  RecvStatus status;

  // Receive-side fields (Recv / PersistentRecv).
  void* recv_buf = nullptr;
  std::size_t recv_capacity = 0;  ///< max elements
  Datatype dtype = Datatype::basic(BasicType::Byte);
  int match_source = kAnySource;  ///< comm rank or kAnySource
  int match_tag = kAnyTag;
  Comm comm = Comm{};

  // Persistent-send fields.
  const void* send_buf = nullptr;
  std::size_t send_count = 0;
  int dest = -1;
  int send_tag = 0;

  std::uint64_t post_order = 0;  ///< engine-assigned, for ordered matching
};

}  // namespace detail

/// Value-semantic request handle (shared, like MPI_Request copies).
class Request {
 public:
  Request() = default;

  bool valid() const noexcept { return impl_ != nullptr; }
  bool complete() const noexcept { return impl_ && impl_->complete; }

  /// Completion info; meaningful for receive requests after completion.
  const RecvStatus& status() const {
    CID_REQUIRE(valid(), ErrorCode::InvalidArgument,
                "status() on invalid Request");
    return impl_->status;
  }

 private:
  friend class Engine;
  friend struct RequestAccess;
  explicit Request(std::shared_ptr<detail::RequestImpl> impl)
      : impl_(std::move(impl)) {}
  std::shared_ptr<detail::RequestImpl> impl_;
};

/// Internal accessor used by the p2p implementation.
struct RequestAccess {
  static std::shared_ptr<detail::RequestImpl>& impl(Request& r) {
    return r.impl_;
  }
  static const std::shared_ptr<detail::RequestImpl>& impl(const Request& r) {
    return r.impl_;
  }
  static Request wrap(std::shared_ptr<detail::RequestImpl> impl) {
    return Request(std::move(impl));
  }
};

/// Per-rank progress engine: owns the posted-receive list and the matching
/// logic. One per rank, fetched from the World registry; only ever touched
/// from its own rank's thread.
class Engine {
 public:
  /// Engine of the calling rank.
  static Engine& mine();

  /// Register a posted (active, incomplete) receive.
  void post_recv(const std::shared_ptr<detail::RequestImpl>& request);

  /// Try to complete posted receives from the mailbox without blocking.
  void progress(rt::RankCtx& ctx);

  /// Block until `request` completes (progressing all posted receives in
  /// posted order along the way).
  void wait_complete(rt::RankCtx& ctx,
                     const std::shared_ptr<detail::RequestImpl>& request);

  /// Like wait_complete, but with a virtual-time deadline. Returns true when
  /// the request completed with complete_at <= deadline. Returns false when
  /// a tombstone for the request's message arrived (the message was dropped
  /// by the fault layer) or the message arrived only after the deadline; in
  /// both cases the clock is advanced to the deadline and, if the request
  /// never completed, it is cancelled (removed from the posted list).
  bool wait_complete_for(rt::RankCtx& ctx,
                         const std::shared_ptr<detail::RequestImpl>& request,
                         simnet::SimTime deadline);

  /// Block until a message that can complete at least one posted incomplete
  /// receive is available, then progress. Used by waitany/waitsome.
  void wait_any_progress(rt::RankCtx& ctx);

  /// Next window id for this rank's collective window-creation sequence.
  int next_window_id() noexcept { return next_window_id_++; }

 private:
  /// Complete `request` with the payload of `envelope` (scatter + status +
  /// completion time).
  void deliver(rt::RankCtx& ctx, detail::RequestImpl& request,
               const rt::Envelope& envelope);

  std::vector<std::shared_ptr<detail::RequestImpl>> posted_;
  std::uint64_t next_post_order_ = 0;
  int next_window_id_ = 0;
};

}  // namespace cid::mpi
