// Rank-local executor state: pending (not yet synchronized) communication,
// carryover synchronization deferred across regions (place_sync), cached
// derived datatypes ("reused within the function scope"), persistent-request
// slots per directive site, SHMEM flag words, and cached one-sided windows.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "core/expr.hpp"
#include "core/reliability.hpp"
#include "core/stats.hpp"
#include "core/type_layout.hpp"
#include "mpi/mpi.hpp"
#include "rt/payload.hpp"
#include "rt/runtime.hpp"

namespace cid::core::detail {

/// A directive site: the lexical position of a comm_p2p (file:line). All
/// ranks execute the same sites in the same order (SPMD discipline), which
/// makes site-keyed collective allocations consistent.
using SiteKey = std::string;

/// Byte range touched by a pending operation, for the adjacency analysis
/// ("adjacent comm_p2p directives with independent buffers" share one sync).
struct BufferRange {
  const std::byte* begin = nullptr;
  std::size_t size = 0;
  bool written = false;  ///< receive target (true) vs send source (false)
};

inline bool ranges_conflict(const BufferRange& a, const BufferRange& b) {
  if (!a.written && !b.written) return false;  // read-read never conflicts
  return a.begin < b.begin + b.size && b.begin < a.begin + a.size;
}

/// A receiver-side SHMEM completion obligation: wait until the site flag
/// reaches the cumulative expected count.
struct ShmemExpect {
  const std::uint64_t* flag = nullptr;
  std::uint64_t expected = 0;
};

/// Per-site SHMEM lowering state. Completion flags are an array with one
/// slot per possible SOURCE rank (single-writer counters), so a site whose
/// sender changes over time — or that has several senders — stays correct.
struct ShmemSiteState {
  std::uint64_t* flags = nullptr;  ///< symmetric array, one slot per PE
  std::map<int, std::uint64_t> sent_to;        ///< dest PE -> my messages
  std::map<int, std::uint64_t> expected_from;  ///< src PE -> expected count
};

/// A sender-side deferred flag update: one per (site, destination) per sync
/// epoch, published at the consolidated synchronization point instead of
/// after every message.
struct ShmemFlagUpdate {
  ShmemSiteState* site = nullptr;
  int dest = -1;
};

/// A reliable transfer's sender half. The attempt-0 DATA envelope is already
/// in flight (injected at directive time, mirroring the plain lowering's
/// costs); the epoch loop waits for the ack and retransmits from `payload`.
struct ReliableSend {
  SiteKey site;
  std::size_t pair_index = 0;
  int dest = -1;        ///< world rank
  int transfer_id = 0;  ///< per ordered (src,dst) pair, program order
  /// Attempt-0 DATA bytes (attempt header + gathered wire), aliasing the
  /// in-flight envelope's payload; retransmissions re-prefix the wire span.
  rt::Payload payload;
  simnet::SimTime timeout = 0.0;  ///< base retransmission timeout (seconds)
  int max_retries = 0;
  simnet::SimTime sent_at = 0.0;  ///< attempt-0 injection-complete time
  simnet::SimTime local_complete_at = 0.0;  ///< eager buffer-reuse time
};

/// A reliable transfer's receiver half; matched in the epoch loop.
struct ReliableRecv {
  SiteKey site;
  std::size_t pair_index = 0;
  int src = -1;  ///< world rank
  int transfer_id = 0;
  void* buf = nullptr;
  std::size_t count = 0;
  mpi::Datatype dtype = mpi::Datatype::basic(mpi::BasicType::Byte);
  simnet::SimTime timeout = 0.0;
  int max_retries = 0;
  simnet::SimTime posted_at = 0.0;
};

/// A receiver-side flat-copy completion obligation (cid::tune): the wire
/// carried the flat element images into `staging`; after the waitall the
/// recorded pack plan scatters them into the composite receive buffer.
struct FlatScatter {
  std::vector<std::byte> staging;  ///< heap buffer, stable across moves
  void* rbuf = nullptr;
  mpi::Datatype dtype = mpi::Datatype::basic(mpi::BasicType::Byte);
  std::size_t count = 0;
};

/// Everything that still needs synchronization.
struct PendingOps {
  std::vector<mpi::Request> mpi_requests;
  std::vector<ReliableSend> reliable_sends;
  std::vector<ReliableRecv> reliable_recvs;
  std::vector<ShmemExpect> shmem_expects;
  std::vector<ShmemFlagUpdate> shmem_flag_updates;
  bool shmem_quiet_needed = false;
  std::vector<mpi::Win> windows_to_fence;
  std::vector<BufferRange> ranges;
  /// Sub-threshold sends batched per destination (cid::tune aggregation);
  /// wire format in rt/agg.hpp. Injected as one envelope per destination at
  /// the next flush, before the waitall that completes their receives.
  std::map<int, std::vector<std::byte>> agg_buffers;
  std::vector<FlatScatter> flat_scatters;

  bool empty() const noexcept {
    return mpi_requests.empty() && reliable_sends.empty() &&
           reliable_recvs.empty() && shmem_expects.empty() &&
           shmem_flag_updates.empty() && !shmem_quiet_needed &&
           windows_to_fence.empty() && agg_buffers.empty() &&
           flat_scatters.empty();
  }
  void merge_from(PendingOps&& other);
};

/// Per-site persistent-request slots (the compiler's request table, sized by
/// the loop's execution count between synchronization points).
struct ChannelSlots {
  std::vector<mpi::Request> send_slots;
  std::vector<mpi::Request> recv_slots;
  std::size_t send_used = 0;  ///< slots consumed since the last flush
  std::size_t recv_used = 0;
};

/// Per-site cached one-sided window.
struct WindowCacheEntry {
  mpi::Win win;
  void* base = nullptr;
  std::size_t bytes = 0;
};

/// Per-site cached group communicator for comm_collective (split is
/// re-issued collectively when the group clause's value changes).
struct GroupCommEntry {
  core::ExprValue color = 0;
  bool valid = false;
  mpi::Comm comm;
};

/// Per-site SHMEM collective state. `flags` has 2*npes single-writer slots:
/// [0, npes) publish data arrival, [npes, 2*npes) acknowledge consumption.
/// Acks are deferred to the NEXT execution of the site — the proof that the
/// caller consumed the previous round's buffers — which gives consecutive
/// one-sided collectives on the same buffers back-pressure without an extra
/// barrier.
struct ShmemCollectiveSite {
  std::uint64_t* flags = nullptr;  ///< symmetric, 2*npes slots
  std::uint64_t executions = 0;    ///< rounds of this site on this rank
  std::map<int, std::uint64_t> sent_to;        ///< dest PE -> my data puts
  std::map<int, std::uint64_t> expected_from;  ///< src PE -> expected data
  std::map<int, std::uint64_t> acks_sent_to;   ///< dest PE -> my acks
  std::map<int, std::uint64_t> acks_expected_from;  ///< src PE -> their acks
};

class Region;

/// The per-rank executor state. Lazily (re)created per SPMD region.
class ExecState {
 public:
  /// State of the calling rank; resets automatically when a new World runs.
  static ExecState& mine();

  PendingOps pending;
  /// Sync deferred past a region boundary by place_sync.
  PendingOps carryover;
  bool carryover_flush_at_next_region_begin = false;
  bool carryover_adjacent = false;

  /// Rank-local communication statistics (see core/stats.hpp).
  CommStats stats;

  /// Per-peer monotonic transfer ids for the reliability protocol. SPMD
  /// discipline makes the two sides of each ordered (src,dst) pair agree:
  /// the sender's tx counter for dst and the receiver's rx counter for src
  /// advance at the same program points.
  std::map<int, int> reliable_tx_ids;  ///< dest world rank -> next id
  std::map<int, int> reliable_rx_ids;  ///< src world rank -> next id
  /// Per-site persistent-slot accounting for the reliable lowering, which
  /// has no real request objects. Mirrors ChannelSlots exactly: one slot per
  /// p2p execution per site between flushes, one-time setup charged when the
  /// site's table grows, usage reset at the epoch (the flush equivalent).
  struct ReliableSlotUse {
    std::size_t send_slots = 0;  ///< slots created (setup charged) so far
    std::size_t recv_slots = 0;
    std::size_t send_used = 0;  ///< slots consumed since the last epoch
    std::size_t recv_used = 0;
  };
  std::map<SiteKey, ReliableSlotUse> reliable_slots;
  /// Pairs the reliability protocol gave up on (see core::delivery_report()).
  DeliveryReport delivery_report;

  std::map<SiteKey, ShmemSiteState> shmem_sites;
  std::map<SiteKey, ChannelSlots> channels;
  std::map<SiteKey, WindowCacheEntry> windows;
  std::map<SiteKey, GroupCommEntry> group_comms;
  std::map<SiteKey, ShmemCollectiveSite> shmem_collectives;
  std::map<const TypeLayout*, mpi::Datatype> datatype_cache;
  /// Sites whose pack-vs-flat throughput was already measured this run
  /// (cid::tune record mode calibrates each site once).
  std::map<SiteKey, bool> tune_calibrated;

  /// Region nesting stack (owned by the Region RAII objects).
  std::vector<class RegionImpl*> region_stack;

  /// Cached derived datatype for a reflected layout; charges the model's
  /// type-creation cost on first use (the paper's per-scope reuse).
  mpi::Datatype datatype_for(const TypeLayout& layout);

  /// Complete everything in `ops` (waitall / shmem waits / quiet / fences)
  /// and reset slot usage so persistent requests can be restarted.
  void flush(PendingOps& ops);

 private:
  friend struct ExecStateResetCheck;
  const rt::World* world_ = nullptr;
};

/// cid::tune aggregation: inject each destination's batched wire buffer as
/// one combined envelope (split back into per-message sub-envelopes by the
/// destination mailbox, see rt/agg.hpp). Must run before the waitall that
/// completes the matching receives.
void inject_aggregates(ExecState& state, PendingOps& ops);

/// Inject only the batch bound for `dest`: a direct (unbatched) send to a
/// destination must not overtake its batched predecessors.
void inject_aggregate_for(ExecState& state, PendingOps& ops, int dest);

/// cid::tune flat-copy: scatter the staged flat element images into the
/// composite receive buffers (pack-plan runs only — holes are untouched).
/// Must run after the waitall that filled the staging buffers.
void apply_flat_scatters(ExecState& state, PendingOps& ops);

}  // namespace cid::core::detail
