// The embedded (runtime) form of the communication directives.
//
// Pragma form (paper Listing 3):            Embedded form:
//   #pragma comm_parameters \                 cid::core::comm_parameters(
//       sender(rank-1) receiver(rank+1) \         Clauses()
//       sendwhen(rank%2==0) \                         .sender("rank-1")
//       receivewhen(rank%2==1) \                      .receiver("rank+1")
//       count(size) max_comm_iter(n) \                .sendwhen("rank%2==0")
//       place_sync(END_PARAM_REGION) \                .receivewhen("rank%2==1")
//   {                                                 .count("size").let("size", size)
//     for (p = 0; p < n; p++)                         .max_comm_iter(n)
//       #pragma comm_p2p sbuf(&buf1[p]) \             .place_sync(SyncPlacement::EndParamRegion),
//           rbuf(&buf2[p])                        [&](Region& region) {
//       { }                                           for (p = 0; p < n; p++)
//                                                       region.p2p(Clauses()
//   }                                                      .sbuf(buf(&buf1[p])).rbuf(buf(&buf2[p])));
//                                                   });
//
// Semantics implemented (see DESIGN.md §5): clause inheritance, participation
// guards, count inference, automatic datatype handling with per-scope reuse,
// target retargeting (MPI 2-sided / MPI 1-sided / SHMEM), consolidated
// synchronization with place_sync control, and communication/computation
// overlap via the optional block argument of p2p().
#pragma once

#include <functional>
#include <source_location>

#include "core/clauses.hpp"

namespace cid::core {

namespace detail {
class RegionImpl;
}

/// Handle to an open comm_parameters region, passed to the region body.
class Region {
 public:
  /// Execute one comm_p2p directive (clauses inherit from the region).
  void p2p(const Clauses& clauses,
           std::source_location site = std::source_location::current());

  /// comm_p2p with an overlap block: the computation runs while the
  /// transfers are in flight, before any synchronization (paper Listing 7).
  void p2p(const Clauses& clauses, const std::function<void()>& overlap,
           std::source_location site = std::source_location::current());

 private:
  friend void comm_parameters(const Clauses&,
                              const std::function<void(Region&)>&,
                              std::source_location);
  explicit Region(detail::RegionImpl& impl) : impl_(&impl) {}
  detail::RegionImpl* impl_;
};

/// Execute a comm_parameters region: clause assertions apply to every p2p
/// inside `body`; synchronization is consolidated per place_sync (default:
/// END_PARAM_REGION).
void comm_parameters(
    const Clauses& clauses, const std::function<void(Region&)>& body,
    std::source_location site = std::source_location::current());

/// Standalone comm_p2p (no enclosing region): transfers are synchronized at
/// the end of the directive, after the optional overlap block.
void comm_p2p(const Clauses& clauses,
              std::source_location site = std::source_location::current());
void comm_p2p(const Clauses& clauses, const std::function<void()>& overlap,
              std::source_location site = std::source_location::current());

/// Complete any synchronization deferred across regions by place_sync
/// (BEGIN_NEXT_PARAM_REGION / END_ADJ_PARAM_REGIONS) when no further region
/// follows.
void comm_flush();

}  // namespace cid::core
