#include "core/region.hpp"

#include <algorithm>
#include <chrono>

#include <cstring>

#include "core/exec_state.hpp"
#include "core/reliability.hpp"
#include "core/trace.hpp"
#include "obs/obs.hpp"
#include "rt/agg.hpp"
#include "shmem/shmem.hpp"
#include "tune/tune.hpp"

namespace cid::core {

namespace detail {

/// One open comm_parameters region (lives on the Region RAII stack).
class RegionImpl {
 public:
  Clauses clauses;  ///< already merged with any enclosing region
  SiteKey site;
};

namespace {

constexpr int kDirectiveTag = 2000;

SiteKey site_key(const std::source_location& location) {
  return std::string(location.file_name()) + ":" +
         std::to_string(location.line());
}

Env make_env(const Clauses& merged) {
  Env env;
  auto& ctx = rt::current_ctx();
  env.bind("rank", ctx.rank());
  env.bind("nprocs", ctx.nranks());
  for (const auto& [name, value] : merged.bindings()) {
    env.bind(name, value);
  }
  return env;
}

ExprValue eval_clause(const ClauseExpr& clause, const Env& env,
                      const char* what) {
  auto value = clause.eval(env);
  CID_REQUIRE(value.is_ok(), ErrorCode::InvalidClause,
              std::string(what) + " clause: " + value.status().to_string());
  return value.value();
}

void throw_if_error(const Status& status) {
  if (!status.is_ok()) {
    throw CidError(status.code(), status.message());
  }
}

/// Count inference: explicit count clause, else the smallest known array
/// extent among the listed buffers (paper Section III-B).
std::size_t resolve_count(const Clauses& merged, const Env& env) {
  if (merged.count_clause().present()) {
    const ExprValue value =
        eval_clause(merged.count_clause(), env, "count");
    CID_REQUIRE(value > 0, ErrorCode::InvalidClause,
                "count clause must evaluate to a positive value, got " +
                    std::to_string(value));
    return static_cast<std::size_t>(value);
  }
  std::size_t smallest = SIZE_MAX;
  for (const auto* list : {&merged.sbuf_list(), &merged.rbuf_list()}) {
    for (const auto& buffer : *list) {
      if (buffer.has_extent) smallest = std::min(smallest, buffer.extent_count);
    }
  }
  CID_REQUIRE(smallest != SIZE_MAX, ErrorCode::InvalidClause,
              "count omitted and no listed buffer has a known array extent");
  CID_REQUIRE(smallest > 0, ErrorCode::InvalidClause,
              "count inference found a zero-sized array");
  return smallest;
}

mpi::Datatype datatype_for_buffer(ExecState& state, const BufferRef& buffer) {
  if (buffer.is_composite()) return state.datatype_for(*buffer.layout);
  return mpi::Datatype::basic(buffer.basic);
}

Target to_core_target(tune::Lowering lowering) noexcept {
  switch (lowering) {
    case tune::Lowering::Mpi1Side: return Target::Mpi1Side;
    case tune::Lowering::Shmem: return Target::Shmem;
    case tune::Lowering::Mpi2Side: break;
  }
  return Target::Mpi2Side;
}

/// Record mode (CID_TUNE=record): wall-clock throughput of this site's
/// pack-plan walk vs a flat extent copy — the two rates whose measured
/// crossover drives the flat-copy lowering decision. Wall time only; the
/// virtual clock is untouched.
void calibrate_pack(const SiteKey& site, rt::RankCtx& ctx,
                    const mpi::Datatype& dtype, const void* base,
                    std::size_t count) {
  const std::size_t payload = dtype.payload_size() * count;
  const std::size_t extent = dtype.extent() * count;
  if (payload == 0 || extent == 0) return;
  std::vector<std::byte> scratch(std::max(payload, extent));
  constexpr int kReps = 3;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kReps; ++r) {
    dtype.gather_into(MutableByteSpan(scratch.data(), payload), base, count);
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (int r = 0; r < kReps; ++r) {
    std::memcpy(scratch.data(), base, extent);
  }
  const auto t2 = std::chrono::steady_clock::now();
  obs::observe("cid.tune.plan_ns_per_byte", site, ctx.rank(),
               std::chrono::duration<double, std::nano>(t1 - t0).count() /
                   (kReps * static_cast<double>(payload)));
  obs::observe("cid.tune.flat_ns_per_byte", site, ctx.rank(),
               std::chrono::duration<double, std::nano>(t2 - t1).count() /
                   (kReps * static_cast<double>(extent)));
}

/// Record mode: per-site size profile and symmetric-heap eligibility, the
/// inputs of the target(auto) decision (docs/TUNING.md).
void record_tune_observations(ExecState& state, rt::RankCtx& ctx,
                              const SiteKey& site,
                              const std::vector<BufferRef>& sbufs,
                              const std::vector<BufferRef>& rbufs,
                              std::size_t count) {
  for (std::size_t i = 0; i < sbufs.size(); ++i) {
    const mpi::Datatype dtype = datatype_for_buffer(state, sbufs[i]);
    obs::observe("cid.tune.msg_bytes", site, ctx.rank(),
                 static_cast<double>(count * dtype.payload_size()));
    obs::count(shmem::is_symmetric(rbufs[i].data) ? "cid.tune.sym_ok"
                                                  : "cid.tune.sym_fail",
               site, ctx.rank());
    if (!dtype.is_contiguous() && !state.tune_calibrated[site]) {
      state.tune_calibrated[site] = true;
      calibrate_pack(site, ctx, dtype, sbufs[i].data, count);
    }
  }
}

/// Fetch a persistent slot (growing the site's request table as the
/// compiler's generated code would), rebinding and starting it.
mpi::Request& acquire_send_slot(ExecState& state, const SiteKey& site,
                                const mpi::Comm& comm, const void* buf,
                                std::size_t count, const mpi::Datatype& dtype,
                                int dest) {
  auto& slots = state.channels[site];
  const std::size_t index = slots.send_used++;
  if (index < slots.send_slots.size()) {
    mpi::Request& slot = slots.send_slots[index];
    if (slot.valid() && !slot.complete()) {
      // Safety valve: the slot is somehow still in flight; replace it.
      slot = mpi::send_init(comm, buf, count, dtype, dest, kDirectiveTag);
    } else {
      mpi::rebind_send(slot, buf, count);
    }
    mpi::start(slot);
    return slot;
  }
  slots.send_slots.push_back(
      mpi::send_init(comm, buf, count, dtype, dest, kDirectiveTag));
  mpi::start(slots.send_slots.back());
  return slots.send_slots.back();
}

mpi::Request& acquire_recv_slot(ExecState& state, const SiteKey& site,
                                const mpi::Comm& comm, void* buf,
                                std::size_t capacity,
                                const mpi::Datatype& dtype, int source) {
  auto& slots = state.channels[site];
  const std::size_t index = slots.recv_used++;
  if (index < slots.recv_slots.size()) {
    mpi::Request& slot = slots.recv_slots[index];
    if (slot.valid() && !slot.complete()) {
      // Safety valve: the slot is somehow still in flight; replace it.
      slot = mpi::recv_init(comm, buf, capacity, dtype, source, kDirectiveTag);
    } else {
      mpi::rebind_recv(slot, buf, capacity);
    }
    mpi::start(slot);
    return slot;
  }
  slots.recv_slots.push_back(
      mpi::recv_init(comm, buf, capacity, dtype, source, kDirectiveTag));
  mpi::start(slots.recv_slots.back());
  return slots.recv_slots.back();
}

/// The reliable lowering of an MPI-two-sided pair list. Mirrors the plain
/// lowering's virtual-time charges exactly (receive posts, gather, injection,
/// eager/rendezvous completion, persistent-slot setup), so at a 0% fault
/// rate the protocol costs what the unprotected path costs; the protocol
/// state itself (acks, retransmission timers) lives in the epoch loop that
/// runs at the synchronization point (core/reliability.cpp).
void execute_reliable_mpi2(ExecState& state, rt::RankCtx& ctx,
                           const Clauses& merged, const Env& env,
                           const SiteKey& site, std::size_t count,
                           bool send_active, bool recv_active,
                           int receiver_rank, int sender_rank,
                           bool use_persistent) {
  const auto& costs = ctx.model().mpi_two_sided;
  const ExprValue timeout_us =
      eval_clause(merged.reliability_timeout_clause(), env, "reliability");
  CID_REQUIRE(timeout_us > 0, ErrorCode::InvalidClause,
              "reliability timeout must be positive (virtual microseconds), "
              "got " + std::to_string(timeout_us));
  const ExprValue retries =
      eval_clause(merged.reliability_retries_clause(), env, "reliability");
  CID_REQUIRE(retries >= 0, ErrorCode::InvalidClause,
              "reliability max_retries must be non-negative, got " +
                  std::to_string(retries));
  simnet::SimTime timeout = static_cast<simnet::SimTime>(timeout_us) * 1e-6;
  if (tune::active()) {
    // Both sides derive the same tightened timeout from the same profile
    // entry, so sender deadlines and receiver deadlines stay consistent.
    timeout = tune::tuned_timeout(tune::Tuner::global().site(site), timeout);
  }
  if (tune::recording()) {
    obs::observe("cid.reliability.timeout_seconds", site, ctx.rank(),
                 timeout);
  }
  const int max_retries = static_cast<int>(retries);

  const auto& sbufs = merged.sbuf_list();
  const auto& rbufs = merged.rbuf_list();
  const std::size_t pairs = sbufs.size();

  // Receives first, like the plain lowering (an opportunistic self-message
  // finds its counterpart posted).
  if (recv_active) {
    for (std::size_t i = 0; i < pairs; ++i) {
      const mpi::Datatype dtype = datatype_for_buffer(state, rbufs[i]);
      if (use_persistent) {
        // One slot per p2p execution per site between epochs, exactly like
        // acquire_recv_slot: setup is charged only when the table grows.
        auto& slots = state.reliable_slots[site];
        if (slots.recv_used++ >= slots.recv_slots) {
          ++slots.recv_slots;
          ctx.charge_compute(costs.persistent_setup);
        }
        ctx.charge_compute(costs.persistent_recv_overhead);
      } else {
        ctx.charge_compute(costs.recv_overhead);
      }
      ReliableRecv recv;
      recv.site = site;
      recv.pair_index = i;
      recv.src = sender_rank;  // directives run on the world communicator
      recv.transfer_id = state.reliable_rx_ids[sender_rank]++;
      recv.buf = rbufs[i].data;
      recv.count = count;
      recv.dtype = dtype;
      recv.timeout = timeout;
      recv.max_retries = max_retries;
      recv.posted_at = ctx.clock().now();
      state.pending.reliable_recvs.push_back(std::move(recv));
    }
  }
  if (send_active) {
    for (std::size_t i = 0; i < pairs; ++i) {
      const mpi::Datatype dtype = datatype_for_buffer(state, sbufs[i]);
      ++state.stats.mpi2_messages;
      state.stats.mpi2_bytes += count * dtype.payload_size();
      ++state.stats.reliable_transfers;
      simnet::SimTime send_overhead = costs.send_overhead;
      if (use_persistent) {
        auto& slots = state.reliable_slots[site];
        if (slots.send_used++ >= slots.send_slots) {
          ++slots.send_slots;
          ctx.charge_compute(costs.persistent_setup);
        }
        send_overhead = costs.persistent_send_overhead;
      }
      if (!dtype.is_contiguous()) {
        ctx.charge_compute(
            static_cast<simnet::SimTime>(dtype.payload_size() * count) /
            ctx.model().host.datatype_pack_bytes_per_second);
      }
      // Gather the wire bytes directly behind the attempt header; the one
      // resulting buffer is shared (refcounted) between the in-flight
      // envelope and the retransmission source — no copies on this path.
      const std::size_t bytes = dtype.payload_size() * count;
      cid::ByteBuffer prefixed(sizeof(std::uint32_t) + bytes);
      const std::uint32_t attempt0 = 0;
      std::memcpy(prefixed.data(), &attempt0, sizeof(attempt0));
      dtype.gather_into(
          cid::MutableByteSpan(prefixed.data() + sizeof(attempt0), bytes),
          sbufs[i].data, count);
      const rt::Payload attempt0_payload{std::move(prefixed)};
      const simnet::SimTime injection_start = ctx.clock().now();
      ctx.charge_compute(send_overhead + costs.per_message_gap +
                         static_cast<simnet::SimTime>(bytes) /
                             costs.injection_bytes_per_second);
      const simnet::SimTime delivery =
          std::max(costs.delivery_time(injection_start, bytes),
                   ctx.clock().now() + costs.latency);

      ReliableSend send;
      send.site = site;
      send.pair_index = i;
      send.dest = receiver_rank;
      send.transfer_id = state.reliable_tx_ids[receiver_rank]++;
      send.timeout = timeout;
      send.max_retries = max_retries;
      send.sent_at = ctx.clock().now();
      send.local_complete_at = (bytes > costs.eager_threshold_bytes)
                                   ? delivery
                                   : ctx.clock().now();

      // Attempt 0 goes out now, exactly when the plain isend would inject.
      rt::Envelope envelope;
      envelope.src = ctx.rank();
      envelope.tag = send.transfer_id;
      envelope.channel = rt::Channel::Internal;
      envelope.context = kReliableDataCtx;
      envelope.payload = attempt0_payload;
      envelope.available_at = delivery;
      ctx.world().deliver(receiver_rank, std::move(envelope));

      send.payload = attempt0_payload;
      state.pending.reliable_sends.push_back(std::move(send));
    }
  }
}

/// Flush only rank-local completions (MPI requests, SHMEM waits/quiet) when
/// the adjacency analysis finds a buffer conflict. Window fences are
/// collective and stay deferred to the region end, which every rank reaches.
void flush_local(ExecState& state, PendingOps& ops) {
  inject_aggregates(state, ops);
  if (!ops.reliable_sends.empty() || !ops.reliable_recvs.empty()) {
    run_reliable_epoch(state, ops);
  }
  if (!ops.mpi_requests.empty()) {
    ++state.stats.waitalls;
    state.stats.requests_retired += ops.mpi_requests.size();
    mpi::waitall(ops.mpi_requests);
    ops.mpi_requests.clear();
    for (auto& [site, slots] : state.channels) {
      slots.send_used = 0;
      slots.recv_used = 0;
    }
  }
  apply_flat_scatters(state, ops);
  if (!ops.shmem_flag_updates.empty()) {
    shmem::fence();
    const int self = rt::current_ctx().rank();
    for (const auto& update : ops.shmem_flag_updates) {
      shmem::put_value64(&update.site->flags[self],
                         update.site->sent_to.at(update.dest), update.dest);
    }
    ops.shmem_flag_updates.clear();
  }
  for (const auto& expect : ops.shmem_expects) {
    shmem::wait_until(expect.flag, shmem::Cmp::Ge, expect.expected);
  }
  ops.shmem_expects.clear();
  if (ops.shmem_quiet_needed) {
    ++state.stats.shmem_quiets;
    shmem::quiet();
    ops.shmem_quiet_needed = false;
  }
  ops.ranges.clear();
}

/// The adjacency analysis of Section III-A: adjacent directives with
/// independent buffers share one synchronization; a dependence forces an
/// intermediate (local) sync.
void sync_if_buffers_conflict(ExecState& state,
                              const std::vector<BufferRange>& incoming) {
  for (const auto& range : incoming) {
    for (const auto& pending : state.pending.ranges) {
      if (ranges_conflict(range, pending)) {
        ++state.stats.conflict_flushes;
        flush_local(state, state.pending);
        return;
      }
    }
  }
}

void execute_p2p(const Clauses& site_clauses, const RegionImpl* region,
                 const std::function<void()>* overlap, const SiteKey& site) {
  auto& ctx = rt::current_ctx();
  auto& state = ExecState::mine();

  const simnet::SimTime trace_begin = ctx.clock().now();
  const std::uint64_t trace_bytes0 = state.stats.total_bytes();
  const std::uint64_t trace_msgs0 = state.stats.total_messages();

  ++state.stats.p2p_directives;
  throw_if_error(site_clauses.validate_p2p_site());
  const Clauses merged = region != nullptr
                             ? Clauses::merged(region->clauses, site_clauses)
                             : site_clauses;
  throw_if_error(merged.validate_for_p2p());

  const Env env = make_env(merged);
  const bool send_active =
      !merged.sendwhen_clause().present() ||
      eval_clause(merged.sendwhen_clause(), env, "sendwhen") != 0;
  const bool recv_active =
      !merged.receivewhen_clause().present() ||
      eval_clause(merged.receivewhen_clause(), env, "receivewhen") != 0;

  const std::size_t count = resolve_count(merged, env);
  Target target = merged.target_clause().value_or(Target::Mpi2Side);
  const auto& sbufs = merged.sbuf_list();
  const auto& rbufs = merged.rbuf_list();
  const std::size_t pairs = sbufs.size();

  // Destination / source ranks are evaluated lazily: the receiver clause
  // only on sending ranks, the sender clause only on receiving ranks, so
  // boundary ranks excluded by sendwhen/receivewhen never evaluate an
  // out-of-range neighbour expression (paper Listing 2).
  int receiver_rank = -1;
  if (send_active) {
    const ExprValue value =
        eval_clause(merged.receiver_clause(), env, "receiver");
    CID_REQUIRE(value >= 0 && value < ctx.nranks(), ErrorCode::InvalidClause,
                "receiver clause evaluates to out-of-range rank " +
                    std::to_string(value));
    receiver_rank = static_cast<int>(value);
  }
  int sender_rank = -1;
  if (recv_active) {
    const ExprValue value = eval_clause(merged.sender_clause(), env, "sender");
    CID_REQUIRE(value >= 0 && value < ctx.nranks(), ErrorCode::InvalidClause,
                "sender clause evaluates to out-of-range rank " +
                    std::to_string(value));
    sender_rank = static_cast<int>(value);
  }

  // Adjacency analysis against pending (unsynchronized) operations.
  std::vector<BufferRange> touched;
  if (send_active) {
    for (const auto& buffer : sbufs) {
      touched.push_back({static_cast<const std::byte*>(buffer.data),
                         buffer.span_bytes(count), /*written=*/false});
    }
  }
  if (recv_active) {
    for (const auto& buffer : rbufs) {
      touched.push_back({static_cast<const std::byte*>(buffer.data),
                         buffer.span_bytes(count), /*written=*/true});
    }
  }
  sync_if_buffers_conflict(state, touched);

  const bool in_region = region != nullptr;
  // Persistent-request tables are generated only for looping regions, which
  // the programmer marks with max_comm_iter (paper Section III-B: the clause
  // "will facilitate code generation for synchronizations"); a one-shot
  // region lowers to plain nonblocking calls.
  const bool use_persistent =
      in_region && merged.max_comm_iter_clause().present();
  const mpi::Comm world = mpi::Comm::world();

  // --- cid::tune: measurement-driven lowering (docs/TUNING.md) ------------
  // With CID_TUNE=off (the default) `tuning` is false, `target(auto)`
  // resolves to the static default, and every path below is byte-identical
  // to the untuned dispatch.
  const bool tuning = tune::active();
  const tune::SiteProfile* profile =
      tuning ? tune::Tuner::global().site(site) : nullptr;
  if (target == Target::Auto) {
    tune::SiteFacts facts;
    facts.reliability = merged.reliability_present();
    facts.single_process = ctx.world().single_process();
    target = to_core_target(tune::auto_target(profile, ctx.model(), facts)
                                .lowering);
  }
  if (tune::recording() && send_active) {
    record_tune_observations(state, ctx, site, sbufs, rbufs, count);
  }

  if (merged.reliability_present()) {
    CID_REQUIRE(target == Target::Mpi2Side, ErrorCode::InvalidClause,
                "reliability requires TARGET_COMM_MPI_2SIDE (got " +
                    std::string(target_keyword(target)) + ")");
  }

  // Per-pair tuned refinements of the two-sided lowering. Both sides of a
  // transfer evaluate the same predicates from the same profile entry and
  // clause set (SPMD discipline), so they always agree on the wire format.
  const bool may_tune =
      tuning && !use_persistent && !merged.reliability_present();
  const auto pair_aggregated = [&](const mpi::Datatype& dtype, int peer) {
    return may_tune && in_region && peer != ctx.rank() &&
           tune::should_aggregate(profile, count * dtype.payload_size(),
                                  ctx.model());
  };
  const auto pair_flat = [&](const mpi::Datatype& dtype) {
    return may_tune && !dtype.is_contiguous() &&
           tune::use_flat_copy(profile, dtype.payload_size(), dtype.extent());
  };

  switch (target) {
    case Target::Auto:  // resolved above; defensive fallback to the default
    case Target::Mpi2Side: {
      if (merged.reliability_present()) {
        execute_reliable_mpi2(state, ctx, merged, env, site, count,
                              send_active, recv_active, receiver_rank,
                              sender_rank, use_persistent);
        break;
      }
      // Receives are posted before sends so an opportunistic self-message
      // (receiver_rank == rank) matches immediately.
      if (recv_active) {
        for (std::size_t i = 0; i < pairs; ++i) {
          const mpi::Datatype dtype = datatype_for_buffer(state, rbufs[i]);
          if (!pair_aggregated(dtype, sender_rank) && pair_flat(dtype)) {
            // Flat-copy receive: the wire carries whole element images into
            // a staging buffer; the pack-plan scatter runs at the flush
            // (apply_flat_scatters), touching payload runs only.
            state.pending.flat_scatters.push_back(
                FlatScatter{std::vector<std::byte>(count * dtype.extent()),
                            rbufs[i].data, dtype, count});
            auto& staging = state.pending.flat_scatters.back().staging;
            state.pending.mpi_requests.push_back(mpi::irecv(
                world, staging.data(), staging.size(),
                mpi::Datatype::basic(mpi::BasicType::Byte), sender_rank,
                kDirectiveTag));
            continue;
          }
          if (use_persistent) {
            // Slot identity includes the peer: a persistent request's
            // source/destination is fixed at init time, so each (site,
            // buffer index, peer) triple owns its own request table.
            const SiteKey slot_key = site + "#" + std::to_string(i) + "@" +
                                     std::to_string(sender_rank);
            state.pending.mpi_requests.push_back(
                acquire_recv_slot(state, slot_key, world, rbufs[i].data,
                                  count, dtype, sender_rank));
          } else {
            state.pending.mpi_requests.push_back(mpi::irecv(
                world, rbufs[i].data, count, dtype, sender_rank,
                kDirectiveTag));
          }
        }
      }
      if (send_active) {
        for (std::size_t i = 0; i < pairs; ++i) {
          const mpi::Datatype dtype = datatype_for_buffer(state, sbufs[i]);
          ++state.stats.mpi2_messages;
          state.stats.mpi2_bytes += count * dtype.payload_size();
          if (pair_aggregated(dtype, receiver_rank)) {
            // Batch: gather the logical payload into the destination's wire
            // buffer now; the combined envelope is injected at the next
            // flush, before anything waits (see inject_aggregates).
            if (!dtype.is_contiguous()) {
              ctx.charge_compute(
                  static_cast<simnet::SimTime>(dtype.payload_size() * count) /
                  ctx.model().host.datatype_pack_bytes_per_second);
            }
            rt::agg::append(state.pending.agg_buffers[receiver_rank],
                            kDirectiveTag, world.context(),
                            dtype.gather(sbufs[i].data, count));
            continue;
          }
          // A direct send must not overtake batched predecessors bound for
          // the same destination.
          inject_aggregate_for(state, state.pending, receiver_rank);
          if (pair_flat(dtype)) {
            // Flat-copy send: one straight memcpy of the whole extent onto
            // the wire instead of the per-run pack-plan walk.
            state.pending.mpi_requests.push_back(mpi::isend(
                world, sbufs[i].data, count * dtype.extent(),
                mpi::Datatype::basic(mpi::BasicType::Byte), receiver_rank,
                kDirectiveTag));
            continue;
          }
          if (use_persistent) {
            const SiteKey slot_key = site + "#" + std::to_string(i) + "@" +
                                     std::to_string(receiver_rank);
            state.pending.mpi_requests.push_back(
                acquire_send_slot(state, slot_key, world, sbufs[i].data,
                                  count, dtype, receiver_rank));
          } else {
            state.pending.mpi_requests.push_back(mpi::isend(
                world, sbufs[i].data, count, dtype, receiver_rank,
                kDirectiveTag));
          }
        }
      }
      break;
    }

    case Target::Shmem: {
      // All ranks reach the directive (SPMD), so the per-site flag word is a
      // consistent collective symmetric allocation.
      // The flag slots start at 0 because the symmetric heap is
      // zero-initialized; writing them locally here would race with an early
      // remote flag put from a faster sender. One slot per possible source.
      // Key-coordinated allocation: ranks that never execute this site do
      // not disturb the offsets of those that do.
      auto& shmem_site = state.shmem_sites[site];
      if (shmem_site.flags == nullptr) {
        shmem_site.flags = shmem::shared_flags(
            "cid.p2p." + site, static_cast<std::size_t>(ctx.nranks()));
      }
      if (send_active) {
        for (std::size_t i = 0; i < pairs; ++i) {
          CID_REQUIRE(shmem::is_symmetric(rbufs[i].data),
                      ErrorCode::InvalidClause,
                      "SHMEM target requires rbuf '" + rbufs[i].name +
                          "' to be a symmetric data object");
          shmem::putmem(rbufs[i].data, sbufs[i].data,
                        count * sbufs[i].element_size, receiver_rank);
          ++state.stats.shmem_puts;
          state.stats.shmem_bytes += count * sbufs[i].element_size;
        }
        shmem_site.sent_to[receiver_rank] += pairs;
        // The flag publication is deferred to the consolidated sync point:
        // one fence + one flag put per (site, destination) per epoch.
        auto& updates = state.pending.shmem_flag_updates;
        const bool already_pending = std::any_of(
            updates.begin(), updates.end(), [&](const ShmemFlagUpdate& u) {
              return u.site == &shmem_site && u.dest == receiver_rank;
            });
        if (!already_pending) {
          updates.push_back({&shmem_site, receiver_rank});
        }
        state.pending.shmem_quiet_needed = true;
      }
      if (recv_active) {
        const std::uint64_t* flag = &shmem_site.flags[sender_rank];
        shmem_site.expected_from[sender_rank] += pairs;
        // Replace any previous expectation on the same flag slot.
        auto it = std::find_if(
            state.pending.shmem_expects.begin(),
            state.pending.shmem_expects.end(),
            [&](const ShmemExpect& e) { return e.flag == flag; });
        if (it != state.pending.shmem_expects.end()) {
          it->expected = shmem_site.expected_from[sender_rank];
        } else {
          state.pending.shmem_expects.push_back(
              {flag, shmem_site.expected_from[sender_rank]});
        }
      }
      break;
    }

    case Target::Mpi1Side: {
      // One window per (site, buffer pair); creation is collective — every
      // rank reaches the directive and exposes its own rbuf.
      for (std::size_t i = 0; i < pairs; ++i) {
        const SiteKey window_key = site + "#" + std::to_string(i);
        auto& cache = state.windows[window_key];
        void* expose_base = rbufs[i].data;
        const std::size_t expose_bytes = count * rbufs[i].element_size;
        if (!cache.win.valid() || cache.base != expose_base ||
            cache.bytes != expose_bytes) {
          cache.win = mpi::Win::create(world, expose_base, expose_bytes);
          cache.base = expose_base;
          cache.bytes = expose_bytes;
        }
        if (send_active) {
          const mpi::Datatype dtype = datatype_for_buffer(state, sbufs[i]);
          cache.win.put(sbufs[i].data, count, dtype, receiver_rank, 0);
          ++state.stats.mpi1_puts;
          state.stats.mpi1_bytes += count * dtype.payload_size();
        }
        auto& fences = state.pending.windows_to_fence;
        if (std::find(fences.begin(), fences.end(), cache.win) ==
            fences.end()) {
          fences.push_back(cache.win);
        }
      }
      break;
    }
  }

  state.pending.ranges.insert(state.pending.ranges.end(), touched.begin(),
                              touched.end());

  // Communication/computation overlap: the block runs while transfers are
  // in flight; synchronization comes later (region end or directive end).
  if (overlap != nullptr && *overlap) {
    const simnet::SimTime overlap_begin = ctx.clock().now();
    (*overlap)();
    if (trace_enabled()) {
      record_trace_event({TraceEventKind::Overlap, ctx.rank(), overlap_begin,
                          ctx.clock().now(), site, 0, 0});
    }
  }

  if (!in_region) {
    state.flush(state.pending);
  }

  if (trace_enabled()) {
    record_trace_event({TraceEventKind::P2PDirective, ctx.rank(), trace_begin,
                        ctx.clock().now(), site,
                        state.stats.total_bytes() - trace_bytes0,
                        state.stats.total_messages() - trace_msgs0});
  }
}

}  // namespace
}  // namespace detail

void Region::p2p(const Clauses& clauses, std::source_location site) {
  detail::execute_p2p(clauses, impl_, nullptr, detail::site_key(site));
}

void Region::p2p(const Clauses& clauses, const std::function<void()>& overlap,
                 std::source_location site) {
  detail::execute_p2p(clauses, impl_, &overlap, detail::site_key(site));
}

void comm_parameters(const Clauses& clauses,
                     const std::function<void(Region&)>& body,
                     std::source_location site) {
  CID_REQUIRE(rt::in_spmd_region(), ErrorCode::RuntimeFault,
              "comm_parameters outside an SPMD region");
  detail::throw_if_error(clauses.validate_for_params());

  auto& state = detail::ExecState::mine();
  auto& trace_ctx = rt::current_ctx();
  const simnet::SimTime trace_begin = trace_ctx.clock().now();

  // place_sync(BEGIN_NEXT_PARAM_REGION) from an earlier region: its deferred
  // synchronization happens now, at this region's beginning.
  if (state.carryover_flush_at_next_region_begin) {
    state.flush(state.carryover);
    state.carryover_flush_at_next_region_begin = false;
  }

  ++state.stats.regions;
  detail::RegionImpl impl;
  impl.site = detail::site_key(site);
  impl.clauses = state.region_stack.empty()
                     ? clauses
                     : Clauses::merged(state.region_stack.back()->clauses,
                                       clauses);
  state.region_stack.push_back(&impl);

  Region region(impl);
  try {
    body(region);
  } catch (...) {
    state.region_stack.pop_back();
    throw;
  }
  state.region_stack.pop_back();

  const SyncPlacement placement =
      impl.clauses.place_sync_clause().value_or(SyncPlacement::EndParamRegion);
  switch (placement) {
    case SyncPlacement::EndParamRegion:
      // A pending END_ADJ_PARAM_REGIONS series also drains here: this is the
      // first non-deferring region that ends.
      if (state.carryover_adjacent) {
        state.flush(state.carryover);
        state.carryover_adjacent = false;
      }
      state.flush(state.pending);
      break;
    case SyncPlacement::BeginNextParamRegion:
      ++state.stats.deferred_syncs;
      state.carryover.merge_from(std::move(state.pending));
      state.carryover_flush_at_next_region_begin = true;
      break;
    case SyncPlacement::EndAdjParamRegions:
      ++state.stats.deferred_syncs;
      state.carryover.merge_from(std::move(state.pending));
      state.carryover_adjacent = true;
      break;
  }

  if (detail::trace_enabled()) {
    detail::record_trace_event({TraceEventKind::RegionDirective,
                                trace_ctx.rank(), trace_begin,
                                trace_ctx.clock().now(),
                                detail::site_key(site), 0, 0});
  }
}

void comm_p2p(const Clauses& clauses, std::source_location site) {
  CID_REQUIRE(rt::in_spmd_region(), ErrorCode::RuntimeFault,
              "comm_p2p outside an SPMD region");
  auto& state = detail::ExecState::mine();
  const detail::RegionImpl* region =
      state.region_stack.empty() ? nullptr : state.region_stack.back();
  detail::execute_p2p(clauses, region, nullptr, detail::site_key(site));
}

void comm_p2p(const Clauses& clauses, const std::function<void()>& overlap,
              std::source_location site) {
  CID_REQUIRE(rt::in_spmd_region(), ErrorCode::RuntimeFault,
              "comm_p2p outside an SPMD region");
  auto& state = detail::ExecState::mine();
  const detail::RegionImpl* region =
      state.region_stack.empty() ? nullptr : state.region_stack.back();
  detail::execute_p2p(clauses, region, &overlap, detail::site_key(site));
}

void comm_flush() {
  CID_REQUIRE(rt::in_spmd_region(), ErrorCode::RuntimeFault,
              "comm_flush outside an SPMD region");
  auto& state = detail::ExecState::mine();
  state.flush(state.carryover);
  state.carryover_flush_at_next_region_begin = false;
  state.carryover_adjacent = false;
  state.flush(state.pending);
}

}  // namespace cid::core
