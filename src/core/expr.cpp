#include "core/expr.hpp"

#include <cctype>
#include <set>

namespace cid::core {

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

enum class Op {
  // binary
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
  // unary
  Neg, Not,
};

namespace {
std::string_view op_token(Op op) {
  switch (op) {
    case Op::Add: return "+";
    case Op::Sub: return "-";
    case Op::Mul: return "*";
    case Op::Div: return "/";
    case Op::Mod: return "%";
    case Op::Eq: return "==";
    case Op::Ne: return "!=";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::And: return "&&";
    case Op::Or: return "||";
    case Op::Neg: return "-";
    case Op::Not: return "!";
  }
  return "?";
}
}  // namespace

struct Expr::Node {
  enum class Kind { Literal, Variable, Unary, Binary, Ternary } kind;
  // Literal
  ExprValue value = 0;
  // Variable
  std::string name;
  // Unary / Binary
  Op op = Op::Add;
  std::shared_ptr<const Node> lhs;  // also: unary operand, ternary condition
  std::shared_ptr<const Node> rhs;  // also: ternary then-branch
  std::shared_ptr<const Node> third;  // ternary else-branch
};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

namespace {

enum class TokKind {
  End, Number, Ident,
  Plus, Minus, Star, Slash, Percent,
  EqEq, NotEq, Lt, Le, Gt, Ge,
  AndAnd, OrOr, Not,
  LParen, RParen, Question, Colon,
};

struct Token {
  TokKind kind = TokKind::End;
  ExprValue number = 0;
  std::string ident;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_space();
      Token token;
      token.pos = pos_;
      if (pos_ >= text_.size()) {
        token.kind = TokKind::End;
        tokens.push_back(token);
        return tokens;
      }
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ExprValue value = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          value = value * 10 + (text_[pos_] - '0');
          ++pos_;
        }
        token.kind = TokKind::Number;
        token.number = value;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        token.kind = TokKind::Ident;
        token.ident = std::string(text_.substr(start, pos_ - start));
      } else {
        switch (c) {
          case '+': token.kind = TokKind::Plus; ++pos_; break;
          case '-': token.kind = TokKind::Minus; ++pos_; break;
          case '*': token.kind = TokKind::Star; ++pos_; break;
          case '/': token.kind = TokKind::Slash; ++pos_; break;
          case '%': token.kind = TokKind::Percent; ++pos_; break;
          case '(': token.kind = TokKind::LParen; ++pos_; break;
          case ')': token.kind = TokKind::RParen; ++pos_; break;
          case '?': token.kind = TokKind::Question; ++pos_; break;
          case ':': token.kind = TokKind::Colon; ++pos_; break;
          case '=':
            if (peek2() == '=') {
              token.kind = TokKind::EqEq;
              pos_ += 2;
            } else {
              return error("'=' (assignment) is not a clause expression; "
                           "did you mean '=='?");
            }
            break;
          case '!':
            if (peek2() == '=') {
              token.kind = TokKind::NotEq;
              pos_ += 2;
            } else {
              token.kind = TokKind::Not;
              ++pos_;
            }
            break;
          case '<':
            if (peek2() == '=') {
              token.kind = TokKind::Le;
              pos_ += 2;
            } else {
              token.kind = TokKind::Lt;
              ++pos_;
            }
            break;
          case '>':
            if (peek2() == '=') {
              token.kind = TokKind::Ge;
              pos_ += 2;
            } else {
              token.kind = TokKind::Gt;
              ++pos_;
            }
            break;
          case '&':
            if (peek2() == '&') {
              token.kind = TokKind::AndAnd;
              pos_ += 2;
            } else {
              return error("single '&' is not supported");
            }
            break;
          case '|':
            if (peek2() == '|') {
              token.kind = TokKind::OrOr;
              pos_ += 2;
            } else {
              return error("single '|' is not supported");
            }
            break;
          default:
            return error(std::string("unexpected character '") + c + "'");
        }
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  char peek2() const {
    return pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
  }
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  Status error(const std::string& message) const {
    return Status(ErrorCode::ParseError,
                  message + " at position " + std::to_string(pos_) +
                      " in expression '" + std::string(text_) + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Parser (recursive descent, C precedence)
// ---------------------------------------------------------------------------

using NodePtr = std::shared_ptr<const Expr::Node>;

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string_view text)
      : tokens_(std::move(tokens)), text_(text) {}

  Result<NodePtr> run() {
    auto expr = parse_ternary();
    if (!expr.is_ok()) return expr;
    if (current().kind != TokKind::End) {
      return error("trailing tokens after expression");
    }
    return expr;
  }

 private:
  const Token& current() const { return tokens_[index_]; }
  void advance() { ++index_; }
  bool accept(TokKind kind) {
    if (current().kind == kind) {
      advance();
      return true;
    }
    return false;
  }
  Status error(const std::string& message) const {
    return Status(ErrorCode::ParseError,
                  message + " at position " + std::to_string(current().pos) +
                      " in expression '" + std::string(text_) + "'");
  }

  static NodePtr make_literal(ExprValue value) {
    auto node = std::make_shared<Expr::Node>();
    node->kind = Expr::Node::Kind::Literal;
    node->value = value;
    return node;
  }
  static NodePtr make_variable(std::string name) {
    auto node = std::make_shared<Expr::Node>();
    node->kind = Expr::Node::Kind::Variable;
    node->name = std::move(name);
    return node;
  }
  static NodePtr make_unary(Op op, NodePtr operand) {
    auto node = std::make_shared<Expr::Node>();
    node->kind = Expr::Node::Kind::Unary;
    node->op = op;
    node->lhs = std::move(operand);
    return node;
  }
  static NodePtr make_binary(Op op, NodePtr lhs, NodePtr rhs) {
    auto node = std::make_shared<Expr::Node>();
    node->kind = Expr::Node::Kind::Binary;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<NodePtr> parse_ternary() {
    auto condition = parse_or();
    if (!condition.is_ok()) return condition;
    if (!accept(TokKind::Question)) return condition;
    auto then_branch = parse_ternary();
    if (!then_branch.is_ok()) return then_branch;
    if (!accept(TokKind::Colon)) return error("expected ':' in ternary");
    auto else_branch = parse_ternary();
    if (!else_branch.is_ok()) return else_branch;
    auto node = std::make_shared<Expr::Node>();
    node->kind = Expr::Node::Kind::Ternary;
    node->lhs = std::move(condition).take();
    node->rhs = std::move(then_branch).take();
    node->third = std::move(else_branch).take();
    return NodePtr(node);
  }

  Result<NodePtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).take();
    while (accept(TokKind::OrOr)) {
      auto rhs = parse_and();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(Op::Or, node, std::move(rhs).take());
    }
    return node;
  }

  Result<NodePtr> parse_and() {
    auto lhs = parse_equality();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).take();
    while (accept(TokKind::AndAnd)) {
      auto rhs = parse_equality();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(Op::And, node, std::move(rhs).take());
    }
    return node;
  }

  Result<NodePtr> parse_equality() {
    auto lhs = parse_relational();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).take();
    for (;;) {
      Op op;
      if (accept(TokKind::EqEq)) {
        op = Op::Eq;
      } else if (accept(TokKind::NotEq)) {
        op = Op::Ne;
      } else {
        return node;
      }
      auto rhs = parse_relational();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(op, node, std::move(rhs).take());
    }
  }

  Result<NodePtr> parse_relational() {
    auto lhs = parse_additive();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).take();
    for (;;) {
      Op op;
      if (accept(TokKind::Lt)) {
        op = Op::Lt;
      } else if (accept(TokKind::Le)) {
        op = Op::Le;
      } else if (accept(TokKind::Gt)) {
        op = Op::Gt;
      } else if (accept(TokKind::Ge)) {
        op = Op::Ge;
      } else {
        return node;
      }
      auto rhs = parse_additive();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(op, node, std::move(rhs).take());
    }
  }

  Result<NodePtr> parse_additive() {
    auto lhs = parse_multiplicative();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).take();
    for (;;) {
      Op op;
      if (accept(TokKind::Plus)) {
        op = Op::Add;
      } else if (accept(TokKind::Minus)) {
        op = Op::Sub;
      } else {
        return node;
      }
      auto rhs = parse_multiplicative();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(op, node, std::move(rhs).take());
    }
  }

  Result<NodePtr> parse_multiplicative() {
    auto lhs = parse_unary();
    if (!lhs.is_ok()) return lhs;
    NodePtr node = std::move(lhs).take();
    for (;;) {
      Op op;
      if (accept(TokKind::Star)) {
        op = Op::Mul;
      } else if (accept(TokKind::Slash)) {
        op = Op::Div;
      } else if (accept(TokKind::Percent)) {
        op = Op::Mod;
      } else {
        return node;
      }
      auto rhs = parse_unary();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(op, node, std::move(rhs).take());
    }
  }

  Result<NodePtr> parse_unary() {
    if (accept(TokKind::Minus)) {
      auto operand = parse_unary();
      if (!operand.is_ok()) return operand;
      return make_unary(Op::Neg, std::move(operand).take());
    }
    if (accept(TokKind::Not)) {
      auto operand = parse_unary();
      if (!operand.is_ok()) return operand;
      return make_unary(Op::Not, std::move(operand).take());
    }
    return parse_primary();
  }

  Result<NodePtr> parse_primary() {
    if (current().kind == TokKind::Number) {
      const ExprValue value = current().number;
      advance();
      return make_literal(value);
    }
    if (current().kind == TokKind::Ident) {
      std::string name = current().ident;
      advance();
      return make_variable(std::move(name));
    }
    if (accept(TokKind::LParen)) {
      auto inner = parse_ternary();
      if (!inner.is_ok()) return inner;
      if (!accept(TokKind::RParen)) return error("expected ')'");
      return inner;
    }
    return error("expected a number, variable or '('");
  }

  std::vector<Token> tokens_;
  std::string_view text_;
  std::size_t index_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluation / printing helpers
// ---------------------------------------------------------------------------

Result<ExprValue> eval_node(const Expr::Node& node, const Env& env) {
  using Kind = Expr::Node::Kind;
  switch (node.kind) {
    case Kind::Literal:
      return node.value;
    case Kind::Variable:
      return env.lookup(node.name);
    case Kind::Unary: {
      auto operand = eval_node(*node.lhs, env);
      if (!operand.is_ok()) return operand;
      const ExprValue v = operand.value();
      return node.op == Op::Neg ? -v : static_cast<ExprValue>(v == 0);
    }
    case Kind::Binary: {
      auto lhs = eval_node(*node.lhs, env);
      if (!lhs.is_ok()) return lhs;
      const ExprValue a = lhs.value();
      // Short-circuit for logical operators, like C.
      if (node.op == Op::And && a == 0) return ExprValue{0};
      if (node.op == Op::Or && a != 0) return ExprValue{1};
      auto rhs = eval_node(*node.rhs, env);
      if (!rhs.is_ok()) return rhs;
      const ExprValue b = rhs.value();
      switch (node.op) {
        case Op::Add: return a + b;
        case Op::Sub: return a - b;
        case Op::Mul: return a * b;
        case Op::Div:
          if (b == 0) {
            return Status(ErrorCode::ParseError,
                          "division by zero in clause expression");
          }
          return a / b;
        case Op::Mod:
          if (b == 0) {
            return Status(ErrorCode::ParseError,
                          "modulo by zero in clause expression");
          }
          return a % b;
        case Op::Eq: return ExprValue{a == b};
        case Op::Ne: return ExprValue{a != b};
        case Op::Lt: return ExprValue{a < b};
        case Op::Le: return ExprValue{a <= b};
        case Op::Gt: return ExprValue{a > b};
        case Op::Ge: return ExprValue{a >= b};
        case Op::And: return ExprValue{b != 0};
        case Op::Or: return ExprValue{b != 0};
        case Op::Neg:
        case Op::Not: break;
      }
      return Status(ErrorCode::RuntimeFault, "bad binary operator");
    }
    case Kind::Ternary: {
      auto condition = eval_node(*node.lhs, env);
      if (!condition.is_ok()) return condition;
      return condition.value() != 0 ? eval_node(*node.rhs, env)
                                    : eval_node(*node.third, env);
    }
  }
  return Status(ErrorCode::RuntimeFault, "bad expression node");
}

void print_node(const Expr::Node& node, std::string& out) {
  using Kind = Expr::Node::Kind;
  switch (node.kind) {
    case Kind::Literal:
      out += std::to_string(node.value);
      return;
    case Kind::Variable:
      out += node.name;
      return;
    case Kind::Unary:
      out += op_token(node.op);
      out += '(';
      print_node(*node.lhs, out);
      out += ')';
      return;
    case Kind::Binary:
      out += '(';
      print_node(*node.lhs, out);
      out += op_token(node.op);
      print_node(*node.rhs, out);
      out += ')';
      return;
    case Kind::Ternary:
      out += '(';
      print_node(*node.lhs, out);
      out += '?';
      print_node(*node.rhs, out);
      out += ':';
      print_node(*node.third, out);
      out += ')';
      return;
  }
}

void collect_variables(const Expr::Node& node, std::set<std::string>& out) {
  using Kind = Expr::Node::Kind;
  switch (node.kind) {
    case Kind::Literal:
      return;
    case Kind::Variable:
      out.insert(node.name);
      return;
    case Kind::Unary:
      collect_variables(*node.lhs, out);
      return;
    case Kind::Binary:
      collect_variables(*node.lhs, out);
      collect_variables(*node.rhs, out);
      return;
    case Kind::Ternary:
      collect_variables(*node.lhs, out);
      collect_variables(*node.rhs, out);
      collect_variables(*node.third, out);
      return;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Expr public interface
// ---------------------------------------------------------------------------

Result<Expr> Expr::parse(std::string_view text) {
  auto tokens = Lexer(text).run();
  if (!tokens.is_ok()) return tokens.status();
  if (tokens.value().size() == 1) {  // just End
    return Status(ErrorCode::ParseError, "empty clause expression");
  }
  auto node = Parser(std::move(tokens).take(), text).run();
  if (!node.is_ok()) return node.status();
  return Expr(std::move(node).take());
}

Result<ExprValue> Expr::eval(const Env& env) const {
  CID_REQUIRE(valid(), ErrorCode::InvalidArgument, "eval() on invalid Expr");
  return eval_node(*node_, env);
}

std::string Expr::to_string() const {
  if (!valid()) return "<invalid>";
  std::string out;
  print_node(*node_, out);
  return out;
}

std::vector<std::string> Expr::free_variables() const {
  std::set<std::string> names;
  if (valid()) collect_variables(*node_, names);
  return std::vector<std::string>(names.begin(), names.end());
}

}  // namespace cid::core
