// Composite-type reflection: the compile-time layout extraction the paper's
// compiler performs for composite sbuf/rbuf buffers (Section III-A).
//
// For each element of a reflected struct, the displacement, block length and
// basic type of every field are recorded; to_datatype() turns that into a
// miniMPI struct datatype (create + commit), which the executor caches and
// reuses "within the function scope for any communication directive with
// buffers of the same type", as the paper specifies. Pointers within a
// composite type and recursively nested composite types are rejected, also
// per the paper.
//
// Usage:
//   struct AtomScalars { int jmt; double xstart; char header[80]; };
//   CID_REFLECT_STRUCT(AtomScalars, jmt, xstart, header)
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "mpi/datatype.hpp"

namespace cid::core {

enum class FieldKind {
  Basic,      ///< arithmetic scalar or array of arithmetic
  Pointer,    ///< prohibited by the directive spec
  Composite,  ///< nested struct: prohibited (no recursive composites)
  Unsupported,
};

struct FieldInfo {
  std::string name;
  std::size_t offset = 0;
  std::size_t count = 1;  ///< array extent (1 for scalars)
  mpi::BasicType type = mpi::BasicType::Byte;  ///< valid when kind == Basic
  FieldKind kind = FieldKind::Unsupported;
};

struct TypeLayout {
  std::string name;
  std::size_t extent = 0;  ///< sizeof the struct
  std::vector<FieldInfo> fields;

  /// Enforce the directive rules: every field Basic, none Pointer/Composite.
  Status validate() const;

  /// Total payload bytes of one element (sum of field blocks).
  std::size_t payload_size() const noexcept;

  /// Build (and commit) the equivalent miniMPI struct datatype. Fails when
  /// validate() fails.
  Result<mpi::Datatype> to_datatype() const;
};

namespace detail {

template <typename M>
void append_field(TypeLayout& layout, const char* name, std::size_t offset) {
  FieldInfo field;
  field.name = name;
  field.offset = offset;
  using Element = std::remove_all_extents_t<M>;
  if constexpr (std::is_pointer_v<M> || std::is_pointer_v<Element> ||
                std::is_member_pointer_v<M>) {
    field.kind = FieldKind::Pointer;
  } else if constexpr (std::is_array_v<M>) {
    if constexpr (std::is_arithmetic_v<Element>) {
      field.kind = FieldKind::Basic;
      field.count = sizeof(M) / sizeof(Element);
      field.type = mpi::basic_type_of<Element>();
    } else {
      field.kind = FieldKind::Composite;
    }
  } else if constexpr (std::is_arithmetic_v<M>) {
    field.kind = FieldKind::Basic;
    field.count = 1;
    field.type = mpi::basic_type_of<M>();
  } else if constexpr (std::is_class_v<M> || std::is_union_v<M>) {
    field.kind = FieldKind::Composite;
  } else {
    field.kind = FieldKind::Unsupported;
  }
  layout.fields.push_back(std::move(field));
}

}  // namespace detail

/// Specialized by CID_REFLECT_STRUCT; primary template flags missing
/// reflection with a readable error.
template <typename T>
struct TypeLayoutOf {
  static_assert(sizeof(T) == 0,
                "type used in a directive buffer without CID_REFLECT_STRUCT");
};

/// Satisfied by types that have been reflected with CID_REFLECT_STRUCT.
template <typename T>
concept Reflected = requires {
  { TypeLayoutOf<T>::get() } -> std::same_as<const TypeLayout&>;
};

// --- macro plumbing: FOR_EACH over up to 32 fields -------------------------

#define CID_DETAIL_FIELD(Type, member)                                      \
  ::cid::core::detail::append_field<decltype(Type::member)>(               \
      layout_, #member, offsetof(Type, member));

#define CID_DETAIL_FE_1(T, a) CID_DETAIL_FIELD(T, a)
#define CID_DETAIL_FE_2(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_1(T, __VA_ARGS__)
#define CID_DETAIL_FE_3(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_2(T, __VA_ARGS__)
#define CID_DETAIL_FE_4(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_3(T, __VA_ARGS__)
#define CID_DETAIL_FE_5(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_4(T, __VA_ARGS__)
#define CID_DETAIL_FE_6(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_5(T, __VA_ARGS__)
#define CID_DETAIL_FE_7(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_6(T, __VA_ARGS__)
#define CID_DETAIL_FE_8(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_7(T, __VA_ARGS__)
#define CID_DETAIL_FE_9(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_8(T, __VA_ARGS__)
#define CID_DETAIL_FE_10(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_9(T, __VA_ARGS__)
#define CID_DETAIL_FE_11(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_10(T, __VA_ARGS__)
#define CID_DETAIL_FE_12(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_11(T, __VA_ARGS__)
#define CID_DETAIL_FE_13(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_12(T, __VA_ARGS__)
#define CID_DETAIL_FE_14(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_13(T, __VA_ARGS__)
#define CID_DETAIL_FE_15(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_14(T, __VA_ARGS__)
#define CID_DETAIL_FE_16(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_15(T, __VA_ARGS__)
#define CID_DETAIL_FE_17(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_16(T, __VA_ARGS__)
#define CID_DETAIL_FE_18(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_17(T, __VA_ARGS__)
#define CID_DETAIL_FE_19(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_18(T, __VA_ARGS__)
#define CID_DETAIL_FE_20(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_19(T, __VA_ARGS__)
#define CID_DETAIL_FE_21(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_20(T, __VA_ARGS__)
#define CID_DETAIL_FE_22(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_21(T, __VA_ARGS__)
#define CID_DETAIL_FE_23(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_22(T, __VA_ARGS__)
#define CID_DETAIL_FE_24(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_23(T, __VA_ARGS__)
#define CID_DETAIL_FE_25(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_24(T, __VA_ARGS__)
#define CID_DETAIL_FE_26(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_25(T, __VA_ARGS__)
#define CID_DETAIL_FE_27(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_26(T, __VA_ARGS__)
#define CID_DETAIL_FE_28(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_27(T, __VA_ARGS__)
#define CID_DETAIL_FE_29(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_28(T, __VA_ARGS__)
#define CID_DETAIL_FE_30(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_29(T, __VA_ARGS__)
#define CID_DETAIL_FE_31(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_30(T, __VA_ARGS__)
#define CID_DETAIL_FE_32(T, a, ...) CID_DETAIL_FIELD(T, a) CID_DETAIL_FE_31(T, __VA_ARGS__)

#define CID_DETAIL_GET_MACRO(_1, _2, _3, _4, _5, _6, _7, _8, _9, _10, _11,   \
                             _12, _13, _14, _15, _16, _17, _18, _19, _20,    \
                             _21, _22, _23, _24, _25, _26, _27, _28, _29,    \
                             _30, _31, _32, NAME, ...)                        \
  NAME

#define CID_DETAIL_FOR_EACH(T, ...)                                          \
  CID_DETAIL_GET_MACRO(                                                      \
      __VA_ARGS__, CID_DETAIL_FE_32, CID_DETAIL_FE_31, CID_DETAIL_FE_30,     \
      CID_DETAIL_FE_29, CID_DETAIL_FE_28, CID_DETAIL_FE_27,                  \
      CID_DETAIL_FE_26, CID_DETAIL_FE_25, CID_DETAIL_FE_24,                  \
      CID_DETAIL_FE_23, CID_DETAIL_FE_22, CID_DETAIL_FE_21,                  \
      CID_DETAIL_FE_20, CID_DETAIL_FE_19, CID_DETAIL_FE_18,                  \
      CID_DETAIL_FE_17, CID_DETAIL_FE_16, CID_DETAIL_FE_15,                  \
      CID_DETAIL_FE_14, CID_DETAIL_FE_13, CID_DETAIL_FE_12,                  \
      CID_DETAIL_FE_11, CID_DETAIL_FE_10, CID_DETAIL_FE_9, CID_DETAIL_FE_8,  \
      CID_DETAIL_FE_7, CID_DETAIL_FE_6, CID_DETAIL_FE_5, CID_DETAIL_FE_4,    \
      CID_DETAIL_FE_3, CID_DETAIL_FE_2, CID_DETAIL_FE_1)                     \
  (T, __VA_ARGS__)

}  // namespace cid::core

/// Reflect a struct's fields for directive buffer use. Must appear at global
/// namespace scope, after the struct definition.
#define CID_REFLECT_STRUCT(Type, ...)                                        \
  template <>                                                                \
  struct cid::core::TypeLayoutOf<Type> {                                     \
    static const ::cid::core::TypeLayout& get() {                           \
      static const ::cid::core::TypeLayout layout = [] {                    \
        ::cid::core::TypeLayout layout_;                                    \
        layout_.name = #Type;                                               \
        layout_.extent = sizeof(Type);                                      \
        CID_DETAIL_FOR_EACH(Type, __VA_ARGS__)                              \
        return layout_;                                                     \
      }();                                                                  \
      return layout;                                                        \
    }                                                                       \
  };
