// The collective communication directive — the extension the paper's
// Section V describes as future work: "extend the directives to express
// groups of processes, and their collective communication/synchronization in
// a variety of many-to-one, one-to-many and all-to-all patterns".
//
// comm_collective(Clauses()
//     .pattern(Pattern::OneToMany)   // or ManyToOne / AllToAll
//     .root(0)                       // group rank of the root (not AllToAll)
//     .group("rank/4")               // optional: ranks with equal values
//                                    //   form a group; negative = excluded
//     .count(n)
//     .sbuf(...).rbuf(...)
//     .target(Target::Mpi2Side));    // or Shmem
//
// Semantics:
//  - ONE_TO_MANY: the root's sbuf (count elements) lands in every group
//    member's rbuf.
//  - MANY_TO_ONE: each member's sbuf (count elements) lands in the root's
//    rbuf at block offset group_rank*count; rbuf must hold
//    group_size*count elements.
//  - ALL_TO_ALL: block j of each member's sbuf lands at block offset
//    my_group_rank*count in member j's rbuf; both buffers hold
//    group_size*count elements.
//  - group: evaluated on every rank; equal non-negative values form one
//    group (ordered by rank). Without the clause all ranks form one group.
//    All ranks must reach the directive (SPMD), like MPI_Comm_split.
//  - root(expr): the root's GROUP rank (commonly 0).
//  - Targets: TARGET_COMM_MPI_2SIDE lowers to the tree/ring/pairwise
//    algorithms of cid::mpi; TARGET_COMM_SHMEM lowers to symmetric-heap puts
//    with per-source completion flags (rbuf must be symmetric).
//    TARGET_COMM_MPI_1SIDE is rejected (UnsupportedTarget).
//
// Collectives synchronize at the directive (no place_sync interaction); any
// pending point-to-point operations of an enclosing region are locally
// completed first so buffer reuse stays ordered.
#pragma once

#include <source_location>

#include "core/clauses.hpp"

namespace cid::core {

void comm_collective(
    const Clauses& clauses,
    std::source_location site = std::source_location::current());

}  // namespace cid::core
