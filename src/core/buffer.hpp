// BufferRef: the type-erased descriptor behind the sbuf/rbuf clauses.
//
// A buffer carries everything the directive lowering needs: the address, the
// element size and type (basic or reflected composite), whether its extent is
// statically known (arrays, vectors, matrices — used for the paper's count
// inference), and a display name for diagnostics and codegen.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/type_layout.hpp"
#include "mpi/datatype.hpp"

namespace cid::core {

struct BufferRef {
  void* data = nullptr;
  std::size_t element_size = 0;
  /// Known element count; meaningful only when has_extent.
  std::size_t extent_count = 0;
  /// True when the buffer is an array-like object whose size is known (the
  /// paper: "the directive will generate code with a message size equal to
  /// the array size" when count is omitted).
  bool has_extent = false;
  /// Reflected layout for composite element types; nullptr for basic types.
  const TypeLayout* layout = nullptr;
  mpi::BasicType basic = mpi::BasicType::Byte;
  std::string name;

  bool is_composite() const noexcept { return layout != nullptr; }

  /// Bytes covered by `count` elements.
  std::size_t span_bytes(std::size_t count) const noexcept {
    return count * element_size;
  }
};

namespace detail {

template <typename T>
concept BasicElement = std::is_arithmetic_v<T>;

template <typename T>
BufferRef make_basic(void* data, std::size_t extent, bool has_extent,
                     std::string name) {
  BufferRef b;
  b.data = data;
  b.element_size = sizeof(T);
  b.extent_count = extent;
  b.has_extent = has_extent;
  b.basic = mpi::basic_type_of<T>();
  b.name = std::move(name);
  return b;
}

template <typename T>
BufferRef make_composite(void* data, std::size_t extent, bool has_extent,
                         std::string name) {
  BufferRef b;
  b.data = data;
  b.element_size = sizeof(T);
  b.extent_count = extent;
  b.has_extent = has_extent;
  b.layout = &TypeLayoutOf<T>::get();
  b.name = std::move(name);
  return b;
}

}  // namespace detail

/// Describe a buffer for the sbuf/rbuf clauses. Accepted arguments:
///  - `T arr[N]`          basic array, extent known (enables count inference)
///  - `T* p`              basic pointer, extent unknown (count clause needed)
///  - `std::vector<T>&`   extent known
///  - `Matrix<T>&`        whole column-major payload, extent known
///  - reflected struct    one composite element (CID_REFLECT_STRUCT required)
///  - reflected struct*   composite pointer, extent unknown
template <typename A>
BufferRef buf(A&& object, std::string name = {}) {
  using U = std::remove_reference_t<A>;
  if constexpr (std::is_array_v<U>) {
    using E = std::remove_extent_t<U>;
    static_assert(std::is_arithmetic_v<E>,
                  "array buffers must have arithmetic elements");
    return detail::make_basic<E>(object, std::extent_v<U>, true,
                                 std::move(name));
  } else if constexpr (std::is_pointer_v<U>) {
    using E = std::remove_pointer_t<U>;
    if constexpr (std::is_arithmetic_v<E>) {
      return detail::make_basic<E>(object, 0, false, std::move(name));
    } else {
      static_assert(Reflected<E>,
                    "composite pointer buffers require CID_REFLECT_STRUCT");
      return detail::make_composite<E>(object, 0, false, std::move(name));
    }
  } else if constexpr (Reflected<U>) {
    return detail::make_composite<U>(&object, 1, true, std::move(name));
  } else {
    static_assert(sizeof(U) == 0,
                  "unsupported buffer argument; see buf() documentation");
  }
}

/// std::vector of basic elements; extent known.
template <typename T>
  requires std::is_arithmetic_v<T>
BufferRef buf(std::vector<T>& vector, std::string name = {}) {
  return detail::make_basic<T>(vector.data(), vector.size(), true,
                               std::move(name));
}

/// cid::Matrix payload (whole storage, column-major contiguous).
template <typename T>
  requires std::is_arithmetic_v<T>
BufferRef buf(Matrix<T>& matrix, std::string name = {}) {
  return detail::make_basic<T>(matrix.data(), matrix.size(), true,
                               std::move(name));
}

/// Basic pointer with an explicitly-known extent (e.g. a slice).
template <typename T>
  requires std::is_arithmetic_v<T>
BufferRef buf_n(T* pointer, std::size_t count, std::string name = {}) {
  return detail::make_basic<T>(pointer, count, true, std::move(name));
}

}  // namespace cid::core
