// Umbrella header for the communication-intent directive library.
#pragma once

#include "core/buffer.hpp"       // IWYU pragma: export
#include "core/clauses.hpp"      // IWYU pragma: export
#include "core/collective.hpp"   // IWYU pragma: export
#include "core/expr.hpp"         // IWYU pragma: export
#include "core/pragma.hpp"       // IWYU pragma: export
#include "core/region.hpp"       // IWYU pragma: export
#include "core/reliability.hpp"  // IWYU pragma: export
#include "core/stats.hpp"        // IWYU pragma: export
#include "core/type_layout.hpp"  // IWYU pragma: export
