#include "core/exec_state.hpp"

#include <cstring>
#include <iterator>

#include "core/reliability.hpp"
#include "core/trace.hpp"
#include "rt/agg.hpp"
#include "shmem/shmem.hpp"

namespace cid::core::detail {

void PendingOps::merge_from(PendingOps&& other) {
  mpi_requests.insert(mpi_requests.end(), other.mpi_requests.begin(),
                      other.mpi_requests.end());
  reliable_sends.insert(reliable_sends.end(),
                        std::make_move_iterator(other.reliable_sends.begin()),
                        std::make_move_iterator(other.reliable_sends.end()));
  reliable_recvs.insert(reliable_recvs.end(),
                        std::make_move_iterator(other.reliable_recvs.begin()),
                        std::make_move_iterator(other.reliable_recvs.end()));
  shmem_expects.insert(shmem_expects.end(), other.shmem_expects.begin(),
                       other.shmem_expects.end());
  shmem_flag_updates.insert(shmem_flag_updates.end(),
                            other.shmem_flag_updates.begin(),
                            other.shmem_flag_updates.end());
  shmem_quiet_needed = shmem_quiet_needed || other.shmem_quiet_needed;
  windows_to_fence.insert(windows_to_fence.end(),
                          other.windows_to_fence.begin(),
                          other.windows_to_fence.end());
  ranges.insert(ranges.end(), other.ranges.begin(), other.ranges.end());
  for (auto& [dest, wire] : other.agg_buffers) {
    rt::agg::merge(agg_buffers[dest], wire);
  }
  flat_scatters.insert(flat_scatters.end(),
                       std::make_move_iterator(other.flat_scatters.begin()),
                       std::make_move_iterator(other.flat_scatters.end()));
  other = PendingOps{};
}

namespace {

/// One combined envelope for `dest`: injection is charged once for the whole
/// batch (one send overhead, one per-message gap per sub-message, the wire
/// bytes through the injection pipe) — the consolidation aggregation buys.
void inject_one_aggregate(rt::RankCtx& ctx, int dest,
                          std::vector<std::byte>&& wire) {
  const auto& costs = ctx.model().mpi_two_sided;
  const std::size_t bytes = wire.size();
  const simnet::SimTime injection_start = ctx.clock().now();
  ctx.charge_compute(
      costs.send_overhead +
      static_cast<simnet::SimTime>(rt::agg::count(wire)) *
          costs.per_message_gap +
      static_cast<simnet::SimTime>(bytes) / costs.injection_bytes_per_second);
  rt::Envelope envelope;
  envelope.src = ctx.rank();
  envelope.tag = 0;
  envelope.channel = rt::Channel::Internal;
  envelope.context = rt::agg::kContext;
  envelope.available_at =
      std::max(costs.delivery_time(injection_start, bytes),
               ctx.clock().now() + costs.latency);
  envelope.payload = rt::Payload(std::move(wire));
  ctx.world().deliver(dest, std::move(envelope));
}

}  // namespace

void inject_aggregates(ExecState& state, PendingOps& ops) {
  (void)state;
  if (ops.agg_buffers.empty()) return;
  auto& ctx = rt::current_ctx();
  for (auto& [dest, wire] : ops.agg_buffers) {
    inject_one_aggregate(ctx, dest, std::move(wire));
  }
  ops.agg_buffers.clear();
}

void inject_aggregate_for(ExecState& state, PendingOps& ops, int dest) {
  (void)state;
  auto it = ops.agg_buffers.find(dest);
  if (it == ops.agg_buffers.end()) return;
  inject_one_aggregate(rt::current_ctx(), dest, std::move(it->second));
  ops.agg_buffers.erase(it);
}

void apply_flat_scatters(ExecState& state, PendingOps& ops) {
  (void)state;
  if (ops.flat_scatters.empty()) return;
  auto& ctx = rt::current_ctx();
  for (const FlatScatter& fs : ops.flat_scatters) {
    const std::size_t extent = fs.dtype.extent();
    const auto* src = fs.staging.data();
    auto* dst = static_cast<std::byte*>(fs.rbuf);
    for (std::size_t e = 0; e < fs.count; ++e) {
      for (const mpi::PackRun& run : fs.dtype.pack_plan()) {
        std::memcpy(dst + e * extent + run.offset,
                    src + e * extent + run.offset, run.bytes);
      }
    }
    // Same layout-walk charge the engine's scatter would have applied.
    ctx.charge_compute(
        static_cast<simnet::SimTime>(fs.dtype.payload_size() * fs.count) /
        ctx.model().host.datatype_pack_bytes_per_second);
  }
  ops.flat_scatters.clear();
}

ExecState& ExecState::mine() {
  // Rank-local, not thread-local: under the pooled scheduler many ranks
  // share (and migrate between) worker threads, so the executor state lives
  // in the RankCtx and dies with the run.
  static constexpr char kKey = 0;
  auto& ctx = rt::current_ctx();
  auto& slot = ctx.local_slot(&kKey);
  auto* state = static_cast<ExecState*>(slot.get());
  if (state == nullptr) {
    auto fresh = std::make_shared<ExecState>();
    fresh->world_ = &ctx.world();
    state = fresh.get();
    slot = std::move(fresh);
  }
  return *state;
}

mpi::Datatype ExecState::datatype_for(const TypeLayout& layout) {
  auto it = datatype_cache.find(&layout);
  if (it != datatype_cache.end()) {
    ++stats.datatype_cache_hits;
    return it->second;
  }
  ++stats.datatypes_created;

  auto& ctx = rt::current_ctx();
  const auto& host = ctx.model().host;
  ctx.charge_compute(host.type_create_base +
                     host.type_create_per_field *
                         static_cast<simnet::SimTime>(layout.fields.size()));
  auto datatype = layout.to_datatype();
  CID_REQUIRE(datatype.is_ok(), ErrorCode::TypeError,
              datatype.status().to_string());
  auto [inserted, _] =
      datatype_cache.emplace(&layout, std::move(datatype).take());
  return inserted->second;
}

void ExecState::flush(PendingOps& ops) {
  const bool trace = detail::trace_enabled() && !ops.empty();
  simnet::SimTime trace_begin = 0.0;
  if (trace) trace_begin = rt::current_ctx().clock().now();
  // Batched sends go out before anything waits: the waitall below may block
  // on receives whose messages ride in these aggregates.
  inject_aggregates(*this, ops);
  if (!ops.reliable_sends.empty() || !ops.reliable_recvs.empty()) {
    run_reliable_epoch(*this, ops);
  }
  if (!ops.mpi_requests.empty()) {
    ++stats.waitalls;
    stats.requests_retired += ops.mpi_requests.size();
    mpi::waitall(ops.mpi_requests);
    ops.mpi_requests.clear();
    // Flushed persistent slots are complete and restartable.
    for (auto& [site, slots] : channels) {
      slots.send_used = 0;
      slots.recv_used = 0;
    }
  }
  apply_flat_scatters(*this, ops);
  if (!ops.shmem_flag_updates.empty()) {
    // One fence orders every data put of the epoch before the flag
    // updates; one flag put per (site, destination) carries the cumulative
    // message count — the consolidated synchronization of Section III-A.
    shmem::fence();
    const int self = rt::current_ctx().rank();
    for (const auto& update : ops.shmem_flag_updates) {
      shmem::put_value64(&update.site->flags[self],
                         update.site->sent_to.at(update.dest), update.dest);
    }
    ops.shmem_flag_updates.clear();
  }
  for (const auto& expect : ops.shmem_expects) {
    shmem::wait_until(expect.flag, shmem::Cmp::Ge, expect.expected);
  }
  ops.shmem_expects.clear();
  if (ops.shmem_quiet_needed) {
    ++stats.shmem_quiets;
    shmem::quiet();
    ops.shmem_quiet_needed = false;
  }
  for (auto& window : ops.windows_to_fence) {
    ++stats.window_fences;
    window.fence();
  }
  ops.windows_to_fence.clear();
  ops.ranges.clear();
  if (trace) {
    auto& ctx = rt::current_ctx();
    record_trace_event({TraceEventKind::Synchronization, ctx.rank(),
                        trace_begin, ctx.clock().now(), "flush", 0, 0});
  }
}

}  // namespace cid::core::detail
