#include "core/exec_state.hpp"

#include <iterator>

#include "core/reliability.hpp"
#include "core/trace.hpp"
#include "shmem/shmem.hpp"

namespace cid::core::detail {

void PendingOps::merge_from(PendingOps&& other) {
  mpi_requests.insert(mpi_requests.end(), other.mpi_requests.begin(),
                      other.mpi_requests.end());
  reliable_sends.insert(reliable_sends.end(),
                        std::make_move_iterator(other.reliable_sends.begin()),
                        std::make_move_iterator(other.reliable_sends.end()));
  reliable_recvs.insert(reliable_recvs.end(),
                        std::make_move_iterator(other.reliable_recvs.begin()),
                        std::make_move_iterator(other.reliable_recvs.end()));
  shmem_expects.insert(shmem_expects.end(), other.shmem_expects.begin(),
                       other.shmem_expects.end());
  shmem_flag_updates.insert(shmem_flag_updates.end(),
                            other.shmem_flag_updates.begin(),
                            other.shmem_flag_updates.end());
  shmem_quiet_needed = shmem_quiet_needed || other.shmem_quiet_needed;
  windows_to_fence.insert(windows_to_fence.end(),
                          other.windows_to_fence.begin(),
                          other.windows_to_fence.end());
  ranges.insert(ranges.end(), other.ranges.begin(), other.ranges.end());
  other = PendingOps{};
}

ExecState& ExecState::mine() {
  // Rank-local, not thread-local: under the pooled scheduler many ranks
  // share (and migrate between) worker threads, so the executor state lives
  // in the RankCtx and dies with the run.
  static constexpr char kKey = 0;
  auto& ctx = rt::current_ctx();
  auto& slot = ctx.local_slot(&kKey);
  auto* state = static_cast<ExecState*>(slot.get());
  if (state == nullptr) {
    auto fresh = std::make_shared<ExecState>();
    fresh->world_ = &ctx.world();
    state = fresh.get();
    slot = std::move(fresh);
  }
  return *state;
}

mpi::Datatype ExecState::datatype_for(const TypeLayout& layout) {
  auto it = datatype_cache.find(&layout);
  if (it != datatype_cache.end()) {
    ++stats.datatype_cache_hits;
    return it->second;
  }
  ++stats.datatypes_created;

  auto& ctx = rt::current_ctx();
  const auto& host = ctx.model().host;
  ctx.charge_compute(host.type_create_base +
                     host.type_create_per_field *
                         static_cast<simnet::SimTime>(layout.fields.size()));
  auto datatype = layout.to_datatype();
  CID_REQUIRE(datatype.is_ok(), ErrorCode::TypeError,
              datatype.status().to_string());
  auto [inserted, _] =
      datatype_cache.emplace(&layout, std::move(datatype).take());
  return inserted->second;
}

void ExecState::flush(PendingOps& ops) {
  const bool trace = detail::trace_enabled() && !ops.empty();
  simnet::SimTime trace_begin = 0.0;
  if (trace) trace_begin = rt::current_ctx().clock().now();
  if (!ops.reliable_sends.empty() || !ops.reliable_recvs.empty()) {
    run_reliable_epoch(*this, ops);
  }
  if (!ops.mpi_requests.empty()) {
    ++stats.waitalls;
    stats.requests_retired += ops.mpi_requests.size();
    mpi::waitall(ops.mpi_requests);
    ops.mpi_requests.clear();
    // Flushed persistent slots are complete and restartable.
    for (auto& [site, slots] : channels) {
      slots.send_used = 0;
      slots.recv_used = 0;
    }
  }
  if (!ops.shmem_flag_updates.empty()) {
    // One fence orders every data put of the epoch before the flag
    // updates; one flag put per (site, destination) carries the cumulative
    // message count — the consolidated synchronization of Section III-A.
    shmem::fence();
    const int self = rt::current_ctx().rank();
    for (const auto& update : ops.shmem_flag_updates) {
      shmem::put_value64(&update.site->flags[self],
                         update.site->sent_to.at(update.dest), update.dest);
    }
    ops.shmem_flag_updates.clear();
  }
  for (const auto& expect : ops.shmem_expects) {
    shmem::wait_until(expect.flag, shmem::Cmp::Ge, expect.expected);
  }
  ops.shmem_expects.clear();
  if (ops.shmem_quiet_needed) {
    ++stats.shmem_quiets;
    shmem::quiet();
    ops.shmem_quiet_needed = false;
  }
  for (auto& window : ops.windows_to_fence) {
    ++stats.window_fences;
    window.fence();
  }
  ops.windows_to_fence.clear();
  ops.ranges.clear();
  if (trace) {
    auto& ctx = rt::current_ctx();
    record_trace_event({TraceEventKind::Synchronization, ctx.rank(),
                        trace_begin, ctx.clock().now(), "flush", 0, 0});
  }
}

}  // namespace cid::core::detail
