// Directive event tracing — a virtual-time timeline of what every rank's
// directives did (posts, transfers, synchronization waits, collectives),
// exportable as Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// Because timing is virtual and deterministic, a trace is a reproducible
// artifact: two runs of the same program produce byte-identical timelines.
// Tracing is off by default; enabling it costs one vector push per event.
//
// Usage:
//   cid::core::TraceCollector trace;           // before rt::run
//   cid::rt::run(n, [&](auto& ctx) {
//     trace.attach(ctx);                       // once per rank
//     ... directives ...
//   });
//   std::ofstream out("trace.json");
//   trace.write_chrome_json(out);
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rt/runtime.hpp"
#include "simnet/machine_model.hpp"

namespace cid::core {

enum class TraceEventKind : std::uint8_t {
  P2PDirective,        ///< one comm_p2p execution (span)
  RegionDirective,     ///< one comm_parameters region (span)
  CollectiveDirective, ///< one comm_collective execution (span)
  Synchronization,     ///< a flush: waitall / shmem waits / fences (span)
  Overlap,             ///< the user's overlapped computation block (span)
  FaultInjected,       ///< the fault layer dropped/delayed/duplicated/stalled
  Retransmit,          ///< reliability layer re-sent a transfer attempt
  Timeout,             ///< a virtual-time retransmission/receive timer fired
};

std::string_view trace_event_kind_name(TraceEventKind kind) noexcept;

struct TraceEvent {
  TraceEventKind kind;
  int rank;
  simnet::SimTime begin;  ///< virtual seconds
  simnet::SimTime end;
  std::string site;       ///< directive site (file:line)
  std::uint64_t bytes;    ///< payload injected during the span (senders)
  std::uint64_t messages; ///< messages injected during the span
};

/// Collects events from every rank of one (or more) SPMD runs.
class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Route the calling rank's directive events into this collector. Call
  /// once per rank, inside the SPMD function, before any directive.
  void attach(rt::RankCtx& ctx);

  /// All events recorded so far, ordered by (rank, begin).
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON (microsecond timestamps = virtual us).
  void write_chrome_json(std::ostream& out) const;

  /// Drop all recorded events.
  void clear();

  struct Sink;

 private:
  std::shared_ptr<Sink> sink_;
};

namespace detail {
/// Executor hook: the active sink of the calling rank (nullptr = tracing
/// off). Set by TraceCollector::attach for the current thread.
TraceCollector::Sink* active_trace_sink() noexcept;

/// True when anything wants directive events: an attached TraceCollector on
/// this thread, or the process-wide cid::obs recorder (CID_TRACE_OUT).
/// Directive executors must gate event construction on this.
bool trace_enabled() noexcept;

/// Record an event into the attached collector (if any) and forward it to
/// cid::obs (span + derived per-site counters/histograms) when obs recording
/// is on.
void record_trace_event(TraceEvent event);
}  // namespace detail

}  // namespace cid::core
