#include "core/type_layout.hpp"

namespace cid::core {

Status TypeLayout::validate() const {
  if (fields.empty()) {
    return Status(ErrorCode::TypeError,
                  "composite type '" + name + "' reflects no fields");
  }
  for (const auto& field : fields) {
    switch (field.kind) {
      case FieldKind::Basic:
        break;
      case FieldKind::Pointer:
        return Status(ErrorCode::TypeError,
                      "pointers within a composite type are prohibited: " +
                          name + "::" + field.name);
      case FieldKind::Composite:
        return Status(
            ErrorCode::TypeError,
            "recursively nested composite types are prohibited: " + name +
                "::" + field.name);
      case FieldKind::Unsupported:
        return Status(ErrorCode::TypeError,
                      "unsupported field type: " + name + "::" + field.name);
    }
  }
  return Status::ok();
}

std::size_t TypeLayout::payload_size() const noexcept {
  std::size_t total = 0;
  for (const auto& field : fields) {
    if (field.kind == FieldKind::Basic) {
      total += field.count * mpi::basic_type_size(field.type);
    }
  }
  return total;
}

Result<mpi::Datatype> TypeLayout::to_datatype() const {
  CID_RETURN_IF_ERROR(validate());
  std::vector<mpi::TypeField> wire_fields;
  wire_fields.reserve(fields.size());
  for (const auto& field : fields) {
    wire_fields.push_back(
        {field.offset, field.count, field.type});
  }
  auto datatype = mpi::Datatype::create_struct(std::move(wire_fields), extent);
  if (!datatype.is_ok()) return datatype.status();
  mpi::Datatype committed = std::move(datatype).take();
  committed.commit();
  return committed;
}

}  // namespace cid::core
