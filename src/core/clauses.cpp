#include "core/clauses.hpp"

namespace cid::core {

std::string_view target_keyword(Target target) noexcept {
  switch (target) {
    case Target::Mpi2Side: return "TARGET_COMM_MPI_2SIDE";
    case Target::Mpi1Side: return "TARGET_COMM_MPI_1SIDE";
    case Target::Shmem: return "TARGET_COMM_SHMEM";
    case Target::Auto: return "TARGET_COMM_AUTO";
  }
  return "TARGET_COMM_UNKNOWN";
}

std::string_view sync_placement_keyword(SyncPlacement placement) noexcept {
  switch (placement) {
    case SyncPlacement::EndParamRegion: return "END_PARAM_REGION";
    case SyncPlacement::BeginNextParamRegion: return "BEGIN_NEXT_PARAM_REGION";
    case SyncPlacement::EndAdjParamRegions: return "END_ADJ_PARAM_REGIONS";
  }
  return "UNKNOWN_SYNC_PLACEMENT";
}

Result<Target> parse_target_keyword(std::string_view keyword) {
  if (keyword == "TARGET_COMM_MPI_2SIDE") return Target::Mpi2Side;
  if (keyword == "TARGET_COMM_MPI_1SIDE") return Target::Mpi1Side;
  if (keyword == "TARGET_COMM_SHMEM") return Target::Shmem;
  if (keyword == "TARGET_COMM_AUTO") return Target::Auto;
  return Status(ErrorCode::InvalidClause,
                "unknown target keyword '" + std::string(keyword) + "'");
}

std::string_view pattern_keyword(Pattern pattern) noexcept {
  switch (pattern) {
    case Pattern::OneToMany: return "PATTERN_ONE_TO_MANY";
    case Pattern::ManyToOne: return "PATTERN_MANY_TO_ONE";
    case Pattern::AllToAll: return "PATTERN_ALL_TO_ALL";
  }
  return "PATTERN_UNKNOWN";
}

Result<Pattern> parse_pattern_keyword(std::string_view keyword) {
  if (keyword == "PATTERN_ONE_TO_MANY") return Pattern::OneToMany;
  if (keyword == "PATTERN_MANY_TO_ONE") return Pattern::ManyToOne;
  if (keyword == "PATTERN_ALL_TO_ALL") return Pattern::AllToAll;
  return Status(ErrorCode::InvalidClause,
                "unknown pattern keyword '" + std::string(keyword) + "'");
}

Result<SyncPlacement> parse_sync_placement_keyword(std::string_view keyword) {
  if (keyword == "END_PARAM_REGION") return SyncPlacement::EndParamRegion;
  if (keyword == "BEGIN_NEXT_PARAM_REGION") {
    return SyncPlacement::BeginNextParamRegion;
  }
  if (keyword == "END_ADJ_PARAM_REGIONS") {
    return SyncPlacement::EndAdjParamRegions;
  }
  return Status(ErrorCode::InvalidClause,
                "unknown place_sync keyword '" + std::string(keyword) + "'");
}

Result<ExprValue> ClauseExpr::eval(const Env& env) const {
  switch (kind_) {
    case Kind::Absent:
      return Status(ErrorCode::InvalidClause, "evaluating an absent clause");
    case Kind::Value:
      return value_;
    case Kind::Parsed:
      if (!parse_error_.is_ok()) return parse_error_;
      return expr_.eval(env);
    case Kind::Callable:
      return fn_();
  }
  return Status(ErrorCode::RuntimeFault, "bad ClauseExpr kind");
}

std::string ClauseExpr::describe() const {
  switch (kind_) {
    case Kind::Absent:
      return "<absent>";
    case Kind::Value:
      return std::to_string(value_);
    case Kind::Parsed:
      if (!parse_error_.is_ok()) {
        return "<parse error: " + parse_error_.message() + ">";
      }
      return expr_.to_string();
    case Kind::Callable:
      return "<callable>";
  }
  return "<bad>";
}

Clauses Clauses::merged(const Clauses& region, const Clauses& p2p) {
  Clauses out = region;
  if (p2p.sender_.present()) out.sender_ = p2p.sender_;
  if (p2p.receiver_.present()) out.receiver_ = p2p.receiver_;
  if (p2p.sendwhen_.present()) out.sendwhen_ = p2p.sendwhen_;
  if (p2p.receivewhen_.present()) out.receivewhen_ = p2p.receivewhen_;
  if (p2p.count_.present()) out.count_ = p2p.count_;
  if (p2p.max_comm_iter_.present()) out.max_comm_iter_ = p2p.max_comm_iter_;
  if (p2p.reliability_timeout_us_.present()) {
    out.reliability_timeout_us_ = p2p.reliability_timeout_us_;
    out.reliability_max_retries_ = p2p.reliability_max_retries_;
  }
  if (p2p.target_.has_value()) out.target_ = p2p.target_;
  if (p2p.place_sync_.has_value()) out.place_sync_ = p2p.place_sync_;
  if (p2p.pattern_.has_value()) out.pattern_ = p2p.pattern_;
  if (p2p.root_.present()) out.root_ = p2p.root_;
  if (p2p.group_.present()) out.group_ = p2p.group_;
  if (!p2p.sbuf_.empty()) out.sbuf_ = p2p.sbuf_;
  if (!p2p.rbuf_.empty()) out.rbuf_ = p2p.rbuf_;
  // Bindings accumulate; p2p-level bindings shadow region ones by appearing
  // later (Env::bind overwrites).
  out.bindings_.insert(out.bindings_.end(), p2p.bindings_.begin(),
                       p2p.bindings_.end());
  return out;
}

Status Clauses::validate_p2p_site() const {
  if (place_sync_.has_value()) {
    return Status(ErrorCode::InvalidClause,
                  "place_sync may only be used with comm_parameters");
  }
  if (max_comm_iter_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "max_comm_iter may only be used with comm_parameters");
  }
  if (reliability_present()) {
    return Status(ErrorCode::InvalidClause,
                  "reliability may only be used with comm_parameters");
  }
  return Status::ok();
}

Status Clauses::validate_for_p2p() const {
  if (!sender_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "comm_p2p requires the sender clause");
  }
  if (!receiver_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "comm_p2p requires the receiver clause");
  }
  if (sbuf_.empty()) {
    return Status(ErrorCode::InvalidClause,
                  "comm_p2p requires a non-empty sbuf clause");
  }
  if (rbuf_.empty()) {
    return Status(ErrorCode::InvalidClause,
                  "comm_p2p requires a non-empty rbuf clause");
  }
  if (sbuf_.size() != rbuf_.size()) {
    return Status(ErrorCode::InvalidClause,
                  "sbuf and rbuf must list the same number of buffers (got " +
                      std::to_string(sbuf_.size()) + " and " +
                      std::to_string(rbuf_.size()) + ")");
  }
  if (sendwhen_.present() != receivewhen_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "sendwhen and receivewhen must both be present or both be "
                  "omitted");
  }
  for (std::size_t i = 0; i < sbuf_.size(); ++i) {
    const BufferRef& s = sbuf_[i];
    const BufferRef& r = rbuf_[i];
    if (s.element_size != r.element_size ||
        s.is_composite() != r.is_composite() ||
        (s.is_composite() ? s.layout != r.layout : s.basic != r.basic)) {
      return Status(ErrorCode::InvalidClause,
                    "sbuf/rbuf pair " + std::to_string(i) +
                        " have mismatched element types");
    }
    if (s.is_composite()) {
      CID_RETURN_IF_ERROR(s.layout->validate());
    }
  }
  return Status::ok();
}

Status Clauses::validate_for_collective() const {
  if (!pattern_.has_value()) {
    return Status(ErrorCode::InvalidClause,
                  "comm_collective requires the pattern clause");
  }
  if (sbuf_.empty() || rbuf_.empty()) {
    return Status(ErrorCode::InvalidClause,
                  "comm_collective requires sbuf and rbuf clauses");
  }
  if (sbuf_.size() != 1 || rbuf_.size() != 1) {
    return Status(ErrorCode::InvalidClause,
                  "comm_collective takes exactly one sbuf and one rbuf");
  }
  if (*pattern_ != Pattern::AllToAll && !root_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "pattern " + std::string(pattern_keyword(*pattern_)) +
                      " requires the root clause");
  }
  if (sendwhen_.present() || receivewhen_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "sendwhen/receivewhen do not apply to comm_collective "
                  "(use the group clause to select participants)");
  }
  if (sender_.present() || receiver_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "sender/receiver do not apply to comm_collective");
  }
  if (place_sync_.has_value() || max_comm_iter_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "place_sync/max_comm_iter do not apply to comm_collective");
  }
  if (reliability_present()) {
    return Status(ErrorCode::InvalidClause,
                  "reliability does not apply to comm_collective");
  }
  const BufferRef& s = sbuf_.front();
  const BufferRef& r = rbuf_.front();
  if (s.element_size != r.element_size ||
      s.is_composite() != r.is_composite() ||
      (s.is_composite() ? s.layout != r.layout : s.basic != r.basic)) {
    return Status(ErrorCode::InvalidClause,
                  "comm_collective sbuf/rbuf have mismatched element types");
  }
  if (s.is_composite()) {
    CID_RETURN_IF_ERROR(s.layout->validate());
  }
  return Status::ok();
}

Status Clauses::validate_for_params() const {
  if (sendwhen_.present() != receivewhen_.present()) {
    return Status(ErrorCode::InvalidClause,
                  "sendwhen and receivewhen must both be present or both be "
                  "omitted");
  }
  if (sbuf_.size() != rbuf_.size() && !sbuf_.empty() && !rbuf_.empty()) {
    return Status(ErrorCode::InvalidClause,
                  "sbuf and rbuf on comm_parameters must list the same "
                  "number of buffers");
  }
  return Status::ok();
}

}  // namespace cid::core
