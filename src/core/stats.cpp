#include "core/stats.hpp"

#include <sstream>

#include "core/exec_state.hpp"

namespace cid::core {

std::string CommStats::to_string() const {
  std::ostringstream out;
  out << "directives: " << p2p_directives << " p2p, " << regions
      << " regions, " << collective_directives << " collective\n"
      << "traffic:    " << mpi2_messages << " MPI msgs (" << mpi2_bytes
      << " B), " << mpi1_puts << " MPI puts (" << mpi1_bytes << " B), "
      << shmem_puts << " SHMEM puts (" << shmem_bytes << " B)\n"
      << "sync:       " << waitalls << " waitalls retiring "
      << requests_retired << " requests, " << shmem_quiets << " quiets, "
      << window_fences << " fences, " << conflict_flushes
      << " conflict-forced, " << deferred_syncs << " deferred\n"
      << "datatypes:  " << datatypes_created << " created, "
      << datatype_cache_hits << " cache hits\n"
      << "reliability: " << reliable_transfers << " transfers, "
      << retransmits << " retransmits, " << timeouts << " timeouts, "
      << duplicates_suppressed << " duplicates suppressed, "
      << undelivered_pairs << " undelivered";
  return out.str();
}

const CommStats& comm_stats() { return detail::ExecState::mine().stats; }

void reset_comm_stats() { detail::ExecState::mine().stats = CommStats{}; }

}  // namespace cid::core
