// Textual form of the directives:
//   #pragma comm_parameters sender(rank-1) receiver(rank+1) ...
//   #pragma comm_p2p sbuf(buf1) rbuf(buf2) count(n)
//
// parse_pragma() produces a structural representation used by the
// source-to-source translator and by the string-based runtime API
// (clauses_from_parsed + a BufferTable binding buffer names to BufferRefs).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/clauses.hpp"

namespace cid::core {

enum class DirectiveKind { CommParameters, CommP2P, CommCollective };

std::string_view directive_name(DirectiveKind kind) noexcept;

struct RawClause {
  std::string name;
  std::vector<std::string> args;  ///< top-level comma-split, trimmed
  /// Byte offset of the clause name within the text given to parse_pragma
  /// (continuation lines already joined) — lets diagnostics point at the
  /// clause instead of the start of the pragma.
  std::size_t offset = 0;
};

struct ParsedDirective {
  DirectiveKind kind = DirectiveKind::CommP2P;
  std::vector<RawClause> clauses;

  /// First clause with the given name, or nullptr.
  const RawClause* find(std::string_view name) const noexcept;
};

/// Parse one pragma line (continuation lines already joined). Accepts both
/// "#pragma comm_p2p ..." and the bare "comm_p2p ..." form. Validates clause
/// names, arity and duplicates.
Result<ParsedDirective> parse_pragma(std::string_view line);

/// Binds buffer names appearing in textual sbuf/rbuf clauses to BufferRefs.
class BufferTable {
 public:
  void add(std::string name, BufferRef buffer) {
    buffers_[std::move(name)] = std::move(buffer);
  }
  /// Lookup by the exact clause argument text (e.g. "buf1", "&ev[3*p]").
  Result<BufferRef> lookup(const std::string& name) const;

 private:
  std::map<std::string, BufferRef> buffers_;
};

/// Build an executable clause set from a parsed directive. Expression
/// clauses are parsed into Exprs; sbuf/rbuf arguments are resolved through
/// `buffers` (must be non-null when the directive lists buffers).
Result<Clauses> clauses_from_parsed(const ParsedDirective& directive,
                                    const BufferTable* buffers);

}  // namespace cid::core
