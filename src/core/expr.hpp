// The clause expression mini-language.
//
// Clause arguments in the paper are C expressions over process-local values:
//   sender(rank-1)   receiver((rank+1)%nprocs)   sendwhen(rank%2==0)
// This module parses that subset (integer arithmetic, comparisons, logical
// operators, ternary) into an AST that can be (a) evaluated at directive
// execution time against an environment binding `rank`, `nprocs` and user
// variables, and (b) printed back verbatim by the source-to-source
// translator.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace cid::core {

using ExprValue = std::int64_t;

/// Variable bindings for evaluation. `rank` and `nprocs` are bound by the
/// executor; user variables come from Clauses::let().
class Env {
 public:
  void bind(std::string name, ExprValue value) {
    values_[std::move(name)] = value;
  }
  /// Looks up a variable; error Status when unbound.
  Result<ExprValue> lookup(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      return Status(ErrorCode::ParseError,
                    "unbound variable '" + name + "' in clause expression");
    }
    return it->second;
  }

 private:
  std::map<std::string, ExprValue> values_;
};

/// Parsed expression; immutable, shareable.
class Expr {
 public:
  /// An invalid (empty) expression; eval() and to_string() reject it.
  Expr() = default;

  /// Parse the clause-expression subset. Returns ParseError status with a
  /// position-annotated message on failure.
  static Result<Expr> parse(std::string_view text);

  /// Evaluate against an environment. Errors: unbound variable, division or
  /// modulo by zero.
  Result<ExprValue> eval(const Env& env) const;

  /// Render back to C syntax (normalized whitespace, original structure).
  std::string to_string() const;

  /// Names of all variables referenced (sorted, unique) — used by validation
  /// and by the translator to check scope.
  std::vector<std::string> free_variables() const;

  bool valid() const noexcept { return node_ != nullptr; }

  struct Node;

 private:
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

}  // namespace cid::core
