// The directive clause model: the ten clauses of comm_parameters / comm_p2p
// (paper Section III-B), their builder API, inheritance (comm_parameters
// assertions apply to every enclosed comm_p2p) and validation rules.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "core/expr.hpp"

namespace cid::core {

/// The target clause keywords.
enum class Target {
  Mpi2Side,  ///< TARGET_COMM_MPI_2SIDE: MPI_Isend / MPI_Irecv (the default)
  Mpi1Side,  ///< TARGET_COMM_MPI_1SIDE: MPI_Put
  Shmem,     ///< TARGET_COMM_SHMEM: typed shmem_put
  Auto,      ///< TARGET_COMM_AUTO: cid::tune picks per site (docs/TUNING.md)
};

/// The place_sync clause keywords (comm_parameters only).
enum class SyncPlacement {
  EndParamRegion,        ///< END_PARAM_REGION
  BeginNextParamRegion,  ///< BEGIN_NEXT_PARAM_REGION
  EndAdjParamRegions,    ///< END_ADJ_PARAM_REGIONS
};

/// Collective communication patterns — the paper's Section V extension
/// ("many-to-one, one-to-many and all-to-all patterns" over "groups of
/// processes").
enum class Pattern {
  OneToMany,  ///< PATTERN_ONE_TO_MANY: broadcast from root
  ManyToOne,  ///< PATTERN_MANY_TO_ONE: gather to root
  AllToAll,   ///< PATTERN_ALL_TO_ALL: full block exchange
};

std::string_view target_keyword(Target target) noexcept;
std::string_view sync_placement_keyword(SyncPlacement placement) noexcept;
std::string_view pattern_keyword(Pattern pattern) noexcept;
Result<Target> parse_target_keyword(std::string_view keyword);
Result<SyncPlacement> parse_sync_placement_keyword(std::string_view keyword);
Result<Pattern> parse_pattern_keyword(std::string_view keyword);

/// A clause argument: a constant, a parsed expression (evaluated against the
/// directive environment), or a callable (evaluated at execution time on each
/// rank — the embedded-API equivalent of a C expression in the pragma).
class ClauseExpr {
 public:
  ClauseExpr() = default;
  ClauseExpr(ExprValue value) : value_(value), kind_(Kind::Value) {}  // NOLINT
  ClauseExpr(int value)                                                // NOLINT
      : value_(value), kind_(Kind::Value) {}
  ClauseExpr(Expr expr) : expr_(std::move(expr)), kind_(Kind::Parsed) {}  // NOLINT
  template <typename F>
    requires std::is_invocable_r_v<ExprValue, F> &&
             (!std::is_arithmetic_v<std::decay_t<F>>)
  ClauseExpr(F fn)  // NOLINT(google-explicit-constructor)
      : fn_(std::move(fn)), kind_(Kind::Callable) {}
  /// Parses eagerly; a parse failure is reported at evaluation time so the
  /// builder API stays chainable.
  ClauseExpr(const char* text) { assign_text(text); }  // NOLINT
  ClauseExpr(const std::string& text) { assign_text(text); }  // NOLINT

  bool present() const noexcept { return kind_ != Kind::Absent; }

  Result<ExprValue> eval(const Env& env) const;

  /// Human-readable form for diagnostics and codegen.
  std::string describe() const;

 private:
  enum class Kind { Absent, Value, Parsed, Callable };

  void assign_text(const std::string& text) {
    auto parsed = Expr::parse(text);
    if (parsed.is_ok()) {
      expr_ = std::move(parsed).take();
      kind_ = Kind::Parsed;
    } else {
      parse_error_ = parsed.status();
      kind_ = Kind::Parsed;  // present but broken; eval() reports the error
    }
  }

  ExprValue value_ = 0;
  Expr expr_{};
  std::function<ExprValue()> fn_;
  Status parse_error_;
  Kind kind_ = Kind::Absent;
};

/// A full clause set. Used for both directives; validation differs.
class Clauses {
 public:
  // --- builder ---------------------------------------------------------
  Clauses& sender(ClauseExpr expr) { sender_ = std::move(expr); return *this; }
  Clauses& receiver(ClauseExpr expr) { receiver_ = std::move(expr); return *this; }
  Clauses& sendwhen(ClauseExpr expr) { sendwhen_ = std::move(expr); return *this; }
  Clauses& receivewhen(ClauseExpr expr) { receivewhen_ = std::move(expr); return *this; }
  Clauses& count(ClauseExpr expr) { count_ = std::move(expr); return *this; }
  Clauses& max_comm_iter(ClauseExpr expr) { max_comm_iter_ = std::move(expr); return *this; }
  /// Reliable delivery for the region's MPI-two-sided transfers:
  /// ack/timeout/retransmit with exponential backoff in virtual time.
  /// `timeout_us` is the base retransmission timeout in virtual
  /// microseconds; `max_retries` bounds retransmissions per transfer, after
  /// which the pair is reported undelivered (see core::delivery_report()).
  Clauses& reliability(ClauseExpr timeout_us, ClauseExpr max_retries) {
    reliability_timeout_us_ = std::move(timeout_us);
    reliability_max_retries_ = std::move(max_retries);
    return *this;
  }
  Clauses& target(Target target) { target_ = target; return *this; }
  Clauses& place_sync(SyncPlacement placement) { place_sync_ = placement; return *this; }
  /// Collective-directive clauses (comm_collective only).
  Clauses& pattern(Pattern pattern) { pattern_ = pattern; return *this; }
  Clauses& root(ClauseExpr expr) { root_ = std::move(expr); return *this; }
  /// Group color: ranks with equal values form one group (< 0 = excluded).
  Clauses& group(ClauseExpr expr) { group_ = std::move(expr); return *this; }
  Clauses& sbuf(BufferRef buffer) { sbuf_.push_back(std::move(buffer)); return *this; }
  Clauses& sbuf(std::initializer_list<BufferRef> buffers) {
    sbuf_.insert(sbuf_.end(), buffers.begin(), buffers.end());
    return *this;
  }
  Clauses& rbuf(BufferRef buffer) { rbuf_.push_back(std::move(buffer)); return *this; }
  Clauses& rbuf(std::initializer_list<BufferRef> buffers) {
    rbuf_.insert(rbuf_.end(), buffers.begin(), buffers.end());
    return *this;
  }
  /// Bind a variable for string clause expressions (snapshot by value).
  Clauses& let(std::string name, ExprValue value) {
    bindings_.emplace_back(std::move(name), value);
    return *this;
  }

  // --- accessors --------------------------------------------------------
  const ClauseExpr& sender_clause() const noexcept { return sender_; }
  const ClauseExpr& receiver_clause() const noexcept { return receiver_; }
  const ClauseExpr& sendwhen_clause() const noexcept { return sendwhen_; }
  const ClauseExpr& receivewhen_clause() const noexcept { return receivewhen_; }
  const ClauseExpr& count_clause() const noexcept { return count_; }
  const ClauseExpr& max_comm_iter_clause() const noexcept { return max_comm_iter_; }
  const ClauseExpr& reliability_timeout_clause() const noexcept { return reliability_timeout_us_; }
  const ClauseExpr& reliability_retries_clause() const noexcept { return reliability_max_retries_; }
  bool reliability_present() const noexcept { return reliability_timeout_us_.present(); }
  const std::optional<Target>& target_clause() const noexcept { return target_; }
  const std::optional<SyncPlacement>& place_sync_clause() const noexcept { return place_sync_; }
  const std::optional<Pattern>& pattern_clause() const noexcept { return pattern_; }
  const ClauseExpr& root_clause() const noexcept { return root_; }
  const ClauseExpr& group_clause() const noexcept { return group_; }
  const std::vector<BufferRef>& sbuf_list() const noexcept { return sbuf_; }
  const std::vector<BufferRef>& rbuf_list() const noexcept { return rbuf_; }
  const std::vector<std::pair<std::string, ExprValue>>& bindings() const noexcept {
    return bindings_;
  }

  /// Inheritance: p2p clauses layered over a comm_parameters region's
  /// clauses. Every clause present on the p2p wins; absent ones inherit
  /// (paper: instances "do not need to re-express these communication
  /// clauses, but may provide additional assertions").
  static Clauses merged(const Clauses& region, const Clauses& p2p);

  /// Validation of the clauses written directly on a comm_p2p site (before
  /// inheritance): rejects the comm_parameters-only clauses place_sync and
  /// max_comm_iter.
  Status validate_p2p_site() const;

  /// Validation for a standalone or merged comm_p2p: required clauses
  /// present, sendwhen/receivewhen paired, buffer lists consistent.
  Status validate_for_p2p() const;

  /// Validation for a comm_parameters directive: any subset of clauses, with
  /// sendwhen/receivewhen pairing enforced.
  Status validate_for_params() const;

  /// Validation for a comm_collective directive: pattern + buffers required,
  /// root required except for ALL_TO_ALL, point-to-point-only clauses
  /// rejected.
  Status validate_for_collective() const;

 private:
  ClauseExpr sender_;
  ClauseExpr receiver_;
  ClauseExpr sendwhen_;
  ClauseExpr receivewhen_;
  ClauseExpr count_;
  ClauseExpr max_comm_iter_;
  ClauseExpr reliability_timeout_us_;
  ClauseExpr reliability_max_retries_;
  std::optional<Target> target_;
  std::optional<SyncPlacement> place_sync_;
  std::optional<Pattern> pattern_;
  ClauseExpr root_;
  ClauseExpr group_;
  std::vector<BufferRef> sbuf_;
  std::vector<BufferRef> rbuf_;
  std::vector<std::pair<std::string, ExprValue>> bindings_;
};

}  // namespace cid::core
