#include "core/reliability.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <tuple>

#include "core/exec_state.hpp"
#include "core/trace.hpp"
#include "net/backend.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "rt/envelope.hpp"
#include "rt/mailbox.hpp"
#include "tune/tune.hpp"

namespace cid::core {

std::string DeliveryReport::to_string() const {
  if (lost.empty()) return "all reliable transfers delivered";
  std::ostringstream out;
  out << lost.size() << " undelivered pair(s):";
  for (const auto& pair : lost) {
    out << "\n  " << pair.site << " pair " << pair.pair_index
        << (pair.sender_side ? " -> rank " : " <- rank ") << pair.peer
        << " (transfer " << pair.transfer_id << ", " << pair.attempts
        << " attempts)";
  }
  return out.str();
}

const DeliveryReport& delivery_report() {
  return detail::ExecState::mine().delivery_report;
}

void reset_delivery_report() {
  detail::ExecState::mine().delivery_report.lost.clear();
}

namespace detail {
namespace {

constexpr std::uint8_t kCtlAck = 1;
constexpr std::uint8_t kCtlNack = 2;
constexpr std::size_t kAttemptHeaderBytes = sizeof(std::uint32_t);

std::uint32_t read_attempt(cid::ByteSpan payload) {
  std::uint32_t attempt = 0;
  std::memcpy(&attempt, payload.data(), sizeof(attempt));
  return attempt;
}

cid::ByteBuffer make_ctl_payload(std::uint32_t attempt, std::uint8_t kind) {
  cid::ByteBuffer payload(kAttemptHeaderBytes + 1);
  std::memcpy(payload.data(), &attempt, sizeof(attempt));
  payload[kAttemptHeaderBytes] = static_cast<std::byte>(kind);
  return payload;
}

cid::ByteBuffer make_data_payload(std::uint32_t attempt, cid::ByteSpan wire) {
  cid::ByteBuffer payload(kAttemptHeaderBytes + wire.size());
  std::memcpy(payload.data(), &attempt, sizeof(attempt));
  std::copy(wire.begin(), wire.end(), payload.begin() + kAttemptHeaderBytes);
  return payload;
}

/// Sender-side progress for one transfer. `t` is the transfer's own virtual
/// timeline: timers and retransmissions advance it, never the rank clock,
/// so the epoch's timing is independent of host dispatch order.
struct SendProgress {
  ReliableSend* op = nullptr;
  int attempt = 0;                        ///< attempt currently in flight
  simnet::SimTime attempt_sent_at = 0.0;  ///< its injection-complete time
  simnet::SimTime t = 0.0;
  double wall_sent_at = 0.0;  ///< wall clock of the attempt (real-loss path)
  bool done = false;  ///< acked or abandoned (FIN sent either way)
};

/// Receiver-side progress for one transfer. `next_attempt` counts DATA
/// arrivals (clean or tombstone): per-source FIFO delivery plus the
/// stop-and-wait sender make the k-th arrival attempt k, which is how a
/// payload-less tombstone is attributed to an attempt number.
struct RecvProgress {
  ReliableRecv* op = nullptr;
  int next_attempt = 0;
  bool delivered = false;
  bool gave_up = false;
  bool finished = false;  ///< FIN seen
  simnet::SimTime t = 0.0;
};

}  // namespace

void run_reliable_epoch(ExecState& state, PendingOps& ops) {
  auto& ctx = rt::current_ctx();
  const auto& costs = ctx.model().mpi_two_sided;
  const int self = ctx.rank();
  const bool trace = trace_enabled();

  std::vector<SendProgress> sends;
  sends.reserve(ops.reliable_sends.size());
  for (auto& op : ops.reliable_sends) {
    SendProgress sp;
    sp.op = &op;
    sp.attempt_sent_at = op.sent_at;
    sp.t = op.local_complete_at;
    sends.push_back(sp);
  }
  std::vector<RecvProgress> recvs;
  recvs.reserve(ops.reliable_recvs.size());
  for (auto& op : ops.reliable_recvs) {
    RecvProgress rp;
    rp.op = &op;
    rp.t = op.posted_at;
    recvs.push_back(rp);
  }

  // The consolidated completion call, charged exactly as the plain lowering's
  // waitall would be: the success path of the protocol costs the same as the
  // unprotected one (acks, nacks and fins ride the NIC for free).
  const auto retiring = static_cast<simnet::SimTime>(sends.size() +
                                                     recvs.size());
  ++state.stats.waitalls;
  state.stats.requests_retired +=
      static_cast<std::uint64_t>(sends.size() + recvs.size());
  ctx.charge_compute(costs.waitall_base + costs.waitall_per_request * retiring);

  // NIC-offloaded protocol message: no CPU charge, one latency to the peer.
  const auto emit = [&](int dest, int tag, int context,
                        cid::ByteBuffer payload, simnet::SimTime when) {
    rt::Envelope envelope;
    envelope.src = self;
    envelope.tag = tag;
    envelope.channel = rt::Channel::Internal;
    envelope.context = context;
    envelope.payload = rt::Payload(std::move(payload));
    envelope.available_at = when + costs.latency;
    ctx.world().deliver(dest, std::move(envelope));
  };

  // One key set covering both roles: a ctl message for an open send, or a
  // data/fin message for an open receive. Waiting on the union is what lets
  // a rank answer its peers' transfers while blocked on its own. Every key
  // is exact (src and tag pinned) and tombstone-transparent, so the epoch
  // loop sees losses as well as payloads; rebuilt per iteration as transfers
  // close.
  const auto relevant_keys = [&] {
    std::vector<rt::MatchKey> keys;
    keys.reserve(sends.size() + 2 * recvs.size());
    for (const SendProgress& sp : sends) {
      if (sp.done) continue;
      keys.push_back({rt::Channel::Internal, kReliableCtlCtx, sp.op->dest,
                      sp.op->transfer_id, rt::FaultFilter::Any});
    }
    for (const RecvProgress& rp : recvs) {
      if (rp.finished) continue;
      keys.push_back({rt::Channel::Internal, kReliableDataCtx, rp.op->src,
                      rp.op->transfer_id, rt::FaultFilter::Any});
      keys.push_back({rt::Channel::Internal, kReliableFinCtx, rp.op->src,
                      rp.op->transfer_id, rt::FaultFilter::Any});
    }
    return keys;
  };

  const auto open = [&] {
    return std::any_of(sends.begin(), sends.end(),
                       [](const SendProgress& sp) { return !sp.done; }) ||
           std::any_of(recvs.begin(), recvs.end(),
                       [](const RecvProgress& rp) { return !rp.finished; });
  };

  // On real-loss transports (tcp) a dropped message leaves no tombstone:
  // the sender detects loss by the *absence* of an ack within a wall-clock
  // deadline instead of by deterministic tombstone evidence. Virtual
  // timeouts map to wall seconds via CID_NET_TIMEOUT_SCALE.
  const net::Transport* transport = ctx.world().transport();
  const bool real_loss = transport != nullptr && transport->real_loss();
  const double wall_scale = real_loss ? net::timeout_scale_from_env() : 0.0;
  if (real_loss) {
    const double now = net::wall_seconds();
    for (SendProgress& sp : sends) sp.wall_sent_at = now;
  }
  const auto virtual_deadline = [](const SendProgress& sp) {
    return sp.attempt_sent_at + sp.op->timeout * std::ldexp(1.0, sp.attempt);
  };
  const auto wall_deadline = [&](const SendProgress& sp) {
    return sp.wall_sent_at +
           sp.op->timeout * std::ldexp(1.0, sp.attempt) * wall_scale;
  };

  // The retransmission timer fired for `sp` at virtual time `fired`:
  // abandon the transfer past max_retries, otherwise re-inject the payload
  // as the next attempt. Shared by the tombstone/nack path (sim, thread)
  // and the wall-clock timeout path (tcp).
  const auto fire_send_timeout = [&](SendProgress& sp, simnet::SimTime fired) {
    ++state.stats.timeouts;
    if (trace) {
      record_trace_event({TraceEventKind::Timeout, self, sp.attempt_sent_at,
                          fired, sp.op->site, 0, 0});
    }
    sp.t = std::max(sp.t, fired);
    if (sp.attempt >= sp.op->max_retries) {
      sp.done = true;
      ++state.stats.undelivered_pairs;
      state.delivery_report.lost.push_back(
          {sp.op->site, sp.op->pair_index, sp.op->dest, sp.op->transfer_id,
           /*sender_side=*/true, sp.attempt + 1});
      emit(sp.op->dest, sp.op->transfer_id, kReliableFinCtx, {}, sp.t);
      return;
    }
    ++sp.attempt;
    // payload holds the prefixed attempt-0 buffer; the wire bytes follow
    // the attempt header.
    const cid::ByteSpan wire =
        sp.op->payload.span().subspan(kAttemptHeaderBytes);
    const std::size_t bytes = wire.size();
    const simnet::SimTime injection_start = sp.t;
    sp.t += costs.send_overhead + costs.per_message_gap +
            static_cast<simnet::SimTime>(bytes) /
                costs.injection_bytes_per_second;
    const simnet::SimTime delivery =
        std::max(costs.delivery_time(injection_start, bytes),
                 sp.t + costs.latency);
    rt::Envelope data;
    data.src = self;
    data.tag = sp.op->transfer_id;
    data.channel = rt::Channel::Internal;
    data.context = kReliableDataCtx;
    data.payload = rt::Payload(
        make_data_payload(static_cast<std::uint32_t>(sp.attempt), wire));
    data.available_at = delivery;
    ctx.world().deliver(sp.op->dest, std::move(data));
    sp.attempt_sent_at = sp.t;
    sp.wall_sent_at = net::wall_seconds();
    if (bytes > costs.eager_threshold_bytes) sp.t = delivery;
    ++state.stats.retransmits;
    if (trace) {
      record_trace_event({TraceEventKind::Retransmit, self, injection_start,
                          delivery, sp.op->site, bytes, 1});
    }
  };

  while (open()) {
    const std::vector<rt::MatchKey> keys = relevant_keys();
    std::optional<rt::Envelope> extracted;
    if (real_loss) {
      // Earliest ack deadline among the in-flight sends bounds the wait.
      double earliest = std::numeric_limits<double>::infinity();
      for (const SendProgress& sp : sends) {
        if (!sp.done) earliest = std::min(earliest, wall_deadline(sp));
      }
      if (std::isfinite(earliest)) {
        extracted = ctx.mailbox().wait_extract_for(
            keys, earliest - net::wall_seconds());
        if (!extracted) {
          const double now = net::wall_seconds();
          for (SendProgress& sp : sends) {
            if (!sp.done && now >= wall_deadline(sp)) {
              fire_send_timeout(sp, virtual_deadline(sp));
            }
          }
          continue;
        }
      } else {
        // Only receives are open; the senders drive all the timers.
        extracted = ctx.mailbox().wait_extract(keys);
      }
    } else {
      extracted = ctx.mailbox().wait_extract(keys);
    }
    rt::Envelope e = std::move(*extracted);

    if (e.context == kReliableCtlCtx) {
      auto it = std::find_if(sends.begin(), sends.end(),
                             [&](const SendProgress& sp) {
                               return !sp.done && e.src == sp.op->dest &&
                                      e.tag == sp.op->transfer_id;
                             });
      CID_ASSERT(it != sends.end(), "reliable ctl lost its transfer");
      SendProgress& sp = *it;
      if (!e.faulted) {
        const std::uint32_t attempt = read_attempt(e.payload.span());
        if (attempt != static_cast<std::uint32_t>(sp.attempt)) {
          continue;  // stale duplicate of an earlier attempt's response
        }
        const auto kind =
            static_cast<std::uint8_t>(e.payload[kAttemptHeaderBytes]);
        if (kind == kCtlAck) {
          // Delivered. The sender's time was settled when the payload left
          // the NIC (local_complete_at / the last retransmission); the ack
          // only closes the protocol state.
          if (tune::recording()) {
            // Clean round trip: injection-complete to ack arrival. Feeds the
            // rtt quantiles that tighten the retransmission timeout.
            obs::observe("cid.reliability.rtt_seconds", sp.op->site, self,
                         e.available_at - sp.attempt_sent_at);
            if (real_loss) {
              obs::observe("cid.reliability.wall_rtt_seconds", sp.op->site,
                           self, net::wall_seconds() - sp.wall_sent_at);
            }
          }
          sp.done = true;
          emit(sp.op->dest, sp.op->transfer_id, kReliableFinCtx, {}, sp.t);
          continue;
        }
      }
      // A nack for the current attempt, or a tombstoned response: the
      // retransmission timer fires. Loss can only be observed once its
      // evidence has arrived, hence the max with the tombstone/nack time.
      fire_send_timeout(sp, std::max(e.available_at, virtual_deadline(sp)));
      continue;
    }

    auto it = std::find_if(recvs.begin(), recvs.end(),
                           [&](const RecvProgress& rp) {
                             return !rp.finished && e.src == rp.op->src &&
                                    e.tag == rp.op->transfer_id;
                           });
    CID_ASSERT(it != recvs.end(), "reliable data lost its transfer");
    RecvProgress& rp = *it;

    if (e.context == kReliableFinCtx) {
      rp.finished = true;
      if (!rp.delivered && !rp.gave_up) {
        // The sender abandoned the transfer before this side saw the final
        // loss (e.g. its own evidence arrived first). Record it here too.
        rp.gave_up = true;
        ++state.stats.undelivered_pairs;
        state.delivery_report.lost.push_back(
            {rp.op->site, rp.op->pair_index, rp.op->src, rp.op->transfer_id,
             /*sender_side=*/false, rp.next_attempt});
      }
      continue;
    }

    if (e.faulted) {
      // This attempt's payload was lost; its tombstone is the deterministic
      // observation of that loss. Negative-acknowledge so the sender's
      // backoff timer can fire.
      rp.t = std::max(rp.t, e.available_at);
      const auto attempt = static_cast<std::uint32_t>(rp.next_attempt);
      emit(rp.op->src, rp.op->transfer_id, kReliableCtlCtx,
           make_ctl_payload(attempt, kCtlNack), rp.t);
      if (rp.next_attempt >= rp.op->max_retries && !rp.delivered &&
          !rp.gave_up) {
        rp.gave_up = true;
        ++state.stats.undelivered_pairs;
        state.delivery_report.lost.push_back(
            {rp.op->site, rp.op->pair_index, rp.op->src, rp.op->transfer_id,
             /*sender_side=*/false, rp.next_attempt + 1});
      }
      ++rp.next_attempt;
      continue;
    }

    const std::uint32_t attempt = read_attempt(e.payload.span());
    if (!real_loss) {
      if (attempt < static_cast<std::uint32_t>(rp.next_attempt)) {
        // A fault-duplicated copy of an attempt that was already answered.
        ++state.stats.duplicates_suppressed;
        continue;
      }
      CID_ASSERT(attempt == static_cast<std::uint32_t>(rp.next_attempt),
                 "reliable data attempt from the future");
    }
    // Under real loss attempt numbers may skip (a lost DATA is simply never
    // seen) or regress (a late copy overtaken by a retransmission); every
    // arrival is answered with its own attempt number and the sender
    // ignores acks of superseded attempts.
    rp.t = std::max(rp.t, e.available_at);
    if (!rp.delivered) {
      const cid::ByteSpan wire(e.payload.data() + kAttemptHeaderBytes,
                               e.payload.size() - kAttemptHeaderBytes);
      const Status scattered =
          rp.op->dtype.scatter(wire, rp.op->buf, rp.op->count);
      CID_REQUIRE(scattered.is_ok(), ErrorCode::RuntimeFault,
                  scattered.to_string());
      if (!rp.op->dtype.is_contiguous()) {
        // Same unpack walk the plain engine charges on delivery.
        ctx.charge_compute(static_cast<simnet::SimTime>(wire.size()) /
                           ctx.model().host.datatype_pack_bytes_per_second);
      }
      rp.delivered = true;
    } else {
      // A retransmission of a payload we already have (its ack was lost).
      ++state.stats.duplicates_suppressed;
    }
    // (Re-)acknowledge; the sender keeps retransmitting until an ack of the
    // current attempt gets through, so every DATA arrival is answered.
    emit(rp.op->src, rp.op->transfer_id, kReliableCtlCtx,
         make_ctl_payload(attempt, kCtlAck), rp.t);
    rp.next_attempt = real_loss
                          ? std::max(rp.next_attempt,
                                     static_cast<int>(attempt) + 1)
                          : rp.next_attempt + 1;
  }

  // Losses were recorded in arrival order, which depends on host scheduling
  // across sources; canonicalize so the report is run-to-run identical.
  std::sort(state.delivery_report.lost.begin(),
            state.delivery_report.lost.end(),
            [](const LostPair& a, const LostPair& b) {
              return std::tie(a.site, a.pair_index, a.peer, a.transfer_id,
                              a.sender_side) <
                     std::tie(b.site, b.pair_index, b.peer, b.transfer_id,
                              b.sender_side);
            });

  // The rank clock advances once, to the latest transfer timeline — the
  // moment this rank's synchronization point is truly over.
  simnet::SimTime final_t = ctx.clock().now();
  for (const auto& sp : sends) final_t = std::max(final_t, sp.t);
  for (const auto& rp : recvs) final_t = std::max(final_t, rp.t);
  ctx.clock().advance_to(final_t);

  // Best-effort drain of protocol leftovers (fault-duplicated acks/fins
  // whose first copy already closed the transfer). They could never match a
  // later transfer — ids are monotonic per ordered pair — so this only keeps
  // the mailbox tidy.
  std::vector<rt::MatchKey> drain_keys;
  drain_keys.reserve(sends.size() + 2 * recvs.size());
  for (const SendProgress& sp : sends) {
    drain_keys.push_back({rt::Channel::Internal, kReliableCtlCtx, sp.op->dest,
                          sp.op->transfer_id, rt::FaultFilter::Any});
  }
  for (const RecvProgress& rp : recvs) {
    drain_keys.push_back({rt::Channel::Internal, kReliableDataCtx, rp.op->src,
                          rp.op->transfer_id, rt::FaultFilter::Any});
    drain_keys.push_back({rt::Channel::Internal, kReliableFinCtx, rp.op->src,
                          rp.op->transfer_id, rt::FaultFilter::Any});
  }
  while (ctx.mailbox().try_extract(drain_keys)) {
  }

  // The epoch is the reliable lowering's flush: persistent slots can be
  // restarted by the next region execution.
  for (auto& [site, slots] : state.reliable_slots) {
    slots.send_used = 0;
    slots.recv_used = 0;
  }

  ops.reliable_sends.clear();
  ops.reliable_recvs.clear();
}

}  // namespace detail

}  // namespace cid::core
