#include "core/collective.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "core/exec_state.hpp"
#include "core/trace.hpp"
#include "mpi/coll.hpp"
#include "mpi/mpi.hpp"
#include "obs/obs.hpp"
#include "shmem/shmem.hpp"
#include "tune/tune.hpp"

namespace cid::core {

namespace detail {
namespace {

Env make_env(const Clauses& clauses) {
  Env env;
  auto& ctx = rt::current_ctx();
  env.bind("rank", ctx.rank());
  env.bind("nprocs", ctx.nranks());
  for (const auto& [name, value] : clauses.bindings()) env.bind(name, value);
  return env;
}

ExprValue eval_clause(const ClauseExpr& clause, const Env& env,
                      const char* what) {
  auto value = clause.eval(env);
  CID_REQUIRE(value.is_ok(), ErrorCode::InvalidClause,
              std::string(what) + " clause: " + value.status().to_string());
  return value.value();
}

std::size_t resolve_count(const Clauses& clauses, const Env& env,
                          Pattern pattern, int group_size) {
  if (clauses.count_clause().present()) {
    const ExprValue value = eval_clause(clauses.count_clause(), env, "count");
    CID_REQUIRE(value > 0, ErrorCode::InvalidClause,
                "count clause must evaluate to a positive value");
    return static_cast<std::size_t>(value);
  }
  // Inference: the per-block count derived from the smallest array extent,
  // divided by the group size where the buffer holds one block per member.
  std::size_t smallest = SIZE_MAX;
  auto extent_blocks = [&](const BufferRef& buffer, bool per_member) {
    if (!buffer.has_extent) return;
    const std::size_t divisor =
        per_member ? static_cast<std::size_t>(group_size) : 1;
    if (buffer.extent_count >= divisor && divisor > 0) {
      smallest = std::min(smallest, buffer.extent_count / divisor);
    }
  };
  const BufferRef& s = clauses.sbuf_list().front();
  const BufferRef& r = clauses.rbuf_list().front();
  switch (pattern) {
    case Pattern::OneToMany:
      extent_blocks(s, false);
      extent_blocks(r, false);
      break;
    case Pattern::ManyToOne:
      extent_blocks(s, false);
      extent_blocks(r, true);
      break;
    case Pattern::AllToAll:
      extent_blocks(s, true);
      extent_blocks(r, true);
      break;
  }
  CID_REQUIRE(smallest != SIZE_MAX && smallest > 0, ErrorCode::InvalidClause,
              "count omitted and no usable array extent on the buffers");
  return smallest;
}

mpi::Datatype datatype_for_buffer(ExecState& state, const BufferRef& buffer) {
  if (buffer.is_composite()) return state.datatype_for(*buffer.layout);
  return mpi::Datatype::basic(buffer.basic);
}

void require_capacity(const BufferRef& buffer, std::size_t needed,
                      const char* what) {
  CID_REQUIRE(!buffer.has_extent || buffer.extent_count >= needed,
              ErrorCode::InvalidClause,
              std::string(what) + " buffer '" + buffer.name + "' holds " +
                  std::to_string(buffer.extent_count) + " elements, needs " +
                  std::to_string(needed));
}

void lower_mpi(ExecState& state, const mpi::Comm& comm, Pattern pattern,
               int root, std::size_t count, const BufferRef& sbuf,
               const BufferRef& rbuf,
               std::optional<mpi::coll::CollAlgo> hint) {
  const mpi::Datatype dtype = datatype_for_buffer(state, sbuf);
  switch (pattern) {
    case Pattern::OneToMany:
      require_capacity(rbuf, count, "ONE_TO_MANY rbuf");
      if (comm.rank() == root) {
        std::memcpy(rbuf.data, sbuf.data, count * dtype.extent());
      }
      mpi::coll::bcast(comm, rbuf.data, count, dtype, root, hint);
      return;
    case Pattern::ManyToOne:
      require_capacity(sbuf, count, "MANY_TO_ONE sbuf");
      if (comm.rank() == root) {
        require_capacity(rbuf,
                         count * static_cast<std::size_t>(comm.size()),
                         "MANY_TO_ONE rbuf");
      }
      mpi::coll::gather(comm, sbuf.data, count, dtype,
                        comm.rank() == root ? rbuf.data : nullptr, root,
                        hint);
      return;
    case Pattern::AllToAll: {
      const std::size_t total =
          count * static_cast<std::size_t>(comm.size());
      require_capacity(sbuf, total, "ALL_TO_ALL sbuf");
      require_capacity(rbuf, total, "ALL_TO_ALL rbuf");
      mpi::coll::alltoall(comm, sbuf.data, count, dtype, rbuf.data, hint);
      return;
    }
  }
}

/// The CollOp the MPI lowering of `pattern` dispatches through.
tune::CollOp coll_op_for(Pattern pattern) {
  switch (pattern) {
    case Pattern::OneToMany: return tune::CollOp::Bcast;
    case Pattern::ManyToOne: return tune::CollOp::Gather;
    case Pattern::AllToAll: return tune::CollOp::Alltoall;
  }
  return tune::CollOp::Bcast;
}

void lower_shmem(ExecState& state, const SiteKey& site, const mpi::Comm& comm,
                 Pattern pattern, int root, std::size_t count,
                 const BufferRef& sbuf, const BufferRef& rbuf) {
  auto& ctx = rt::current_ctx();
  const int me_world = ctx.rank();
  const int me = comm.rank();
  const int size = comm.size();
  const std::size_t block = count * sbuf.element_size;

  CID_REQUIRE(shmem::is_symmetric(rbuf.data), ErrorCode::InvalidClause,
              "SHMEM collective target requires a symmetric rbuf");

  // Key-coordinated allocation: members of the group get the same offset
  // regardless of which ranks participate or in what order. Two slot banks:
  // data publications and consumption acks (see ShmemCollectiveSite).
  const std::size_t npes = static_cast<std::size_t>(ctx.nranks());
  auto& coll = state.shmem_collectives[site];
  if (coll.flags == nullptr) {
    coll.flags = shmem::shared_flags("cid.coll." + site, 2 * npes);
  }
  const bool first_round = coll.executions++ == 0;

  auto put_block = [&](const void* src, void* dest_sym, int dest_world) {
    shmem::putmem(dest_sym, src, block, dest_world);
    ++state.stats.shmem_puts;
    state.stats.shmem_bytes += block;
  };
  auto publish = [&](int dest_world) {
    shmem::put_value64(&coll.flags[me_world], ++coll.sent_to[dest_world],
                       dest_world);
  };
  auto await = [&](int src_world) {
    shmem::wait_until(&coll.flags[src_world], shmem::Cmp::Ge,
                      ++coll.expected_from[src_world]);
  };
  // Deferred consumption acks: entering the site again proves the previous
  // round's buffers were consumed; writers wait for that before overwriting.
  auto publish_ack = [&](int dest_world) {
    shmem::put_value64(&coll.flags[npes + me_world],
                       ++coll.acks_sent_to[dest_world], dest_world);
  };
  auto await_ack = [&](int src_world) {
    shmem::wait_until(&coll.flags[npes + src_world], shmem::Cmp::Ge,
                      ++coll.acks_expected_from[src_world]);
  };
  auto* rbuf_bytes = static_cast<std::byte*>(rbuf.data);
  const auto* sbuf_bytes = static_cast<const std::byte*>(sbuf.data);

  switch (pattern) {
    case Pattern::OneToMany: {
      require_capacity(rbuf, count, "ONE_TO_MANY rbuf");
      if (me == root) {
        if (!first_round) {
          for (int m = 0; m < size; ++m) {
            if (m != me) await_ack(comm.world_rank(m));
          }
        }
        std::memcpy(rbuf.data, sbuf.data, block);
        for (int m = 0; m < size; ++m) {
          if (m == me) continue;
          put_block(sbuf.data, rbuf.data, comm.world_rank(m));
        }
        shmem::fence();
        for (int m = 0; m < size; ++m) {
          if (m == me) continue;
          publish(comm.world_rank(m));
        }
        shmem::quiet();
      } else {
        if (!first_round) publish_ack(comm.world_rank(root));
        await(comm.world_rank(root));
      }
      return;
    }
    case Pattern::ManyToOne: {
      require_capacity(sbuf, count, "MANY_TO_ONE sbuf");
      const int root_world = comm.world_rank(root);
      if (me == root) {
        require_capacity(rbuf, count * static_cast<std::size_t>(size),
                         "MANY_TO_ONE rbuf");
        if (!first_round) {
          for (int m = 0; m < size; ++m) {
            if (m != me) publish_ack(comm.world_rank(m));
          }
        }
        std::memcpy(rbuf_bytes + static_cast<std::size_t>(me) * block,
                    sbuf.data, block);
        for (int m = 0; m < size; ++m) {
          if (m == me) continue;
          await(comm.world_rank(m));
        }
      } else {
        if (!first_round) await_ack(root_world);
        // My block lands at my group-rank offset in the root's rbuf; the
        // root's rbuf is symmetric, so my own rbuf pointer addresses it.
        put_block(sbuf.data,
                  rbuf_bytes + static_cast<std::size_t>(me) * block,
                  root_world);
        shmem::fence();
        publish(root_world);
        shmem::quiet();
      }
      return;
    }
    case Pattern::AllToAll: {
      const std::size_t total = count * static_cast<std::size_t>(size);
      require_capacity(sbuf, total, "ALL_TO_ALL sbuf");
      require_capacity(rbuf, total, "ALL_TO_ALL rbuf");
      if (!first_round) {
        for (int m = 0; m < size; ++m) {
          if (m != me) publish_ack(comm.world_rank(m));
        }
        for (int m = 0; m < size; ++m) {
          if (m != me) await_ack(comm.world_rank(m));
        }
      }
      std::memcpy(rbuf_bytes + static_cast<std::size_t>(me) * block,
                  sbuf_bytes + static_cast<std::size_t>(me) * block, block);
      for (int m = 0; m < size; ++m) {
        if (m == me) continue;
        put_block(sbuf_bytes + static_cast<std::size_t>(m) * block,
                  rbuf_bytes + static_cast<std::size_t>(me) * block,
                  comm.world_rank(m));
      }
      shmem::fence();
      for (int m = 0; m < size; ++m) {
        if (m == me) continue;
        publish(comm.world_rank(m));
      }
      for (int m = 0; m < size; ++m) {
        if (m == me) continue;
        await(comm.world_rank(m));
      }
      shmem::quiet();
      return;
    }
  }
}

}  // namespace
}  // namespace detail

void comm_collective(const Clauses& clauses, std::source_location site_loc) {
  using namespace detail;
  CID_REQUIRE(rt::in_spmd_region(), ErrorCode::RuntimeFault,
              "comm_collective outside an SPMD region");
  auto& ctx = rt::current_ctx();
  auto& state = ExecState::mine();

  const simnet::SimTime trace_begin = ctx.clock().now();
  ++state.stats.collective_directives;
  const Status valid = clauses.validate_for_collective();
  if (!valid.is_ok()) throw CidError(valid.code(), valid.message());

  // Collectives are synchronizing: complete pending point-to-point work
  // first so buffer reuse across the directive stays ordered. All ranks
  // reach the directive (SPMD), so the full flush (including collective
  // window fences) is safe here.
  state.flush(state.pending);

  const Env env = make_env(clauses);
  const Pattern pattern = *clauses.pattern_clause();
  const Target target = clauses.target_clause().value_or(Target::Mpi2Side);
  CID_REQUIRE(target != Target::Mpi1Side, ErrorCode::UnsupportedTarget,
              "comm_collective does not support TARGET_COMM_MPI_1SIDE");

  // Group formation (cached per site; re-split collectively on change).
  const ExprValue color =
      clauses.group_clause().present()
          ? eval_clause(clauses.group_clause(), env, "group")
          : 0;
  const SiteKey site = std::string(site_loc.file_name()) + ":" +
                       std::to_string(site_loc.line());

  auto& cache = state.group_comms[site];
  if (!cache.valid || cache.color != color) {
    cache.comm = mpi::Comm::world().split(
        color < 0 ? -1 : static_cast<int>(color), ctx.rank());
    cache.color = color;
    cache.valid = true;
  }
  if (!cache.comm.valid()) return;  // excluded by a negative group value
  const mpi::Comm& comm = cache.comm;

  int root = 0;
  if (pattern != Pattern::AllToAll) {
    const ExprValue value = eval_clause(clauses.root_clause(), env, "root");
    CID_REQUIRE(value >= 0 && value < comm.size(), ErrorCode::InvalidClause,
                "root clause evaluates to out-of-range group rank " +
                    std::to_string(value));
    root = static_cast<int>(value);
  }

  const std::size_t count =
      resolve_count(clauses, env, pattern, comm.size());
  const BufferRef& sbuf = clauses.sbuf_list().front();
  const BufferRef& rbuf = clauses.rbuf_list().front();

  // cid::tune integration. Record mode harvests the site's collective shape
  // (per-block bytes, group size, pattern mix) into the profile; under
  // CID_TUNE=on a recorded profile re-evaluates the algorithm chooser with
  // the OBSERVED size distribution, and the resulting hint steers the
  // engine (still below any CID_COLL operator override).
  const std::size_t block_bytes = count * sbuf.element_size;
  std::optional<mpi::coll::CollAlgo> hint;
  if (tune::recording()) {
    obs::observe("cid.tune.coll_block_bytes", site, ctx.rank(),
                 static_cast<double>(block_bytes));
    obs::observe("cid.tune.coll_group", site, ctx.rank(),
                 static_cast<double>(comm.size()));
    const char* pattern_metric = pattern == Pattern::OneToMany
                                     ? "cid.tune.coll_o2m"
                                     : pattern == Pattern::ManyToOne
                                           ? "cid.tune.coll_m2o"
                                           : "cid.tune.coll_a2a";
    obs::count(pattern_metric, site, ctx.rank());
  } else if (tune::active()) {
    const tune::SiteProfile* profile = tune::Tuner::global().site(site);
    if (profile != nullptr && profile->coll_calls > 0) {
      const tune::CollOp op = coll_op_for(pattern);
      const tune::CollShape shape{
          block_bytes,
          op == tune::CollOp::Bcast
              ? block_bytes
              : block_bytes * static_cast<std::size_t>(comm.size()),
          comm.size()};
      hint = tune::choose_collective(op, shape, ctx.model(), profile).algo;
    }
  }

  if (target == Target::Mpi2Side) {
    lower_mpi(state, comm, pattern, root, count, sbuf, rbuf, hint);
  } else {
    lower_shmem(state, site, comm, pattern, root, count, sbuf, rbuf);
  }

  if (detail::trace_enabled()) {
    detail::record_trace_event({TraceEventKind::CollectiveDirective,
                                ctx.rank(), trace_begin, ctx.clock().now(),
                                site, 0, 0});
  }
}

}  // namespace cid::core
