// Communication statistics — the introspection side of the paper's thesis
// that directives make communication analyzable. Because every transfer goes
// through the directive executor, the intent (pattern, payload, target,
// synchronization behaviour) is visible and countable; this is the runtime
// analogue of the static analysis the paper wants compilers to perform.
//
// Counters are rank-local (reset when a new SPMD world starts) and cost two
// integer additions per event.
#pragma once

#include <cstdint>
#include <string>

namespace cid::core {

struct CommStats {
  // Directive executions.
  std::uint64_t p2p_directives = 0;
  std::uint64_t regions = 0;
  std::uint64_t collective_directives = 0;

  // Message traffic injected by this rank (per target).
  std::uint64_t mpi2_messages = 0;
  std::uint64_t mpi2_bytes = 0;
  std::uint64_t mpi1_puts = 0;
  std::uint64_t mpi1_bytes = 0;
  std::uint64_t shmem_puts = 0;
  std::uint64_t shmem_bytes = 0;

  // Synchronization.
  std::uint64_t waitalls = 0;          ///< consolidated MPI completions
  std::uint64_t requests_retired = 0;  ///< requests completed via waitalls
  std::uint64_t shmem_quiets = 0;
  std::uint64_t window_fences = 0;
  std::uint64_t conflict_flushes = 0;  ///< adjacency analysis forced a sync
  std::uint64_t deferred_syncs = 0;    ///< place_sync moved sync past a region

  // Derived-datatype engine.
  std::uint64_t datatypes_created = 0;
  std::uint64_t datatype_cache_hits = 0;

  // Reliability protocol (the reliability(timeout, retries) region option).
  std::uint64_t reliable_transfers = 0;      ///< transfers sent reliably
  std::uint64_t retransmits = 0;             ///< data re-sends after a loss
  std::uint64_t timeouts = 0;                ///< virtual-time timer firings
  std::uint64_t duplicates_suppressed = 0;   ///< redundant copies discarded
  std::uint64_t undelivered_pairs = 0;       ///< lost after max_retries

  std::uint64_t total_messages() const noexcept {
    return mpi2_messages + mpi1_puts + shmem_puts;
  }
  std::uint64_t total_bytes() const noexcept {
    return mpi2_bytes + mpi1_bytes + shmem_bytes;
  }

  bool operator==(const CommStats&) const = default;

  /// Multi-line human-readable report.
  std::string to_string() const;
};

/// The calling rank's counters (valid inside an SPMD region).
const CommStats& comm_stats();

/// Reset the calling rank's counters.
void reset_comm_stats();

}  // namespace cid::core
