// The reliability(timeout, max_retries) region option: ack/timeout/
// retransmit with exponential backoff in virtual time for the region's
// MPI-two-sided transfers.
//
// The protocol runs at the region's synchronization point as one combined
// event loop over every pending reliable send and receive of the calling
// rank, so sender and receiver roles progress together and cross-rank wait
// cycles cannot form. Each transfer keeps its own virtual timeline; the rank
// clock advances once, to the latest timeline, when the epoch ends — which
// keeps the simulated time deterministic regardless of host scheduling.
//
// Loss is observed deterministically: the fault layer replaces a dropped
// envelope with a payload-less tombstone that still arrives (rt::Envelope::
// faulted), so a retransmission timer "fires" at
//   max(loss observation time, attempt injection + timeout * 2^attempt)
// rather than at a wall-clock-dependent instant. A delayed-but-delivered
// message therefore never spuriously retransmits.
//
// Graceful degradation: after max_retries retransmissions the pair is
// abandoned, recorded in the rank's DeliveryReport, and the protocol still
// terminates on both sides (the sender always closes a transfer with a FIN).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cid::core {

/// One sbuf/rbuf pair the reliability protocol gave up on.
struct LostPair {
  std::string site;        ///< directive site (file:line)
  std::size_t pair_index;  ///< which sbuf/rbuf pair of the directive
  int peer;                ///< the other rank (world rank)
  int transfer_id;         ///< per-(src,dst) transfer sequence number
  bool sender_side;        ///< true: this rank was the sender
  int attempts;            ///< transmissions tried before giving up

  bool operator==(const LostPair&) const = default;
};

/// Outcome of the calling rank's reliable transfers: empty = everything was
/// delivered (possibly after retransmissions). Both endpoints of a lost pair
/// record it, each from its own side.
struct DeliveryReport {
  std::vector<LostPair> lost;

  bool all_delivered() const noexcept { return lost.empty(); }
  std::string to_string() const;
};

/// The calling rank's report (valid inside an SPMD region).
const DeliveryReport& delivery_report();

/// Forget previously recorded losses.
void reset_delivery_report();

namespace detail {

class ExecState;
struct PendingOps;

/// Internal-channel contexts of the protocol's three message types.
inline constexpr int kReliableDataCtx = 0x7D01;  ///< [u32 attempt][wire bytes]
inline constexpr int kReliableCtlCtx = 0x7D02;   ///< [u32 attempt][u8 ack/nack]
inline constexpr int kReliableFinCtx = 0x7D03;   ///< empty; closes a transfer

/// Run the combined sender/receiver event loop over ops' reliable transfers.
/// Called from ExecState::flush; clears the reliable lists.
void run_reliable_epoch(ExecState& state, PendingOps& ops);

}  // namespace detail

}  // namespace cid::core
