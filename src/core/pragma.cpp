#include "core/pragma.hpp"

#include <algorithm>
#include <array>

#include "common/strings.hpp"

namespace cid::core {

namespace {

struct ClauseRule {
  std::string_view name;
  std::size_t min_args;
  std::size_t max_args;
};

constexpr std::array<ClauseRule, 14> kClauseRules = {{
    {"sender", 1, 1},
    {"receiver", 1, 1},
    {"sbuf", 1, SIZE_MAX},
    {"rbuf", 1, SIZE_MAX},
    {"sendwhen", 1, 1},
    {"receivewhen", 1, 1},
    {"target", 1, 1},
    {"count", 1, 1},
    {"place_sync", 1, 1},
    {"max_comm_iter", 1, 1},
    {"reliability", 2, 2},
    // comm_collective extension (paper Section V future work):
    {"pattern", 1, 1},
    {"root", 1, 1},
    {"group", 1, 1},
}};

const ClauseRule* find_rule(std::string_view name) {
  for (const auto& rule : kClauseRules) {
    if (rule.name == name) return &rule;
  }
  return nullptr;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::string_view directive_name(DirectiveKind kind) noexcept {
  switch (kind) {
    case DirectiveKind::CommParameters:
      return "comm_parameters";
    case DirectiveKind::CommP2P:
      return "comm_p2p";
    case DirectiveKind::CommCollective:
      return "comm_collective";
  }
  return "comm_unknown";
}

const RawClause* ParsedDirective::find(std::string_view name) const noexcept {
  for (const auto& clause : clauses) {
    if (clause.name == name) return &clause;
  }
  return nullptr;
}

Result<ParsedDirective> parse_pragma(std::string_view line) {
  std::string_view rest = trim(line);
  if (starts_with(rest, "#")) {
    rest = trim(rest.substr(1));
    if (!starts_with(rest, "pragma")) {
      return Status(ErrorCode::ParseError, "expected '#pragma'");
    }
    rest = trim(rest.substr(6));
  }

  ParsedDirective directive;
  if (starts_with(rest, "comm_parameters")) {
    directive.kind = DirectiveKind::CommParameters;
    rest = trim(rest.substr(15));
  } else if (starts_with(rest, "comm_p2p")) {
    directive.kind = DirectiveKind::CommP2P;
    rest = trim(rest.substr(8));
  } else if (starts_with(rest, "comm_collective")) {
    directive.kind = DirectiveKind::CommCollective;
    rest = trim(rest.substr(15));
  } else {
    return Status(ErrorCode::ParseError,
                  "expected 'comm_parameters', 'comm_p2p' or "
                  "'comm_collective', got '" +
                      std::string(rest.substr(0, 24)) + "'");
  }

  while (!rest.empty()) {
    // Clause name.
    std::size_t i = 0;
    while (i < rest.size() && ident_char(rest[i])) ++i;
    if (i == 0) {
      return Status(ErrorCode::ParseError,
                    "expected a clause name, got '" +
                        std::string(rest.substr(0, 16)) + "'");
    }
    RawClause clause;
    clause.name = std::string(rest.substr(0, i));
    clause.offset = static_cast<std::size_t>(rest.data() - line.data());
    rest = trim(rest.substr(i));

    const ClauseRule* rule = find_rule(clause.name);
    if (rule == nullptr) {
      return Status(ErrorCode::InvalidClause,
                    "unknown clause '" + clause.name + "'");
    }
    if (directive.find(clause.name) != nullptr) {
      return Status(ErrorCode::InvalidClause,
                    "duplicate clause '" + clause.name + "'");
    }

    // Balanced parenthesized argument list.
    if (rest.empty() || rest.front() != '(') {
      return Status(ErrorCode::ParseError,
                    "clause '" + clause.name + "' expects '('");
    }
    int depth = 0;
    std::size_t end = 0;
    for (; end < rest.size(); ++end) {
      if (rest[end] == '(') ++depth;
      if (rest[end] == ')' && --depth == 0) break;
    }
    if (depth != 0) {
      return Status(ErrorCode::ParseError,
                    "unbalanced parentheses in clause '" + clause.name + "'");
    }
    const std::string_view args_text = rest.substr(1, end - 1);
    rest = trim(rest.substr(end + 1));

    for (std::string_view piece : split_top_level(args_text, ',')) {
      const std::string_view arg = trim(piece);
      if (arg.empty()) {
        return Status(ErrorCode::ParseError,
                      "empty argument in clause '" + clause.name + "'");
      }
      clause.args.emplace_back(arg);
    }
    if (clause.args.size() < rule->min_args ||
        clause.args.size() > rule->max_args) {
      return Status(ErrorCode::InvalidClause,
                    "clause '" + clause.name + "' has " +
                        std::to_string(clause.args.size()) +
                        " arguments, expected " +
                        (rule->min_args == rule->max_args
                             ? std::to_string(rule->min_args)
                             : "at least " + std::to_string(rule->min_args)));
    }
    directive.clauses.push_back(std::move(clause));
  }

  // Directive-level structural checks that need no evaluation.
  if (directive.kind == DirectiveKind::CommP2P) {
    if (directive.find("place_sync") != nullptr) {
      return Status(ErrorCode::InvalidClause,
                    "place_sync may only be used with comm_parameters");
    }
    if (directive.find("max_comm_iter") != nullptr) {
      return Status(ErrorCode::InvalidClause,
                    "max_comm_iter may only be used with comm_parameters");
    }
    if (directive.find("reliability") != nullptr) {
      return Status(ErrorCode::InvalidClause,
                    "reliability may only be used with comm_parameters");
    }
  }
  if (directive.kind != DirectiveKind::CommCollective) {
    for (const char* name : {"pattern", "root", "group"}) {
      if (directive.find(name) != nullptr) {
        return Status(ErrorCode::InvalidClause,
                      std::string(name) +
                          " may only be used with comm_collective");
      }
    }
  } else {
    for (const char* name :
         {"sender", "receiver", "sendwhen", "receivewhen", "place_sync",
          "max_comm_iter", "reliability"}) {
      if (directive.find(name) != nullptr) {
        return Status(ErrorCode::InvalidClause,
                      std::string(name) + " does not apply to "
                      "comm_collective");
      }
    }
    if (directive.find("pattern") == nullptr) {
      return Status(ErrorCode::InvalidClause,
                    "comm_collective requires the pattern clause");
    }
  }
  const bool has_sendwhen = directive.find("sendwhen") != nullptr;
  const bool has_receivewhen = directive.find("receivewhen") != nullptr;
  if (has_sendwhen != has_receivewhen) {
    return Status(ErrorCode::InvalidClause,
                  "sendwhen and receivewhen must both be present or both be "
                  "omitted");
  }
  return directive;
}

Result<BufferRef> BufferTable::lookup(const std::string& name) const {
  auto it = buffers_.find(name);
  if (it == buffers_.end()) {
    return Status(ErrorCode::InvalidClause,
                  "buffer '" + name + "' is not bound in the buffer table");
  }
  return it->second;
}

Result<Clauses> clauses_from_parsed(const ParsedDirective& directive,
                                    const BufferTable* buffers) {
  Clauses out;
  for (const auto& clause : directive.clauses) {
    if (clause.name == "sender" || clause.name == "receiver" ||
        clause.name == "sendwhen" || clause.name == "receivewhen" ||
        clause.name == "count" || clause.name == "max_comm_iter" ||
        clause.name == "root" || clause.name == "group") {
      auto expr = Expr::parse(clause.args[0]);
      if (!expr.is_ok()) return expr.status();
      ClauseExpr value(std::move(expr).take());
      if (clause.name == "sender") out.sender(std::move(value));
      else if (clause.name == "receiver") out.receiver(std::move(value));
      else if (clause.name == "sendwhen") out.sendwhen(std::move(value));
      else if (clause.name == "receivewhen") out.receivewhen(std::move(value));
      else if (clause.name == "count") out.count(std::move(value));
      else if (clause.name == "root") out.root(std::move(value));
      else if (clause.name == "group") out.group(std::move(value));
      else out.max_comm_iter(std::move(value));
    } else if (clause.name == "reliability") {
      auto timeout = Expr::parse(clause.args[0]);
      if (!timeout.is_ok()) return timeout.status();
      auto retries = Expr::parse(clause.args[1]);
      if (!retries.is_ok()) return retries.status();
      out.reliability(ClauseExpr(std::move(timeout).take()),
                      ClauseExpr(std::move(retries).take()));
    } else if (clause.name == "pattern") {
      auto pattern = parse_pattern_keyword(clause.args[0]);
      if (!pattern.is_ok()) return pattern.status();
      out.pattern(pattern.value());
    } else if (clause.name == "target") {
      auto target = parse_target_keyword(clause.args[0]);
      if (!target.is_ok()) return target.status();
      out.target(target.value());
    } else if (clause.name == "place_sync") {
      auto placement = parse_sync_placement_keyword(clause.args[0]);
      if (!placement.is_ok()) return placement.status();
      out.place_sync(placement.value());
    } else if (clause.name == "sbuf" || clause.name == "rbuf") {
      if (buffers == nullptr) {
        return Status(ErrorCode::InvalidClause,
                      "directive lists buffers but no buffer table was "
                      "provided");
      }
      for (const auto& arg : clause.args) {
        auto buffer = buffers->lookup(arg);
        if (!buffer.is_ok()) return buffer.status();
        BufferRef ref = std::move(buffer).take();
        if (ref.name.empty()) ref.name = arg;
        if (clause.name == "sbuf") out.sbuf(std::move(ref));
        else out.rbuf(std::move(ref));
      }
    } else {
      return Status(ErrorCode::InvalidClause,
                    "unhandled clause '" + clause.name + "'");
    }
  }
  return out;
}

}  // namespace cid::core
