#include "core/trace.hpp"

#include <algorithm>
#include <ostream>

#include "obs/obs.hpp"

namespace cid::core {

std::string_view trace_event_kind_name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::P2PDirective: return "comm_p2p";
    case TraceEventKind::RegionDirective: return "comm_parameters";
    case TraceEventKind::CollectiveDirective: return "comm_collective";
    case TraceEventKind::Synchronization: return "sync";
    case TraceEventKind::Overlap: return "overlap";
    case TraceEventKind::FaultInjected: return "fault";
    case TraceEventKind::Retransmit: return "retransmit";
    case TraceEventKind::Timeout: return "timeout";
  }
  return "event";
}

struct TraceCollector::Sink {
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

namespace detail {
namespace {
/// Fallback for callers outside an SPMD region (test harnesses that attach
/// and record on a plain thread). Inside a region the sink lives in the
/// RankCtx local slot below, which follows the rank when the pooled
/// scheduler migrates it between worker threads.
thread_local TraceCollector::Sink* t_sink = nullptr;

/// RankCtx::local_slot key for the attached sink.
constexpr char kCtxSinkKey = 0;

TraceCollector::Sink* ctx_sink() noexcept {
  if (!rt::in_spmd_region()) return nullptr;
  return static_cast<TraceCollector::Sink*>(
      rt::current_ctx().local_slot(&kCtxSinkKey).get());
}

/// Derive the per-(metric, site, rank) counters and virtual-time latency
/// histograms the observability layer publishes for every directive event.
/// Latencies are the virtual span duration in seconds; the faults/reliability
/// kinds are point events, so only their occurrence counters matter.
void forward_to_obs(const TraceEvent& event) {
  const std::string_view cat = trace_event_kind_name(event.kind);
  obs::span({event.rank, std::string(cat), event.site, event.begin, event.end,
             event.bytes, event.messages});
  const double duration = event.end - event.begin;
  switch (event.kind) {
    case TraceEventKind::P2PDirective:
      obs::count("cid.p2p.bytes_sent", event.site, event.rank, event.bytes);
      obs::count("cid.p2p.messages", event.site, event.rank, event.messages);
      obs::observe("cid.p2p.virtual_seconds", event.site, event.rank,
                   duration);
      break;
    case TraceEventKind::RegionDirective:
      obs::count("cid.region.executions", event.site, event.rank);
      obs::count("cid.region.bytes_sent", event.site, event.rank, event.bytes);
      obs::observe("cid.region.virtual_seconds", event.site, event.rank,
                   duration);
      break;
    case TraceEventKind::CollectiveDirective:
      obs::count("cid.collective.executions", event.site, event.rank);
      obs::count("cid.collective.bytes_sent", event.site, event.rank,
                 event.bytes);
      obs::observe("cid.collective.virtual_seconds", event.site, event.rank,
                   duration);
      break;
    case TraceEventKind::Synchronization:
      obs::count("cid.sync.flushes", event.site, event.rank);
      obs::observe("cid.sync.virtual_seconds", event.site, event.rank,
                   duration);
      break;
    case TraceEventKind::Overlap:
      obs::observe("cid.overlap.virtual_seconds", event.site, event.rank,
                   duration);
      break;
    case TraceEventKind::FaultInjected:
      obs::count("cid.faults.injected", event.site, event.rank);
      break;
    case TraceEventKind::Retransmit:
      obs::count("cid.reliability.retransmits", event.site, event.rank);
      obs::count("cid.reliability.retransmit_bytes", event.site, event.rank,
                 event.bytes);
      break;
    case TraceEventKind::Timeout:
      obs::count("cid.reliability.timeouts", event.site, event.rank);
      break;
  }
}
}  // namespace

TraceCollector::Sink* active_trace_sink() noexcept {
  if (rt::in_spmd_region()) return ctx_sink();
  return t_sink;
}

bool trace_enabled() noexcept {
  return active_trace_sink() != nullptr || obs::enabled();
}

void record_trace_event(TraceEvent event) {
  if (obs::enabled()) forward_to_obs(event);
  TraceCollector::Sink* sink = active_trace_sink();
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(sink->mutex);
  sink->events.push_back(std::move(event));
}
}  // namespace detail

TraceCollector::TraceCollector() : sink_(std::make_shared<Sink>()) {}

TraceCollector::~TraceCollector() = default;

void TraceCollector::attach(rt::RankCtx& ctx) {
  // Shared ownership in the slot: the sink outlives the rank even if the
  // collector is destroyed first.
  ctx.local_slot(&detail::kCtxSinkKey) = sink_;
  if (rt::sched::Fiber::current() == nullptr) {
    // Plain-thread callers (thread-per-rank mode, direct harnesses) may
    // record from outside an SPMD region; keep the thread_local fallback
    // pointing at this sink. On a fiber that would scribble a stale pointer
    // onto the worker thread, so skip it there.
    detail::t_sink = sink_.get();
  }
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::lock_guard<std::mutex> lock(sink_->mutex);
  std::vector<TraceEvent> out = sink_->events;
  // Total order over every serialized field: concurrently recorded events
  // (e.g. fault events from several sender threads) land in the same place
  // regardless of wall-clock interleaving, so a deterministic run serializes
  // to byte-identical JSON.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.end != b.end) return a.end < b.end;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.site != b.site) return a.site < b.site;
              if (a.bytes != b.bytes) return a.bytes < b.bytes;
              return a.messages < b.messages;
            });
  return out;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(sink_->mutex);
  sink_->events.clear();
}

namespace {
void write_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
  out << '"';
}
}  // namespace

void TraceCollector::write_chrome_json(std::ostream& out) const {
  const auto sorted = events();
  out << "[\n";
  bool first = true;
  for (const auto& event : sorted) {
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":)";
    write_json_string(out, std::string(trace_event_kind_name(event.kind)) +
                               " " + event.site);
    out << R"(,"cat":")" << trace_event_kind_name(event.kind) << '"'
        << R"(,"ph":"X","pid":0,"tid":)" << event.rank << R"(,"ts":)"
        << event.begin * 1e6 << R"(,"dur":)"
        << (event.end - event.begin) * 1e6 << R"(,"args":{"bytes":)"
        << event.bytes << R"(,"messages":)" << event.messages << "}}";
  }
  out << "\n]\n";
}

}  // namespace cid::core
