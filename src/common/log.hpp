// Minimal leveled logger. Thread-safe, rank-aware once the SPMD runtime sets a
// per-thread rank label. Default level is Warn so tests and benches stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace cid {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

namespace log {

/// Global threshold; messages below it are dropped.
void set_level(LogLevel level) noexcept;
LogLevel level() noexcept;

/// Per-thread rank label included in messages (-1 = outside SPMD region).
void set_thread_rank(int rank) noexcept;
int thread_rank() noexcept;

/// Emit one message (already formatted) at the given level.
void write(LogLevel level, const std::string& message);

}  // namespace log

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define CID_LOG(level_enum)                                 \
  if (::cid::log::level() <= ::cid::LogLevel::level_enum)   \
  ::cid::detail::LogLine(::cid::LogLevel::level_enum)

#define CID_LOG_TRACE CID_LOG(Trace)
#define CID_LOG_DEBUG CID_LOG(Debug)
#define CID_LOG_INFO CID_LOG(Info)
#define CID_LOG_WARN CID_LOG(Warn)
#define CID_LOG_ERROR CID_LOG(Error)

}  // namespace cid
