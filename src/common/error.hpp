// Error handling primitives shared by every cid module.
//
// Two mechanisms, used deliberately:
//  - cid::Status / cid::Result<T> for recoverable, caller-checked failures
//    (clause validation, translation errors, datatype rejection).
//  - cid::CidError exception for programming errors and unrecoverable runtime
//    misuse (e.g. calling a rank-scoped API outside an SPMD region), thrown via
//    CID_REQUIRE.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cid {

/// Category of a failure. Kept coarse on purpose: callers branch on "what kind
/// of thing went wrong", not on individual messages.
enum class ErrorCode {
  Ok = 0,
  InvalidArgument,   ///< bad value passed by caller
  InvalidClause,     ///< directive clause violates the clause rules
  ParseError,        ///< expression / pragma text failed to parse
  TypeError,         ///< datatype reflection rejected a layout
  UnsupportedTarget, ///< target library cannot express the request
  RuntimeFault,      ///< SPMD runtime misuse or internal inconsistency
  IoError,           ///< file read/write failure (translator CLI)
};

/// Human-readable name of an ErrorCode (stable, used in messages and tests).
std::string_view error_code_name(ErrorCode code) noexcept;

/// Value-semantic status: Ok or (code, message).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }

  bool is_ok() const noexcept { return code_ == ErrorCode::Ok; }
  explicit operator bool() const noexcept { return is_ok(); }

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "<code-name>: <message>".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::Ok;
  std::string message_;
};

/// Either a value or a Status describing why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool is_ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return is_ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  T&& take() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  /// Status of a failed result; Ok status when the result holds a value.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

 private:
  void require_ok() const {
    if (!is_ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Status>(data_).to_string());
    }
  }

  std::variant<T, Status> data_;
};

/// Exception for unrecoverable misuse; carries an ErrorCode.
class CidError : public std::runtime_error {
 public:
  CidError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] void throw_cid_error(ErrorCode code, const char* cond,
                                  const char* file, int line,
                                  const std::string& message);
}  // namespace detail

/// Precondition check that throws CidError with location info when violated.
#define CID_REQUIRE(cond, code, message)                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::cid::detail::throw_cid_error((code), #cond, __FILE__, __LINE__,      \
                                     (message));                             \
    }                                                                        \
  } while (false)

/// Internal-invariant check; failure indicates a bug in cid itself.
#define CID_ASSERT(cond, message) \
  CID_REQUIRE(cond, ::cid::ErrorCode::RuntimeFault, (message))

/// Propagate a non-Ok Status from the current function.
#define CID_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::cid::Status cid_status_ = (expr);        \
    if (!cid_status_.is_ok()) return cid_status_; \
  } while (false)

}  // namespace cid
