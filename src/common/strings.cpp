#include "common/strings.hpp"

#include <cctype>

namespace cid {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_top_level(std::string_view text,
                                              char delim) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size()) {
      out.push_back(text.substr(start, i - start));
      break;
    }
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    } else if (c == delim && depth == 0) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view text, std::string_view needle) noexcept {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

bool is_identifier(std::string_view name) noexcept {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

}  // namespace cid
