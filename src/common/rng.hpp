// Deterministic RNG used by workload generators and the WL-LSMS mini-app.
// xoshiro256** seeded via splitmix64; identical streams on every platform so
// experiment outputs are reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace cid {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Independent per-rank stream of a shared base seed. SPMD programs on
  /// the wall-clock transports run ranks on real cores, so sharing one Rng
  /// across ranks is a data race AND non-deterministic; one stream per rank
  /// is both safe and reproducible regardless of thread interleaving. The
  /// splitmix64 seed expansion decorrelates the streams even for adjacent
  /// ranks of the same base seed.
  static Rng for_rank(std::uint64_t base_seed, int rank) noexcept {
    // Golden-ratio stride keeps rank offsets far apart in seed space.
    return Rng(base_seed +
               0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rank + 1));
  }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) for bound > 0 (unbiased via rejection).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace cid
