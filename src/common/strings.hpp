// Small string utilities used by the clause parser and translator.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cid {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Split on a delimiter character; does NOT trim the pieces.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Split on a delimiter character at top level only: delimiters nested inside
/// (), [] or {} are ignored. Used for clause argument lists like
/// `sbuf(ec,nc,lc,kc)` vs nested calls `count(f(a,b))`.
std::vector<std::string_view> split_top_level(std::string_view text,
                                              char delim);

bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// True when `text` contains `needle`.
bool contains(std::string_view text, std::string_view needle) noexcept;

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string text, std::string_view from,
                        std::string_view to);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True when `name` is a valid C identifier.
bool is_identifier(std::string_view name) noexcept;

}  // namespace cid
