#include "common/error.hpp"

namespace cid {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Ok:
      return "OK";
    case ErrorCode::InvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::InvalidClause:
      return "INVALID_CLAUSE";
    case ErrorCode::ParseError:
      return "PARSE_ERROR";
    case ErrorCode::TypeError:
      return "TYPE_ERROR";
    case ErrorCode::UnsupportedTarget:
      return "UNSUPPORTED_TARGET";
    case ErrorCode::RuntimeFault:
      return "RUNTIME_FAULT";
    case ErrorCode::IoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out{error_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace detail {

void throw_cid_error(ErrorCode code, const char* cond, const char* file,
                     int line, const std::string& message) {
  std::string full = message;
  full += " [";
  full += cond;
  full += " at ";
  full += file;
  full += ':';
  full += std::to_string(line);
  full += ']';
  throw CidError(code, full);
}

}  // namespace detail
}  // namespace cid
