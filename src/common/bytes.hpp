// Byte-span helpers for describing message payloads.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace cid {

using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

/// View a trivially copyable object's storage as bytes.
template <typename T>
  requires std::is_trivially_copyable_v<T>
ByteSpan as_bytes_of(const T& object) noexcept {
  return ByteSpan(reinterpret_cast<const std::byte*>(&object), sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
MutableByteSpan as_writable_bytes_of(T& object) noexcept {
  return MutableByteSpan(reinterpret_cast<std::byte*>(&object), sizeof(T));
}

/// View `count` elements starting at `data` as bytes.
template <typename T>
  requires std::is_trivially_copyable_v<T>
ByteSpan as_bytes_of(const T* data, std::size_t count) noexcept {
  return ByteSpan(reinterpret_cast<const std::byte*>(data),
                  count * sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
MutableByteSpan as_writable_bytes_of(T* data, std::size_t count) noexcept {
  return MutableByteSpan(reinterpret_cast<std::byte*>(data),
                         count * sizeof(T));
}

/// Owned byte buffer (payload storage in mailboxes).
using ByteBuffer = std::vector<std::byte>;

inline ByteBuffer copy_to_buffer(ByteSpan bytes) {
  return ByteBuffer(bytes.begin(), bytes.end());
}

/// True when two half-open address ranges overlap.
inline bool ranges_overlap(const void* a, std::size_t a_size, const void* b,
                           std::size_t b_size) noexcept {
  const auto* a_begin = static_cast<const std::byte*>(a);
  const auto* b_begin = static_cast<const std::byte*>(b);
  return a_begin < b_begin + b_size && b_begin < a_begin + a_size;
}

}  // namespace cid
