// Column-major 2-D matrix matching the access pattern of the WL-LSMS code in
// the paper's Listing 4: `atom.vr(0,0)` addresses the first element of a
// contiguous column-major block, `n_row()` returns the leading dimension, and
// whole-column payloads are sent as `2*t` contiguous elements.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cid {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t n_row() const noexcept { return rows_; }
  std::size_t n_col() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    CID_REQUIRE(i < rows_ && j < cols_, ErrorCode::InvalidArgument,
                "Matrix index out of range");
    return data_[j * rows_ + i];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    CID_REQUIRE(i < rows_ && j < cols_, ErrorCode::InvalidArgument,
                "Matrix index out of range");
    return data_[j * rows_ + i];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  /// Resize preserving the overlapping top-left window (as WL-LSMS's
  /// resizePotential/resizeCore do when a received payload is larger than the
  /// local allocation).
  void resize(std::size_t rows, std::size_t cols, T fill = T{}) {
    if (rows == rows_ && cols == cols_) return;
    std::vector<T> next(rows * cols, fill);
    const std::size_t copy_rows = std::min(rows, rows_);
    const std::size_t copy_cols = std::min(cols, cols_);
    for (std::size_t j = 0; j < copy_cols; ++j) {
      for (std::size_t i = 0; i < copy_rows; ++i) {
        next[j * rows + i] = data_[j * rows_ + i];
      }
    }
    data_ = std::move(next);
    rows_ = rows;
    cols_ = cols;
  }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace cid
