#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cid {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
thread_local int t_rank = -1;
std::mutex g_write_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

namespace log {

void set_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_thread_rank(int rank) noexcept { t_rank = rank; }
int thread_rank() noexcept { return t_rank; }

void write(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_write_mutex);
  if (t_rank >= 0) {
    std::fprintf(stderr, "[cid %s r%d] %s\n", level_tag(level), t_rank,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[cid %s] %s\n", level_tag(level), message.c_str());
  }
}

}  // namespace log
}  // namespace cid
