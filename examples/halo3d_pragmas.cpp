// Translator-form companion of halo3d.cpp: the same six-face 3-D halo
// exchange as #pragma comm_* directives, on a fixed 2 x 2 x N rank brick
// (x stride 1, y stride 2, z stride 4) so every clause is a closed-form
// expression over rank/nprocs that the static verifier can sweep.
//
// This file is INPUT for `cidt` (translate / check), not part of the build:
// CI runs `cidt check examples/*.cpp`, which match-checks each directive
// pair over the nprocs sweep — a send with no matching receive (or a guard
// that can never fire) fails the lint. It is never compiled; unknown
// pragmas would trip -Werror=unknown-pragmas.
//
// Guard scheme, +d direction with stride s: a rank sends iff its coordinate
// along d is not the last AND the target exists (rank+s < nprocs, for the
// partial last plane); it receives iff its coordinate is not the first.
// The bench/runnable form (halo3d.cpp) parameterizes the same structure
// with let(px, py, pz) bindings instead of literals.

#pragma comm_parameters count(36) max_comm_iter(6) \
    place_sync(END_PARAM_REGION)
{
/* +x: send my high-x face to rank+1, receive my low-x halo from rank-1 */
#pragma comm_p2p receiver(rank+1) sendwhen(rank%2==0 && rank+1<nprocs) \
    sender(rank-1) receivewhen(rank%2==1) sbuf(xp_out) rbuf(xm_in)
{ }
/* -x */
#pragma comm_p2p receiver(rank-1) sendwhen(rank%2==1) \
    sender(rank+1) receivewhen(rank%2==0 && rank+1<nprocs) \
    sbuf(xm_out) rbuf(xp_in)
{ }
/* +y (stride 2) */
#pragma comm_p2p receiver(rank+2) sendwhen((rank/2)%2==0 && rank+2<nprocs) \
    sender(rank-2) receivewhen((rank/2)%2==1) sbuf(yp_out) rbuf(ym_in)
{ }
/* -y */
#pragma comm_p2p receiver(rank-2) sendwhen((rank/2)%2==1) \
    sender(rank+2) receivewhen((rank/2)%2==0 && rank+2<nprocs) \
    sbuf(ym_out) rbuf(yp_in)
{ }
/* +z (stride 4): every rank with an in-range +z neighbour exchanges */
#pragma comm_p2p receiver(rank+4) sendwhen(rank+4<nprocs) \
    sender(rank-4) receivewhen(rank>3) sbuf(zp_out) rbuf(zm_in)
{ }
/* -z */
#pragma comm_p2p receiver(rank-4) sendwhen(rank>3) \
    sender(rank+4) receivewhen(rank+4<nprocs) sbuf(zm_out) rbuf(zp_in)
{ }
}
