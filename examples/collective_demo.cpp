// The collective-directive extension (the paper's Section V future work)
// applied to the motivating application: the Wang-Landau driver broadcasts a
// random spin configuration to every LSMS group with ONE_TO_MANY, each group
// computes partial energies, and MANY_TO_ONE gathers them back — the
// many-to-one / one-to-many patterns the paper names.
//
// Build & run:  ./collective_demo [nranks]   (nranks = multiple of 4)
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/core.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

int main(int argc, char** argv) {
  using namespace cid::core;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;
  if (nranks % 4 != 0) {
    std::fprintf(stderr, "nranks must be a multiple of 4\n");
    return 2;
  }
  constexpr int kSpins = 12;  // 4 atoms x 3 components

  std::printf("Collective directives: %d ranks in %d groups of 4\n", nranks,
              nranks / 4);

  auto result = cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
    namespace shmem = cid::shmem;
    const int me = ctx.rank();
    const int group_id = me / 4;
    const int group_rank = me % 4;

    // Symmetric buffers so the same program can retarget to SHMEM.
    double* spins = shmem::malloc_of<double>(kSpins);
    double* energies = shmem::malloc_of<double>(4);
    double partial[1];
    std::fill(spins, spins + kSpins, 0.0);
    std::fill(energies, energies + 4, 0.0);
    double seed_spins[kSpins] = {};
    if (group_rank == 0) {
      for (int i = 0; i < kSpins; ++i) {
        seed_spins[i] = 0.1 * (group_id + 1) * (i + 1);
      }
    }
    ctx.barrier();

    for (int step = 0; step < 3; ++step) {
      // ONE_TO_MANY: each group's privileged rank broadcasts the spins.
      comm_collective(Clauses()
                          .pattern(Pattern::OneToMany)
                          .root(0)
                          .group("rank/4")
                          .count(kSpins)
                          .target(Target::Shmem)
                          .sbuf(buf(seed_spins))
                          .rbuf(buf_n(spins, kSpins)));

      // Local energy computation on my share of the atoms.
      partial[0] = 0.0;
      for (int i = group_rank * 3; i < group_rank * 3 + 3; ++i) {
        partial[0] += spins[i] * spins[i];
      }
      ctx.charge_compute(5e-6);

      // MANY_TO_ONE: gather the partial energies at the privileged rank.
      comm_collective(Clauses()
                          .pattern(Pattern::ManyToOne)
                          .root(0)
                          .group("rank/4")
                          .count(1)
                          .target(Target::Shmem)
                          .sbuf(buf(partial))
                          .rbuf(buf_n(energies, 4)));

      if (group_rank == 0) {
        const double total =
            std::accumulate(energies, energies + 4, 0.0);
        if (group_id == 0 && step == 2) {
          std::printf("group %d step %d: total energy %.4f\n", group_id,
                      step, total);
        }
      }
    }
  });

  std::printf("done; virtual makespan = %.2f us\n", result.makespan() * 1e6);
  return 0;
}
