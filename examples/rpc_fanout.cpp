// Scale workload: RPC-style request/reply fan-out — the many-clients,
// few-servers pattern of I/O forwarding layers, metadata services and
// parameter servers.
//
// One server rank per 64 clients; every client issues a fixed number of
// requests round-robin over the servers and waits for each reply before
// issuing the next (closed-loop clients). Servers loop on a wildcard
// receive and answer the sender of whatever arrives — the RecvStatus.source
// path, where the runtime's wildcard matching and targeted wakeups carry
// the load, not nearest-neighbour structure.
//
// Build & run:  ./rpc_fanout [nranks] [requests_per_client]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

constexpr int kClientsPerServer = 64;
constexpr int kTagRequest = 0;
constexpr int kTagReply = 1;

int server_count(int nranks) {
  const int servers = (nranks + kClientsPerServer - 1) / kClientsPerServer;
  return servers < nranks ? servers : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 65;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 4;
  const int nservers = server_count(nranks);

  std::printf("rpc fan-out: %d ranks (%d servers, %d clients), "
              "%d requests/client\n",
              nranks, nservers, nranks - nservers, per_client);

  auto result = cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
    namespace mpi = cid::mpi;
    auto world = mpi::Comm::world();
    const int me = ctx.rank();
    const int np = ctx.nranks();
    const int servers = server_count(np);
    const int clients = np - servers;

    if (me < servers) {
      // Server: answer every request addressed to me. The total is known
      // up front (client c sends request i to server (c + i) % servers),
      // so the loop terminates without a shutdown protocol.
      int expected = 0;
      for (int c = 0; c < clients; ++c) {
        for (int i = 0; i < per_client; ++i) {
          if ((c + i) % servers == me) ++expected;
        }
      }
      double request[2];
      for (int handled = 0; handled < expected; ++handled) {
        const auto status = mpi::recv(world, request, 2, mpi::kAnySource,
                                      kTagRequest);
        ctx.charge_compute(2e-7);  // "service time"
        const double reply = request[0] + request[1];
        mpi::send(world, &reply, 1, status.source, kTagReply);
      }
    } else {
      // Client: closed loop, one outstanding request at a time.
      const int c = me - servers;
      for (int i = 0; i < per_client; ++i) {
        const int target = (c + i) % servers;
        const double request[2] = {static_cast<double>(me),
                                   static_cast<double>(i)};
        mpi::send(world, request, 2, target, kTagRequest);
        double reply = 0.0;
        mpi::recv(world, &reply, 1, target, kTagReply);
        ctx.charge_compute(1e-7);
      }
    }
  });

  std::printf("done; virtual makespan = %.2f us\n", result.makespan() * 1e6);
  return 0;
}
