// Domain-specific example: a 2-D Jacobi stencil with directive-based halo
// exchange — the recurring nearest-neighbour pattern the paper's
// introduction motivates ("reusing structured communication patterns on
// different code regions").
//
// The grid is partitioned into rows across ranks; each iteration exchanges
// north/south halo rows with the neighbours via one comm_parameters region
// (two comm_p2p instances, one consolidated sync), then relaxes interior
// points while the directive hides the halo latency behind the
// interior-update computation.
//
// Build & run:  ./halo2d [nranks] [iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/core.hpp"
#include "rt/runtime.hpp"

namespace {

constexpr int kCols = 64;
constexpr int kRowsPerRank = 16;

}  // namespace

int main(int argc, char** argv) {
  using namespace cid::core;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 10;

  std::printf("2-D Jacobi halo exchange: %d ranks x (%d x %d) local grids, "
              "%d iterations\n",
              nranks, kRowsPerRank, kCols, iters);

  auto result = cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
    const int me = ctx.rank();
    const int np = ctx.nranks();

    // Local block with two halo rows: row 0 = north halo, row
    // kRowsPerRank+1 = south halo.
    std::vector<double> grid((kRowsPerRank + 2) * kCols, 0.0);
    std::vector<double> next((kRowsPerRank + 2) * kCols, 0.0);
    auto row = [&](std::vector<double>& g, int r) { return &g[r * kCols]; };

    // Dirichlet boundary: global top row is hot.
    if (me == 0) {
      for (int c = 0; c < kCols; ++c) row(grid, 1)[c] = 100.0;
    }

    for (int it = 0; it < iters; ++it) {
      // Halo exchange region: send my first interior row north and my last
      // interior row south; receive into the halo rows. Boundary ranks are
      // excluded by the guards (which also keeps the neighbour expressions
      // from being evaluated out of range, as in the paper's Listing 2).
      comm_parameters(
          Clauses().count(kCols).max_comm_iter(2), [&](Region& region) {
            // northward: rank r sends row 1 to rank r-1's south halo
            region.p2p(Clauses()
                           .sender("rank+1")
                           .receiver("rank-1")
                           .sendwhen("rank>0")
                           .receivewhen("rank<nprocs-1")
                           .sbuf(buf_n(row(grid, 1), kCols, "north_out"))
                           .rbuf(buf_n(row(grid, kRowsPerRank + 1), kCols,
                                       "south_halo")));
            // southward: rank r sends its last row to rank r+1's north halo
            region.p2p(
                Clauses()
                    .sender("rank-1")
                    .receiver("rank+1")
                    .sendwhen("rank<nprocs-1")
                    .receivewhen("rank>0")
                    .sbuf(buf_n(row(grid, kRowsPerRank), kCols, "south_out"))
                    .rbuf(buf_n(row(grid, 0), kCols, "north_halo")),
                [&] {
                  // Overlap: relax the interior rows that do not depend on
                  // the halos while the exchange is in flight.
                  for (int r = 2; r < kRowsPerRank; ++r) {
                    for (int c = 1; c < kCols - 1; ++c) {
                      next[r * kCols + c] =
                          0.25 * (grid[(r - 1) * kCols + c] +
                                  grid[(r + 1) * kCols + c] +
                                  grid[r * kCols + c - 1] +
                                  grid[r * kCols + c + 1]);
                    }
                  }
                  ctx.charge_compute(2e-6 * (kRowsPerRank - 2));
                });
          });

      // Boundary-adjacent rows need the received halos.
      for (int r : {1, kRowsPerRank}) {
        for (int c = 1; c < kCols - 1; ++c) {
          next[r * kCols + c] = 0.25 * (grid[(r - 1) * kCols + c] +
                                        grid[(r + 1) * kCols + c] +
                                        grid[r * kCols + c - 1] +
                                        grid[r * kCols + c + 1]);
        }
      }
      ctx.charge_compute(2e-6 * 2);
      // Keep the hot boundary row fixed.
      if (me == 0) {
        for (int c = 0; c < kCols; ++c) next[kCols + c] = 100.0;
      }
      std::swap(grid, next);
    }

    // Report the residual heat that reached each rank.
    double sum = 0.0;
    for (int r = 1; r <= kRowsPerRank; ++r) {
      for (int c = 0; c < kCols; ++c) sum += row(grid, r)[c];
    }
    if (me < 3 || me == np - 1) {
      std::printf("rank %2d: block heat %.3f\n", me, sum);
    }
  });

  std::printf("done; virtual makespan = %.2f us\n", result.makespan() * 1e6);
  return 0;
}
