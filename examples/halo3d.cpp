// Scale workload: 3-D Jacobi halo exchange over a px x py x pz rank grid —
// the nearest-neighbour pattern of structured-grid codes, written as ONE
// comm_parameters region with six comm_p2p instances (one per face).
//
// The clause expressions use let() bindings for the grid strides, so the
// same six directives describe every decomposition; the translator-form
// companion (halo3d_pragmas.cpp, linted by `cidt check` in CI) carries the
// identical structure in #pragma syntax.
//
// This is the flagship workload of bench/bench_scale.cpp: with the pooled
// fiber scheduler a 10,000-rank iteration costs CID_SIM_WORKERS OS threads
// and a few wall-clock seconds, not 10k threads.
//
// Build & run:  ./halo3d [nranks] [iters]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/core.hpp"
#include "rt/runtime.hpp"

namespace {

constexpr int kSide = 6;                    // local brick is kSide^3 cells
constexpr int kFace = kSide * kSide;        // cells per face

/// Near-cubic factorization nranks = px * py * pz.
struct Dims {
  int px = 1, py = 1, pz = 1;
};

Dims choose_dims(int nranks) {
  Dims d;
  int rest = nranks;
  auto largest_divisor_at_most = [](int n, int cap) {
    for (int p = cap; p >= 1; --p) {
      if (n % p == 0) return p;
    }
    return 1;
  };
  int cube = 1;
  while ((cube + 1) * (cube + 1) * (cube + 1) <= nranks) ++cube;
  d.px = largest_divisor_at_most(rest, cube);
  rest /= d.px;
  int square = 1;
  while ((square + 1) * (square + 1) <= rest) ++square;
  d.py = largest_divisor_at_most(rest, square);
  d.pz = rest / d.py;
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cid::core;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 64;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 3;
  const Dims dims = choose_dims(nranks);

  std::printf("3-D halo exchange: %d ranks as %d x %d x %d, local brick "
              "%d^3, %d iterations\n",
              nranks, dims.px, dims.py, dims.pz, kSide, iters);

  auto result = cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
    const int me = ctx.rank();
    const int px = dims.px, py = dims.py, pz = dims.pz;
    const int pxy = px * py;
    const int x = me % px, y = (me / px) % py, z = me / pxy;

    std::vector<double> brick(kSide * kSide * kSide, 1.0 + me);
    // One contiguous buffer per face and direction; packed from the brick
    // before the exchange, folded back after.
    std::vector<double> out[6], in[6];
    for (auto& f : out) f.assign(kFace, 0.0);
    for (auto& f : in) f.assign(kFace, 0.0);

    for (int it = 0; it < iters; ++it) {
      for (int face = 0; face < 6; ++face) {
        for (int i = 0; i < kFace; ++i) {
          out[face][i] = brick[(face * 37 + i) % brick.size()];
        }
      }
      ctx.charge_compute(1e-7 * 6 * kFace);

      // One region, six faces. receiver() is whom I send to, sender() whom
      // I receive from; the coordinate guards exclude the grid boundary.
      comm_parameters(
          Clauses()
              .count(kFace)
              .max_comm_iter(6)
              .let("px", px)
              .let("py", py)
              .let("pz", pz)
              .let("pxy", pxy),
          [&](Region& region) {
            // +x / -x (stride 1)
            region.p2p(Clauses()
                           .receiver("rank+1")
                           .sendwhen("rank%px < px-1")
                           .sender("rank-1")
                           .receivewhen("rank%px > 0")
                           .sbuf(buf_n(out[0].data(), kFace, "xp_out"))
                           .rbuf(buf_n(in[1].data(), kFace, "xm_in")));
            region.p2p(Clauses()
                           .receiver("rank-1")
                           .sendwhen("rank%px > 0")
                           .sender("rank+1")
                           .receivewhen("rank%px < px-1")
                           .sbuf(buf_n(out[1].data(), kFace, "xm_out"))
                           .rbuf(buf_n(in[0].data(), kFace, "xp_in")));
            // +y / -y (stride px)
            region.p2p(Clauses()
                           .receiver("rank+px")
                           .sendwhen("(rank/px)%py < py-1")
                           .sender("rank-px")
                           .receivewhen("(rank/px)%py > 0")
                           .sbuf(buf_n(out[2].data(), kFace, "yp_out"))
                           .rbuf(buf_n(in[3].data(), kFace, "ym_in")));
            region.p2p(Clauses()
                           .receiver("rank-px")
                           .sendwhen("(rank/px)%py > 0")
                           .sender("rank+px")
                           .receivewhen("(rank/px)%py < py-1")
                           .sbuf(buf_n(out[3].data(), kFace, "ym_out"))
                           .rbuf(buf_n(in[2].data(), kFace, "yp_in")));
            // +z / -z (stride px*py)
            region.p2p(Clauses()
                           .receiver("rank+pxy")
                           .sendwhen("rank/pxy < pz-1")
                           .sender("rank-pxy")
                           .receivewhen("rank/pxy > 0")
                           .sbuf(buf_n(out[4].data(), kFace, "zp_out"))
                           .rbuf(buf_n(in[5].data(), kFace, "zm_in")));
            region.p2p(
                Clauses()
                    .receiver("rank-pxy")
                    .sendwhen("rank/pxy > 0")
                    .sender("rank+pxy")
                    .receivewhen("rank/pxy < pz-1")
                    .sbuf(buf_n(out[5].data(), kFace, "zm_out"))
                    .rbuf(buf_n(in[4].data(), kFace, "zp_in")),
                [&] {
                  // Overlap: relax the interior while the faces fly.
                  for (std::size_t i = 0; i < brick.size(); ++i) {
                    brick[i] = 0.5 * brick[i] + 0.5;
                  }
                  ctx.charge_compute(1e-7 * brick.size());
                });
          });

      // Fold the received halos back into the brick (boundary faces of the
      // grid received nothing and fold zeros — the fixed boundary).
      const bool has[6] = {x < px - 1, x > 0, y < py - 1,
                           y > 0,      z < pz - 1, z > 0};
      for (int face = 0; face < 6; ++face) {
        if (!has[face]) continue;
        for (int i = 0; i < kFace; ++i) {
          brick[(face * 53 + i) % brick.size()] += 0.25 * in[face][i];
        }
      }
      ctx.charge_compute(1e-7 * 6 * kFace);
    }

    double sum = 0.0;
    for (double v : brick) sum += v;
    if (me < 2 || me == ctx.nranks() - 1) {
      std::printf("rank %5d (%d,%d,%d): brick sum %.3f\n", me, x, y, z, sum);
    }
  });

  std::printf("done; virtual makespan = %.2f us\n", result.makespan() * 1e6);
  return 0;
}
