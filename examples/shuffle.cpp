// Scale workload: all-to-all shuffle with a capped fan-out — the exchange
// behind distributed sorts, FFT transposes and map/reduce repartitioning.
//
// A literal alltoall is O(nranks^2) messages, which no machine (virtual or
// real) wants at 10k ranks; like production shuffles, each rank instead
// exchanges with min(nranks-1, 64) peers, chosen as a fixed arithmetic
// spread over the ring so the traffic pattern is irregular (no rank pair
// repeats across peers) but deterministic.
//
// Every exchange is isend/irecv + one waitall, so a rank has up to 2*64
// requests in flight — the request-table and mailbox-pressure stress case,
// as opposed to halo3d's six long-lived neighbours.
//
// Build & run:  ./shuffle [nranks] [records_per_peer]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

constexpr int kMaxFanout = 64;

/// Peer k of `rank`: spread over the ring with a rank-dependent offset so
/// peer sets differ between ranks.
int peer_of(int rank, int k, int fanout, int nranks) {
  const int stride = nranks / (fanout + 1) > 0 ? nranks / (fanout + 1) : 1;
  return (rank + (k + 1) * stride + k) % nranks;
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 64;
  const int records = argc > 2 ? std::atoi(argv[2]) : 8;
  const int fanout = nranks - 1 < kMaxFanout ? nranks - 1 : kMaxFanout;

  std::printf("shuffle: %d ranks, fan-out %d, %d records per peer\n", nranks,
              fanout, records);

  auto result = cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
    namespace mpi = cid::mpi;
    auto world = mpi::Comm::world();
    const int me = ctx.rank();
    const int np = ctx.nranks();

    // Outbound: `records` doubles per peer, keyed by destination. Inbound
    // arrives with kAnySource — a shuffle consumer doesn't care who sent a
    // partition, only that all of them arrive.
    std::vector<double> outbox(static_cast<std::size_t>(fanout) * records);
    for (std::size_t i = 0; i < outbox.size(); ++i) {
      outbox[i] = me + 1e-3 * static_cast<double>(i);
    }
    std::vector<double> inbox(outbox.size());

    // Every rank is chosen as a peer exactly `fanout` times across the
    // world (peer_of is a bijection of `rank` for each k), so posting
    // `fanout` wildcard receives is exact, not a heuristic.
    std::vector<mpi::Request> reqs;
    reqs.reserve(2 * static_cast<std::size_t>(fanout));
    for (int k = 0; k < fanout; ++k) {
      reqs.push_back(mpi::irecv(world, &inbox[k * records], records,
                                mpi::kAnySource, /*tag=*/k));
    }
    for (int k = 0; k < fanout; ++k) {
      reqs.push_back(mpi::isend(world, &outbox[k * records], records,
                                peer_of(me, k, fanout, np), /*tag=*/k));
    }
    mpi::waitall(reqs);
    ctx.charge_compute(2e-8 * inbox.size());

    double sum = 0.0;
    for (double v : inbox) sum += v;
    if (me < 2 || me == np - 1) {
      std::printf("rank %5d: inbox sum %.3f\n", me, sum);
    }
  });

  std::printf("done; virtual makespan = %.2f us\n", result.makespan() * 1e6);
  return 0;
}
