// Source-to-source translation demo: feeds the paper's Listing 3 (and a
// SHMEM-targeted variant) through the translator and prints the generated
// message passing code — what the `cidt` CLI does for whole files.
//
// Build & run:  ./translate_demo
#include <cstdio>

#include "translate/translator.hpp"

namespace {

constexpr const char* kListing3 = R"(// paper Listing 3
#pragma comm_parameters sender(rank-1) \
    receiver(rank+1) sendwhen(rank%2==0) \
    receivewhen(rank%2==1) count(size) \
    max_comm_iter(n) place_sync(END_PARAM_REGION)
{
for(p=0; p < n; p++)
#pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])
{ }
}
)";

constexpr const char* kShmemRing = R"(// ring, retargeted to SHMEM
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2) target(TARGET_COMM_SHMEM)
{ }
)";

void show(const char* title, const char* source) {
  std::printf("----- %s -----\ninput:\n%s\n", title, source);
  auto result = cid::translate::translate_source(source);
  if (!result.is_ok()) {
    std::printf("translation failed: %s\n",
                result.status().to_string().c_str());
    return;
  }
  std::printf("output:\n%s\n", result.value().source.c_str());
  std::printf("(%d p2p directive(s), %d region(s), %d consolidated "
              "sync(s))\n\n",
              result.value().summary.p2p_directives,
              result.value().summary.parameter_regions,
              result.value().summary.consolidated_syncs);
}

}  // namespace

int main() {
  show("Listing 3: region + loop -> MPI two-sided", kListing3);
  show("Ring -> SHMEM (one clause changed)", kShmemRing);
  return 0;
}
