// Quickstart: the paper's Listing 1 ring pattern, expressed through the
// embedded directive API and executed on the simulated SPMD runtime.
//
//   prev = (rank-1+nprocs)%nprocs;
//   next = (rank+1)%nprocs;
//   #pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
//
// Build & run:  ./quickstart [nranks]
#include <cstdio>
#include <cstdlib>

#include "core/core.hpp"
#include "rt/runtime.hpp"

int main(int argc, char** argv) {
  using namespace cid::core;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;

  std::printf("Ring exchange on %d simulated ranks (Listing 1)\n", nranks);

  auto result = cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
    double buf1[4];
    double buf2[4] = {};
    for (int i = 0; i < 4; ++i) buf1[i] = ctx.rank() * 100.0 + i;

    // The directive: required clauses only. The count is inferred from the
    // array extents; the target defaults to MPI nonblocking send/receive.
    comm_p2p(Clauses()
                 .sender("(rank-1+nprocs)%nprocs")
                 .receiver("(rank+1)%nprocs")
                 .sbuf(buf(buf1, "buf1"))
                 .rbuf(buf(buf2, "buf2")));

    const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
    for (int i = 0; i < 4; ++i) {
      if (buf2[i] != prev * 100.0 + i) {
        std::fprintf(stderr, "rank %d: wrong data from %d!\n", ctx.rank(),
                     prev);
        std::abort();
      }
    }
    if (ctx.rank() == 0) {
      std::printf("rank 0 received [%g %g %g %g] from rank %d\n", buf2[0],
                  buf2[1], buf2[2], buf2[3], prev);
    }
  });

  std::printf("done; virtual makespan = %.2f us\n",
              result.makespan() * 1e6);
  return 0;
}
