// End-to-end WL-LSMS mini-app demo: the Figure 1 topology (1 Wang-Landau
// rank + M LSMS instances), the single-atom-data distribution (Listing 4 vs
// 5) and the setEvec spin scatter (Listing 6 vs 7), each run with the
// original MPI code and the directive retargeted to MPI and SHMEM.
//
// Build & run:  ./wllsms_demo [nprocs]   (nprocs = 1 + 16k)
#include <cstdio>
#include <cstdlib>

#include "wllsms/driver.hpp"

int main(int argc, char** argv) {
  using namespace cid::wllsms;
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 33;

  ExperimentConfig config;
  config.nprocs = nprocs;
  config.num_lsms = 16;
  config.natoms = 16;
  config.wl_steps = 8;

  const Topology topo{config.nprocs, config.num_lsms};
  if (!topo.valid()) {
    std::fprintf(stderr, "nprocs must be 1 + 16k (got %d)\n", nprocs);
    return 2;
  }

  std::printf("WL-LSMS mini-app: %d ranks = 1 WL + %d LSMS x %d, %d Fe "
              "atoms, %d WL steps\n\n",
              config.nprocs, config.num_lsms, topo.ranks_per_lsms(),
              config.natoms, config.wl_steps);

  std::printf("Phase 1 - single atom data distribution (Listings 4 vs 5):\n");
  for (Variant variant : {Variant::Original, Variant::DirectiveMpi,
                          Variant::DirectiveShmem}) {
    const double t = run_single_atom_distribution(config, variant);
    std::printf("  %-22s %10.2f us\n", variant_name(variant), t * 1e6);
  }

  std::printf("\nPhase 2 - random spin scatter, setEvec (Listings 6 vs 7):\n");
  double original = 0.0;
  for (Variant variant :
       {Variant::Original, Variant::OriginalWaitall, Variant::DirectiveMpi,
        Variant::DirectiveShmem}) {
    const double t = run_spin_scatter(config, variant);
    if (variant == Variant::Original) original = t;
    std::printf("  %-22s %10.2f us   (%.2fx)\n", variant_name(variant),
                t * 1e6, original / t);
  }

  std::printf("\nPhase 3 - spin scatter + core-state computation "
              "(sequential vs overlapped, 10x GPU projection):\n");
  config.compute.gpu_speedup = 10.0;
  const double sequential = run_spin_with_compute(config, Variant::Original);
  const double overlapped =
      run_spin_with_compute(config, Variant::DirectiveMpi);
  std::printf("  %-22s %10.2f us\n", "sequential", sequential * 1e6);
  std::printf("  %-22s %10.2f us   (%.2fx)\n", "directive overlap",
              overlapped * 1e6, sequential / overlapped);

  std::printf("\nPhase 4 - full WL round trip (WL -> privileged -> members ->\n"
              "energies back through group collectives, Section V extension):\n");
  config.compute.gpu_speedup = 1.0;
  config.wl_steps = 4;
  for (cid::core::Target target :
       {cid::core::Target::Mpi2Side, cid::core::Target::Shmem}) {
    double energy = 0.0;
    const double t = run_wl_roundtrip(config, target, &energy);
    std::printf("  %-22s %10.2f us   (WL energy %.6f)\n",
                target == cid::core::Target::Mpi2Side ? "roundtrip mpi2side"
                                                      : "roundtrip shmem",
                t * 1e6, energy);
  }

  std::printf("\nAll times are deterministic virtual times from the "
              "calibrated machine model.\n");
  return 0;
}
