// Scale workload: particle exchange with migration on a 1-D periodic
// domain. Each iteration every rank decides (deterministically, from a
// hash of rank and iteration) how many of its particles drift into each
// neighbouring cell, exchanges the counts, then the particle payloads —
// the two-phase "counts, then variable-size data" protocol of real
// particle and AMR codes.
//
// The payload sizes change every iteration, so at scale this workload
// exercises the runtime's envelope arena: buffers for migrating particles
// are recycled across iterations instead of hitting the allocator per
// message (see docs/PERF.md).
//
// Build & run:  ./particle_exchange [nranks] [iters]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

constexpr int kInitialPerRank = 64;
// Tags carry the direction of travel, so the two streams that cross one
// rank pair (and, at nranks == 2, the two neighbours that are the same
// rank) stay distinct.
constexpr int kTagCountLeft = 0;   ///< count of particles moving left
constexpr int kTagCountRight = 1;  ///< count of particles moving right
constexpr int kTagLeft = 2;        ///< leftbound particle payload
constexpr int kTagRight = 3;       ///< rightbound particle payload

/// Deterministic per-(rank, iter, dir) migration count in [1, 8].
int migrating(int rank, int iter, int dir) {
  std::uint32_t h = static_cast<std::uint32_t>(rank * 2654435761u) ^
                    static_cast<std::uint32_t>(iter * 40503u) ^
                    static_cast<std::uint32_t>(dir * 97u);
  h ^= h >> 16;
  return 1 + static_cast<int>(h % 8u);
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 64;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("particle exchange: %d ranks on a ring, %d particles/rank, "
              "%d iterations\n",
              nranks, kInitialPerRank, iters);

  auto result = cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
    namespace mpi = cid::mpi;
    auto world = mpi::Comm::world();
    const int me = ctx.rank();
    const int np = ctx.nranks();
    const int left = (me - 1 + np) % np;
    const int right = (me + 1) % np;

    // Each particle is one double (its position); identity doesn't matter
    // for the exchange pattern.
    std::vector<double> particles(kInitialPerRank, me + 0.5);

    for (int it = 0; it < iters; ++it) {
      int to_left = migrating(me, it, 0);
      int to_right = migrating(me, it, 1);
      const int have = static_cast<int>(particles.size());
      if (to_left + to_right > have) {
        to_left = have / 2;
        to_right = have - to_left;
      }

      // Phase 1: exchange counts with both neighbours.
      int counts[2] = {to_left, to_right};  // [0] -> left, [1] -> right
      int incoming[2] = {0, 0};             // [0] from left, [1] from right
      mpi::Request reqs[4] = {
          // What arrives from the left is my left neighbour's rightbound
          // stream, and vice versa.
          mpi::irecv(world, &incoming[0], 1, left, kTagCountRight),
          mpi::irecv(world, &incoming[1], 1, right, kTagCountLeft),
          mpi::isend(world, &counts[0], 1, left, kTagCountLeft),
          mpi::isend(world, &counts[1], 1, right, kTagCountRight),
      };
      mpi::waitall(reqs);

      // Phase 2: ship the migrating particles, sized by the counts.
      std::vector<double> from_left(incoming[0]);
      std::vector<double> from_right(incoming[1]);
      std::vector<double> leaving_left(particles.end() - to_left - to_right,
                                       particles.end() - to_right);
      std::vector<double> leaving_right(particles.end() - to_right,
                                        particles.end());
      particles.resize(particles.size() - to_left - to_right);

      mpi::Request data[4] = {
          mpi::irecv(world, from_left.data(), from_left.size(), left,
                     kTagRight),
          mpi::irecv(world, from_right.data(), from_right.size(), right,
                     kTagLeft),
          mpi::isend(world, leaving_left.data(), leaving_left.size(), left,
                     kTagLeft),
          mpi::isend(world, leaving_right.data(), leaving_right.size(), right,
                     kTagRight),
      };
      mpi::waitall(data);

      particles.insert(particles.end(), from_left.begin(), from_left.end());
      particles.insert(particles.end(), from_right.begin(), from_right.end());
      ctx.charge_compute(5e-8 * particles.size());
    }

    if (me < 2 || me == np - 1) {
      std::printf("rank %5d: %zu particles after %d iterations\n", me,
                  particles.size(), iters);
    }
  });

  std::printf("done; virtual makespan = %.2f us\n", result.makespan() * 1e6);
  return 0;
}
