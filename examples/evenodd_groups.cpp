// Listings 2 and 3: grouping processes with sendwhen/receivewhen, and a
// comm_parameters region scoping clauses over a loop of comm_p2p instances
// with consolidated synchronization.
//
// Build & run:  ./evenodd_groups [nranks]
#include <cstdio>
#include <cstdlib>

#include "core/core.hpp"
#include "rt/runtime.hpp"

int main(int argc, char** argv) {
  using namespace cid::core;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;

  std::printf("Even->odd pairing on %d ranks (Listing 2), then a region "
              "with a loop (Listing 3)\n",
              nranks);

  auto result = cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
    // --- Listing 2: even ranks send to the nearest odd rank --------------
    int token_out[1] = {1000 + ctx.rank()};
    int token_in[1] = {-1};
    comm_p2p(Clauses()
                 .sbuf(buf(token_out))
                 .rbuf(buf(token_in))
                 .sender("rank-1")
                 .receiver("rank+1")
                 .sendwhen("rank%2==0")
                 .receivewhen("rank%2==1"));
    if (ctx.rank() % 2 == 1 && token_in[0] != 1000 + ctx.rank() - 1) {
      std::fprintf(stderr, "rank %d: pairing failed\n", ctx.rank());
      std::abort();
    }

    // --- Listing 3: region + loop, one consolidated sync at region end ---
    constexpr int kIters = 6;
    double buf1[kIters];
    double buf2[kIters] = {};
    for (int p = 0; p < kIters; ++p) buf1[p] = ctx.rank() + p * 0.5;

    comm_parameters(
        Clauses()
            .sender("rank-1")
            .receiver("rank+1")
            .sendwhen("rank%2==0")
            .receivewhen("rank%2==1")
            .count(1)
            .max_comm_iter(kIters)
            .place_sync(SyncPlacement::EndParamRegion),
        [&](Region& region) {
          for (int p = 0; p < kIters; ++p) {
            region.p2p(Clauses().sbuf(buf(&buf1[p])).rbuf(buf(&buf2[p])));
          }
        });

    if (ctx.rank() % 2 == 1) {
      for (int p = 0; p < kIters; ++p) {
        if (buf2[p] != (ctx.rank() - 1) + p * 0.5) {
          std::fprintf(stderr, "rank %d: loop element %d wrong\n",
                       ctx.rank(), p);
          std::abort();
        }
      }
    }
  });

  std::printf("done; virtual makespan = %.2f us\n", result.makespan() * 1e6);
  return 0;
}
