// Software pipelining with place_sync(BEGIN_NEXT_PARAM_REGION): stage k's
// transfers are synchronized only at the start of stage k+1's region, so the
// computation between regions runs while the previous stage's messages are
// still in flight — the cross-region relaxation the paper's place_sync
// keywords exist for.
//
// The pattern: a chain of ranks processes a stream of work items; each rank
// transforms an item and forwards it downstream. With deferred sync, rank r
// overlaps "transform item i" with "item i-1 still flying to rank r+1".
//
// Build & run:  ./pipeline [nranks] [items]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <atomic>

#include "core/core.hpp"
#include "rt/runtime.hpp"

namespace {
constexpr int kElems = 32768;  // 256 KiB per item: transfer ~ compute
}

int main(int argc, char** argv) {
  using namespace cid::core;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int items = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("Pipeline of %d stages over %d items "
              "(place_sync BEGIN_NEXT_PARAM_REGION)\n",
              nranks, items);

  auto observed_waitalls = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto observed_deferrals = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto run_variant = [&](bool deferred) {
    return cid::rt::run(nranks, [&](cid::rt::RankCtx& ctx) {
      // Double-buffered in/out so the deferred variant never reuses a
      // buffer whose transfer is still unsynchronized.
      std::vector<double> inbox[2] = {std::vector<double>(kElems, 0.0),
                                      std::vector<double>(kElems, 0.0)};
      std::vector<double> outbox[2] = {std::vector<double>(kElems, 0.0),
                                       std::vector<double>(kElems, 0.0)};
      if (ctx.rank() == 0) {
        for (int i = 0; i < kElems; ++i) outbox[0][i] = i * 0.5;
      }

      for (int item = 0; item < items; ++item) {
        const int slot = item % 2;
        Clauses clauses;
        clauses.sender("rank-1")
            .receiver("rank+1")
            .sendwhen("rank<nprocs-1")
            .receivewhen("rank>0")
            .count(kElems)
            .max_comm_iter(1);
        if (deferred) {
          clauses.place_sync(SyncPlacement::BeginNextParamRegion);
        }
        comm_parameters(clauses, [&](Region& region) {
          region.p2p(
              Clauses().sbuf(buf(outbox[slot])).rbuf(buf(inbox[slot])));
        });

        // Stage computation: transform the PREVIOUS item while (in the
        // deferred variant) this item's transfer is still in flight.
        const int prev_slot = 1 - slot;
        for (int i = 0; i < kElems; ++i) {
          outbox[prev_slot][i] = inbox[prev_slot][i] + 1.0;
        }
        ctx.charge_compute(40e-6);
      }
      comm_flush();  // drain the final deferred synchronization
      if (ctx.rank() == 1) {
        observed_waitalls->store(comm_stats().waitalls);
        observed_deferrals->store(comm_stats().deferred_syncs);
      }
    });
  };

  const double eager = run_variant(false).makespan();
  const std::uint64_t eager_waitalls = observed_waitalls->load();
  const double deferred = run_variant(true).makespan();
  const std::uint64_t deferred_waitalls = observed_waitalls->load();

  std::printf("  region-end sync : %8.2f us, %llu waitalls on stage 1\n",
              eager * 1e6, static_cast<unsigned long long>(eager_waitalls));
  std::printf("  deferred sync   : %8.2f us, %llu waitalls (%llu deferred)\n",
              deferred * 1e6,
              static_cast<unsigned long long>(deferred_waitalls),
              static_cast<unsigned long long>(observed_deferrals->load()));
  std::printf(
      "BEGIN_NEXT_PARAM_REGION moves each region's synchronization to the\n"
      "start of the next region (the %llu deferrals above), so the\n"
      "between-region computation runs before the wait instead of after\n"
      "it. With compute-bound stages the gain is small and bounded by\n"
      "min(compute, in-flight time) per item; it is the relaxation the\n"
      "paper's place_sync keywords exist to express, measured honestly.\n",
      static_cast<unsigned long long>(observed_deferrals->load()));
  return 0;
}
