// Seeded wildcard value race for `cidt explore` (docs/EXPLORE.md).
//
// Both directives name a symbolic sender (`k`), so the receives at rank 0
// lower to wildcard receives and the static analyzer must skip the pair
// (`cidt check` reports the skip note and nothing else). Dynamically,
// rank 1 finishes the first stage without work while rank 2 races ahead to
// the second, so two messages from *different* program sites are in flight
// toward rank 0's first wildcard receive at once. `cidt explore --nprocs 3`
// finds the ordering where they swap and reports CID-E102 with a witness
// schedule; replaying the witness reproduces it deterministically.
int a[8];
int b[8];
int c[8];
int d[8];
int k;  // runtime-chosen peer: opaque to the static analyzer

void stage1();
void stage2();

void step() {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver(0) sender(k) \
    sendwhen(rank == 1) receivewhen(rank == 0)
  { stage1(); }
#pragma comm_p2p sbuf(c) rbuf(d) count(4) receiver(0) sender(k) \
    sendwhen(rank == 2) receivewhen(rank == 0)
  { stage2(); }
}
