// Seeded symbolic-clause deadlock for `cidt explore` (docs/EXPLORE.md).
//
// A ring shift whose send guard depends on a runtime value: the static
// analyzer cannot evaluate `sendwhen(k > 0)` and skips the directive
// (`cidt check` is clean apart from the skip note). The explorer branches
// the guard both ways per rank; in the schedule where every rank's guard
// is false no message is ever sent, every rank blocks on its predecessor,
// and the wait graph is one cycle — reported as CID-E100 with the witness
// schedule that replays it.
int a[8];
int b[8];
int k;  // runtime-chosen flag: opaque to the static analyzer

void exchange();

void step() {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver((rank + 1) % nprocs) \
    sender((rank + nprocs - 1) % nprocs) sendwhen(k > 0) \
    receivewhen(rank >= 0)
  { exchange(); }
}
