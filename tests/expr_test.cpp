// Tests for the clause expression mini-language.
#include <gtest/gtest.h>

#include "core/expr.hpp"

namespace {

using cid::core::Env;
using cid::core::Expr;
using cid::core::ExprValue;

ExprValue eval(const std::string& text, const Env& env = {}) {
  auto expr = Expr::parse(text);
  EXPECT_TRUE(expr.is_ok()) << expr.status().to_string();
  auto value = expr.value().eval(env);
  EXPECT_TRUE(value.is_ok()) << value.status().to_string();
  return value.value();
}

Env rank_env(ExprValue rank, ExprValue nprocs) {
  Env env;
  env.bind("rank", rank);
  env.bind("nprocs", nprocs);
  return env;
}

TEST(Expr, Literals) {
  EXPECT_EQ(eval("0"), 0);
  EXPECT_EQ(eval("42"), 42);
  EXPECT_EQ(eval("123456789"), 123456789);
}

TEST(Expr, Arithmetic) {
  EXPECT_EQ(eval("1+2*3"), 7);
  EXPECT_EQ(eval("(1+2)*3"), 9);
  EXPECT_EQ(eval("10-4-3"), 3);  // left associative
  EXPECT_EQ(eval("20/3"), 6);
  EXPECT_EQ(eval("20%3"), 2);
  EXPECT_EQ(eval("-5+2"), -3);
  EXPECT_EQ(eval("--5"), 5);
}

TEST(Expr, Comparisons) {
  EXPECT_EQ(eval("3==3"), 1);
  EXPECT_EQ(eval("3!=3"), 0);
  EXPECT_EQ(eval("2<3"), 1);
  EXPECT_EQ(eval("3<=3"), 1);
  EXPECT_EQ(eval("4>5"), 0);
  EXPECT_EQ(eval("5>=5"), 1);
}

TEST(Expr, Logical) {
  EXPECT_EQ(eval("1&&0"), 0);
  EXPECT_EQ(eval("1&&2"), 1);
  EXPECT_EQ(eval("0||3"), 1);
  EXPECT_EQ(eval("0||0"), 0);
  EXPECT_EQ(eval("!0"), 1);
  EXPECT_EQ(eval("!7"), 0);
}

TEST(Expr, ShortCircuitSkipsDivisionByZero) {
  // C semantics: RHS not evaluated when the result is already decided.
  EXPECT_EQ(eval("0 && 1/0"), 0);
  EXPECT_EQ(eval("1 || 1/0"), 1);
}

TEST(Expr, Ternary) {
  EXPECT_EQ(eval("1 ? 10 : 20"), 10);
  EXPECT_EQ(eval("0 ? 10 : 20"), 20);
  EXPECT_EQ(eval("1 ? 0 ? 1 : 2 : 3"), 2);  // nested, right associative
}

TEST(Expr, PaperListing1RingNeighbours) {
  // prev = (rank-1+nprocs)%nprocs; next = (rank+1)%nprocs
  EXPECT_EQ(eval("(rank-1+nprocs)%nprocs", rank_env(0, 8)), 7);
  EXPECT_EQ(eval("(rank+1)%nprocs", rank_env(7, 8)), 0);
  EXPECT_EQ(eval("(rank+1)%nprocs", rank_env(3, 8)), 4);
}

TEST(Expr, PaperListing2ParityGuards) {
  EXPECT_EQ(eval("rank%2==0", rank_env(4, 8)), 1);
  EXPECT_EQ(eval("rank%2==0", rank_env(5, 8)), 0);
  EXPECT_EQ(eval("rank%2==1", rank_env(5, 8)), 1);
}

TEST(Expr, Variables) {
  Env env;
  env.bind("n", 12);
  env.bind("from_rank", 3);
  EXPECT_EQ(eval("n*2", env), 24);
  EXPECT_EQ(eval("from_rank==3", env), 1);
}

TEST(Expr, UnboundVariableIsEvalError) {
  auto expr = Expr::parse("missing+1");
  ASSERT_TRUE(expr.is_ok());
  auto value = expr.value().eval(Env{});
  EXPECT_FALSE(value.is_ok());
  EXPECT_EQ(value.status().code(), cid::ErrorCode::ParseError);
}

TEST(Expr, DivisionByZeroIsEvalError) {
  auto expr = Expr::parse("10/0");
  ASSERT_TRUE(expr.is_ok());
  EXPECT_FALSE(expr.value().eval(Env{}).is_ok());
  auto mod = Expr::parse("10%0");
  ASSERT_TRUE(mod.is_ok());
  EXPECT_FALSE(mod.value().eval(Env{}).is_ok());
}

TEST(Expr, ParseErrors) {
  EXPECT_FALSE(Expr::parse("").is_ok());
  EXPECT_FALSE(Expr::parse("1+").is_ok());
  EXPECT_FALSE(Expr::parse("(1").is_ok());
  EXPECT_FALSE(Expr::parse("1)").is_ok());
  EXPECT_FALSE(Expr::parse("a=1").is_ok());
  EXPECT_FALSE(Expr::parse("a&b").is_ok());
  EXPECT_FALSE(Expr::parse("1 2").is_ok());
  EXPECT_FALSE(Expr::parse("$x").is_ok());
  EXPECT_FALSE(Expr::parse("1 ? 2").is_ok());
}

TEST(Expr, ParseErrorsCarryPosition) {
  auto result = Expr::parse("rank +* 2");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("position"), std::string::npos);
}

TEST(Expr, ToStringRoundTrips) {
  for (const char* text :
       {"(rank-1+nprocs)%nprocs", "rank%2==0", "1?2:3", "!(a&&b)", "-x+3"}) {
    auto first = Expr::parse(text);
    ASSERT_TRUE(first.is_ok()) << text;
    const std::string printed = first.value().to_string();
    auto second = Expr::parse(printed);
    ASSERT_TRUE(second.is_ok()) << printed;
    EXPECT_EQ(second.value().to_string(), printed);
  }
}

TEST(Expr, ToStringEvaluatesIdentically) {
  Env env = rank_env(5, 16);
  env.bind("a", 1);
  env.bind("b", 0);
  env.bind("x", 9);
  for (const char* text :
       {"(rank-1+nprocs)%nprocs", "rank%2==0", "rank*3-nprocs/2", "!(a&&b)",
        "-x+3", "a||b&&x>2"}) {
    auto original = Expr::parse(text);
    ASSERT_TRUE(original.is_ok());
    auto reprinted = Expr::parse(original.value().to_string());
    ASSERT_TRUE(reprinted.is_ok());
    EXPECT_EQ(original.value().eval(env).value(),
              reprinted.value().eval(env).value())
        << text;
  }
}

TEST(Expr, FreeVariables) {
  auto expr = Expr::parse("(rank+1)%nprocs + size*size");
  ASSERT_TRUE(expr.is_ok());
  const auto vars = expr.value().free_variables();
  EXPECT_EQ(vars, (std::vector<std::string>{"nprocs", "rank", "size"}));
}

TEST(Expr, OperatorPrecedenceMatchesC) {
  EXPECT_EQ(eval("2+3*4==14"), 1);
  EXPECT_EQ(eval("1<2==1"), 1);       // (1<2)==1
  EXPECT_EQ(eval("1||0&&0"), 1);      // && binds tighter than ||
  EXPECT_EQ(eval("6%4*2"), 4);        // (6%4)*2
  EXPECT_EQ(eval("-2*3"), -6);
  EXPECT_EQ(eval("!1==0"), 1);        // (!1)==0
}

TEST(Env, RebindOverwrites) {
  Env env;
  env.bind("x", 1);
  env.bind("x", 2);
  EXPECT_EQ(env.lookup("x").value(), 2);
}

}  // namespace
