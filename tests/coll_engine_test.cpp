// Tests for the cid::mpi::coll multi-algorithm engine: every algorithm is
// cross-checked element-equal against independently computed reference
// results across group sizes (including non-powers-of-two), all four
// ReduceOps run under every allreduce algorithm, count==0 and single-member
// groups early-out, out-of-range roots throw, CID_COLL overrides steer (and
// reject nonsense), and virtual clocks are identical under both schedulers.
//
// Reduction tests use exactly-representable values (small integers): the
// tree, recursive-doubling and ring algorithms combine partial results in
// different orders, which is only element-identical when every intermediate
// is exact.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mpi/coll.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

using cid::CidError;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;
namespace mpi = cid::mpi;
namespace coll = cid::mpi::coll;
using coll::CollAlgo;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

/// Set an environment variable for one scope, restoring on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// Group sizes exercising every structural case: 1 (local copy), 2-4 (tiny
// groups), 5 and 7 (non-power-of-two trees / rd fold), 8 and 16 (clean
// power-of-two doubling).
class CollAlgoSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CollAlgoSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST_P(CollAlgoSizes, BcastAlgorithmsMatchReference) {
  const int nranks = GetParam();
  const int root = nranks - 1;
  for (CollAlgo algo : {CollAlgo::Binomial, CollAlgo::VanDeGeijn}) {
    spmd(nranks, [root, algo](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      // 13 elements: not divisible by most group sizes, so the van de Geijn
      // scatter produces ragged (including zero-length) chunks.
      std::vector<int> data(13, -1);
      if (ctx.rank() == root) std::iota(data.begin(), data.end(), 100);
      coll::bcast(world, data.data(), data.size(), mpi::datatype_of<int>(),
                  root, algo);
      for (int i = 0; i < 13; ++i) EXPECT_EQ(data[i], 100 + i);
    });
  }
}

TEST_P(CollAlgoSizes, GatherAlgorithmsMatchReference) {
  const int nranks = GetParam();
  const int root = nranks / 2;
  for (CollAlgo algo : {CollAlgo::Flat, CollAlgo::Binomial}) {
    spmd(nranks, [nranks, root, algo](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      std::array<int, 3> mine{ctx.rank() * 3, ctx.rank() * 3 + 1,
                              ctx.rank() * 3 + 2};
      std::vector<int> all;
      if (ctx.rank() == root) {
        all.assign(3 * static_cast<std::size_t>(nranks), -1);
      }
      coll::gather(world, mine.data(), 3, mpi::datatype_of<int>(),
                   ctx.rank() == root ? all.data() : nullptr, root, algo);
      if (ctx.rank() == root) {
        for (int i = 0; i < 3 * nranks; ++i) EXPECT_EQ(all[i], i);
      }
    });
  }
}

TEST_P(CollAlgoSizes, ScatterAlgorithmsMatchReference) {
  const int nranks = GetParam();
  const int root = nranks - 1;
  for (CollAlgo algo : {CollAlgo::Flat, CollAlgo::Binomial}) {
    spmd(nranks, [nranks, root, algo](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      std::vector<double> source;
      if (ctx.rank() == root) {
        source.resize(2 * static_cast<std::size_t>(nranks));
        std::iota(source.begin(), source.end(), 0.0);
      }
      std::array<double, 2> mine{-1.0, -1.0};
      coll::scatter(world, ctx.rank() == root ? source.data() : nullptr, 2,
                    mpi::datatype_of<double>(), mine.data(), root, algo);
      EXPECT_DOUBLE_EQ(mine[0], 2.0 * ctx.rank());
      EXPECT_DOUBLE_EQ(mine[1], 2.0 * ctx.rank() + 1);
    });
  }
}

TEST_P(CollAlgoSizes, AllgatherAlgorithmsMatchReference) {
  const int nranks = GetParam();
  // RecursiveDoubling silently falls back to ring on non-power-of-two
  // groups; both paths must produce the same bytes.
  for (CollAlgo algo : {CollAlgo::Ring, CollAlgo::RecursiveDoubling}) {
    spmd(nranks, [nranks, algo](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      std::array<int, 2> mine{ctx.rank() * 2, ctx.rank() * 2 + 1};
      std::vector<int> all(2 * static_cast<std::size_t>(nranks), -1);
      coll::allgather(world, mine.data(), 2, mpi::datatype_of<int>(),
                      all.data(), algo);
      for (int i = 0; i < 2 * nranks; ++i) EXPECT_EQ(all[i], i);
    });
  }
}

TEST_P(CollAlgoSizes, AlltoallAlgorithmsMatchReference) {
  const int nranks = GetParam();
  for (CollAlgo algo :
       {CollAlgo::Flat, CollAlgo::Bruck, CollAlgo::PairwiseWindow}) {
    spmd(nranks, [nranks, algo](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      std::vector<int> send(2 * static_cast<std::size_t>(nranks));
      std::vector<int> recv(2 * static_cast<std::size_t>(nranks), -1);
      for (int j = 0; j < nranks; ++j) {
        send[2 * j] = ctx.rank() * 1000 + 2 * j;
        send[2 * j + 1] = ctx.rank() * 1000 + 2 * j + 1;
      }
      coll::alltoall(world, send.data(), 2, mpi::datatype_of<int>(),
                     recv.data(), algo);
      for (int j = 0; j < nranks; ++j) {
        EXPECT_EQ(recv[2 * j], j * 1000 + 2 * ctx.rank());
        EXPECT_EQ(recv[2 * j + 1], j * 1000 + 2 * ctx.rank() + 1);
      }
    });
  }
}

TEST_P(CollAlgoSizes, ReduceAlgorithmsMatchReference) {
  const int nranks = GetParam();
  const int root = nranks / 2;
  for (CollAlgo algo : {CollAlgo::Binomial, CollAlgo::Rabenseifner}) {
    spmd(nranks, [nranks, root, algo](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      // 5 elements: ragged reduce-scatter chunks for most group sizes.
      std::array<double, 5> mine{};
      for (int i = 0; i < 5; ++i) {
        mine[static_cast<std::size_t>(i)] = ctx.rank() + i;
      }
      std::array<double, 5> total{};
      coll::reduce(world, mine.data(), total.data(), 5, mpi::ReduceOp::Sum,
                   root, algo);
      if (ctx.rank() == root) {
        const double ranks_sum = nranks * (nranks - 1) / 2.0;
        for (int i = 0; i < 5; ++i) {
          EXPECT_DOUBLE_EQ(total[static_cast<std::size_t>(i)],
                           ranks_sum + static_cast<double>(i) * nranks);
        }
      }
    });
  }
}

TEST_P(CollAlgoSizes, AllreduceAlgorithmsMatchReference) {
  const int nranks = GetParam();
  for (CollAlgo algo : {CollAlgo::ReduceBcast, CollAlgo::RecursiveDoubling,
                        CollAlgo::Ring}) {
    spmd(nranks, [nranks, algo](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      std::array<double, 5> mine{};
      for (int i = 0; i < 5; ++i) {
        mine[static_cast<std::size_t>(i)] = ctx.rank() + i;
      }
      std::array<double, 5> total{};
      coll::allreduce(world, mine.data(), total.data(), 5,
                      mpi::ReduceOp::Sum, algo);
      const double ranks_sum = nranks * (nranks - 1) / 2.0;
      for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(total[static_cast<std::size_t>(i)],
                         ranks_sum + static_cast<double>(i) * nranks);
      }
    });
  }
}

TEST(CollEngine, AllReduceOpsUnderEveryAllreduceAlgorithm) {
  // 7 ranks: exercises the recursive-doubling non-power-of-two fold.
  const int nranks = 7;
  for (CollAlgo algo : {CollAlgo::ReduceBcast, CollAlgo::RecursiveDoubling,
                        CollAlgo::Ring}) {
    for (mpi::ReduceOp op : {mpi::ReduceOp::Sum, mpi::ReduceOp::Min,
                             mpi::ReduceOp::Max, mpi::ReduceOp::Prod}) {
      spmd(nranks, [nranks, algo, op](RankCtx& ctx) {
        auto world = mpi::Comm::world();
        // Values in {1, 2}: Prod over 7 ranks stays exact and small.
        std::array<int, 6> mine{};
        for (int i = 0; i < 6; ++i) {
          mine[static_cast<std::size_t>(i)] = (ctx.rank() + i) % 2 + 1;
        }
        std::array<int, 6> out{};
        coll::allreduce(world, mine.data(), out.data(), 6, op, algo);
        for (int i = 0; i < 6; ++i) {
          int expected = (0 + i) % 2 + 1;
          for (int r = 1; r < nranks; ++r) {
            const int v = (r + i) % 2 + 1;
            switch (op) {
              case mpi::ReduceOp::Sum: expected += v; break;
              case mpi::ReduceOp::Min: expected = std::min(expected, v); break;
              case mpi::ReduceOp::Max: expected = std::max(expected, v); break;
              case mpi::ReduceOp::Prod: expected *= v; break;
            }
          }
          EXPECT_EQ(out[static_cast<std::size_t>(i)], expected)
              << "algo=" << static_cast<int>(algo)
              << " op=" << static_cast<int>(op) << " i=" << i;
        }
      });
    }
  }
}

TEST(CollEngine, CountZeroIsANoOpEverywhere) {
  spmd(5, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    int guard = 41 + ctx.rank();
    int out = -7;
    double dguard = 1.5;
    double dout = -7.0;
    mpi::bcast(world, &guard, 0, 1);
    mpi::gather(world, &guard, 0, &out, 1);
    mpi::scatter(world, &guard, 0, &out, 1);
    mpi::allgather(world, &guard, 0, &out);
    mpi::alltoall(world, &guard, 0, &out);
    mpi::reduce(world, &dguard, &dout, 0, mpi::ReduceOp::Sum, 1);
    mpi::allreduce(world, &dguard, &dout, 0, mpi::ReduceOp::Sum);
    EXPECT_EQ(guard, 41 + ctx.rank());
    EXPECT_EQ(out, -7);
    EXPECT_DOUBLE_EQ(dout, -7.0);
    // Zero-count collectives must not advance the clock: no messages move.
    EXPECT_DOUBLE_EQ(ctx.clock().now(), 0.0);
  });
}

TEST(CollEngine, AllreduceInPlaceAliasing) {
  // recv == send must work: single-member groups and the local fold both
  // copy through the same buffer.
  spmd(1, [](RankCtx&) {
    auto world = mpi::Comm::world();
    std::array<double, 3> buf{1.0, 2.0, 3.0};
    mpi::allreduce(world, buf.data(), buf.data(), 3, mpi::ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(buf[0], 1.0);
    EXPECT_DOUBLE_EQ(buf[2], 3.0);
  });
}

TEST(CollEngine, OutOfRangeRootsThrow) {
  for (int bad_root : {-1, 3}) {
    EXPECT_THROW(spmd(3,
                      [bad_root](RankCtx&) {
                        int v = 0;
                        mpi::bcast(mpi::Comm::world(), &v, 1, bad_root);
                      }),
                 CidError);
    EXPECT_THROW(spmd(3,
                      [bad_root](RankCtx&) {
                        int v = 0;
                        int out[3];
                        mpi::gather(mpi::Comm::world(), &v, 1, out, bad_root);
                      }),
                 CidError);
    EXPECT_THROW(spmd(3,
                      [bad_root](RankCtx&) {
                        int v[3] = {};
                        int out = 0;
                        mpi::scatter(mpi::Comm::world(), v, 1, &out,
                                     bad_root);
                      }),
                 CidError);
    EXPECT_THROW(spmd(3,
                      [bad_root](RankCtx&) {
                        double v = 1.0;
                        double out = 0.0;
                        mpi::reduce(mpi::Comm::world(), &v, &out, 1,
                                    mpi::ReduceOp::Sum, bad_root);
                      }),
                 CidError);
  }
}

TEST(CollEngine, WorksOnSubcommunicators) {
  // Algorithms must use group-relative ranks, not world ranks.
  spmd(12, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    auto sub = world.split(ctx.rank() % 3, ctx.rank());
    std::array<int, 4> all{};
    int mine = ctx.rank();
    coll::allgather(sub, &mine, 1, mpi::datatype_of<int>(), all.data(),
                    CollAlgo::RecursiveDoubling);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)], ctx.rank() % 3 + 3 * i);
    }
    int sum = 0;
    coll::allreduce(sub, &mine, &sum, 1, mpi::ReduceOp::Sum,
                    CollAlgo::Ring);
    EXPECT_EQ(sum, 4 * (ctx.rank() % 3) + 3 * (0 + 1 + 2 + 3));
  });
}

TEST(CollEngine, CidCollOverrideSteersSelection) {
  // With the cray model, a flat alltoall at 32 ranks is far slower than
  // Bruck; forcing each via CID_COLL must produce different (and ordered)
  // virtual makespans while both stay correct.
  const auto model = MachineModel::cray_xk7_gemini();
  auto run_with = [&](const char* forced) {
    EnvGuard coll_env("CID_COLL", forced);
    auto result = cid::rt::run(32, model, [](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      std::vector<int> send(32), recv(32, -1);
      for (int j = 0; j < 32; ++j) send[j] = ctx.rank() * 100 + j;
      mpi::alltoall(world, send.data(), 1, recv.data());
      for (int j = 0; j < 32; ++j) {
        EXPECT_EQ(recv[j], j * 100 + ctx.rank());
      }
    });
    return result.makespan();
  };
  const double flat = run_with("alltoall:flat");
  const double bruck = run_with("alltoall:bruck");
  const double pairwise = run_with("alltoall:pairwise");
  EXPECT_NE(flat, bruck);
  EXPECT_LT(bruck, flat);
  EXPECT_NE(bruck, pairwise);
}

TEST(CollEngine, CidCollInapplicableOverrideFallsThrough) {
  // rd allgather cannot run on a 6-rank group; the override must fall
  // through to the cost model instead of crashing or misdelivering.
  EnvGuard coll_env("CID_COLL", "allgather:rd");
  spmd(6, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    int mine = ctx.rank() + 1;
    std::array<int, 6> all{};
    mpi::allgather(world, &mine, 1, all.data());
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)], i + 1);
    }
  });
}

TEST(CollEngine, InvalidCidCollRejectedAtStartup) {
  {
    EnvGuard coll_env("CID_COLL", "alltoall:nonsense");
    EXPECT_THROW(spmd(2, [](RankCtx&) {}), CidError);
  }
  {
    EnvGuard coll_env("CID_COLL", "bcast:bruck");  // never implements bcast
    EXPECT_THROW(spmd(2, [](RankCtx&) {}), CidError);
  }
  {
    EnvGuard coll_env("CID_COLL", "frobnicate:ring");
    EXPECT_THROW(spmd(2, [](RankCtx&) {}), CidError);
  }
}

TEST(CollEngine, ClocksIdenticalUnderBothSchedulers) {
  // Every algorithm must produce byte-identical virtual clocks under the
  // pooled-fiber and thread-per-rank schedulers. Force each algorithm set
  // via CID_COLL and compare exact makespans.
  const auto model = MachineModel::cray_xk7_gemini();
  const char* forced_sets[] = {
      nullptr,  // cost-model defaults
      "bcast:vandegeijn,gather:binomial,scatter:binomial,allgather:rd,"
      "alltoall:bruck,reduce:rabenseifner,allreduce:rd",
      "bcast:binomial,gather:flat,scatter:flat,allgather:ring,"
      "alltoall:pairwise,reduce:binomial,allreduce:ring",
  };
  auto workload = [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<double> vec(9, ctx.rank() + 1.0);
    mpi::bcast(world, vec.data(), vec.size(), 0);
    std::vector<double> gathered(9 * 16);
    mpi::gather(world, vec.data(), 9, gathered.data(), 2);
    std::vector<int> blocks(16, ctx.rank()), trans(16, 0);
    mpi::alltoall(world, blocks.data(), 1, trans.data());
    std::vector<int> all(16);
    int mine = ctx.rank();
    mpi::allgather(world, &mine, 1, all.data());
    double sum = 0.0;
    double x = ctx.rank() * 0.5;
    mpi::allreduce(world, &x, &sum, 1, mpi::ReduceOp::Sum);
    double top = 0.0;
    mpi::reduce(world, &x, &top, 1, mpi::ReduceOp::Max, 3);
  };
  for (const char* forced : forced_sets) {
    EnvGuard coll_env("CID_COLL", forced);
    double pool_t = 0.0;
    double threads_t = 0.0;
    {
      EnvGuard sched("CID_SIM_SCHED", "pool");
      pool_t = cid::rt::run(16, model, workload).makespan();
    }
    {
      EnvGuard sched("CID_SIM_SCHED", "threads");
      threads_t = cid::rt::run(16, model, workload).makespan();
    }
    EXPECT_GT(pool_t, 0.0);
    EXPECT_EQ(pool_t, threads_t)
        << "CID_COLL=" << (forced == nullptr ? "(default)" : forced);
  }
}

}  // namespace
