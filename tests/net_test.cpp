// cid::net transport subsystem tests: frame codec (round trip, endianness,
// error paths), backend selection, rank partitioning, the mailbox's timed
// waits, ThreadTransport ordering and fault semantics, the sim backend's
// equivalence with the pre-seam runtime, a forked two-process TcpTransport
// loopback smoke, and the cidt run / net doctor exit-code contract.
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/backend.hpp"
#include "net/frame.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"
#include "net/thread_transport.hpp"
#include "net/transport.hpp"
#include "rt/runtime.hpp"
#include "rt/world.hpp"

namespace {

using cid::net::Backend;
using cid::net::FrameHeader;
using cid::net::FrameType;
using cid::net::kFrameHeaderBytes;

cid::rt::Envelope make_envelope(int src, int tag, std::uint32_t value) {
  cid::rt::Envelope e;
  e.src = src;
  e.tag = tag;
  e.payload = cid::rt::Payload(cid::copy_to_buffer(cid::as_bytes_of(value)));
  return e;
}

std::uint32_t value_of(const cid::rt::Envelope& e) {
  std::uint32_t value = 0;
  std::memcpy(&value, e.payload.data(), sizeof(value));
  return value;
}

// ---- Frame codec ---------------------------------------------------------

TEST(Frame, HeaderRoundTripsAllFields) {
  FrameHeader header;
  header.generation = 0x1122334455667788ull;
  header.type = FrameType::Payload;
  header.channel = 3;
  header.sender = 12;
  header.receiver = -7;
  header.tag = -1;
  header.length = 4096;

  std::array<std::byte, kFrameHeaderBytes> wire{};
  cid::net::encode_frame_header(header, wire);
  auto decoded =
      cid::net::decode_frame_header(cid::ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), header);
}

TEST(Frame, WireImageIsLittleEndianByteByByte) {
  // The encoding is defined byte by byte, so the wire image is identical on
  // any host: pin it exactly.
  FrameHeader header;
  header.generation = 0x0102030405060708ull;
  header.type = FrameType::Payload;  // 0xdd
  header.channel = 0x02;
  header.sender = 1;
  header.receiver = 256;
  header.tag = -2;
  header.length = 0xabcd;

  std::array<std::byte, kFrameHeaderBytes> wire{};
  cid::net::encode_frame_header(header, wire);
  const unsigned char expected[kFrameHeaderBytes] = {
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // generation LE
      0xdd, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // type | channel<<8
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // sender
      0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // receiver = 256
      0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  // tag = -2
      0xcd, 0xab, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // length
  };
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    EXPECT_EQ(std::to_integer<unsigned>(wire[i]), expected[i]) << "byte " << i;
  }
}

TEST(Frame, TruncatedHeaderIsRejected) {
  FrameHeader header;
  std::array<std::byte, kFrameHeaderBytes> wire{};
  cid::net::encode_frame_header(header, wire);
  for (std::size_t size : {std::size_t{0}, std::size_t{1},
                           kFrameHeaderBytes - 1}) {
    auto decoded =
        cid::net::decode_frame_header(cid::ByteSpan(wire.data(), size));
    ASSERT_FALSE(decoded.is_ok()) << "accepted " << size << " bytes";
    EXPECT_EQ(decoded.status().code(), cid::ErrorCode::InvalidArgument);
  }
}

TEST(Frame, UnknownTypeAndGarbageHighBytesAreRejected) {
  FrameHeader header;
  header.type = FrameType::Hello;
  std::array<std::byte, kFrameHeaderBytes> wire{};
  cid::net::encode_frame_header(header, wire);
  wire[8] = std::byte{0x99};  // no such FrameType
  EXPECT_FALSE(
      cid::net::decode_frame_header(cid::ByteSpan(wire.data(), wire.size()))
          .is_ok());
  cid::net::encode_frame_header(header, wire);
  wire[10] = std::byte{0x01};  // bits above the channel byte must be zero
  EXPECT_FALSE(
      cid::net::decode_frame_header(cid::ByteSpan(wire.data(), wire.size()))
          .is_ok());
}

TEST(Frame, AbsurdPayloadLengthIsRejected) {
  FrameHeader header;
  header.length = cid::net::kMaxFramePayloadBytes + 1;
  std::array<std::byte, kFrameHeaderBytes> wire{};
  cid::net::encode_frame_header(header, wire);
  EXPECT_FALSE(
      cid::net::decode_frame_header(cid::ByteSpan(wire.data(), wire.size()))
          .is_ok());
}

TEST(Frame, SelfTestPasses) {
  const cid::Status status = cid::net::frame_self_test();
  EXPECT_TRUE(status.is_ok()) << status.to_string();
}

// ---- Backend selection ---------------------------------------------------

TEST(Backend, ParseKnownNamesAndRejectTypos) {
  EXPECT_EQ(cid::net::parse_backend("sim"), Backend::Sim);
  EXPECT_EQ(cid::net::parse_backend("thread"), Backend::Thread);
  EXPECT_EQ(cid::net::parse_backend("tcp"), Backend::Tcp);
  EXPECT_FALSE(cid::net::parse_backend("Sim").has_value());
  EXPECT_FALSE(cid::net::parse_backend("").has_value());
  EXPECT_FALSE(cid::net::parse_backend("udp").has_value());
}

TEST(Backend, EnvUnsetDefaultsToSimAndTypoThrows) {
  ::unsetenv("CID_BACKEND");
  EXPECT_EQ(cid::net::backend_from_env(), Backend::Sim);
  ::setenv("CID_BACKEND", "thread", 1);
  EXPECT_EQ(cid::net::backend_from_env(), Backend::Thread);
  ::setenv("CID_BACKEND", "smi", 1);
  EXPECT_THROW(cid::net::backend_from_env(), cid::CidError);
  ::unsetenv("CID_BACKEND");
}

TEST(Backend, PartitionRanksCoversEveryRankExactlyOnce) {
  for (int nranks : {1, 2, 3, 7, 8, 64}) {
    for (int nprocs : {1, 2, 3, 5}) {
      if (nprocs > nranks) continue;
      std::vector<int> owner(nranks, -1);
      for (int p = 0; p < nprocs; ++p) {
        const auto range = cid::net::partition_ranks(nranks, nprocs, p);
        EXPECT_GE(range.count, 1);
        for (int r = range.begin; r < range.begin + range.count; ++r) {
          ASSERT_GE(r, 0);
          ASSERT_LT(r, nranks);
          EXPECT_EQ(owner[r], -1) << "rank " << r << " hosted twice";
          owner[r] = p;
        }
      }
      for (int r = 0; r < nranks; ++r) {
        EXPECT_NE(owner[r], -1) << "rank " << r << " unhosted";
      }
    }
  }
}

TEST(Backend, TcpConfigParsesPeersAndRejectsMalformedEntries) {
  ::setenv("CID_NET_PEERS", "127.0.0.1:7001,localhost:7002", 1);
  ::setenv("CID_NET_PROC", "1", 1);
  auto config = cid::net::tcp_config_from_env();
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  EXPECT_EQ(config.value().nprocs(), 2);
  EXPECT_EQ(config.value().proc, 1);
  EXPECT_EQ(config.value().peers[0].host, "127.0.0.1");
  EXPECT_EQ(config.value().peers[0].port, 7001);
  EXPECT_EQ(config.value().peers[1].host, "localhost");

  ::setenv("CID_NET_PROC", "2", 1);  // out of range
  EXPECT_FALSE(cid::net::tcp_config_from_env().is_ok());
  ::setenv("CID_NET_PROC", "0", 1);
  ::setenv("CID_NET_PEERS", "127.0.0.1:99999", 1);  // bad port
  EXPECT_FALSE(cid::net::tcp_config_from_env().is_ok());
  ::setenv("CID_NET_PEERS", "nocolon", 1);
  EXPECT_FALSE(cid::net::tcp_config_from_env().is_ok());
  ::unsetenv("CID_NET_PEERS");
  EXPECT_FALSE(cid::net::tcp_config_from_env().is_ok());
  ::unsetenv("CID_NET_PROC");
}

// ---- Mailbox timed waits -------------------------------------------------

TEST(MailboxTimed, WaitExtractForTimesOutEmpty) {
  cid::rt::Mailbox mailbox;
  cid::rt::MatchKey key;
  key.src = 0;
  key.tag = 1;
  const auto result = mailbox.wait_extract_for(
      std::span<const cid::rt::MatchKey>(&key, 1), 0.01);
  EXPECT_FALSE(result.has_value());
}

TEST(MailboxTimed, WaitExtractForReturnsQueuedEnvelopeImmediately) {
  cid::rt::Mailbox mailbox;
  mailbox.push(make_envelope(0, 1, 42));
  cid::rt::MatchKey key;
  key.src = 0;
  key.tag = 1;
  const auto result = mailbox.wait_extract_for(
      std::span<const cid::rt::MatchKey>(&key, 1), 10.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(value_of(*result), 42u);
}

// ---- ThreadTransport -----------------------------------------------------

/// N messages from each sender to rank 0 must arrive per-(src, tag) FIFO
/// even though a messenger thread relays them.
TEST(ThreadTransport, PreservesPerSourceTagOrder) {
  constexpr int kRanks = 4;
  constexpr int kMessages = 200;
  cid::rt::RunOptions options;
  options.transport = std::make_shared<cid::net::ThreadTransport>();
  std::atomic<int> failures{0};
  cid::rt::run(
      kRanks, cid::simnet::MachineModel::cray_xk7_gemini(),
      [&](cid::rt::RankCtx& ctx) {
        if (ctx.rank() != 0) {
          for (int i = 0; i < kMessages; ++i) {
            ctx.world().deliver(
                0, make_envelope(ctx.rank(), /*tag=*/7,
                                 static_cast<std::uint32_t>(i)));
          }
          return;
        }
        std::vector<std::uint32_t> next(kRanks, 0);
        for (int got = 0; got < (kRanks - 1) * kMessages; ++got) {
          cid::rt::MatchKey key;
          key.tag = 7;  // src wildcard: any sender, FIFO within each
          cid::rt::Envelope e = ctx.mailbox().wait_extract(key);
          if (value_of(e) != next[e.src]) ++failures;
          ++next[e.src];
        }
      },
      options);
  EXPECT_EQ(failures.load(), 0);
}

/// Fault-layer drops must still deliver tombstones on the thread backend
/// (ThreadTransport is not a real-loss transport).
TEST(ThreadTransport, FaultTombstonesSurviveTheMessenger) {
  class DropAll : public cid::rt::DeliveryInterceptor {
   public:
    cid::rt::DeliveryVerdict on_deliver(const cid::rt::Envelope&,
                                        int) override {
      cid::rt::DeliveryVerdict verdict;
      verdict.drop = true;
      return verdict;
    }
  };
  cid::rt::RunOptions options;
  options.transport = std::make_shared<cid::net::ThreadTransport>();
  options.interceptor = std::make_shared<DropAll>();
  std::atomic<int> tombstones{0};
  cid::rt::run(
      2, cid::simnet::MachineModel::cray_xk7_gemini(),
      [&](cid::rt::RankCtx& ctx) {
        if (ctx.rank() == 1) {
          ctx.world().deliver(0, make_envelope(1, 5, 99));
          return;
        }
        cid::rt::MatchKey key;
        key.src = 1;
        key.tag = 5;
        key.faults = cid::rt::FaultFilter::Faulted;
        cid::rt::Envelope e = ctx.mailbox().wait_extract(key);
        if (e.faulted && e.payload.empty()) ++tombstones;
      },
      options);
  EXPECT_EQ(tombstones.load(), 1);
}

/// detach() must drain everything: no envelope handed to deliver() before
/// the ranks finish may be lost.
TEST(ThreadTransport, ShutdownDrainsEveryInFlightEnvelope) {
  constexpr int kMessages = 500;
  cid::rt::RunOptions options;
  options.transport = std::make_shared<cid::net::ThreadTransport>();
  std::atomic<int> received{0};
  cid::rt::run(
      2, cid::simnet::MachineModel::cray_xk7_gemini(),
      [&](cid::rt::RankCtx& ctx) {
        if (ctx.rank() == 1) {
          for (int i = 0; i < kMessages; ++i) {
            ctx.world().deliver(0, make_envelope(1, 3,
                                                 static_cast<std::uint32_t>(i)));
          }
          return;
        }
        cid::rt::MatchKey key;
        key.src = 1;
        key.tag = 3;
        for (int i = 0; i < kMessages; ++i) {
          ctx.mailbox().wait_extract(key);
          ++received;
        }
      },
      options);
  EXPECT_EQ(received.load(), kMessages);
}

// ---- Sim backend equivalence (golden seam) -------------------------------

/// A deterministic program must produce identical final virtual clocks when
/// run through the explicit SimTransport seam and under the default
/// environment resolution (CID_BACKEND unset). This pins that the seam did
/// not perturb the simulator; the byte-level goldens live in
/// tests/property_test.cpp.
TEST(SimTransport, SeamIsVirtualTimeIdenticalToDefaultRun) {
  const auto program = [](cid::rt::RankCtx& ctx) {
    ctx.charge_compute(1e-6 * (ctx.rank() + 1));
    const int peer = (ctx.rank() + 1) % ctx.nranks();
    ctx.world().deliver(peer, make_envelope(ctx.rank(), 11, 7));
    cid::rt::MatchKey key;
    key.tag = 11;
    (void)ctx.mailbox().wait_extract(key);
    ctx.barrier();
  };
  ::unsetenv("CID_BACKEND");
  const auto baseline =
      cid::rt::run(4, cid::simnet::MachineModel::cray_xk7_gemini(), program);
  cid::rt::RunOptions options;
  options.transport = std::make_shared<cid::net::SimTransport>();
  const auto seamed = cid::rt::run(
      4, cid::simnet::MachineModel::cray_xk7_gemini(), program, options);
  EXPECT_EQ(baseline.final_clocks, seamed.final_clocks);
}

// ---- TcpTransport over loopback ------------------------------------------

bool loopback_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // any free port
  const bool ok =
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

cid::net::TcpConfig loopback_config(int proc, std::uint16_t base) {
  cid::net::TcpConfig config;
  config.peers = {{"127.0.0.1", base}, {"127.0.0.1",
                                        static_cast<std::uint16_t>(base + 1)}};
  config.proc = proc;
  return config;
}

/// Ring exchange over two OS processes: every rank sends rank*10 to the
/// next rank and checks what it received; both processes must agree and
/// exit cleanly. The child is forked, so a hang fails via waitpid timeout
/// (gtest's per-test timeout) rather than deadlocking the suite.
TEST(TcpTransport, TwoProcessLoopbackRingSmoke) {
  if (!loopback_available()) {
    GTEST_SKIP() << "no loopback networking in this environment";
  }
  // Pid-derived so concurrent test runs on one host pick different ports.
  const auto kPortBase =
      static_cast<std::uint16_t>(21000 + (::getpid() % 20000));
  constexpr int kRanks = 4;
  const auto program = [](cid::rt::RankCtx& ctx) {
    const int next = (ctx.rank() + 1) % ctx.nranks();
    const int prev = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
    ctx.world().deliver(
        next, make_envelope(ctx.rank(), 21,
                            static_cast<std::uint32_t>(ctx.rank() * 10)));
    cid::rt::MatchKey key;
    key.src = prev;
    key.tag = 21;
    cid::rt::Envelope e = ctx.mailbox().wait_extract(key);
    if (value_of(e) != static_cast<std::uint32_t>(prev * 10)) {
      throw cid::CidError(cid::ErrorCode::RuntimeFault, "wrong ring value");
    }
    ctx.barrier();
  };

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Proc 1 hosts ranks [2, 4).
    int code = 0;
    try {
      cid::rt::RunOptions options;
      options.transport = std::make_shared<cid::net::TcpTransport>(
          loopback_config(1, kPortBase));
      cid::rt::run(kRanks, cid::simnet::MachineModel::cray_xk7_gemini(),
                   program, options);
    } catch (...) {
      code = 1;
    }
    std::_Exit(code);
  }
  // Proc 0 hosts ranks [0, 2).
  cid::rt::RunOptions options;
  options.transport = std::make_shared<cid::net::TcpTransport>(
      loopback_config(0, kPortBase));
  EXPECT_NO_THROW(cid::rt::run(
      kRanks, cid::simnet::MachineModel::cray_xk7_gemini(), program, options));
  int status = -1;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

/// In-process facilities must refuse to start on a cross-process transport
/// instead of hanging: the world barrier still works, Comm::split-style
/// registries do not. Exercised directly through the World gate.
TEST(TcpTransport, CrossProcessGateRefusesInProcessFacilities) {
  if (!loopback_available()) {
    GTEST_SKIP() << "no loopback networking in this environment";
  }
  auto transport = std::make_shared<cid::net::TcpTransport>(
      loopback_config(0, 19931));
  cid::rt::World world(4, cid::simnet::MachineModel::cray_xk7_gemini());
  world.set_transport(transport);
  EXPECT_TRUE(world.rank_is_local(0));
  EXPECT_TRUE(world.rank_is_local(1));
  EXPECT_FALSE(world.rank_is_local(2));
  EXPECT_THROW(world.require_single_process("the shmem symmetric heap"),
               cid::CidError);
  world.set_transport(nullptr);
  EXPECT_NO_THROW(world.require_single_process("anything"));
}

// ---- cidt exit-code contract ---------------------------------------------

int cidt_exit(const std::string& args) {
  const std::string command =
      std::string(CID_BINARY_DIR) + "/tools/cidt " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CidtNet, DoctorExitCodeContract) {
  // Clean environment: everything checks out.
  ::unsetenv("CID_BACKEND");
  ::unsetenv("CID_NET_PEERS");
  ::unsetenv("CID_NET_PROC");
  EXPECT_EQ(cidt_exit("net doctor"), 0);
  // Malformed peer table: findings, exit 1.
  ::setenv("CID_NET_PEERS", "not-a-peer", 1);
  ::setenv("CID_NET_PROC", "0", 1);
  EXPECT_EQ(cidt_exit("net doctor"), 1);
  ::unsetenv("CID_NET_PEERS");
  ::unsetenv("CID_NET_PROC");
  // Unknown verb: usage, exit 2.
  EXPECT_EQ(cidt_exit("net ping"), 2);
}

TEST(CidtRun, UsageErrorsExitTwo) {
  EXPECT_EQ(cidt_exit("run"), 2);                      // no program
  EXPECT_EQ(cidt_exit("run --backend udp /bin/true"), 2);
  EXPECT_EQ(cidt_exit("run --backend thread --procs 2 /bin/true"), 2);
}

TEST(CidtRun, ExecsProgramWithBackendEnv) {
  // /bin/sh reads CID_BACKEND back out: the launcher must have set it.
  EXPECT_EQ(cidt_exit("run --backend thread /bin/sh -c "
                      "'test \"$CID_BACKEND\" = thread'"),
            0);
  EXPECT_EQ(cidt_exit("run --backend sim /bin/sh -c "
                      "'test \"$CID_BACKEND\" = sim'"),
            0);
  // Child exit codes propagate.
  EXPECT_EQ(cidt_exit("run --backend sim /bin/sh -c 'exit 7'"), 7);
}

}  // namespace
